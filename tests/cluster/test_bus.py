"""Epoch bus: total delivery order and boundary-only buffering."""

from repro.cluster.bus import EpochBus, ShardMessage, order_key


def _msg(cycle, shard, seq, dest=(1,), key=0):
    return ShardMessage(
        cycle=float(cycle),
        shard_id=shard,
        seq=seq,
        kind="replicate",
        dest=tuple(dest),
        key=key,
        page=key % 8,
        offset=0,
    )


class TestOrdering:
    def test_delivery_sorted_by_cycle_then_shard_then_seq(self):
        bus = EpochBus()
        # Committed out of order, across senders, with a cycle tie
        # between shards 0 and 2 broken by shard id.
        bus.commit(
            [
                [_msg(300, 0, 0), _msg(100, 0, 1)],
                [_msg(100, 2, 0), _msg(50, 2, 1)],
            ]
        )
        inbox = bus.take_inbox(1)
        assert [order_key(m) for m in inbox] == [
            (50.0, 2, 1),
            (100.0, 0, 1),
            (100.0, 2, 0),
            (300.0, 0, 0),
        ]

    def test_order_is_commit_order_invariant(self):
        a, b = EpochBus(), EpochBus()
        outboxes = [[_msg(10, 0, 0), _msg(5, 0, 1)], [_msg(7, 1, 0)]]
        a.commit(outboxes)
        b.commit(list(reversed(outboxes)))
        assert a.take_inbox(1) == b.take_inbox(1)

    def test_multi_destination_fanout(self):
        bus = EpochBus()
        bus.commit([[_msg(1, 0, 0, dest=(1, 2, 3))]])
        assert len(bus.take_inbox(1)) == 1
        assert len(bus.take_inbox(2)) == 1
        assert len(bus.take_inbox(3)) == 1
        assert bus.pending() == 0

    def test_empty_destination_drops_but_counts(self):
        bus = EpochBus()
        bus.commit([[_msg(1, 0, 0, dest=())]])
        assert bus.messages_committed == 1
        assert bus.deliveries == 0
        assert bus.pending() == 0


class TestBoundaryBuffering:
    def test_messages_stay_buffered_until_taken(self):
        bus = EpochBus()
        bus.commit([[_msg(1, 0, 0, dest=(1,)), _msg(2, 0, 1, dest=(2,))]])
        assert bus.pending() == 2
        assert len(bus.take_inbox(1)) == 1
        assert bus.pending() == 1

    def test_take_inbox_drains(self):
        bus = EpochBus()
        bus.commit([[_msg(1, 0, 0)]])
        assert len(bus.take_inbox(1)) == 1
        assert bus.take_inbox(1) == []

    def test_drop_inbox_discards_a_dead_shards_mail(self):
        bus = EpochBus()
        bus.commit([[_msg(1, 0, 0, dest=(1, 2))]])
        assert bus.drop_inbox(1) == 1
        assert bus.pending() == 1          # shard 2's copy survives
        assert bus.drop_inbox(1) == 0

    def test_digest_reflects_counters(self):
        bus = EpochBus()
        bus.commit([[_msg(1, 0, 0, dest=(1, 2))]])
        bus.commit([[]])
        assert bus.digest() == {
            "epochs_committed": 2,
            "messages_committed": 1,
            "deliveries": 2,
            "pending": 2,
        }

"""Figure 10: scalability of Aquila vs Linux mmap (paper Section 6.5)."""

from repro.bench.experiments.fig10 import run_fig10a, run_fig10b
from repro.bench.report import Table, print_claims, ratio_line

THREADS = [1, 2, 4, 8, 16, 32]


def _show(rows, title):
    table = Table(title, ["threads", "linux ops/s", "aquila ops/s", "speedup"])
    for row in rows:
        table.add_row(
            row["threads"],
            row["linux"]["throughput"],
            row["aquila"]["throughput"],
            row["speedup"],
        )
    table.show()


def test_fig10a_in_memory(once):
    """Dataset fits in memory: shared-file speedup grows with threads."""
    results = once(run_fig10a, thread_counts=THREADS)
    _show(results["shared"], "Figure 10(a): in-memory dataset, one shared file")
    _show(results["private"], "Figure 10(a): in-memory dataset, private file per thread")

    shared_1 = results["shared"][0]["speedup"]
    shared_32 = results["shared"][-1]["speedup"]
    private_32 = results["private"][-1]["speedup"]
    print_claims(
        "Figure 10(a) paper-vs-measured",
        [
            ratio_line("shared-file speedup @1t", 1.81, shared_1),
            ratio_line("shared-file speedup @32t", 8.37, shared_32),
            ratio_line("private-file speedup @32t", 1.99, private_32),
        ],
    )

    assert shared_1 > 1.2, "Aquila must win even at one thread"
    assert shared_32 > 2.5 * shared_1, "shared-file gap must widen with threads"
    assert private_32 < shared_32, "private files avoid the shared-lock collapse"
    # Linux shared-file throughput must plateau (tree-lock serialization).
    linux_shared = [row["linux"]["throughput"] for row in results["shared"]]
    assert linux_shared[-1] < 3 * linux_shared[2], "Linux must stop scaling"
    # Aquila keeps scaling well past Linux's plateau.
    aquila_shared = [row["aquila"]["throughput"] for row in results["shared"]]
    assert aquila_shared[-1] > 6 * aquila_shared[0]


def test_fig10b_out_of_memory(once):
    """Dataset 12.5x the cache: evictions amplify the gap (up to ~12.9x)."""
    results = once(run_fig10b, thread_counts=THREADS)
    _show(results["shared"], "Figure 10(b): out-of-memory dataset, one shared file")
    _show(results["private"], "Figure 10(b): out-of-memory dataset, private file per thread")

    shared_1 = results["shared"][0]["speedup"]
    shared_32 = results["shared"][-1]["speedup"]
    print_claims(
        "Figure 10(b) paper-vs-measured",
        [
            ratio_line("shared-file speedup @1t", 2.17, shared_1),
            ratio_line("shared-file speedup @32t", 12.92, shared_32),
            ratio_line(
                "private-file speedup @32t", 2.84, results["private"][-1]["speedup"]
            ),
        ],
    )

    assert shared_1 > 1.3
    assert shared_32 > 8.0, "out-of-memory shared-file gap should reach ~13x"
    assert shared_32 > results["private"][-1]["speedup"]


def test_fig10_writes_behave_like_reads(once):
    """Section 6.5: "We see similar behaviour in writes compared to reads."

    The paper omits write plots for this reason; we verify it: a write
    microbenchmark shows the same shared-file speedup ordering, with the
    dirty-marking path (tree lock on Linux, per-core RB-trees on Aquila)
    standing in for the read path's lookup contention.
    """

    def run():
        rows = []
        for threads in (1, 16):
            linux = _write_cell("linux", threads)
            aquila = _write_cell("aquila", threads)
            rows.append((threads, linux, aquila, aquila / max(linux, 1e-9)))
        return rows

    def _write_cell(kind, threads):
        from repro.bench.setups import make_aquila_stack, make_linux_stack
        from repro.common import units
        from repro.workloads.microbench import MicrobenchConfig, run_microbench

        maker = make_linux_stack if kind == "linux" else make_aquila_stack
        stack = maker("pmem", 1024)
        file = stack.allocator.create("w", 1024 * units.PAGE_SIZE)
        config = MicrobenchConfig(
            num_threads=threads,
            accesses_per_thread=max(8, 2048 // threads),
            touch_once=True,
            write_fraction=1.0,
        )
        return run_microbench(stack.engine, file, config).throughput_ops_per_sec()

    rows = once(run)
    table = Table(
        "Figure 10 write variant: 100% stores, in-memory, shared file",
        ["threads", "linux ops/s", "aquila ops/s", "speedup"],
    )
    for threads, linux, aquila, speedup in rows:
        table.add_row(threads, linux, aquila, speedup)
    table.show()

    by_threads = {threads: speedup for threads, _, _, speedup in rows}
    assert by_threads[1] > 1.1, "Aquila wins single-threaded writes too"
    assert by_threads[16] > by_threads[1], "write gap widens with threads"


def test_fig10_tail_latency(once):
    """Section 6.5 latency claims: Aquila's tails are far lower under load."""
    results = once(run_fig10b, thread_counts=[32])
    shared = results["shared"][0]
    p99_ratio = shared["linux"]["p99_cycles"] / max(1.0, shared["aquila"]["p99_cycles"])
    p999_ratio = shared["linux"]["p999_cycles"] / max(1.0, shared["aquila"]["p999_cycles"])
    mean_ratio = shared["linux"]["mean_latency_cycles"] / max(
        1.0, shared["aquila"]["mean_latency_cycles"]
    )
    print_claims(
        "Figure 10(b) tail latency @32t shared (paper: avg 8.52x, p99 177x, p99.9 213x)",
        [
            ratio_line("average latency", 8.52, mean_ratio),
            ratio_line("p99 latency", 177.0, p99_ratio),
            ratio_line("p99.9 latency", 213.0, p999_ratio),
        ],
    )
    # Known deviation (EXPERIMENTS.md): the simulator reproduces the mean
    # gap but underestimates Linux's extreme tails — the paper's 177x p99
    # comes from epochal reclaim/writeback storms that this model smooths
    # into steady per-fault costs.
    assert mean_ratio > 3.0
    assert p99_ratio > 1.1, "Aquila's tails must still beat Linux's"

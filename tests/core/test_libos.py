"""The Aquila library OS context: lifecycle, interception, file handling."""

import pytest

from repro.common import units
from repro.common.errors import ConfigError
from repro.core import Aquila, AquilaConfig
from repro.devices.nvme import NvmeDevice
from repro.devices.pmem import PmemDevice
from repro.hw.machine import Machine
from repro.sim.executor import SimThread


def _aquila(io_path="dax", device=None, **config_kwargs):
    if device is None:
        device = (
            PmemDevice(capacity_bytes=128 * units.MIB)
            if io_path in ("dax", "host")
            else NvmeDevice(capacity_bytes=128 * units.MIB)
        )
    config = AquilaConfig(cache_pages=256, io_path=io_path, **config_kwargs)
    return Aquila(Machine(), device, config)


class TestLifecycle:
    def test_enter_once(self):
        aquila = _aquila()
        thread = SimThread(core=0)
        aquila.enter(thread)
        first = thread.clock.now
        aquila.enter(thread)   # idempotent
        assert thread.clock.now == first
        assert aquila.entered

    def test_register_thread_charged_once(self):
        aquila = _aquila()
        main, worker = SimThread(core=0), SimThread(core=1)
        aquila.enter(main)
        aquila.register_thread(worker)
        cost = worker.clock.now
        aquila.register_thread(worker)
        assert worker.clock.now == cost
        assert cost > 0


class TestConfig:
    def test_validation(self):
        with pytest.raises(ConfigError):
            AquilaConfig(cache_pages=0).validate()
        with pytest.raises(ConfigError):
            AquilaConfig(io_path="teleport").validate()
        with pytest.raises(ConfigError):
            AquilaConfig(ept_granule="3M").validate()

    def test_dax_requires_pmem(self):
        with pytest.raises(ConfigError):
            Aquila(
                Machine(),
                NvmeDevice(capacity_bytes=64 * units.MIB),
                AquilaConfig(io_path="dax"),
            )

    def test_scaled_batches_sane(self):
        for cache in (64, 512, 4096, 1 << 21):
            scaled = AquilaConfig(cache_pages=cache).scaled_for_cache()
            scaled.validate()
            assert scaled.eviction_batch <= max(4, cache // 8)
            assert scaled.freelist_core_threshold * 32 <= max(64, cache)


class TestFileHandling:
    def test_open_same_path_same_file(self):
        aquila = _aquila()
        thread = SimThread(core=0)
        aquila.enter(thread)
        a = aquila.open(thread, "/data/x", size_bytes=units.MIB)
        b = aquila.open(thread, "/data/x")
        assert a is b

    def test_spdk_path_uses_blobs(self):
        aquila = _aquila(io_path="spdk")
        thread = SimThread(core=0)
        aquila.enter(thread)
        file = aquila.open(thread, "/data/blob", size_bytes=units.MIB)
        assert aquila.blobstore is not None
        assert file.blob_id in aquila.blobstore.blob_ids()

    def test_dax_path_forwards_metadata(self):
        """Without SPDK, open is a metadata op forwarded to the host."""
        aquila = _aquila(io_path="dax")
        thread = SimThread(core=0)
        aquila.enter(thread)
        before = aquila.forwarded_calls
        aquila.open(thread, "/data/y", size_bytes=units.MIB)
        assert aquila.forwarded_calls == before + 1

    def test_end_to_end_io(self):
        for io_path in ("dax", "spdk", "host"):
            aquila = _aquila(io_path=io_path)
            thread = SimThread(core=0)
            aquila.enter(thread)
            file = aquila.open(thread, "/data/e2e", size_bytes=units.MIB)
            mapping = aquila.mmap(thread, file)
            mapping.store(thread, 12345, b"through " + io_path.encode())
            mapping.msync(thread)
            assert mapping.load(thread, 12345, 8 + len(io_path)) == (
                b"through " + io_path.encode()
            )


class TestSyscallInterception:
    def test_vm_calls_intercepted(self):
        aquila = _aquila()
        thread = SimThread(core=0)
        aquila.enter(thread)
        for name in ("mmap", "munmap", "mremap", "madvise", "mprotect", "msync"):
            assert aquila.syscall(thread, name)

    def test_other_calls_forwarded(self):
        aquila = _aquila()
        thread = SimThread(core=0)
        aquila.enter(thread)
        vmcalls_before = aquila.engine.vmx.vmcalls
        assert not aquila.syscall(thread, "gettimeofday")
        assert aquila.engine.vmx.vmcalls == vmcalls_before + 1

    def test_intercepted_cheaper_than_forwarded(self):
        aquila = _aquila()
        thread = SimThread(core=0)
        aquila.enter(thread)
        t0 = thread.clock.now
        aquila.syscall(thread, "madvise")
        intercepted = thread.clock.now - t0
        t0 = thread.clock.now
        aquila.syscall(thread, "open")
        forwarded = thread.clock.now - t0
        assert intercepted < forwarded / 5


class TestStats:
    def test_cache_stats_shape(self):
        aquila = _aquila()
        thread = SimThread(core=0)
        aquila.enter(thread)
        file = aquila.open(thread, "/f", size_bytes=units.MIB)
        mapping = aquila.mmap(thread, file)
        mapping.load(thread, 0, 8)
        stats = aquila.cache_stats()
        assert stats["resident_pages"] == 1
        assert stats["faults"] == 1
        assert stats["major_faults"] == 1

"""The Linux mmap mmio path (the paper's baseline).

Reproduces the behaviours the paper attributes to Linux:

* ring 3 -> ring 0 **trap** on every fault (1287 cycles, Section 6.4);
* ``mmap_sem`` read lock + VMA rb-tree walk, then the per-inode
  **tree lock** for every page-cache lookup, insert, removal, and dirty
  marking — the single contended lock of Section 6.5;
* **128 KB readahead** around faults ("mmap prefetches 128KB for 1KB
  reads", Section 6.1), disabled by ``MADV_RANDOM``;
* **direct reclaim** in the faulting thread when the cgroup-limited page
  cache is full, including writeback of dirty victims and per-page TLB
  shootdowns;
* **aggressive writeback**: when dirty pages exceed the dirty ratio the
  faulting thread synchronously flushes a batch (the behaviour Tucana and
  kmmap call out as causing latency variability, Section 7.2).
"""

from __future__ import annotations

from typing import List, Optional

from repro.common import constants, units
from repro.common.errors import OutOfMemoryError, SegmentationFault, TransientDeviceError
from repro.devices.pmem import PmemDevice
from repro.cache.base import CachePage
from repro.cache.kernel_cache import KernelPageCache
from repro.fault.crash import CRASH
from repro.fault.retry import with_retries
from repro.hw.machine import Machine
from repro.hw.vmx import ExecutionDomain, VMXCostModel
from repro.mmio.engine import Mapping, MmioEngine
from repro.mmio.files import BackingFile
from repro.mmio.vma import MADV_RANDOM, MADV_SEQUENTIAL, VMA, LinuxVMAStore
from repro.obs import TRACER
from repro.sim.executor import SimThread

#: Linux direct reclaim works in SWAP_CLUSTER_MAX-sized batches.
RECLAIM_BATCH_PAGES = 32

#: Fraction of the page cache allowed to be dirty before the faulting
#: thread is forced into synchronous writeback (vm.dirty_ratio class knob).
DIRTY_RATIO = 0.20


class LinuxMmapEngine(MmioEngine):
    """Linux kernel mmio over a shared kernel page cache."""

    name = "linux-mmap"

    #: Batching-invariant audit (see ``repro.sim.executor``): every Linux
    #: operation reaches shared state behind at least a syscall entry
    #: (msync, mmap-class updates) or the 1287-cycle fault trap.
    sync_preamble_cycles = constants.SYSCALL_CYCLES

    def __init__(
        self,
        machine: Machine,
        cache_pages: int,
        readahead_pages: int = constants.LINUX_READAHEAD_PAGES,
        dirty_ratio: float = DIRTY_RATIO,
    ) -> None:
        super().__init__(
            machine,
            LinuxVMAStore(),
            VMXCostModel(ExecutionDomain.ROOT_RING3),
        )
        self.cache = KernelPageCache(cache_pages)
        self.readahead_pages = readahead_pages
        self.dirty_ratio = dirty_ratio
        self._shootdowns = machine.make_shootdown_controller("linux")
        self.readahead_reads = 0
        self.readahead_aborted = 0
        self.reclaim_runs = 0
        # Pages locked by an in-progress fault (PG_locked): reclaim skips
        # them, so a readahead window can never evict its own pages.
        self._pinned = set()

    # -- engine plumbing ------------------------------------------------------

    def _pool(self):
        return self.cache.pool

    def _cached_page(self, file: BackingFile, file_page: int) -> Optional[CachePage]:
        return self.cache.get_nocost(file, file_page)

    def _shootdown(self, thread: SimThread, vpns: List[int]) -> None:
        self._shootdowns.shootdown(thread.clock, thread.core, vpns)

    def _charge_range_update(self, thread: SimThread) -> None:
        self.vmx.syscall(thread.clock, "syscall.mmap")

    def _pages_of_file(self, file_id: int):
        return self.cache.pages_of_file(file_id)

    def _drop_page(self, thread: SimThread, page: CachePage) -> None:
        self.cache.remove(thread.clock, thread.tid, page)

    # -- fault handling ---------------------------------------------------------

    def _fault(self, thread: SimThread, vma: VMA, vpn: int, is_write: bool) -> int:
        clock = thread.clock
        self.vmx.fault_entry(clock)
        # No sub-spans around the vma/cache lookups: they are cheap, run on
        # every fault, and their cycles stay visible as charge categories
        # on the enclosing "fault" span.
        checked = self.vmas.lookup(clock, vpn)   # mmap_sem + rb-tree walk
        if checked is None or checked.vma_id != vma.vma_id:
            raise SegmentationFault(vpn << units.PAGE_SHIFT)
        file = vma.file
        file_page = vma.file_page_of(vpn)

        page = self.cache.lookup(clock, thread.tid, file, file_page)
        if page is None:
            self.major_faults += 1
            page = self._read_in(thread, vma, file, file_page)
        else:
            self.minor_faults += 1

        pte = self.page_table.install(vpn, page.frame, writable=False)
        page.mapped_vpns.add(vpn)
        clock.charge("fault.pte_install", constants.LINUX_PTE_INSTALL_CYCLES)
        self.machine.tlb_of(thread)._insert(vpn)

        if is_write:
            return self._write_protect_fault(thread, vma, vpn, pte, in_fault=True)
        return page.frame

    def _write_protect_fault(
        self, thread: SimThread, vma: VMA, vpn: int, pte, in_fault: bool = False
    ) -> int:
        clock = thread.clock
        if not in_fault:
            # A separate protection fault: full trap + VMA check again.
            self.vmx.fault_entry(clock)
            self.vmas.lookup(clock, vpn)
        file_page = vma.file_page_of(vpn)
        page = self.cache.get_nocost(vma.file, file_page)
        if page is None:
            raise SegmentationFault(vpn << units.PAGE_SHIFT, "dirty fault on evicted page")
        self.cache.mark_dirty(clock, thread.tid, page)   # takes the tree lock
        pte.writable = True
        pte.dirty = True
        clock.charge("fault.pte_install", constants.LINUX_PTE_INSTALL_CYCLES // 2)
        # Background writeback must skip the page being dirtied right now:
        # its store has not landed in the frame yet (the fault returns
        # first), so flushing it here would persist stale bytes and mark
        # it clean — losing the write on a later eviction.
        self._maybe_writeback(thread, exclude_key=page.key)
        return page.frame

    # -- page-cache fill (miss path) ---------------------------------------------

    def _read_in(
        self, thread: SimThread, vma: VMA, file: BackingFile, file_page: int
    ) -> CachePage:
        """Read the faulting page plus its readahead window.

        Mirrors the kernel's ordering: pages are added to the page-cache
        tree first (tree lock held only for the insert), then the device
        reads fill them — so the tree lock is *not* held across I/O.
        """
        clock = thread.clock
        window = self._readahead_window(vma, file, file_page)

        # Phase 1: allocate frames and install tree entries.  Each fresh
        # page is pinned (PG_locked) until its data arrives so concurrent
        # reclaim cannot steal it.
        fresh: List[tuple] = []   # (page_index, frame)
        with TRACER.span("fault.alloc", clock):
            for page_index in range(window[0], window[1]):
                if self.cache.get_nocost(file, page_index) is not None:
                    continue
                frame = self._allocate_with_reclaim(thread)
                self.cache.insert(clock, thread.tid, file, page_index, frame)
                self._pinned.add((file.file_id, page_index))
                fresh.append((page_index, frame))
            # pins released after phase 2 below

        # Phase 2: read device data into the new frames, merging
        # device-contiguous runs; only the run containing the faulting
        # page blocks, the rest is readahead.
        run: List[tuple] = []

        def flush_run() -> None:
            if not run:
                return
            start_page = run[0][0]
            nbytes = len(run) * units.PAGE_SIZE
            offset = file.device_offset(start_page)
            blocking = any(page_index == file_page for page_index, _ in run)
            if blocking:
                data = with_retries(
                    clock,
                    lambda: file.device.submit(
                        clock, offset, nbytes, is_write=False,
                        wait_category="idle.io.fault",
                    ),
                    "fault.io",
                    self.retry_policy,
                )
                if not isinstance(file.device, PmemDevice):
                    # Interrupt-driven completion: IRQ + wakeup + reschedule.
                    clock.charge("fault.io.irq", constants.HOST_NVME_COMPLETION_CYCLES)
            else:
                try:
                    file.device.submit_async(clock, offset, nbytes, is_write=False)
                except TransientDeviceError:
                    # Speculative readahead degrades instead of retrying:
                    # drop the fresh pages so nobody sees unfilled frames.
                    for page_index, _ in run:
                        page = self.cache.get_nocost(file, page_index)
                        if page is not None:
                            self._pinned.discard((file.file_id, page_index))
                            self.cache.remove(clock, thread.tid, page)
                    self.readahead_aborted += len(run)
                    run.clear()
                    return
                data = file.device.store.read(offset, nbytes)
                self.readahead_reads += len(run)
            for index, (_, frame) in enumerate(run):
                self.cache.pool.write(
                    frame, data[index * units.PAGE_SIZE : (index + 1) * units.PAGE_SIZE]
                )
            run.clear()

        with TRACER.span("fault.io", clock):
            for page_index, frame in fresh:
                if run and file.device_offset(page_index) != file.device_offset(
                    run[-1][0]
                ) + units.PAGE_SIZE:
                    flush_run()
                run.append((page_index, frame))
            flush_run()
        for page_index, _ in fresh:
            self._pinned.discard((file.file_id, page_index))

        target = self.cache.get_nocost(file, file_page)
        if target is None:
            raise OutOfMemoryError("failed to populate faulting page")
        return target

    def _readahead_window(self, vma: VMA, file: BackingFile, file_page: int):
        if vma.advice == MADV_RANDOM:
            ra = 1
        elif vma.advice == MADV_SEQUENTIAL:
            ra = self.readahead_pages * 2
        else:
            ra = self.readahead_pages
        # Readahead cannot outgrow memory: clamp to a quarter of the cache
        # (the kernel similarly backs off under memory pressure).
        ra = max(1, min(ra, self.cache.capacity_pages // 4))
        # Read-around: center the window on the fault, as fault-around does.
        start = max(0, file_page - ra // 2)
        end = min(file.size_pages, start + ra)
        end = max(end, file_page + 1)
        # Clip to the mapped range of the VMA.
        vma_first = vma.file_start_page
        vma_last = vma.file_start_page + vma.num_pages
        return (max(start, vma_first), min(end, vma_last))

    # -- reclaim and writeback ---------------------------------------------------

    def _allocate_with_reclaim(self, thread: SimThread) -> int:
        frame = self.cache.allocate_frame(thread.clock)
        if frame is not None:
            return frame
        self._direct_reclaim(thread)
        frame = self.cache.allocate_frame(thread.clock)
        if frame is None:
            raise OutOfMemoryError("reclaim failed to free any page")
        return frame

    def _direct_reclaim(self, thread: SimThread) -> None:
        """Evict a batch of cold pages in the faulting thread's context.

        Busy mappings are skipped (trylock), as ``shrink_page_list`` does;
        a forced single-page eviction guarantees progress if every victim
        group was busy.
        """
        clock = thread.clock
        self.reclaim_runs += 1
        with TRACER.span("reclaim", clock):
            self._reclaim_batch(thread)

    def _reclaim_batch(self, thread: SimThread) -> None:
        clock = thread.clock
        victims = [
            page
            for page in self.cache.pick_victims(RECLAIM_BATCH_PAGES * 2)
            if page.key not in self._pinned
        ]
        if not victims:
            raise OutOfMemoryError("page cache empty but allocation failed")
        victims = victims[:RECLAIM_BATCH_PAGES] if len(
            victims
        ) > RECLAIM_BATCH_PAGES else victims
        clock.charge(
            "reclaim.scan", constants.LINUX_RECLAIM_PER_PAGE_CYCLES * len(victims)
        )
        dirty = sorted(
            (v for v in victims if v.dirty), key=lambda page: page.device_offset
        )
        if dirty:
            self._write_back_pages(thread, dirty, sync=True, category="reclaim.writeback")
            # Victims the trylock pass skips stay resident: they must be
            # re-protected like any cleaned page.
            self._mark_clean_and_protect(thread, dirty)
        CRASH.point(f"{self.name}.reclaim")
        removed = self.cache.remove_batch(clock, thread.tid, victims)
        if not removed:
            # Every mapping was busy: force one page out to make progress.
            forced = victims[0]
            self.cache.remove(clock, thread.tid, forced)
            removed = [forced]
        vpns: List[int] = []
        for page in removed:
            for vpn in page.mapped_vpns:
                self.page_table.remove(vpn)
                vpns.append(vpn)
            page.mapped_vpns.clear()
        self._shootdown(thread, vpns)

    def _maybe_writeback(self, thread: SimThread, exclude_key=None) -> None:
        """Aggressive background writeback charged to the dirtying thread."""
        limit = int(self.cache.capacity_pages * self.dirty_ratio)
        if self.cache.dirty_pages() <= limit:
            return
        with TRACER.span("writeback.bg", thread.clock):
            dirty = sorted(
                (
                    page
                    for page in self._all_pages()
                    if page.dirty and page.key != exclude_key
                ),
                key=lambda page: page.device_offset,
            )[: constants.LINUX_WRITEBACK_BATCH_PAGES]
            self._write_back_pages(thread, dirty, sync=False, category="writeback.bg")
            self._mark_clean_and_protect(thread, dirty)

    def _mark_clean_and_protect(self, thread: SimThread, pages) -> None:
        """Clean written-back pages and write-protect their PTEs.

        The kernel's ``clear_page_dirty_for_io``: a page going clean must
        be re-protected so the *next* store takes a protection fault and
        re-marks it dirty — otherwise later writes are lost on eviction.
        """
        vpns: List[int] = []
        for page in pages:
            page.dirty = False
            for vpn in page.mapped_vpns:
                pte = self.page_table.lookup(vpn)
                if pte is not None and pte.writable:
                    pte.writable = False
                    pte.dirty = False
                    vpns.append(vpn)
        self._shootdown(thread, vpns)

    def _all_pages(self):
        return self.cache.pages()

    def msync(self, thread: SimThread, mapping: Mapping) -> int:
        """Synchronously flush the mapping's dirty pages."""
        with TRACER.span("msync", thread.clock):
            self.vmx.syscall(thread.clock, "syscall.msync")
            file = mapping.vma.file
            first = mapping.vma.file_start_page
            last = first + mapping.vma.num_pages
            dirty = sorted(
                (
                    page
                    for page in self._all_pages()
                    if page.dirty
                    and page.file.file_id == file.file_id
                    and first <= page.file_page < last
                ),
                key=lambda page: page.device_offset,
            )
            written = self._write_back_pages(
                thread, dirty, sync=True, category="writeback.msync"
            )
            self._mark_clean_and_protect(thread, dirty)
            # Ordering: background writeback (sync=False) marked its pages
            # clean at submission, so they are invisible to the dirty scan
            # above — but their device completions may still be pending.
            # msync must not report durability before they land.
            self._drain_inflight(thread, file)
            CRASH.point(f"{self.name}.msync")
            return written

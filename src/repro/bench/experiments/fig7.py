"""Figure 7: RocksDB read-path cycle breakdown (paper Section 6.3).

YCSB-C random reads with the dataset 4x the cache, comparing RocksDB over
explicit I/O (user-space cache + direct pread) against RocksDB over
Aquila.  The paper's numbers (cycles per get):

===========  =========  ==============  ========  =======
Mode         device IO  cache mgmt      get       total
===========  =========  ==============  ========  =======
explicit     4.8 K      45.2 K          15.3 K    65.4 K
Aquila       3.9 K      17.5 K          18.5 K    ~40 K
===========  =========  ==============  ========  =======

Headline: Aquila needs 2.58x fewer cycles for cache management and
delivers ~40% higher throughput.
"""

from __future__ import annotations

from typing import Dict

from repro.bench.setups import make_rocksdb
from repro.sim.clock import Breakdown
from repro.sim.executor import Executor, SimThread
from repro.workloads.ycsb import YCSBConfig, YCSBDriver

#: Breakdown prefixes per Figure 7 section, for each mode.
DEVICE_PREFIXES = ["idle.io", "fault.io", "io.dax", "writeback"]
CACHE_MGMT_PREFIXES = [
    "ucache",
    "io.syscall",
    "fault",
    "cache",
    "tlb",
    "evict",
    "reclaim",
    "idle.lock",
    "idle.atomic",
    "atomic",
    "lock",
    "interference",
    "idle.membw",
]
GET_PREFIXES = ["app.get"]


def _section_totals(breakdown: Breakdown, gets: int) -> Dict[str, float]:
    def total(prefixes) -> float:
        return sum(breakdown.prefix_total(p) for p in prefixes)

    device = total(DEVICE_PREFIXES)
    # fault.io is under both "fault" and the device list; subtract overlap.
    cache = total(CACHE_MGMT_PREFIXES) - breakdown.prefix_total("fault.io")
    get = total(GET_PREFIXES)
    return {
        "device_io": device / gets,
        "cache_mgmt": cache / gets,
        "get": get / gets,
        "total": (device + cache + get) / gets,
    }


def run_mode(
    mode: str,
    record_count: int = 16384,
    operations: int = 2000,
    cache_pages: int = 1024,
    device_kind: str = "pmem",
) -> Dict:
    """Load, compact, then measure a YCSB-C read phase for one mode."""
    db, stack = make_rocksdb(
        mode,
        device_kind=device_kind,
        cache_pages=cache_pages,
        capacity_bytes=1 << 30,
    )
    loader = SimThread(core=0)
    config = YCSBConfig(
        workload="C",
        record_count=record_count,
        operation_count=operations,
        distribution="uniform",
    )
    driver = YCSBDriver(db, config)
    driver.load(loader)
    db.flush(loader)
    db.compact_all(loader)

    runner = SimThread(core=0)
    # Continue simulated time from the load phase: lock and device
    # timelines are already at the loader's clock.
    runner.clock.now = loader.clock.now
    executor = Executor()
    executor.add(runner, driver.run_workload(runner, operations))
    phase_start = runner.clock.now
    result = executor.run()
    elapsed = result.makespan_cycles - phase_start

    sections = _section_totals(runner.clock.breakdown, operations)
    latencies = result.merged_latencies()
    from repro.sim.stats import throughput_ops_per_sec

    return {
        "mode": mode,
        "sections": sections,
        "throughput": throughput_ops_per_sec(result.total_ops, elapsed),
        "mean_latency_cycles": latencies.mean(),
        "p999_cycles": latencies.p999(),
        "not_found": driver.stats.not_found,
        "db_stats": db.stats(),
    }


def run_fig7(
    record_count: int = 16384,
    operations: int = 2000,
    cache_pages: int = 1024,
) -> Dict[str, Dict]:
    """Both modes of Figure 7."""
    direct = run_mode("direct", record_count, operations, cache_pages)
    aquila = run_mode("aquila", record_count, operations, cache_pages)
    return {
        "direct": direct,
        "aquila": aquila,
        "cache_mgmt_ratio": direct["sections"]["cache_mgmt"]
        / max(1.0, aquila["sections"]["cache_mgmt"]),
        "throughput_gain": aquila["throughput"] / max(1.0, direct["throughput"]),
    }

"""SPDK Blobstore: namespace, allocation, translation, I/O."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common import units
from repro.common.errors import BlobNotFoundError, OutOfSpaceError
from repro.devices.blobstore import CLUSTER_SIZE, Blobstore, FileBlobNamespace
from repro.devices.nvme import NvmeDevice
from repro.sim.clock import CycleClock


def _store(capacity=64 * units.MIB):
    return Blobstore(NvmeDevice(capacity_bytes=capacity))


class TestBlobLifecycle:
    def test_create_resize_delete(self):
        store = _store()
        blob_id = store.create(size_bytes=CLUSTER_SIZE)
        assert store.get(blob_id).size_bytes == CLUSTER_SIZE
        store.resize(blob_id, 3 * CLUSTER_SIZE)
        assert store.get(blob_id).size_bytes == 3 * CLUSTER_SIZE
        store.resize(blob_id, CLUSTER_SIZE)   # shrink
        assert store.get(blob_id).size_bytes == CLUSTER_SIZE
        store.delete(blob_id)
        with pytest.raises(BlobNotFoundError):
            store.get(blob_id)

    def test_unique_ids(self):
        store = _store()
        ids = {store.create() for _ in range(10)}
        assert len(ids) == 10

    def test_deleted_clusters_reused(self):
        store = _store(capacity=4 * CLUSTER_SIZE)
        a = store.create(4 * CLUSTER_SIZE)
        store.delete(a)
        b = store.create(4 * CLUSTER_SIZE)   # would fail without reuse
        assert store.get(b).size_bytes == 4 * CLUSTER_SIZE

    def test_out_of_space(self):
        store = _store(capacity=2 * CLUSTER_SIZE)
        with pytest.raises(OutOfSpaceError):
            store.create(3 * CLUSTER_SIZE)

    def test_xattrs(self):
        store = _store()
        blob_id = store.create()
        store.set_xattr(blob_id, "name", b"/data/file")
        assert store.get_xattr(blob_id, "name") == b"/data/file"
        with pytest.raises(KeyError):
            store.get_xattr(blob_id, "missing")

    def test_free_bytes_accounting(self):
        store = _store(capacity=8 * CLUSTER_SIZE)
        before = store.free_bytes
        store.create(2 * CLUSTER_SIZE)
        assert store.free_bytes == before - 2 * CLUSTER_SIZE


class TestBlobIO:
    def test_roundtrip(self):
        store = _store()
        blob_id = store.create(2 * CLUSTER_SIZE)
        clock = CycleClock()
        store.write(clock, blob_id, 100, b"hello blob")
        assert store.read(clock, blob_id, 100, 10) == b"hello blob"

    def test_cluster_spanning_io(self):
        store = _store()
        blob_id = store.create(2 * CLUSTER_SIZE)
        clock = CycleClock()
        data = bytes(range(256)) * 32   # 8 KB across the cluster boundary
        offset = CLUSTER_SIZE - 4096
        store.write(clock, blob_id, offset, data)
        assert store.read(clock, blob_id, offset, len(data)) == data

    def test_write_grows_blob(self):
        store = _store()
        blob_id = store.create(0)
        clock = CycleClock()
        store.write(clock, blob_id, 0, b"grow me")
        assert store.get(blob_id).size_bytes >= 7

    def test_translation_beyond_blob_rejected(self):
        store = _store()
        blob_id = store.create(CLUSTER_SIZE)
        with pytest.raises(OutOfSpaceError):
            store.device_offset(blob_id, CLUSTER_SIZE + 1)

    def test_clusters_need_not_be_contiguous(self):
        store = _store()
        a = store.create(CLUSTER_SIZE)
        b = store.create(CLUSTER_SIZE)
        store.resize(a, 2 * CLUSTER_SIZE)   # a's second cluster is after b's
        clock = CycleClock()
        store.write(clock, a, CLUSTER_SIZE + 5, b"frag")
        store.write(clock, b, 5, b"other")
        assert store.read(clock, a, CLUSTER_SIZE + 5, 4) == b"frag"
        assert store.read(clock, b, 5, 5) == b"other"

    @settings(max_examples=20)
    @given(st.integers(min_value=0, max_value=CLUSTER_SIZE * 2 - 64),
           st.binary(min_size=1, max_size=64))
    def test_random_offsets_roundtrip(self, offset, data):
        store = _store()
        blob_id = store.create(2 * CLUSTER_SIZE)
        clock = CycleClock()
        store.write(clock, blob_id, offset, data)
        assert store.read(clock, blob_id, offset, len(data)) == data


class TestFileBlobNamespace:
    def test_open_creates_once(self):
        store = _store()
        ns = FileBlobNamespace(store)
        a = ns.open("/data/x", size_bytes=CLUSTER_SIZE)
        b = ns.open("/data/x")
        assert a == b
        assert ns.paths() == ["/data/x"]

    def test_open_no_create(self):
        ns = FileBlobNamespace(_store())
        with pytest.raises(BlobNotFoundError):
            ns.open("/missing", create=False)

    def test_name_xattr_set(self):
        store = _store()
        ns = FileBlobNamespace(store)
        blob_id = ns.open("/data/y")
        assert store.get_xattr(blob_id, "name") == b"/data/y"

    def test_unlink(self):
        store = _store()
        ns = FileBlobNamespace(store)
        blob_id = ns.open("/data/z", size_bytes=CLUSTER_SIZE)
        ns.unlink("/data/z")
        with pytest.raises(BlobNotFoundError):
            store.get(blob_id)
        with pytest.raises(BlobNotFoundError):
            ns.unlink("/data/z")

"""File-resident B+tree (Kreon's per-level index)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.setups import make_aquila_stack
from repro.common import units
from repro.kv.btree import FileBTree, PageAllocator, node_capacity
from repro.sim.executor import SimThread


def _mapping(pages=512):
    stack = make_aquila_stack("pmem", cache_pages=1024, capacity_bytes=128 * units.MIB)
    file = stack.allocator.create("vol", pages * units.PAGE_SIZE)
    thread = SimThread(core=0)
    return stack, stack.engine.mmap(thread, file), thread


def _entries(n):
    return [(b"key-%08d" % i, i * 7) for i in range(n)]


class TestPageAllocator:
    def test_allocates_from_top_down(self):
        allocator = PageAllocator(100)
        assert allocator.allocate() == 99
        assert allocator.allocate() == 98
        assert allocator.low_water_page == 98


class TestBuildAndLookup:
    def test_empty(self):
        _, mapping, thread = _mapping()
        tree = FileBTree.build(thread, mapping, PageAllocator(512), [])
        assert tree.lookup(thread, b"any") is None
        assert tree.entry_count == 0

    def test_lookup_every_key(self):
        _, mapping, thread = _mapping()
        entries = _entries(1000)
        tree = FileBTree.build(thread, mapping, PageAllocator(512), entries)
        for key, pointer in entries:
            assert tree.lookup(thread, key) == pointer

    def test_lookup_missing(self):
        _, mapping, thread = _mapping()
        tree = FileBTree.build(thread, mapping, PageAllocator(512), _entries(100))
        assert tree.lookup(thread, b"key-99999999") is None
        assert tree.lookup(thread, b"aaa") is None
        assert tree.lookup(thread, b"key-00000050x") is None

    def test_multi_level_tree(self):
        _, mapping, thread = _mapping()
        entries = _entries(2000)
        tree = FileBTree.build(thread, mapping, PageAllocator(512), entries, fanout=16)
        assert tree.height >= 3
        assert tree.lookup(thread, b"key-00001234") == 1234 * 7

    def test_node_reads_counted(self):
        """Every lookup walks height nodes through the mapping (mmio!)."""
        _, mapping, thread = _mapping()
        tree = FileBTree.build(thread, mapping, PageAllocator(512), _entries(500), fanout=8)
        before = tree.node_reads
        tree.lookup(thread, b"key-00000100")
        assert tree.node_reads - before == tree.height

    def test_items_in_order(self):
        _, mapping, thread = _mapping()
        entries = _entries(300)
        tree = FileBTree.build(thread, mapping, PageAllocator(512), entries)
        assert list(tree.items(thread)) == entries

    def test_scan_from(self):
        _, mapping, thread = _mapping()
        tree = FileBTree.build(thread, mapping, PageAllocator(512), _entries(100))
        result = tree.scan_from(thread, b"key-00000050", 5)
        assert [k for k, _ in result] == [b"key-%08d" % i for i in range(50, 55)]

    def test_node_capacity(self):
        assert node_capacity(16) > 100   # many short keys per 4K node
        assert node_capacity(1000) >= 4


@settings(max_examples=15, deadline=None)
@given(st.sets(st.binary(min_size=1, max_size=20), min_size=1, max_size=120))
def test_model_equivalence(keys):
    _, mapping, thread = _mapping()
    entries = sorted((k, i) for i, k in enumerate(sorted(keys)))
    tree = FileBTree.build(thread, mapping, PageAllocator(512), entries, fanout=8)
    model = dict(entries)
    for key, pointer in model.items():
        assert tree.lookup(thread, key) == pointer
    for probe in (b"", b"\xff" * 21, b"probe"):
        assert tree.lookup(thread, probe) == model.get(probe)

"""Figure 9: Kreon over kmmap vs Kreon over Aquila (paper Section 6.4).

All six YCSB workloads, single thread, dataset 2x the DRAM cache
(paper: 16 GB records / 8 GB cache).  Paper claims:

* NVMe: ~1.02x throughput (device-bound), 1.29x lower average latency,
  3.78x lower p99.9;
* pmem: 1.22x throughput, 1.43x lower average latency, 13.72x lower p99.9.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.bench.setups import make_kreon
from repro.common import units
from repro.sim.executor import Executor, SimThread
from repro.sim.stats import throughput_ops_per_sec
from repro.workloads.ycsb import YCSBConfig, YCSBDriver

ALL_WORKLOADS = ["A", "B", "C", "D", "E", "F"]


def run_cell(
    engine_kind: str,
    device_kind: str,
    workload: str,
    record_count: int = 8192,
    cache_pages: int = 1024,
    operations: int = 1500,
) -> Dict:
    """One (engine, device, workload) cell of Figure 9."""
    store, stack, setup_thread = make_kreon(
        engine_kind,
        device_kind=device_kind,
        cache_pages=cache_pages,
        volume_bytes=64 * units.MIB,
        capacity_bytes=256 * units.MIB,
        l0_max_entries=1024,
    )
    config = YCSBConfig(
        workload=workload,
        record_count=record_count,
        operation_count=operations,
        value_bytes=1024,
    )
    driver = YCSBDriver(store, config)
    driver.load(setup_thread)
    store.spill(setup_thread)
    store.msync(setup_thread)

    runner = SimThread(core=0)
    runner.clock.now = setup_thread.clock.now
    phase_start = runner.clock.now
    executor = Executor()
    executor.add(runner, driver.run_workload(runner, operations))
    result = executor.run()
    latencies = result.merged_latencies()
    return {
        "engine": engine_kind,
        "device": device_kind,
        "workload": workload,
        "throughput": throughput_ops_per_sec(
            result.total_ops, result.makespan_cycles - phase_start
        ),
        "mean_latency_cycles": latencies.mean(),
        "p999_cycles": latencies.p999(),
        "not_found": driver.stats.not_found,
        "store_stats": store.stats(),
    }


def run_fig9(
    device_kinds: Optional[List[str]] = None,
    workloads: Optional[List[str]] = None,
    record_count: int = 8192,
    cache_pages: int = 1024,
    operations: int = 1500,
) -> List[Dict]:
    """kmmap vs Aquila cells across devices and workloads."""
    rows = []
    for device_kind in device_kinds if device_kinds is not None else ["nvme", "pmem"]:
        for workload in workloads if workloads is not None else ALL_WORKLOADS:
            kmmap = run_cell(
                "kmmap", device_kind, workload, record_count, cache_pages, operations
            )
            aquila = run_cell(
                "aquila", device_kind, workload, record_count, cache_pages, operations
            )
            rows.append(
                {
                    "device": device_kind,
                    "workload": workload,
                    "kmmap": kmmap,
                    "aquila": aquila,
                    "throughput_ratio": aquila["throughput"]
                    / max(1.0, kmmap["throughput"]),
                    "avg_latency_ratio": kmmap["mean_latency_cycles"]
                    / max(1.0, aquila["mean_latency_cycles"]),
                    "p999_ratio": kmmap["p999_cycles"]
                    / max(1.0, aquila["p999_cycles"]),
                }
            )
    return rows


def enumerate_cells(scale: str = "figure") -> List[Dict]:
    """Every Figure 9 cell as an independent sweep work unit.

    Grid: device (nvme, pmem) x YCSB workload (A-F) x engine (kmmap,
    aquila).  Ratios are joins computed by the report, so each engine run
    is its own restartable unit.
    """
    if scale == "figure":
        records, cache_pages, operations = 8192, 1024, 1500
        workloads = ALL_WORKLOADS
    else:
        records, cache_pages, operations = 2048, 256, 400
        workloads = ["A", "C"]
    cells = []
    for device in ("nvme", "pmem"):
        for workload in workloads:
            for engine in ("kmmap", "aquila"):
                cells.append(
                    {
                        "cell_id": f"fig9/{device}/{workload}/{engine}",
                        "figure": "fig9",
                        "params": {
                            "engine_kind": engine,
                            "device_kind": device,
                            "workload": workload,
                            "record_count": records,
                            "cache_pages": cache_pages,
                            "operations": operations,
                        },
                    }
                )
    return cells


def run_sweep_cell(params: Dict) -> Dict:
    """Run one enumerated Figure 9 cell; the payload row is its state."""
    row = run_cell(
        params["engine_kind"],
        params["device_kind"],
        params["workload"],
        params["record_count"],
        params["cache_pages"],
        params["operations"],
    )
    return {"payload": row, "state": row}

"""The paper's custom multithreaded microbenchmark (Section 5).

"It uses a configurable number of threads that issue load/store
instructions at randomly generated offsets within the memory mapped
region.  We ensure that each load/store results in a page fault."

Two access regimes cover the paper's two dataset cases:

* **touch-once** (dataset fits in memory, Figures 8(a), 10(a)): each
  thread touches a random permutation of its share of the pages, so every
  access is a compulsory (cold) fault and nothing is ever evicted;
* **uniform random** (dataset larger than memory, Figures 8(b), 10(b)):
  accesses are uniform over a region much larger than the cache, so
  nearly every access misses and evictions run in the common path.

Mappings use ``MADV_RANDOM``, matching the guaranteed-fault setup (no
readahead pollution in either engine).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, Optional, Tuple

try:
    import numpy as _np
except ImportError:          # plans fall back to pure-Python, same values
    _np = None

from repro.common import units
from repro.mmio.engine import Mapping
from repro.mmio.vma import MADV_RANDOM
from repro.obs import TRACER
from repro.sim.executor import SYNC_HORIZON_CYCLES, Executor, RunResult, SimThread
from repro.sim.rand import counter_draws, derive_seed

#: All microbenchmark stores write this constant payload.  This is part of
#: the batching invariant: concurrent hit-stores to the same page commute
#: only because they store identical bytes (see ``repro.sim.executor``).
WRITE_DATA = b"\xA5" * 8


@dataclass
class MicrobenchConfig:
    """Parameters of one microbenchmark run."""

    num_threads: int = 1
    accesses_per_thread: int = 1000
    write_fraction: float = 0.0
    touch_once: bool = True
    shared_file: bool = True
    seed: int = 7
    #: Run the executor in epoch-batched mode (cycle-identical to the
    #: unbatched scheduler — proven by tests/conformance — but much faster
    #: on cache-hit-heavy cells).
    batched: bool = True


#: Tags naming the independent counter streams of one thread's plan.
_TAG_PAGE, _TAG_OFFSET, _TAG_WRITE = 1, 2, 3


def _mod(draws, span: int):
    """``draws % span`` as a list of ints (numpy array or list input)."""
    if _np is not None and not isinstance(draws, list):
        return (draws % span).tolist()
    return [d % span for d in draws]


def _op_plan(
    thread: SimThread,
    mapping: Mapping,
    accesses: int,
    write_fraction: float,
    touch_once: bool,
    seed: int,
    partition_index: int,
    partition_count: int,
) -> Tuple[list, list, list]:
    """Precompute one thread's access plan as three parallel lists:
    ``(pages, in_page_offsets, is_write_flags)``.

    Draws come from per-thread counter streams (``repro.sim.rand.mix64``),
    generated in bulk — vectorized when numpy is present, pure Python
    otherwise, bit-identical values either way.  The modulo page/offset
    picks carry a uniformity skew below 2^-50 for page-scale spans,
    invisible at simulation scale; the plan is a pure function of
    ``(seed, thread.tid)``.

    When ``touch_once`` asks for more accesses than the thread's partition
    holds, the plan touches every owned page once and then re-accesses
    random owned pages — pure cache hits whenever the dataset fits in
    memory, which is what the batched fast path accelerates.
    """
    base = derive_seed(seed, f"mb-{thread.tid}")
    total_pages = mapping.size_bytes >> units.PAGE_SHIFT
    if touch_once:
        # Each thread owns an interleaved share of the pages, permuted.
        pages = list(range(partition_index, total_pages, partition_count))
        random.Random(base).shuffle(pages)
        if accesses <= len(pages) or not pages:
            sequence = pages[:accesses]
        else:
            picks = _mod(
                counter_draws(base, _TAG_PAGE, accesses - len(pages)),
                len(pages),
            )
            if _np is not None:
                sequence = pages + _np.asarray(pages)[picks].tolist()
            else:
                sequence = pages + [pages[i] for i in picks]
    else:
        sequence = _mod(counter_draws(base, _TAG_PAGE, accesses), total_pages)
    offsets = _mod(
        counter_draws(base, _TAG_OFFSET, accesses), units.PAGE_SIZE - 8
    )
    if write_fraction <= 0.0:
        writes = [False] * accesses
    elif write_fraction >= 1.0:
        writes = [True] * accesses
    else:
        # draw/2^64 < write_fraction, computed in integers (exact).
        threshold = min(int(write_fraction * 2.0 ** 64), (1 << 64) - 1)
        draws = counter_draws(base, _TAG_WRITE, accesses)
        if _np is not None and not isinstance(draws, list):
            writes = (draws < threshold).tolist()
        else:
            writes = [d < threshold for d in draws]
    return sequence, offsets, writes


def access_workload(
    thread: SimThread,
    mapping: Mapping,
    accesses: int,
    write_fraction: float,
    touch_once: bool,
    seed: int,
    partition_index: int = 0,
    partition_count: int = 1,
) -> Iterator[None]:
    """One thread's access stream over ``mapping``.

    In unbatched mode (``thread.run_horizon is None``) every operation goes
    through the per-op load/store path and yields to the scheduler.  In
    batched mode the executor publishes a run-ahead horizon before each
    step, and the workload hands the engine's ``hit_run`` fast path a slice
    of its precomputed plan: consecutive pure cache hits retire in one step,
    and the first op needing the fault path (or crossing the horizon) falls
    back to the per-op slow path below — charge-for-charge identical.
    """
    plan = _op_plan(
        thread,
        mapping,
        accesses,
        write_fraction,
        touch_once,
        seed,
        partition_index,
        partition_count,
    )
    pages_seq, offsets_seq, writes_seq = plan
    engine = mapping.engine
    index = 0
    total = len(pages_seq)
    while index < total:
        horizon = thread.run_horizon
        if horizon is not None:
            consumed = engine.hit_run(thread, mapping, plan, index, horizon, WRITE_DATA)
            if consumed:
                index += consumed
                yield
                continue
        is_write = writes_seq[index]
        start = thread.clock.now
        offset = pages_seq[index] * units.PAGE_SIZE + offsets_seq[index]
        with TRACER.span("op.access", thread.clock):
            if is_write:
                mapping.store(thread, offset, WRITE_DATA)
            else:
                mapping.load(thread, offset, 8)
        thread.record_op(start)
        index += 1
        yield


def run_microbench(
    engine,
    files,
    config: MicrobenchConfig,
) -> RunResult:
    """Run the microbenchmark over an engine.

    ``files`` is either one backing file (shared) or a list with one file
    per thread (private).  Returns the executor result; per-op latencies
    land in each thread's recorder.
    """
    if config.shared_file:
        file_list = [files if not isinstance(files, list) else files[0]] * config.num_threads
    else:
        file_list = list(files)
        if len(file_list) != config.num_threads:
            raise ValueError("need one file per thread for the private-file mode")

    executor = Executor(
        epoch_cycles=SYNC_HORIZON_CYCLES if config.batched else None,
        quiescent=engine.run_ahead_unbounded_ok if config.batched else None,
    )
    threads = []
    shared_mapping: Optional[Mapping] = None
    for index in range(config.num_threads):
        thread = SimThread(core=index % engine.machine.topology.num_hw_threads)
        threads.append(thread)
        if config.shared_file:
            if shared_mapping is None:
                shared_mapping = engine.mmap(thread, file_list[0])
                shared_mapping.madvise(thread, MADV_RANDOM)
            mapping = shared_mapping
            part_index, part_count = index, config.num_threads
        else:
            mapping = engine.mmap(thread, file_list[index])
            mapping.madvise(thread, MADV_RANDOM)
            part_index, part_count = 0, 1
        executor.add(
            thread,
            access_workload(
                thread,
                mapping,
                config.accesses_per_thread,
                config.write_fraction,
                config.touch_once,
                config.seed,
                partition_index=part_index,
                partition_count=part_count,
            ),
        )
    engine.machine.apply_smt_penalty(threads)
    return executor.run()

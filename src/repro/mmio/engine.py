"""The mmio engine interface and shared access protocol.

An *engine* plays the role of one process's memory-mapped I/O stack: a
page table, a VMA store, a DRAM cache, and a fault protocol.  Engines
share the mmap-compatible surface (``mmap``/``munmap``/``madvise``/
``msync``/``load``/``store``), so applications (RocksDB, Kreon, Ligra, the
microbenchmark) run unmodified on any of them — the paper's
minimal-modification property.

The access fast path is the same for every engine, because it is the
hardware's: a mapped page costs a load/store plus at most a TLB refill.
Engines differ only in what a *fault* costs and how the cache behaves.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Tuple

from repro.common import constants, units
from repro.common.errors import ProtectionFault, SegmentationFault
from repro.devices.block import BlockDevice
from repro.fault.crash import CRASH
from repro.fault.retry import RetryPolicy, with_retries
from repro.hw.machine import Machine
from repro.hw.page_table import PageTable
from repro.hw.vmx import VMXCostModel
from repro.cache.base import CachePage
from repro.mmio.files import BackingFile
from repro.mmio.vma import (
    MADV_DONTNEED,
    MADV_NORMAL,
    MADV_RANDOM,
    MADV_SEQUENTIAL,
    MADV_WILLNEED,
    PROT_READ,
    PROT_WRITE,
    VMA,
    VMAStore,
)
from repro.obs import METRICS, TRACER
from repro.sim.executor import SimThread
from repro.sim.fastforward import (
    MAX_ANALYTIC_PAGES,
    MAX_ANALYTIC_WINDOW,
    MIN_ANALYTIC_RUN,
    expected_hit_run_length,
    window_profile,
    write_cut,
)


class Mapping:
    """A live mapping handle returned by ``MmioEngine.mmap``."""

    def __init__(self, engine: "MmioEngine", vma: VMA) -> None:
        self.engine = engine
        self.vma = vma
        self.active = True

    @property
    def size_bytes(self) -> int:
        """Length of the mapped range in bytes."""
        return self.vma.num_pages * units.PAGE_SIZE

    def load(self, thread: SimThread, offset: int, nbytes: int) -> bytes:
        """Read ``nbytes`` at byte ``offset`` within the mapping."""
        return self.engine.load(thread, self, offset, nbytes)

    def store(self, thread: SimThread, offset: int, data: bytes) -> None:
        """Write ``data`` at byte ``offset`` within the mapping."""
        self.engine.store(thread, self, offset, data)

    def msync(self, thread: SimThread) -> int:
        """Flush this mapping's dirty pages; returns pages written."""
        return self.engine.msync(thread, self)

    def mprotect(self, thread: SimThread, prot: int) -> None:
        """Change the mapping's protection flags."""
        self.engine.mprotect(thread, self, prot)

    def mremap(self, thread: SimThread, new_num_pages: int) -> None:
        """Grow or shrink the mapping (moves the virtual range)."""
        self.engine.mremap(thread, self, new_num_pages)

    def madvise(self, thread: SimThread, advice: int) -> None:
        """Set the access-pattern advice for this mapping."""
        self.engine.madvise(thread, self, advice)

    def munmap(self, thread: SimThread) -> None:
        """Tear this mapping down."""
        self.engine.munmap(thread, self)


class MmioEngine:
    """Abstract memory-mapped I/O engine."""

    name = "abstract"

    #: Retry policy for transient writeback faults (None = stack default).
    retry_policy: Optional[RetryPolicy] = None

    #: Minimum cycles this engine charges between an operation's start and
    #: its first cross-thread-visible interaction (the batching invariant;
    #: see ``repro.sim.executor``).  Subclasses override with their audited
    #: value; ``tests/conformance/test_invariant.py`` checks the bound.
    sync_preamble_cycles: float = constants.SYSCALL_CYCLES

    #: Analytic fast-forward switch (see ``repro.sim.fastforward``).  When
    #: True *and* a run's gates hold (unbounded horizon, integer clock, no
    #: pending interference, vectorized plan), ``hit_run`` retires whole
    #: all-hit windows in closed form and ``_ensure_mapped`` may take the
    #: engine's fused fault path.  Off by default: unbatched mode stays a
    #: pristine per-op reference, and hand-built stacks opt in explicitly.
    fastforward: bool = False

    def __init__(self, machine: Machine, vmas: VMAStore, vmx: VMXCostModel) -> None:
        self.machine = machine
        self.vmas = vmas
        self.vmx = vmx
        self.page_table = PageTable()
        # Per-file completion horizon of queued (sync=False) writebacks.
        # Async writeback marks pages clean at submission; a durability
        # call must still wait for these completions before returning.
        self._wb_inflight: Dict[int, float] = {}
        self.faults = 0
        self.major_faults = 0      # needed device I/O
        self.minor_faults = 0      # page present (race/hit) or write-protect
        self.wp_faults = 0         # write-protect (dirty-tracking) subset
        self.hit_runs = 0          # batched-mode runs retired via hit_run
        self.batched_hits = 0      # operations retired inside those runs
        self.ff_runs = 0           # analytic closed-form windows retired
        self.ff_hits = 0           # accesses retired inside those windows
        # Quiescence-certificate bookkeeping (run_ahead_unbounded_ok).
        self._mapped_vma_pages = 0
        self._ranges_disturbed = False
        self._dirtied = False
        METRICS.bind_object(
            f"engine.{self.name}",
            self,
            {
                "faults.total": "faults",
                "faults.major": "major_faults",
                "faults.minor": "minor_faults",
                "faults.wp": "wp_faults",
                "hit_runs": "hit_runs",
                "batched_hits": "batched_hits",
            },
        )

    # -- mmap-compatible surface ------------------------------------------

    def mmap(
        self,
        thread: SimThread,
        file: BackingFile,
        num_pages: Optional[int] = None,
        file_start_page: int = 0,
        prot: int = PROT_READ | PROT_WRITE,
    ) -> Mapping:
        """Map ``file`` into the address space (shared, file-backed)."""
        self._charge_range_update(thread)
        vma = self.vmas.mmap(thread.clock, file, num_pages, file_start_page, prot)
        self._mapped_vma_pages += vma.num_pages
        return Mapping(self, vma)

    def munmap(self, thread: SimThread, mapping: Mapping) -> None:
        """Destroy a mapping: flush dirty pages, drop PTEs and TLB entries."""
        if not mapping.active:
            return
        self._ranges_disturbed = True
        self._mapped_vma_pages -= mapping.vma.num_pages
        self._charge_range_update(thread)
        self.msync(thread, mapping)
        vpns = [
            vpn
            for vpn, _ in self.page_table.mapped_range(
                mapping.vma.start_vpn, mapping.vma.num_pages
            )
        ]
        for vpn in vpns:
            pte = self.page_table.remove(vpn)
            page = self._cached_page(mapping.vma.file, mapping.vma.file_page_of(vpn))
            if page is not None and pte is not None:
                page.mapped_vpns.discard(vpn)
        self._shootdown(thread, vpns)
        self.vmas.remove(thread.clock, mapping.vma)
        mapping.active = False

    def madvise(self, thread: SimThread, mapping: Mapping, advice: int) -> None:
        """Record access-pattern advice (affects readahead)."""
        if advice not in (
            MADV_NORMAL,
            MADV_RANDOM,
            MADV_SEQUENTIAL,
            MADV_WILLNEED,
            MADV_DONTNEED,
        ):
            raise ValueError(f"unknown madvise advice {advice}")
        thread.clock.charge("syscall.madvise", self._advise_cost())
        mapping.vma.advice = advice

    def msync(self, thread: SimThread, mapping: Mapping) -> int:
        """Write back this mapping's dirty pages (device-offset order)."""
        raise NotImplementedError

    def mprotect(self, thread: SimThread, mapping: Mapping, prot: int) -> None:
        """Change an area's protection flags.

        Dropping write permission downgrades every writable PTE and shoots
        the stale translations down; granting it back is lazy — the next
        store takes a protection fault as usual.
        """
        if not mapping.active:
            raise SegmentationFault(0, "mprotect on unmapped region")
        self._ranges_disturbed = True
        self._charge_range_update(thread)
        vma = mapping.vma
        vma.prot = prot
        if prot & PROT_WRITE:
            return
        vpns: List[int] = []
        for vpn, pte in self.page_table.mapped_range(vma.start_vpn, vma.num_pages):
            if pte.writable:
                pte.writable = False
                vpns.append(vpn)
        self._shootdown(thread, vpns)

    def mremap(self, thread: SimThread, mapping: Mapping, new_num_pages: int) -> None:
        """Grow or shrink a mapping (MREMAP_MAYMOVE semantics).

        The area moves to a fresh virtual range; present PTEs migrate with
        their frames (no data copies), the old translations are shot down,
        and pages beyond a shrunken end simply lose their mappings (their
        cached data is untouched — mremap does not truncate the file).
        """
        if not mapping.active:
            raise SegmentationFault(0, "mremap on unmapped region")
        if new_num_pages <= 0:
            raise ValueError("mapping must keep at least one page")
        old = mapping.vma
        if new_num_pages == old.num_pages:
            return
        if old.file_start_page + new_num_pages > old.file.size_pages:
            raise ValueError("mremap extends past end of file")
        self._ranges_disturbed = True
        self._mapped_vma_pages += new_num_pages - old.num_pages
        self._charge_range_update(thread)
        new_vma = self.vmas.mmap(
            thread.clock,
            old.file,
            num_pages=new_num_pages,
            file_start_page=old.file_start_page,
            prot=old.prot,
        )
        new_vma.advice = old.advice
        old_vpns: List[int] = []
        for vpn, pte in list(self.page_table.mapped_range(old.start_vpn, old.num_pages)):
            rel = vpn - old.start_vpn
            page = self._cached_page(old.file, old.file_page_of(vpn))
            self.page_table.remove(vpn)
            old_vpns.append(vpn)
            if page is not None:
                page.mapped_vpns.discard(vpn)
            if rel < new_num_pages:
                moved = self.page_table.install(
                    new_vma.start_vpn + rel, pte.frame, writable=pte.writable
                )
                moved.dirty = pte.dirty
                if page is not None:
                    page.mapped_vpns.add(new_vma.start_vpn + rel)
        self._shootdown(thread, old_vpns)
        self.vmas.remove(thread.clock, old)
        mapping.vma = new_vma

    # -- loads and stores ---------------------------------------------------

    def load(self, thread: SimThread, mapping: Mapping, offset: int, nbytes: int) -> bytes:
        """Memory-read through the mapping; faults on unmapped pages."""
        chunks = []
        for page_offset, in_page, take in self._split(mapping, offset, nbytes):
            frame = self._ensure_mapped(thread, mapping, page_offset, is_write=False)
            chunks.append(self._pool().read_partial(frame, in_page, take))
        return b"".join(chunks)

    def store(self, thread: SimThread, mapping: Mapping, offset: int, data: bytes) -> None:
        """Memory-write through the mapping; faults for dirty tracking."""
        written = 0
        for page_offset, in_page, take in self._split(mapping, offset, len(data)):
            frame = self._ensure_mapped(thread, mapping, page_offset, is_write=True)
            self._pool().write_partial(frame, in_page, data[written : written + take])
            written += take

    def _split(
        self, mapping: Mapping, offset: int, nbytes: int
    ) -> Iterable[Tuple[int, int, int]]:
        if offset < 0 or nbytes < 0 or offset + nbytes > mapping.size_bytes:
            raise SegmentationFault(
                offset, f"access [{offset}, +{nbytes}) outside mapping"
            )
        pos = offset
        remaining = nbytes
        while remaining > 0:
            in_page = pos & (units.PAGE_SIZE - 1)
            take = min(remaining, units.PAGE_SIZE - in_page)
            yield (pos - in_page, in_page, take)
            pos += take
            remaining -= take

    def _ensure_mapped(
        self, thread: SimThread, mapping: Mapping, page_offset: int, is_write: bool
    ) -> int:
        """The hardware access protocol for one page; returns its frame."""
        if not mapping.active:
            raise SegmentationFault(page_offset, "access to unmapped region")
        if is_write and not mapping.vma.prot & PROT_WRITE:
            raise ProtectionFault(page_offset, "write to read-only mapping")
        self.machine.absorb_interference(thread)
        vpn = mapping.vma.start_vpn + (page_offset >> units.PAGE_SHIFT)
        pte = self.page_table.lookup(vpn)
        if pte is not None and (not is_write or pte.writable):
            # Pure hardware hit: no software on the path.
            self.machine.tlb_of(thread).access(vpn, thread.clock)
            thread.clock.charge("app.access", constants.LOAD_STORE_HIT_CYCLES)
            pte.accessed = True
            return pte.frame
        if pte is not None and is_write and not pte.writable:
            self.faults += 1
            self.minor_faults += 1
            self.wp_faults += 1
            self._dirtied = True
            with TRACER.span("fault.wp", thread.clock):
                return self._write_protect_fault(thread, mapping.vma, vpn, pte)
        self.faults += 1
        if is_write:
            self._dirtied = True
        elif self.fastforward:
            # Fused fault fast path (read faults only): the engine may
            # replay its whole fault protocol without span/call overhead,
            # bit-identically; None means "not eligible, take the real
            # path".  ``ff_faults`` on the subclass counts engagements.
            frame = self._fault_fast(thread, mapping.vma, vpn)
            if frame is not None:
                return frame
        with TRACER.span("fault", thread.clock):
            return self._fault(thread, mapping.vma, vpn, is_write)

    def load_op_fast(self, thread: SimThread, mapping: Mapping, page: int, in_page: int) -> bool:
        """Fused single-page slow-path read op (fast-forward mode only).

        Replays exactly what ``load`` does for one in-bounds, single-page,
        8-byte read — interference absorb, PTE probe, TLB access and hit
        charge (or the fault protocol), latency record — without the
        span/split/join machinery.  The loaded bytes are not materialized:
        the microbenchmark discards them and ``read_partial`` is pure, so
        skipping it is state-identical.  Returns False (caller must use
        the generic path) without mutating anything when a gate fails.
        """
        clock = thread.clock
        if (
            not mapping.active
            or clock.cpi_factor != 1.0
            or clock._obs_span is not None
            or TRACER.enabled
        ):
            return False
        vma = mapping.vma
        if not 0 <= page < vma.num_pages:
            return False
        start = clock.now
        machine = self.machine
        interference = machine.interference
        if thread.core in interference._pending:
            interference.absorb(thread.core, clock)
        vpn = vma.start_vpn + page
        pte = self.page_table._entries.get(vpn)
        if pte is None:
            self.faults += 1
            frame = self._fault_fast(thread, vma, vpn)
            if frame is None:
                with TRACER.span("fault", clock):
                    self._fault(thread, vma, vpn, False)
        else:
            # Pure hardware hit reached via the slow path (run horizon
            # already crossed): TLB access + hit charge, fused.
            tlb = machine.tlbs[thread.core]
            entries = tlb._entries
            now = clock.now
            cycles = clock.breakdown._cycles
            if vpn in entries:
                entries.move_to_end(vpn)
                tlb.hits += 1
            else:
                tlb.misses += 1
                now += constants.TLB_MISS_WALK_CYCLES
                cycles["tlb.miss_walk"] += float(constants.TLB_MISS_WALK_CYCLES)
                entries[vpn] = None
                entries.move_to_end(vpn)
                if len(entries) > tlb.capacity:
                    entries.popitem(last=False)
            now += constants.LOAD_STORE_HIT_CYCLES
            cycles["app.access"] += float(constants.LOAD_STORE_HIT_CYCLES)
            clock.now = now
            pte.accessed = True
        thread.latencies._samples.append(clock.now - start)
        thread.latencies._sorted_cache = None
        thread.ops_completed += 1
        return True

    def hit_run(
        self,
        thread: SimThread,
        mapping: Mapping,
        accesses,
        index: int,
        horizon: float,
        write_data: bytes,
    ) -> int:
        """Retire a run of consecutive pure-hit accesses in one step.

        ``accesses`` is a plan of three parallel sequences
        ``(pages, in_page_offsets, is_write_flags)``, one entry per
        access; the run starts at ``index`` and consumes while each
        access starts at or before ``horizon`` and hits: PTE
        present and writable when needed.  The charge sequence per access
        is call-for-call identical to the hit branch of
        :meth:`_ensure_mapped` (absorb interference, TLB access, hit
        charge), so a batched run is cycle- and state-identical to the
        same accesses retired one executor step at a time — the property
        the ``tests/conformance`` tier checks.  Per-access latencies are
        recorded as in unbatched mode; the run itself is one trace span at
        most, not one per access.

        Returns the number of accesses consumed (0 if the first one needs
        the fault path — the caller falls back to ``load``/``store``).
        """
        if not mapping.active:
            return 0
        vma = mapping.vma
        vma_writable = bool(vma.prot & PROT_WRITE)
        num_pages = vma.num_pages
        start_vpn = vma.start_vpn
        clock = thread.clock
        pages_seq, offsets_seq, writes_seq = accesses
        # Early reject before the per-run setup below: miss-dominated
        # cells call this once per op and consume nothing, so the
        # zero-consumed path must cost no more than these few checks
        # (they mirror the first loop iteration exactly).
        if clock.now > horizon:
            return 0
        page = pages_seq[index]
        is_write = writes_seq[index]
        if (is_write and not vma_writable) or not 0 <= page < num_pages:
            return 0
        pte = self.page_table._entries.get(start_vpn + page)
        if pte is None or (is_write and not pte.writable):
            return 0
        machine = self.machine
        tlb = machine.tlb_of(thread)
        lookup = self.page_table.lookup
        pool = self._pool()
        consumed = 0
        total = len(pages_seq)
        if clock.cpi_factor == 1.0 and clock._obs_span is None:
            # Slim path: with CPI 1.0 every per-op charge is an integer
            # float, so batching the breakdown updates (one dict write per
            # run instead of per op) is bit-exact; with no open span the
            # tracer hook in ``charge`` is a no-op we can skip.  The clock
            # trajectory itself still advances per op, so recorded
            # latencies are identical floats.
            entries = tlb._entries
            move_to_end = entries.move_to_end
            tlb_capacity = tlb.capacity
            interference = machine.interference
            pending = interference._pending
            core = thread.core
            append = thread.latencies._samples.append
            pte_get = self.page_table._entries.get
            hit_cost = constants.LOAD_STORE_HIT_CYCLES
            walk_cost = constants.TLB_MISS_WALK_CYCLES
            now = clock.now
            walks = 0
            if (
                self.fastforward
                and horizon == math.inf
                and total - index >= MIN_ANALYTIC_RUN
                and core not in pending
                and num_pages <= MAX_ANALYTIC_PAGES
                and getattr(accesses, "np_pages", None) is not None
                and now.is_integer()
            ):
                # Analytic fast-forward: with an unbounded horizon the
                # whole remaining all-hit window can retire in closed form
                # (see ``repro.sim.fastforward``).  The miss-rate model
                # skips the setup when steady-state eviction would cut
                # windows below the amortization floor anyway.
                cache = getattr(self, "cache", None)
                if cache is not None and expected_hit_run_length(
                    self._mapped_vma_pages, cache.capacity_pages
                ) >= MIN_ANALYTIC_RUN:
                    # Each call retires at most MAX_ANALYTIC_WINDOW
                    # accesses (profiling cost stays bounded); loop while
                    # full windows keep retiring so long runs never fall
                    # to the per-op loop.  Every gate above is preserved
                    # across iterations: charges are integer (the clock
                    # stays integer), no other thread runs inside this
                    # call (pending interference cannot appear), and the
                    # plan arrays don't change.
                    while total - index >= MIN_ANALYTIC_RUN:
                        retired = self._hit_run_analytic(
                            thread, vma, tlb, accesses, index, total
                        )
                        if not retired:
                            break
                        index += retired
                        consumed += retired
                    now = clock.now
            run_start = consumed
            while index < total and now <= horizon:
                page = pages_seq[index]
                is_write = writes_seq[index]
                if (is_write and not vma_writable) or not 0 <= page < num_pages:
                    break
                vpn = start_vpn + page
                pte = pte_get(vpn)
                if pte is None or (is_write and not pte.writable):
                    break
                start = now
                if core in pending:
                    clock.now = now
                    interference.absorb(core, clock)
                    now = clock.now
                if vpn in entries:
                    move_to_end(vpn)
                    tlb.hits += 1
                else:
                    tlb.misses += 1
                    now += walk_cost
                    walks += 1
                    entries[vpn] = None
                    if len(entries) > tlb_capacity:
                        entries.popitem(last=False)
                now += hit_cost
                pte.accessed = True
                if is_write:
                    pool.write_partial(pte.frame, offsets_seq[index], write_data)
                append(now - start)
                index += 1
                consumed += 1
            clock.now = now
            loop_n = consumed - run_start
            if loop_n:
                cycles = clock.breakdown._cycles
                cycles["app.access"] += hit_cost * loop_n
                if walks:
                    cycles["tlb.miss_walk"] += walk_cost * walks
            if consumed:
                thread.latencies._sorted_cache = None
                thread.ops_completed += consumed
        else:
            record_op = thread.record_op
            while index < total and clock.now <= horizon:
                page = pages_seq[index]
                is_write = writes_seq[index]
                if (is_write and not vma_writable) or not 0 <= page < num_pages:
                    break
                vpn = start_vpn + page
                pte = lookup(vpn)
                if pte is None or (is_write and not pte.writable):
                    # Needs the fault path: leave the whole op (including
                    # its interference absorb) to the caller's slow path so
                    # its recorded latency matches unbatched execution.
                    break
                start = clock.now
                machine.absorb_interference(thread)
                tlb.access(vpn, clock)
                clock.charge("app.access", constants.LOAD_STORE_HIT_CYCLES)
                pte.accessed = True
                if is_write:
                    pool.write_partial(pte.frame, offsets_seq[index], write_data)
                record_op(start)
                index += 1
                consumed += 1
        if consumed:
            self.hit_runs += 1
            self.batched_hits += consumed
        return consumed

    def _hit_run_analytic(
        self, thread: SimThread, vma: VMA, tlb, plan, index: int, total: int
    ) -> int:
        """Retire a window of all-hit loads in closed form.

        Called from the slim branch of :meth:`hit_run` — repeatedly,
        while full windows keep retiring — under the analytic gates
        (unbounded horizon, integer
        clock, no pending interference, vectorized plan, CPI 1.0, tracer
        idle).  The window is cut at the first write, the first
        out-of-bounds page, the first access whose PTE is missing, and
        the first access that would overflow the TLB, re-profiling until
        the cuts are stable; what remains is applied in bulk — cycle
        total, per-stage breakdown, per-access latencies, TLB counters
        and final recency order, PTE accessed bits — bit-identically to
        stepping the same accesses through the loop (the invariant
        ``tests/conformance/test_fastforward.py`` checks).  Returns the
        number of accesses retired; 0 means "fall back to the loop".
        """
        np_writes = plan.np_writes
        if np_writes is not None and np_writes[index : index + MIN_ANALYTIC_RUN].any():
            return 0  # a write lands before the amortization floor
        np_pages = plan.np_pages
        num_pages = vma.num_pages
        start_vpn = vma.start_vpn
        limit = write_cut(np_writes, index, min(total, index + MAX_ANALYTIC_WINDOW))
        if limit - index < MIN_ANALYTIC_RUN:
            return 0
        window = np_pages[index:limit]
        oob = (window < 0) | (window >= num_pages)
        if oob.any():
            limit = index + int(oob.argmax())
        pte_entries = self.page_table._entries
        entries = tlb._entries
        while True:
            n = limit - index
            if n < MIN_ANALYTIC_RUN:
                return 0
            window = np_pages[index:limit]
            touched, first, last = window_profile(window, num_pages)
            # One membership pass over the distinct pages classifies the
            # window: pages with no PTE cut it (the loop would break and
            # fall to the fault path there); pages absent from the TLB
            # will each insert once (a walk) at their first occurrence.
            miss_cut = n
            new_firsts = []
            for page in touched.tolist():
                vpn = start_vpn + page
                if vpn not in pte_entries:
                    pos = int(first[page])
                    if pos < miss_cut:
                        miss_cut = pos
                elif vpn not in entries:
                    new_firsts.append(int(first[page]))
            if miss_cut < n:
                limit = index + miss_cut
                continue
            room = tlb.capacity - len(entries)
            if len(new_firsts) > room:
                # The (room+1)-th distinct new page would evict a TLB
                # entry; the closed form assumes no eviction, so end the
                # window just before that access and re-profile.
                new_firsts.sort()
                limit = index + new_firsts[room]
                continue
            break
        clock = thread.clock
        now = clock.now
        walks = len(new_firsts)
        hit_cost = constants.LOAD_STORE_HIT_CYCLES
        walk_cost = constants.TLB_MISS_WALK_CYCLES
        add = hit_cost * n + walk_cost * walks
        if now + add >= 2.0**53:
            return 0  # stepped float adds would no longer be exact
        samples = thread.latencies._samples
        fill_start = len(samples)
        samples.extend([float(hit_cost)] * n)
        if walks:
            walk_lat = float(hit_cost + walk_cost)
            for pos in new_firsts:
                samples[fill_start + pos] = walk_lat
        cycles = clock.breakdown._cycles
        cycles["app.access"] += float(hit_cost * n)
        if walks:
            cycles["tlb.miss_walk"] += float(walk_cost * walks)
        tlb.hits += n - walks
        tlb.misses += walks
        move_to_end = entries.move_to_end
        pte_get = pte_entries.get
        # Stepped execution leaves touched pages at the TLB's recency
        # tail ordered by *last* occurrence (hits move-to-end, first
        # misses insert at the end); replay exactly that order.
        order = last[touched].argsort()
        for page in touched[order].tolist():
            vpn = start_vpn + page
            pte_get(vpn).accessed = True
            if vpn in entries:
                move_to_end(vpn)
            else:
                entries[vpn] = None
        clock.now = now + add
        self.ff_runs += 1
        self.ff_hits += n
        return n

    def _fault_fast(self, thread: SimThread, vma: VMA, vpn: int):
        """Fused read-fault fast path hook; None = take the real path.

        Subclasses with a fused replay of their fault protocol (see
        ``AquilaEngine._fault_fast``) override this.  Implementations
        must be charge- and state-identical to ``_fault`` for the cases
        they accept, and must return None for anything they cannot prove
        identical (tracing enabled, CPI scaling, device fault injection,
        readahead, EPT translation, ...).
        """
        return None

    def run_ahead_unbounded_ok(self) -> bool:
        """Certificate for an *unbounded* hit-run-ahead horizon.

        True only while no operation any thread can take mutates
        cross-thread-visible state before the next heap re-entry:

        * every page reachable through a live VMA has a guaranteed cache
          frame (``mapped pages <= capacity``), so no fault can ever
          evict — hence no PTE removal, no shootdown, no interference
          post.  Faults then only *add* entries, which commutes with
          run-ahead hits (a hit either sees the entry or breaks to the
          heap and retries in order);
        * no range was ever unmapped, shrunk, or downgraded (cached
          pages outside live VMAs would break the capacity argument);
        * nothing was ever dirtied — writeback would otherwise
          write-protect pages (and shoot down) behind readers' backs.

        Callers (the batched executor via its ``quiescent`` hook) must
        only consult this for workload phases consisting of loads and
        stores on a stable set of mappings; an mmap/msync/mprotect issued
        concurrently with an in-flight unbounded run would not be covered
        by the certificate evaluated at the run's start.
        """
        if self._ranges_disturbed or self._dirtied:
            return False
        cache = getattr(self, "cache", None)
        if cache is None:
            return False
        return self._mapped_vma_pages <= cache.capacity_pages

    def invalidate_file(self, thread: SimThread, file: BackingFile) -> int:
        """Drop every cached page of ``file`` without writeback (deletion).

        Returns the number of pages dropped.  PTEs pointing at the dropped
        pages are torn down with a shootdown, as truncation does.  The
        range-update charge up front models the truncate/unlink entry and
        keeps the batching invariant: no cross-thread-visible mutation
        within ``sync_preamble_cycles`` of the operation's start.
        """
        self._ranges_disturbed = True
        self._charge_range_update(thread)
        pages = self._pages_of_file(file.file_id)
        vpns: List[int] = []
        for page in pages:
            for vpn in page.mapped_vpns:
                self.page_table.remove(vpn)
                vpns.append(vpn)
            page.mapped_vpns.clear()
        self._shootdown(thread, vpns)
        for page in pages:
            self._drop_page(thread, page)
        return len(pages)

    def _pages_of_file(self, file_id: int) -> List[CachePage]:
        raise NotImplementedError

    def _drop_page(self, thread: SimThread, page: CachePage) -> None:
        raise NotImplementedError

    # -- engine-specific pieces ----------------------------------------------

    def _fault(self, thread: SimThread, vma: VMA, vpn: int, is_write: bool) -> int:
        """Handle a not-present fault; returns the frame mapped at ``vpn``."""
        raise NotImplementedError

    def _write_protect_fault(self, thread: SimThread, vma: VMA, vpn: int, pte) -> int:
        """First write to a read-only-mapped page: mark dirty, upgrade PTE."""
        raise NotImplementedError

    def _cached_page(self, file: BackingFile, file_page: int) -> Optional[CachePage]:
        raise NotImplementedError

    def _pool(self):
        """The frame pool holding this engine's cached data."""
        raise NotImplementedError

    def _shootdown(self, thread: SimThread, vpns: List[int]) -> None:
        raise NotImplementedError

    def _charge_range_update(self, thread: SimThread) -> None:
        """Cost of entering the kernel/hypervisor for mmap-class calls."""
        raise NotImplementedError

    def _advise_cost(self) -> float:
        return constants.SYSCALL_CYCLES

    # -- shared writeback helper ----------------------------------------------

    @staticmethod
    def _merge_runs(pages: List[CachePage]) -> List[List[CachePage]]:
        """Group device-offset-sorted pages into contiguous runs."""
        runs: List[List[CachePage]] = []
        for page in pages:
            if (
                runs
                and page.device_offset
                == runs[-1][-1].device_offset + units.PAGE_SIZE
            ):
                runs[-1].append(page)
            else:
                runs.append([page])
        return runs

    def _write_back_pages(
        self,
        thread: SimThread,
        pages: List[CachePage],
        sync: bool,
        category: str = "writeback",
    ) -> int:
        """Write dirty pages (sorted by device offset), merging runs.

        Returns the number of pages written.  ``sync`` blocks the thread
        until the last write completes (msync semantics); otherwise writes
        are queued and only CPU submission cost is paid now.
        """
        pool = self._pool()
        completions: List[float] = []
        with TRACER.span("writeback.io", thread.clock):
            for run in self._merge_runs(pages):
                device: BlockDevice = run[0].file.device
                data = b"".join(pool.read(page.frame) for page in run)
                offset = run[0].device_offset
                CRASH.point(f"{self.name}.writeback.run")
                completion = with_retries(
                    thread.clock,
                    lambda device=device, offset=offset, data=data: device.submit_async(
                        thread.clock, offset, len(data), is_write=True, data=data
                    ),
                    category,
                    self.retry_policy,
                )
                thread.clock.charge(category + ".submit", 400 + 30 * len(run))
                completions.append(completion)
                fid = run[0].file.file_id
                self._wb_inflight[fid] = max(
                    self._wb_inflight.get(fid, 0.0), completion
                )
            if sync and completions:
                thread.clock.wait_until(max(completions), "idle.io.writeback")
                CRASH.point(f"{self.name}.writeback.sync")
        return len(pages)

    def _drain_inflight(self, thread: SimThread, file: BackingFile) -> None:
        """Block until every queued async writeback of ``file`` completes.

        Background writeback (``sync=False``) marks pages clean as soon
        as the device accepts the command, so by the time a durability
        call (msync/fsync) scans for dirty pages those writes are
        invisible — yet they have not completed.  Returning before they
        do would report partially-acknowledged writes as durable.
        """
        done_at = self._wb_inflight.pop(file.file_id, 0.0)
        if done_at > thread.clock.now:
            thread.clock.wait_until(done_at, "idle.io.writeback")

"""Cluster figure: sharded-simulation scaling and failover (beyond paper).

A figure family the paper does not contain, motivated by its serving
scenario: one logical workload sharded across N machines
(:mod:`repro.cluster`), each machine a full engine/cache/device stack,
with epoch-boundary replication over the deterministic message bus.  The
grid crosses engine (aquila / kmmap / linux) with shard count (1 / 2 /
4) at a fixed logical dataset and op count — every shard count serves
the *same* pages and ops, just spread over more machines — plus one
seeded mid-epoch primary-kill cell per engine at 4 shards, so the
family shows both scale-out throughput and the failover
data-loss/re-route accounting.

Every cell runs on the serial backend (the sweep pool already provides
process parallelism *across* cells; nesting pools inside a worker is
what the backend split exists to avoid).  The dedicated cluster CI job
— not this sweep — runs the process backend and asserts it
digest-matches the serial reference.
"""

from __future__ import annotations

from typing import Dict, List

from repro.cluster import ClusterConfig, run_cluster
from repro.fault.shardkill import ShardKillSpec, derive_shard_kill

ENGINE_KINDS = ("aquila", "kmmap", "linux")

SHARD_COUNTS = (1, 2, 4)

#: Seed of the whole family (client plan, ring, kill derivation).
CLUSTER_SEED = 73


def _scale_params(scale: str) -> Dict:
    """The op-count knobs for figure vs bench scale."""
    if scale == "figure":
        return {"total_ops": 8192, "epoch_ops": 1024, "dataset_pages": 192}
    return {"total_ops": 1536, "epoch_ops": 512, "dataset_pages": 96}


def enumerate_cells(scale: str = "figure") -> List[Dict]:
    """Every cluster cell as an independent sweep work unit.

    Grid: engine x shard count, plus a ``s4-failover`` cell per engine
    whose kill spec is derived from the family seed — its parameters are
    spelled into ``params`` so the cell stays content-addressed.
    """
    knobs = _scale_params(scale)
    cells = []
    for engine_kind in ENGINE_KINDS:
        for shards in SHARD_COUNTS:
            cells.append(
                {
                    "cell_id": f"cluster/{engine_kind}/s{shards}",
                    "figure": "cluster",
                    "params": {
                        "engine_kind": engine_kind,
                        "num_shards": shards,
                        "replication": min(2, shards),
                        "cache_pages": 512,
                        "write_fraction": 0.25,
                        "seed": CLUSTER_SEED,
                        **knobs,
                    },
                }
            )
        kill = derive_shard_kill(
            CLUSTER_SEED, 4, knobs["total_ops"] // knobs["epoch_ops"], knobs["epoch_ops"]
        )
        cells.append(
            {
                "cell_id": f"cluster/{engine_kind}/s4-failover",
                "figure": "cluster",
                "params": {
                    "engine_kind": engine_kind,
                    "num_shards": 4,
                    "replication": 2,
                    "cache_pages": 512,
                    "write_fraction": 0.25,
                    "seed": CLUSTER_SEED,
                    "kill_shard": kill.shard_id,
                    "kill_epoch": kill.epoch,
                    "kill_op": kill.op_index,
                    **knobs,
                },
            }
        )
    return cells


def run_sweep_cell(params: Dict) -> Dict:
    """Run one enumerated cluster cell; returns payload + merged digest.

    The state digest is the cluster's merged full-state structure (every
    shard's engine digest plus bus and router state), so sharded and
    serial sweeps — and all three executor modes — compare bit for bit.
    """
    kill = None
    if "kill_shard" in params:
        kill = ShardKillSpec(
            shard_id=params["kill_shard"],
            epoch=params["kill_epoch"],
            op_index=params["kill_op"],
        )
    result = run_cluster(
        ClusterConfig(
            num_shards=params["num_shards"],
            replication=params["replication"],
            engine_kind=params["engine_kind"],
            cache_pages=params["cache_pages"],
            dataset_pages=params["dataset_pages"],
            total_ops=params["total_ops"],
            epoch_ops=params["epoch_ops"],
            write_fraction=params["write_fraction"],
            seed=params["seed"],
            kill=kill,
        ),
        backend="serial",
    )
    payload = result.payload()
    payload["shard_rows"] = [
        result.shard_summaries[sid] for sid in sorted(result.shard_summaries)
    ]
    return {"payload": payload, "state": result.merged_digest()}

"""Further Ligra-style algorithms over heap-resident graphs.

The paper evaluates BFS; Ligra itself ships PageRank and
connected-components, and both stress the mmio heap the same way
(read-mostly random access over out-of-core arrays).  These
implementations reuse the round/barrier execution model of
:mod:`repro.graph.ligra` and run on any heap (DRAM, Linux mmap, Aquila).

Numeric state lives in uint64 heap words; PageRank uses 32.32 fixed-point
arithmetic so the heap substrate stays type-uniform.
"""

from __future__ import annotations

from typing import Iterator, List

from repro.common import constants
from repro.graph.ligra import HeapGraph, _SharedRound  # reuse barrier pattern
from repro.graph.rmat import CSRGraph
from repro.sim.executor import Executor, RunResult, SimThread

#: 32.32 fixed-point scale for PageRank ranks.
FIXED_ONE = 1 << 32

_BARRIER_POLL_CYCLES = 2000


class _Rounds:
    """Barrier state for fixed-vertex-set round algorithms."""

    def __init__(self, num_threads: int) -> None:
        self.num_threads = num_threads
        self.round_no = 0
        self.arrived = 0
        self.release_time = 0.0
        self.done = False
        self.changed_this_round = 0

    def arrive(self, now: float, changed: int, finish: bool) -> None:
        self.changed_this_round += changed
        self.arrived += 1
        if self.arrived == self.num_threads:
            if finish or self.changed_this_round == 0:
                self.done = True
            self.changed_this_round = 0
            self.arrived = 0
            self.round_no += 1
            self.release_time = now


def _barrier_wait(thread: SimThread, state: _Rounds, my_round: int) -> Iterator[None]:
    while state.round_no == my_round and not state.done:
        thread.clock.charge("idle.barrier", _BARRIER_POLL_CYCLES)
        yield
    thread.clock.wait_until(state.release_time, "idle.barrier")
    yield


class ParallelPageRank:
    """Push-style PageRank in 32.32 fixed point over a heap graph."""

    def __init__(
        self,
        heap,
        graph: CSRGraph,
        threads: List[SimThread],
        damping: float = 0.85,
        setup_thread: SimThread = None,
    ) -> None:
        if not threads:
            raise ValueError("at least one thread required")
        self.threads = threads
        self.graph = graph
        self.damping = damping
        main = setup_thread if setup_thread is not None else threads[0]
        self.setup_thread = main
        self.hgraph = HeapGraph(heap, graph, main)
        self.ranks = heap.alloc_array(graph.num_vertices)
        self.next_ranks = heap.alloc_array(graph.num_vertices)
        initial = FIXED_ONE // max(1, graph.num_vertices)
        self.ranks.fill(main, initial)
        self.heap = heap

    def _worker(self, thread: SimThread, index: int, state: _Rounds,
                iterations: int) -> Iterator[None]:
        n = self.graph.num_vertices
        base = int((1.0 - self.damping) * FIXED_ONE) // max(1, n)
        my_vertices = list(range(index, n, len(self.threads)))
        while not state.done:
            my_round = state.round_no
            if my_round >= iterations:
                state.arrive(thread.clock.now, 0, finish=True)
                yield from _barrier_wait(thread, state, my_round)
                continue
            # Phase: pull contributions into next_ranks for my vertices.
            for vertex in my_vertices:
                thread.clock.charge("app.vertex", constants.LIGRA_VERTEX_CPU_CYCLES)
                self.next_ranks.write(thread, vertex, base)
                yield
            state.arrive(thread.clock.now, 1, finish=False)
            yield from _barrier_wait(thread, state, my_round)
            my_round = state.round_no
            # Push phase: distribute my vertices' rank to their neighbors.
            for vertex in my_vertices:
                neighbors = self.hgraph.neighbors(thread, vertex)
                if neighbors:
                    share = int(
                        self.damping * self.ranks.read(thread, vertex)
                    ) // len(neighbors)
                    for neighbor in neighbors:
                        thread.clock.charge("app.edge", constants.LIGRA_EDGE_CPU_CYCLES)
                        current = self.next_ranks.read(thread, neighbor)
                        self.next_ranks.write(thread, neighbor, current + share)
                yield
            state.arrive(thread.clock.now, 1, finish=False)
            yield from _barrier_wait(thread, state, my_round)
            # Swap phase (thread 0 only, others just synchronize).
            my_round = state.round_no
            if index == 0:
                self.ranks, self.next_ranks = self.next_ranks, self.ranks
            state.arrive(thread.clock.now, 1, finish=False)
            yield from _barrier_wait(thread, state, my_round)

    def run(self, iterations: int = 10) -> RunResult:
        """Run ``iterations`` PageRank rounds."""
        start = self.setup_thread.clock.now
        for thread in self.threads:
            thread.clock.now = max(thread.clock.now, start)
        state = _Rounds(len(self.threads))
        executor = Executor()
        # Each iteration consumes 3 barrier rounds (clear, push, swap).
        for index, thread in enumerate(self.threads):
            executor.add(thread, self._worker(thread, index, state, iterations * 3))
        return executor.run()

    def rank_of(self, thread: SimThread, vertex: int) -> float:
        """Final rank as a float."""
        return self.ranks.read(thread, vertex) / FIXED_ONE


class ParallelComponents:
    """Connected components by min-label propagation over a heap graph.

    Treats edges as undirected (weakly connected components) by
    propagating labels both ways along each directed edge.
    """

    def __init__(
        self,
        heap,
        graph: CSRGraph,
        threads: List[SimThread],
        setup_thread: SimThread = None,
    ) -> None:
        if not threads:
            raise ValueError("at least one thread required")
        self.threads = threads
        self.graph = graph
        main = setup_thread if setup_thread is not None else threads[0]
        self.setup_thread = main
        self.hgraph = HeapGraph(heap, graph, main)
        self.labels = heap.alloc_array(graph.num_vertices)
        for vertex in range(graph.num_vertices):
            self.labels.write(main, vertex, vertex)
        self.rounds = 0

    def _worker(self, thread: SimThread, index: int, state: _Rounds) -> Iterator[None]:
        n = self.graph.num_vertices
        my_vertices = list(range(index, n, len(self.threads)))
        while not state.done:
            my_round = state.round_no
            changed = 0
            for vertex in my_vertices:
                thread.clock.charge("app.vertex", constants.LIGRA_VERTEX_CPU_CYCLES)
                label = self.labels.read(thread, vertex)
                for neighbor in self.hgraph.neighbors(thread, vertex):
                    thread.clock.charge("app.edge", constants.LIGRA_EDGE_CPU_CYCLES)
                    other = self.labels.read(thread, neighbor)
                    if other < label:
                        label = other
                        changed += 1
                    elif label < other:
                        self.labels.write(thread, neighbor, label)
                        changed += 1
                self.labels.write(thread, vertex, label)
                yield
            state.arrive(thread.clock.now, changed, finish=False)
            yield from _barrier_wait(thread, state, my_round)

    def run(self, max_rounds: int = 1000) -> RunResult:
        """Propagate until a fixed point (no label changes in a round)."""
        start = self.setup_thread.clock.now
        for thread in self.threads:
            thread.clock.now = max(thread.clock.now, start)
        state = _Rounds(len(self.threads))
        executor = Executor()
        for index, thread in enumerate(self.threads):
            executor.add(thread, self._worker(thread, index, state))
        result = executor.run()
        self.rounds = state.round_no
        return result

    def label_of(self, thread: SimThread, vertex: int) -> int:
        """Final component label of ``vertex``."""
        return self.labels.read(thread, vertex)

    def component_count(self, thread: SimThread) -> int:
        """Number of distinct components."""
        return len(
            {self.labels.read(thread, v) for v in range(self.graph.num_vertices)}
        )

"""Radix tree keyed by page/frame index.

Two users, following the paper:

* **Aquila's VMA store** (Section 3.4): "Aquila uses a radix tree, similar
  to RadixVM, instead of a balanced tree to avoid contention and provide
  scalable manipulation and access of virtual address ranges."  Page faults
  use it to (1) validate the faulting address and (2) lock the individual
  entry — so concurrency is per-entry, not per-tree.
* **Linux's page cache** (Section 6.5): the kernel stores cached pages in a
  radix tree; the scalability difference is that Linux guards the whole
  tree with a single lock (modeled in the kernel-cache module, not here).

The tree maps a non-negative integer key to a value through fixed-fanout
internal nodes (64-way, 6 bits/level, like Linux's).  Range fill/clear
let VMA code mark whole mappings.
"""

from __future__ import annotations

from typing import Any, Iterator, List, Optional, Tuple

RADIX_BITS = 6
RADIX_FANOUT = 1 << RADIX_BITS   # 64, like the Linux kernel's radix tree


class _RadixNode:
    __slots__ = ("slots", "count")

    def __init__(self) -> None:
        self.slots: List[Optional[Any]] = [None] * RADIX_FANOUT
        self.count = 0


class RadixTree:
    """64-way radix tree from int keys to values (None values disallowed)."""

    def __init__(self) -> None:
        self._root: Optional[_RadixNode] = None
        self._height = 0      # levels below the root
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def __contains__(self, key: int) -> bool:
        return self.get(key) is not None

    def _max_key(self) -> int:
        if self._root is None:
            return -1
        return (1 << (RADIX_BITS * (self._height + 1))) - 1

    def _extend(self, key: int) -> None:
        if self._root is None:
            self._root = _RadixNode()
            self._height = 0
        while key > self._max_key():
            new_root = _RadixNode()
            new_root.slots[0] = self._root
            new_root.count = 1
            self._root = new_root
            self._height += 1

    def insert(self, key: int, value: Any) -> bool:
        """Insert or replace; returns True when the key was new."""
        if key < 0:
            raise ValueError("keys must be non-negative")
        if value is None:
            raise ValueError("None values are not storable")
        self._extend(key)
        node = self._root
        for level in range(self._height, 0, -1):
            index = (key >> (RADIX_BITS * level)) & (RADIX_FANOUT - 1)
            child = node.slots[index]
            if child is None:
                child = _RadixNode()
                node.slots[index] = child
                node.count += 1
            node = child
        index = key & (RADIX_FANOUT - 1)
        fresh = node.slots[index] is None
        if fresh:
            node.count += 1
            self._size += 1
        node.slots[index] = value
        return fresh

    def get(self, key: int) -> Optional[Any]:
        """Value under ``key`` or None."""
        if self._root is None or key < 0 or key > self._max_key():
            return None
        node = self._root
        for level in range(self._height, 0, -1):
            index = (key >> (RADIX_BITS * level)) & (RADIX_FANOUT - 1)
            node = node.slots[index]
            if node is None:
                return None
        return node.slots[key & (RADIX_FANOUT - 1)]

    def remove(self, key: int) -> Optional[Any]:
        """Delete ``key``; returns the removed value or None."""
        if self._root is None or key < 0 or key > self._max_key():
            return None
        path: List[Tuple[_RadixNode, int]] = []
        node = self._root
        for level in range(self._height, 0, -1):
            index = (key >> (RADIX_BITS * level)) & (RADIX_FANOUT - 1)
            child = node.slots[index]
            if child is None:
                return None
            path.append((node, index))
            node = child
        index = key & (RADIX_FANOUT - 1)
        value = node.slots[index]
        if value is None:
            return None
        node.slots[index] = None
        node.count -= 1
        self._size -= 1
        # Prune empty internal nodes bottom-up.
        while path and node.count == 0:
            parent, parent_index = path.pop()
            parent.slots[parent_index] = None
            parent.count -= 1
            node = parent
        return value

    def items(self) -> Iterator[Tuple[int, Any]]:
        """All (key, value) pairs in ascending key order."""
        if self._root is None:
            return

        def walk(node: _RadixNode, level: int, prefix: int) -> Iterator[Tuple[int, Any]]:
            for index in range(RADIX_FANOUT):
                slot = node.slots[index]
                if slot is None:
                    continue
                key = (prefix << RADIX_BITS) | index
                if level == 0:
                    yield (key, slot)
                else:
                    yield from walk(slot, level - 1, key)

        yield from walk(self._root, self._height, 0)

    def next_key(self, key: int) -> Optional[int]:
        """Smallest stored key strictly greater than ``key`` (linear scan
        bounded by tree order; used by gang lookups in the page cache)."""
        for stored, _ in self.items():
            if stored > key:
                return stored
        return None

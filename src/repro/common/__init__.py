"""Shared constants, units, and error types."""

from repro.common import constants, units
from repro.common.errors import (
    BlobNotFoundError,
    ConfigError,
    DeviceError,
    KeyNotFoundError,
    OutOfMemoryError,
    OutOfSpaceError,
    ProtectionFault,
    ReproError,
    SegmentationFault,
    SimulationError,
)

__all__ = [
    "constants",
    "units",
    "BlobNotFoundError",
    "ConfigError",
    "DeviceError",
    "KeyNotFoundError",
    "OutOfMemoryError",
    "OutOfSpaceError",
    "ProtectionFault",
    "ReproError",
    "SegmentationFault",
    "SimulationError",
]

"""kmmap: Kreon's custom in-kernel mmio path (paper Sections 5 and 7.2).

kmmap fixes the Linux mmap pathologies that hurt key-value stores — it
uses a lazy writeback strategy, a custom eviction policy, and a CoW-aware
msync — but it remains *in the kernel*:

* every fault still pays the full ring 3 -> ring 0 trap (1287 cycles);
* device I/O goes through the kernel block layer (pmem: non-SIMD copy;
  NVMe: interrupt-driven completion);
* there is no per-application customization and no SPDK/DAX bypass.

This is exactly the contrast Figure 9 draws: with Kreon on top, Aquila
wins modestly on throughput (device-bound on NVMe) but clearly on average
and especially tail latency.

Implementation: the engine shares Aquila's scalable cache structures
(Kreon/FastMap pioneered the separate clean/dirty trees that Aquila
adopted, Section 7.2) but swaps the execution domain, the I/O path, and
uses coarser synchronous eviction/writeback batches — the source of its
tail-latency stalls.
"""

from __future__ import annotations

from repro.common import constants
from repro.devices.block import BlockDevice
from repro.devices.io_engines import KernelFaultIO
from repro.hw.machine import Machine
from repro.hw.vmx import ExecutionDomain, VMXCostModel
from repro.mmio.aquila import AquilaEngine
from repro.obs import TRACER


class KmmapEngine(AquilaEngine):
    """Kreon's kmmap: Aquila-like cache structures, kernel-resident."""

    name = "kmmap"

    #: Batching-invariant audit (see ``repro.sim.executor``): kmmap runs
    #: kernel-side, so every operation reaches shared state behind at
    #: least a syscall entry (msync/mmap-class) or the ring 3 fault trap.
    sync_preamble_cycles = constants.SYSCALL_CYCLES

    #: kmmap evicts with coarser batches than Aquila; the longer synchronous
    #: stalls are what Figure 9's tail-latency gap comes from.
    EVICTION_BATCH_MULTIPLIER = 4

    def __init__(
        self,
        machine: Machine,
        cache_pages: int,
        device: BlockDevice,
        eviction_batch: int = constants.EVICTION_BATCH_PAGES,
        shootdown_batch: int = constants.TLB_SHOOTDOWN_BATCH,
        **kwargs,
    ) -> None:
        super().__init__(
            machine,
            cache_pages,
            io_path=KernelFaultIO(device),
            eviction_batch=eviction_batch * self.EVICTION_BATCH_MULTIPLIER,
            shootdown_batch=shootdown_batch,
            **kwargs,
        )
        # Replace the execution-domain pieces: kmmap is kernel code serving
        # a ring 3 application.
        self.vmx = VMXCostModel(ExecutionDomain.ROOT_RING3)
        self._shootdowns = machine.make_shootdown_controller("linux")

    def _charge_range_update(self, thread) -> None:
        # mmap-class calls are ordinary syscalls into the kmmap module.
        self.vmx.syscall(thread.clock, "syscall.mmap")

    def _advise_cost(self) -> float:
        return constants.SYSCALL_CYCLES

    def msync(self, thread, mapping) -> int:
        """CoW-timestamp msync: a syscall, then the shared flush logic."""
        with TRACER.span("msync.syscall", thread.clock):
            self.vmx.syscall(thread.clock, "syscall.msync")
        return super().msync(thread, mapping)

"""Live in-terminal dashboard for the multiprocess sweep.

``repro.bench sweep --dashboard`` renders the orchestrator's aggregation
stream as it arrives: cells done/running/failed, per-worker utilization
(busy cell-seconds per worker pid over elapsed wall time), retry storms
(extra attempts spent), and an ETA extrapolated from completed-cell wall
times.  Two modes:

* :class:`LiveDashboard` — ANSI redraw-in-place for humans at a TTY;
* :class:`LogDashboard` — ``--dashboard=log``: one plain line per event
  with **no wall times, rates or ETA**, so a serial CI sweep's dashboard
  output is byte-deterministic (with workers > 1 only completion order
  can vary, never line content for a given cell).

Both consume the same event protocol from
:func:`repro.bench.sweep.run_sweep`: ``start`` once, ``cell_submitted``
when a unit is handed to a worker, ``cell_finished`` per manifest
record, ``finish`` once with the :class:`SweepResult`.
"""

from __future__ import annotations

import sys
import time
from typing import Dict, List, Optional, Set, TextIO


class SweepDashboard:
    """Event-protocol base; subclasses render.  All hooks are optional."""

    def start(self, total: int, to_run: int, skipped: int, workers: int, scale: str) -> None:
        """One sweep begins: cell counts, pool width, scale."""

    def cell_submitted(self, cell_id: str) -> None:
        """A unit was handed to a worker (or started, when serial)."""

    def cell_finished(self, entry: Dict) -> None:
        """A manifest record arrived for a finished cell."""

    def finish(self, result) -> None:
        """The sweep ended; ``result`` is a SweepResult."""


class LogDashboard(SweepDashboard):
    """Deterministic line-per-event mode for CI (``--dashboard=log``)."""

    def __init__(self, stream: Optional[TextIO] = None) -> None:
        self.stream = stream if stream is not None else sys.stdout
        self._total = 0
        self._done = 0
        self._failed = 0
        self._retries = 0

    def _emit(self, line: str) -> None:
        print(line, file=self.stream, flush=True)

    def start(self, total: int, to_run: int, skipped: int, workers: int, scale: str) -> None:
        """Header line with the deterministic run parameters."""
        self._total = to_run
        self._emit(
            f"[dash] start cells={total} to_run={to_run} skipped={skipped} "
            f"workers={workers} scale={scale}"
        )

    def cell_finished(self, entry: Dict) -> None:
        """One line per cell: id, status, attempts, running tally."""
        status = entry.get("status", "?")
        attempts = entry.get("attempts", 1)
        self._done += 1
        if status != "ok":
            self._failed += 1
        self._retries += max(0, attempts - 1)
        line = (
            f"[dash] cell {entry['cell_id']} {status} attempts={attempts} "
            f"done={self._done}/{self._total} failed={self._failed}"
        )
        telemetry = entry.get("telemetry")
        if telemetry:
            spans = telemetry.get("spans", {}).get("finished", 0)
            total_cycles = telemetry.get("attribution", {}).get("total_cycles", 0)
            line += f" spans={spans} cycles={total_cycles:.0f}"
        self._emit(line)

    def finish(self, result) -> None:
        """Deterministic summary: counts and sorted failure/mismatch lists."""
        self._emit(
            f"[dash] finish ok={sum(1 for e in result.entries if e['status'] == 'ok')} "
            f"skipped={len(result.skipped)} failed={len(result.failed)} "
            f"mismatched={len(result.mismatched)} retries={self._retries}"
        )
        for cell_id in sorted(result.failed):
            self._emit(f"[dash] failed {cell_id}")
        for cell_id in sorted(result.mismatched):
            self._emit(f"[dash] mismatched {cell_id}")


class LiveDashboard(SweepDashboard):
    """ANSI redraw-in-place view with utilization, retries and ETA."""

    def __init__(
        self,
        stream: Optional[TextIO] = None,
        refresh_seconds: float = 0.2,
        max_worker_rows: int = 8,
    ) -> None:
        self.stream = stream if stream is not None else sys.stdout
        self.refresh_seconds = refresh_seconds
        self.max_worker_rows = max_worker_rows
        self._start_wall = 0.0
        self._total = 0
        self._to_run = 0
        self._skipped = 0
        self._workers = 1
        self._done = 0
        self._failed = 0
        self._retries = 0
        self._running: Set[str] = set()
        self._busy_seconds: Dict[int, float] = {}
        self._cells_by_worker: Dict[int, int] = {}
        self._wall_samples: List[float] = []
        self._last_line = ""
        self._last_render = 0.0
        self._rendered_lines = 0

    # -- event protocol -------------------------------------------------------

    def start(self, total: int, to_run: int, skipped: int, workers: int, scale: str) -> None:
        """Reset state and draw the first frame."""
        self._start_wall = time.perf_counter()
        self._total, self._to_run, self._skipped = total, to_run, skipped
        self._workers = workers
        self._render(force=True)

    def cell_submitted(self, cell_id: str) -> None:
        """Mark a cell in flight (bounded by the pool width when pooled)."""
        self._running.add(cell_id)
        self._render()

    def cell_finished(self, entry: Dict) -> None:
        """Fold a finished cell into counts, utilization and the ETA."""
        self._running.discard(entry["cell_id"])
        self._done += 1
        if entry.get("status") != "ok":
            self._failed += 1
            self._last_line = f"FAILED {entry['cell_id']}: {entry.get('error', '?')}"
        else:
            wall = entry.get("wall_seconds", 0.0)
            self._wall_samples.append(wall)
            pid = entry.get("worker_pid", 0)
            self._busy_seconds[pid] = self._busy_seconds.get(pid, 0.0) + wall
            self._cells_by_worker[pid] = self._cells_by_worker.get(pid, 0) + 1
            self._last_line = f"ok {entry['cell_id']}  {wall:.2f}s"
        self._retries += max(0, entry.get("attempts", 1) - 1)
        self._render()

    def finish(self, result) -> None:
        """Draw the final frame and leave the cursor on a fresh line."""
        self._last_line = (
            f"sweep digest {result.sweep_digest[:16]}"
            if result.sweep_digest
            else self._last_line
        )
        self._render(force=True)
        print(file=self.stream, flush=True)

    # -- rendering ------------------------------------------------------------

    def _eta_seconds(self) -> Optional[float]:
        if not self._wall_samples:
            return None
        remaining = self._to_run - self._done
        if remaining <= 0:
            return 0.0
        mean_wall = sum(self._wall_samples) / len(self._wall_samples)
        return remaining * mean_wall / max(1, self._workers)

    def _frame(self) -> List[str]:
        elapsed = max(1e-9, time.perf_counter() - self._start_wall)
        bar_width = 24
        frac = self._done / self._to_run if self._to_run else 1.0
        filled = int(round(bar_width * frac))
        bar = "#" * filled + "-" * (bar_width - filled)
        eta = self._eta_seconds()
        eta_text = f"eta ~{eta:.1f}s" if eta is not None else "eta --"
        lines = [
            f"sweep   [{bar}] {self._done}/{self._to_run} done  "
            f"{len(self._running)} running  {self._failed} failed  "
            f"{self._skipped} skipped  {eta_text}",
            f"retries {self._retries} extra attempt(s)"
            + ("  << retry storm" if self._retries > max(4, self._to_run // 4) else ""),
        ]
        workers = sorted(self._busy_seconds)[: self.max_worker_rows]
        for pid in workers:
            busy = self._busy_seconds[pid]
            lines.append(
                f"worker {pid}: {self._cells_by_worker[pid]} cell(s), "
                f"{busy:.1f}s busy ({min(100.0, 100.0 * busy / elapsed):.0f}% util)"
            )
        if self._last_line:
            lines.append(f"last    {self._last_line}")
        return lines

    def _render(self, force: bool = False) -> None:
        now = time.perf_counter()
        if not force and now - self._last_render < self.refresh_seconds:
            return
        self._last_render = now
        if self._rendered_lines:
            # Move to the top of the previous frame and clear downward.
            self.stream.write(f"\x1b[{self._rendered_lines}F\x1b[J")
        lines = self._frame()
        self.stream.write("\n".join(lines) + "\n")
        self.stream.flush()
        self._rendered_lines = len(lines)


def make_dashboard(mode: Optional[str]) -> Optional[SweepDashboard]:
    """Dashboard factory for the CLI: None, "live", or "log"."""
    if mode is None:
        return None
    if mode == "log":
        return LogDashboard()
    if mode == "live":
        return LiveDashboard()
    raise ValueError(f"unknown dashboard mode {mode!r} (use 'live' or 'log')")

#!/usr/bin/env python3
"""Scenario 2 (paper Section 6.2): extending the heap over fast storage.

A Ligra-style BFS whose graph and algorithm state live on a heap backed by
a memory-mapped file, with DRAM limited well below the working set.  The
same code runs on three substrates: plain DRAM (malloc), Linux mmap, and
Aquila — only the heap construction differs, which is the paper's point
about minimal application modifications.

Run:  python examples/graph_heap_extension.py
"""

from repro.bench.setups import make_aquila_stack, make_linux_stack
from repro.bench.report import Table
from repro.common import units
from repro.graph.ligra import ParallelBFS
from repro.graph.mmap_heap import DramHeap, MmapHeap
from repro.graph.rmat import make_rmat_csr
from repro.mmio.vma import MADV_RANDOM
from repro.sim.executor import SimThread

NUM_VERTICES = 12500
EDGE_FACTOR = 10
THREADS = 8


def build_heap(kind: str, heap_pages: int, cache_pages: int):
    """The only code that changes between substrates."""
    setup = SimThread(core=0)
    if kind == "dram":
        return DramHeap((heap_pages + 16) * units.PAGE_SIZE), setup, None
    maker = make_linux_stack if kind == "linux-mmap" else make_aquila_stack
    stack = maker("pmem", cache_pages, capacity_bytes=512 * units.MIB)
    file = stack.allocator.create("graph-heap", (heap_pages + 16) * units.PAGE_SIZE)
    mapping = stack.engine.mmap(setup, file)
    mapping.madvise(setup, MADV_RANDOM)
    return MmapHeap(mapping), setup, stack


def main() -> None:
    graph = make_rmat_csr(NUM_VERTICES, EDGE_FACTOR, seed=42)
    root = graph.largest_out_degree_vertex()
    heap_bytes = 8 * (2 * NUM_VERTICES + 1 + NUM_VERTICES * EDGE_FACTOR)
    heap_pages = units.pages(heap_bytes) + 8
    cache_pages = max(32, int(heap_pages * 8 / 18))   # the paper's 8GB:18GB ratio

    print(
        f"R-MAT graph: {graph.num_vertices} vertices, {graph.num_edges} edges\n"
        f"heap: {heap_pages} pages; DRAM cache: {cache_pages} pages "
        f"(~{100 * cache_pages // heap_pages}% of the heap)\n"
    )

    table = Table(
        f"BFS execution time, {THREADS} threads",
        ["substrate", "time (ms)", "rounds", "visited", "faults", "slowdown vs DRAM"],
    )
    baseline = None
    for kind in ("dram", "linux-mmap", "aquila"):
        heap, setup, stack = build_heap(kind, heap_pages, cache_pages)
        threads = [SimThread(core=i) for i in range(THREADS)]
        bfs = ParallelBFS(heap, graph, threads, setup_thread=setup)
        result = bfs.run(root)
        millis = units.cycles_to_seconds(result.makespan_cycles) * 1000
        if kind == "dram":
            baseline = millis
        table.add_row(
            kind,
            millis,
            result.rounds,
            result.visited,
            stack.engine.faults if stack else 0,
            millis / baseline,
        )
    table.show()

    print(
        "Aquila narrows the gap to in-memory execution — the paper's\n"
        "Figure 6 conclusion: large heaps over fast storage become practical\n"
        "without redesigning the application for explicit I/O."
    )


if __name__ == "__main__":
    main()

"""Shared cache-page record used by all DRAM cache implementations."""

from __future__ import annotations

from typing import Optional, Set

from typing import TYPE_CHECKING

if TYPE_CHECKING:   # break the cache <-> mmio import cycle
    from repro.mmio.files import BackingFile


class CachePage:
    """One resident page of file data.

    ``mapped_vpns`` is the full reverse mapping (which virtual pages point
    at this frame) — FastMap-style, so eviction can tear down exactly the
    affected PTEs (paper Section 7.2).  ``owner_core`` records which
    per-core dirty tree holds the page while dirty.
    """

    __slots__ = ("file", "file_page", "frame", "dirty", "mapped_vpns", "owner_core")

    def __init__(self, file: "BackingFile", file_page: int, frame: int) -> None:
        self.file = file
        self.file_page = file_page
        self.frame = frame
        self.dirty = False
        self.mapped_vpns: Set[int] = set()
        self.owner_core: Optional[int] = None

    @property
    def key(self) -> tuple:
        """Cache key: (file id, file page)."""
        return (self.file.file_id, self.file_page)

    @property
    def device_offset(self) -> int:
        """Device byte offset of this page's data."""
        return self.file.device_offset(self.file_page)

    def __repr__(self) -> str:
        flag = "D" if self.dirty else "C"
        return f"CachePage(file={self.file.file_id}, page={self.file_page}, {flag})"

"""Parallel paper-sweep orchestrator with resumable run manifests.

``python -m repro.bench sweep`` enumerates every figure cell of the
paper's evaluation as an independent, seed-deterministic work unit
(each experiment module exposes ``enumerate_cells``), fans the units out
across a multiprocess worker pool, and merges results through a
content-addressed **run manifest**: an append-only JSON-lines file where
every completed cell records its id, config digest, state digest,
latency-stat payload, wall time, and worker attempts.

Determinism contract (DESIGN.md §9): a cell's state digest is a pure
function of its params.  Each unit resets the global ``SimThread`` /
``BackingFile`` id counters, builds a fresh stack, and derives every
random stream from seeds in its params, so the digest does not depend on
which worker ran it, what ran before it in that process, or how many
workers the sweep used — a 4-way-sharded sweep produces per-cell digests
bit-identical to a serial run (``tests/bench/test_sweep_digests.py``).

Resumability: a crashed or interrupted sweep is restarted with
``--resume``; manifest-complete cells (same cell id *and* config digest)
are skipped, everything else re-runs.  The manifest is written one
fsynced line per cell, so at most the in-flight cells are lost to a
crash.  Failed cells are retried inside the worker with the
:mod:`repro.fault.retry` backoff machinery (wall-clock backoff at the
simulated cycle scale) and surfaced in the summary — never swallowed.
A completed cell whose fresh state digest disagrees with a prior
manifest entry for the same config is reported as a **mismatch** (a
determinism violation) and fails the sweep.

Telemetry (DESIGN.md §10): by default every cell executes inside
isolated tracer/registry scopes and ships a structured telemetry
snapshot (:mod:`repro.obs.events`) back through its manifest record —
per-stage cycle attribution, metrics, histogram summaries, span counts,
retries, wall time.  The isolation is the worker-reuse guarantee: a
pooled process that runs many cells gives each one a fresh registry and
span ring, so no counter can leak between cells.  Telemetry is
observational — state digests are identical with it on or off — and its
deterministic view is byte-identical across reruns of the same cell.
``--profile`` additionally wraps each cell in cProfile and writes
content-addressed artifacts next to the manifest
(:mod:`repro.obs.profiling`); ``--dashboard`` renders the aggregation
stream live (:mod:`repro.obs.dashboard`).
"""

from __future__ import annotations

import importlib
import json
import os
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.common import units
from repro.sim.conformance import hash_digest

#: Manifest schema version (bump on incompatible record changes).
MANIFEST_SCHEMA = 1

#: Default manifest location — the committed figure-scale artifact that
#: ``python -m repro.bench report`` regenerates EXPERIMENTS.md from.
DEFAULT_MANIFEST = "benchmarks/MANIFEST_sweep.jsonl"

#: Experiment modules providing ``enumerate_cells`` / ``run_sweep_cell``,
#: keyed by runner name, in sweep order.
FIGURE_MODULES = {
    "fig5": "repro.bench.experiments.fig5",
    "fig6": "repro.bench.experiments.fig6",
    "fig7": "repro.bench.experiments.fig7",
    "fig8": "repro.bench.experiments.fig8",
    "fig9": "repro.bench.experiments.fig9",
    "fig10": "repro.bench.experiments.fig10",
    "serve": "repro.bench.experiments.serve",
    "cluster": "repro.bench.experiments.cluster",
}


def _module_for(runner: str):
    return importlib.import_module(FIGURE_MODULES[runner])


class WallClock:
    """A wall-time clock speaking the simulator's clock protocol.

    The orchestrator lives in real time, but the retry machinery
    (:func:`repro.fault.retry.with_retries`) and the tracer expect a
    clock with ``now`` and ``charge``.  ``now`` counts *wall* cycles
    (elapsed seconds x the simulated CPU frequency) so orchestrator
    spans export to Chrome traces with real microsecond timestamps, and
    ``charge`` sleeps the charged cycles — exponential retry backoff at
    honest (microsecond) scale.
    """

    owner_name = "sweep"

    def __init__(self) -> None:
        self.now = 0.0
        self._obs_track = None
        self._obs_span = None

    def charge(self, category: str, cycles: float) -> None:
        """Advance by ``cycles`` wall-cycles, sleeping them for real."""
        if self._obs_span is not None:
            self._obs_span.charge(category, cycles)
        self.now += cycles
        time.sleep(cycles / units.CPU_FREQ_HZ)


def enumerate_cells(
    figures: Optional[List[str]] = None, scale: str = "figure"
) -> List[Dict]:
    """Every sweep work unit, in deterministic order, with config digests.

    ``figures`` filters by prefix ("fig10" keeps fig10a and fig10b;
    "fig5b" keeps just that variant).  ``scale`` is "figure" (the paper
    grid) or "bench" (shrunk for tests/CI).  Each returned dict carries
    ``cell_id``, ``figure``, ``runner``, ``params``, and
    ``config_digest`` — the canonical hash of (cell id, runner, params),
    which is what makes manifest entries content-addressed.
    """
    if scale not in ("figure", "bench"):
        raise ValueError(f"unknown scale {scale!r} (use 'figure' or 'bench')")
    cells: List[Dict] = []
    for runner in FIGURE_MODULES:
        for cell in _module_for(runner).enumerate_cells(scale):
            cell = dict(cell)
            cell["runner"] = runner
            cell["config_digest"] = hash_digest(
                {
                    "cell_id": cell["cell_id"],
                    "runner": runner,
                    "params": cell["params"],
                }
            )
            cells.append(cell)
    if figures:
        for token in figures:
            if not any(
                c["figure"].startswith(token) or c["runner"] == token for c in cells
            ):
                known = ", ".join(sorted(FIGURE_MODULES))
                raise ValueError(
                    f"--figures {token!r} matches no cells (figures: {known})"
                )
        cells = [
            c
            for c in cells
            if any(c["figure"].startswith(f) or c["runner"] == f for f in figures)
        ]
    return cells


def _jsonable(obj):
    """``obj`` with JSON-safe containers (tuples become lists)."""
    return json.loads(json.dumps(obj, default=str))


def _run_cell_observed(cell: Dict, telemetry: bool, profile_dir: Optional[str]):
    """Run a cell inside isolated obs scopes; returns (out, wall, extras).

    The isolated tracer/registry scopes are the worker-reuse lifecycle
    guarantee: each cell sees an empty span ring and an empty registry
    (plus a freshly reset process-wide lock aggregate), and the outer
    state — the orchestrator's own counters, in serial mode — is
    restored untouched on exit.  Telemetry collection happens inside the
    scope so the snapshot covers exactly this cell.
    """
    from repro import obs
    from repro.obs import events as obs_events
    from repro.obs import profiling as obs_profiling
    from repro.sim.locks import LOCK_STATS

    module = _module_for(cell["runner"])
    extras: Dict = {}
    with obs.TRACER.isolated(enable=True), obs.METRICS.isolated(enable=True):
        LOCK_STATS.reset()
        obs.METRICS.bind_object(
            "locks",
            LOCK_STATS,
            {
                "acquisitions": "acquisitions",
                "contended": "contended",
                "wait_cycles": "wait_cycles",
            },
        )
        start = time.perf_counter()
        if profile_dir:
            out, profiler = obs_profiling.profile_call(
                module.run_sweep_cell, dict(cell["params"])
            )
        else:
            out = module.run_sweep_cell(dict(cell["params"]))
        wall = time.perf_counter() - start
        attribution = obs.CycleAttribution.from_tracer(obs.TRACER)
        if telemetry:
            snapshot = obs_events.collect_cell_telemetry(wall_seconds=wall)
            extras["telemetry"] = _jsonable(snapshot)
            extras["telemetry_digest"] = obs_events.telemetry_digest(snapshot)
        if profile_dir:
            extras["profile"] = obs_profiling.write_profile_artifacts(
                profile_dir,
                cell["config_digest"],
                profiler,
                hotspots=obs_profiling.span_hotspots(attribution),
                cell_id=cell["cell_id"],
            )
    return out, wall, extras


def _execute_cell(cell: Dict) -> Dict:
    """One hermetic cell execution (no retry): reset ids, run, digest.

    Observability options ride in the cell dict's reserved ``obs`` key
    (set by :func:`run_sweep`, never part of the config digest):
    ``telemetry`` (default on) collects a per-cell snapshot inside
    isolated obs scopes; ``profile_dir`` wraps the cell in cProfile and
    writes content-addressed artifacts there.
    """
    from repro.mmio.files import BackingFile
    from repro.sim.executor import SimThread

    SimThread.reset_ids()
    BackingFile.reset_ids()
    opts = cell.get("obs") or {}
    telemetry = opts.get("telemetry", True)
    profile_dir = opts.get("profile_dir")
    if telemetry or profile_dir:
        out, wall, extras = _run_cell_observed(cell, telemetry, profile_dir)
    else:
        module = _module_for(cell["runner"])
        start = time.perf_counter()
        out = module.run_sweep_cell(dict(cell["params"]))
        wall = time.perf_counter() - start
        extras = {}
    state = out["state"] if out.get("state") is not None else out["payload"]
    record = {
        "kind": "cell",
        "cell_id": cell["cell_id"],
        "figure": cell["figure"],
        "runner": cell["runner"],
        "config_digest": cell["config_digest"],
        "state_digest": hash_digest(state),
        "payload": _jsonable(out["payload"]),
        "wall_seconds": round(wall, 6),
        "status": "ok",
    }
    record.update(extras)
    return record


def run_unit(cell: Dict) -> Dict:
    """Run one work unit with retry; always returns a manifest record.

    This is the function worker processes execute.  Failures inside the
    cell are wrapped as transient faults and retried through
    :func:`repro.fault.retry.with_retries` (same policy, counters and
    ``fault.retry`` spans as the simulated I/O paths, on a
    :class:`WallClock`); a cell still failing after the last attempt
    comes back as a ``status: "failed"`` record — surfaced, not raised,
    so one bad cell never kills the pool.
    """
    from repro.common.errors import DeviceError, TransientDeviceError
    from repro.fault.retry import with_retries

    attempts = 0

    def attempt():
        nonlocal attempts
        attempts += 1
        try:
            return _execute_cell(cell)
        except Exception as exc:
            raise TransientDeviceError(f"{cell['cell_id']}: {exc!r}") from exc

    try:
        entry = with_retries(WallClock(), attempt, category="sweep.cell")
    except DeviceError as exc:
        entry = {
            "kind": "cell",
            "cell_id": cell["cell_id"],
            "figure": cell["figure"],
            "runner": cell["runner"],
            "config_digest": cell["config_digest"],
            "status": "failed",
            "error": str(exc),
        }
    entry["attempts"] = attempts
    entry["worker_pid"] = os.getpid()
    return entry


# -- manifest ------------------------------------------------------------------


def load_manifest(path: str) -> List[Dict]:
    """All parseable records of a manifest file, oldest first.

    A truncated final line (the signature of a crash mid-write) is
    skipped, not fatal — that is what makes the manifest resumable.
    """
    records = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError:
                continue
    return records


def index_manifest(records: List[Dict]) -> Dict[str, Dict]:
    """Latest ``status: ok`` cell record per cell id."""
    index: Dict[str, Dict] = {}
    for record in records:
        if record.get("kind") == "cell" and record.get("status") == "ok":
            index[record["cell_id"]] = record
    return index


def sweep_digest(index: Dict[str, Dict]) -> str:
    """The sweep-level hash: canonical digest of every cell's state hash.

    Per-cell digests compose: since each cell's state digest is a pure
    function of its params, the sorted (cell id, state digest) list — and
    therefore this hash — is identical for serial and sharded runs.
    """
    return hash_digest(
        sorted((cid, entry["state_digest"]) for cid, entry in index.items())
    )


@dataclass
class SweepResult:
    """Outcome of one :func:`run_sweep` invocation."""

    entries: List[Dict] = field(default_factory=list)   # cells run this time
    skipped: List[Dict] = field(default_factory=list)   # manifest-complete
    failed: List[str] = field(default_factory=list)     # cell ids
    mismatched: List[str] = field(default_factory=list)  # cell ids
    wall_seconds: float = 0.0
    cpu_seconds: float = 0.0
    workers: int = 1
    sweep_digest: str = ""
    manifest_path: str = ""

    @property
    def ok(self) -> bool:
        """True iff no cell failed and no digest mismatched."""
        return not self.failed and not self.mismatched

    def digests(self) -> Dict[str, str]:
        """cell id -> state digest for every completed cell (run or skipped)."""
        out = {e["cell_id"]: e["state_digest"] for e in self.skipped}
        out.update(
            (e["cell_id"], e["state_digest"])
            for e in self.entries
            if e["status"] == "ok"
        )
        return out


def _append(handle, record: Dict) -> None:
    handle.write(json.dumps(record, sort_keys=True) + "\n")
    handle.flush()
    os.fsync(handle.fileno())


def run_sweep(
    figures: Optional[List[str]] = None,
    scale: str = "figure",
    workers: int = 1,
    manifest_path: str = DEFAULT_MANIFEST,
    resume: bool = False,
    verify: bool = False,
    progress: Optional[Callable[[str], None]] = None,
    telemetry: bool = True,
    profile: bool = False,
    dashboard=None,
    history_path: Optional[str] = None,
    cell_filter: Optional[Callable[[Dict], bool]] = None,
) -> SweepResult:
    """Run the paper sweep; returns a :class:`SweepResult`.

    ``workers <= 1`` runs cells serially in-process (the digest baseline);
    ``workers > 1`` fans units out over a process pool.  With ``resume``,
    cells already in the manifest with a matching config digest are
    skipped; with ``verify`` they re-run anyway and their fresh digests
    are compared against the manifest (mismatches fail the sweep).
    Completed cells append to ``manifest_path`` immediately (one fsynced
    JSON line each); a summary record lands at the end.

    ``telemetry`` (default on) ships a per-cell obs snapshot in each
    record; ``profile`` writes cProfile + hotspot artifacts under
    ``<manifest dir>/profiles``; ``dashboard`` is a
    :class:`repro.obs.dashboard.SweepDashboard` fed the aggregation
    stream; ``history_path``, when set, appends a ``kind: "sweep"``
    trajectory record to that JSONL file after the summary.

    ``cell_filter``, when set, keeps only cells it returns truthy for
    (applied after figure/scale enumeration) — how the CLI narrows the
    cluster family to one shard count (``--cluster-shards``).
    """
    from repro import obs
    from repro.obs.dashboard import SweepDashboard

    say = progress if progress is not None else (lambda message: None)
    dash = dashboard if dashboard is not None else SweepDashboard()
    cells = enumerate_cells(figures, scale)
    if cell_filter is not None:
        cells = [cell for cell in cells if cell_filter(cell)]
    prior_records: List[Dict] = []
    resuming = resume and os.path.exists(manifest_path)
    if resuming:
        prior_records = load_manifest(manifest_path)
    prior = index_manifest(prior_records)

    to_run, result = [], SweepResult(workers=max(1, workers), manifest_path=manifest_path)
    for cell in cells:
        prev = prior.get(cell["cell_id"])
        if (
            prev is not None
            and prev["config_digest"] == cell["config_digest"]
            and not verify
        ):
            result.skipped.append(prev)
        else:
            to_run.append(cell)
    profile_dir = None
    if profile:
        profile_dir = os.path.join(os.path.dirname(manifest_path) or ".", "profiles")
    for cell in to_run:
        # Reserved key, never part of the config digest (computed above).
        cell["obs"] = {"telemetry": telemetry, "profile_dir": profile_dir}
    say(
        f"sweep: {len(cells)} cells ({len(result.skipped)} complete in manifest, "
        f"{len(to_run)} to run), {result.workers} worker(s), scale={scale}"
    )
    dash.start(len(cells), len(to_run), len(result.skipped), result.workers, scale)

    clock = WallClock()
    completed_counter = obs.METRICS.counter(
        "sweep.cells.completed", help="sweep cells completed ok"
    )
    failed_counter = obs.METRICS.counter(
        "sweep.cells.failed", help="sweep cells failed after retries"
    )
    retry_counter = obs.METRICS.counter(
        "sweep.cells.retries", help="extra attempts spent on sweep cells"
    )
    wall_hist = obs.METRICS.histogram(
        "sweep.cell.wall_us",
        buckets=tuple(float(10**i) for i in range(2, 9)),
        help="per-cell wall time (microseconds)",
    )

    start = time.perf_counter()

    def handle(entry: Dict, handle_file) -> None:
        _append(handle_file, entry)
        result.entries.append(entry)
        dash.cell_finished(entry)
        if entry["status"] != "ok":
            result.failed.append(entry["cell_id"])
            failed_counter.inc()
            say(f"  FAILED {entry['cell_id']}: {entry.get('error', '?')}")
            return
        completed_counter.inc()
        retry_counter.inc(max(0, entry.get("attempts", 1) - 1))
        wall_hist.observe(entry["wall_seconds"] * 1e6)
        result.cpu_seconds += entry["wall_seconds"]
        prev = prior.get(entry["cell_id"])
        if (
            prev is not None
            and prev["config_digest"] == entry["config_digest"]
            and prev["state_digest"] != entry["state_digest"]
        ):
            result.mismatched.append(entry["cell_id"])
            say(
                f"  MISMATCH {entry['cell_id']}: state {entry['state_digest'][:16]} "
                f"!= manifest {prev['state_digest'][:16]}"
            )
            return
        if obs.TRACER.enabled:
            end_now = (time.perf_counter() - start) * units.CPU_FREQ_HZ
            clock.now = end_now - entry["wall_seconds"] * units.CPU_FREQ_HZ
            with obs.TRACER.span(f"sweep.cell:{entry['cell_id']}", clock):
                clock.now = end_now
        say(
            f"  ok {entry['cell_id']}  {entry['wall_seconds']:.2f}s"
            + (f"  (attempt {entry['attempts']})" if entry.get("attempts", 1) > 1 else "")
        )

    with open(manifest_path, "a" if resuming else "w") as handle_file:
        _append(
            handle_file,
            {
                "kind": "header",
                "schema": MANIFEST_SCHEMA,
                "scale": scale,
                "workers": result.workers,
                "cpu_count": os.cpu_count(),
                "resumed": resuming,
                "cells_total": len(cells),
                "cells_to_run": len(to_run),
            },
        )
        if result.workers <= 1:
            for cell in to_run:
                dash.cell_submitted(cell["cell_id"])
                handle(run_unit(cell), handle_file)
        else:
            import multiprocessing as mp
            from concurrent.futures import ProcessPoolExecutor, as_completed

            methods = mp.get_all_start_methods()
            ctx = mp.get_context("fork" if "fork" in methods else "spawn")
            with ProcessPoolExecutor(
                max_workers=result.workers, mp_context=ctx
            ) as pool:
                futures = []
                for cell in to_run:
                    futures.append(pool.submit(run_unit, cell))
                    dash.cell_submitted(cell["cell_id"])
                for future in as_completed(futures):
                    handle(future.result(), handle_file)

        result.wall_seconds = time.perf_counter() - start
        index = index_manifest(prior_records + result.entries)
        result.sweep_digest = sweep_digest(index)
        _append(
            handle_file,
            {
                "kind": "summary",
                "completed": sum(1 for e in result.entries if e["status"] == "ok"),
                "skipped": len(result.skipped),
                "failed": sorted(result.failed),
                "mismatched": sorted(result.mismatched),
                "wall_seconds": round(result.wall_seconds, 6),
                "cpu_seconds": round(result.cpu_seconds, 6),
                "workers": result.workers,
                "sweep_digest": result.sweep_digest,
            },
        )
    dash.finish(result)
    if history_path:
        append_sweep_history(history_path, result, scale=scale)
    say(
        f"sweep: {len(result.entries)} ran, {len(result.skipped)} skipped, "
        f"{len(result.failed)} failed, {len(result.mismatched)} mismatched in "
        f"{result.wall_seconds:.1f}s wall ({result.cpu_seconds:.1f}s cell time); "
        f"digest {result.sweep_digest[:16]}"
    )
    return result


def append_sweep_history(history_path: str, result: SweepResult, scale: str) -> Dict:
    """Append one ``kind: "sweep"`` trajectory record; returns the record.

    The record aggregates per-cell telemetry into sweep-level stage
    cycles/shares (:func:`repro.obs.events.merge_stage_cycles`) so
    consecutive records in ``BENCH_history.jsonl`` can be diffed to
    attribute a wall-time or digest shift to the stage that moved.
    """
    from repro.obs import events as obs_events

    snapshots = [
        entry["telemetry"]
        for entry in result.entries
        if entry.get("status") == "ok" and entry.get("telemetry")
    ]
    stage_cycles = obs_events.merge_stage_cycles(snapshots)
    record = {
        "kind": "sweep",
        "schema": MANIFEST_SCHEMA,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "scale": scale,
        "workers": result.workers,
        "sweep_digest": result.sweep_digest,
        "cells_ran": len(result.entries),
        "cells_skipped": len(result.skipped),
        "cells_failed": sorted(result.failed),
        "cells_mismatched": sorted(result.mismatched),
        "wall_seconds": round(result.wall_seconds, 6),
        "cpu_seconds": round(result.cpu_seconds, 6),
        "stage_cycles": stage_cycles,
        "stage_shares": obs_events.stage_shares(
            {"attribution": {"stages": stage_cycles}}
        ),
    }
    directory = os.path.dirname(history_path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(history_path, "a") as handle:
        _append(handle, record)
    return record

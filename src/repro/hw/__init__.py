"""Simulated hardware: topology, TLBs, page tables, EPT, VMX, IPIs, FPU."""

from repro.hw.ept import EPT
from repro.hw.fpu import FPUContext
from repro.hw.ipi import InterferenceAccount, ShootdownController
from repro.hw.machine import Machine
from repro.hw.page_table import PTE, PageTable
from repro.hw.tlb import TLB
from repro.hw.topology import DEFAULT_TOPOLOGY, Topology
from repro.hw.vmx import ExecutionDomain, VMXCostModel

__all__ = [
    "EPT",
    "FPUContext",
    "InterferenceAccount",
    "ShootdownController",
    "Machine",
    "PTE",
    "PageTable",
    "TLB",
    "DEFAULT_TOPOLOGY",
    "Topology",
    "ExecutionDomain",
    "VMXCostModel",
]

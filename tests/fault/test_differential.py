"""Property-based cross-engine differential tests.

One seed-generated random workload of mmap writes/reads/syncs is
replayed through all four engines (Aquila, Linux mmap, kmmap, explicit
I/O); every read and the final durable device state must be
byte-identical across engines.  200+ generated cases, deterministic by
seed; a slice of them re-run under an injected fault plan, where retries
must keep the functional results unchanged.
"""

import pytest

from repro.common import units
from repro.fault.differential import (
    ENGINE_KINDS,
    generate_workload,
    run_differential,
    run_engine,
)
from repro.fault.plan import FaultPlan, FaultSpec, clear_plan

#: 200 clean generated cases, in batches to keep pytest output readable.
CLEAN_BATCHES = 10
CASES_PER_BATCH = 20

#: Deliberately small cases so the full property sweep stays fast.
CASE_KWARGS = dict(num_ops=12, cache_pages=64, file_bytes=16 * units.PAGE_SIZE)

FAULTY_SPEC = FaultSpec(error_rate=0.02, latency_rate=0.02, torn_rate=0.01)


@pytest.fixture(autouse=True)
def _clean_plan():
    yield
    clear_plan()


class TestWorkloadGeneration:
    def test_deterministic_by_seed(self):
        assert generate_workload(5, num_ops=40) == generate_workload(5, num_ops=40)

    def test_different_seeds_differ(self):
        assert generate_workload(5, num_ops=40) != generate_workload(6, num_ops=40)

    def test_ops_stay_in_bounds(self):
        for op in generate_workload(9, num_ops=200, file_bytes=8 * units.PAGE_SIZE):
            if op.kind in ("write", "read"):
                assert 0 <= op.offset
                assert op.offset + max(op.nbytes, len(op.data)) <= 8 * units.PAGE_SIZE


class TestCleanDifferential:
    @pytest.mark.parametrize("batch", range(CLEAN_BATCHES))
    def test_all_engines_agree(self, batch):
        for case in range(CASES_PER_BATCH):
            seed = batch * CASES_PER_BATCH + case
            result = run_differential(seed, **CASE_KWARGS)
            assert result.ok, f"seed {seed}: {result.mismatches}"

    def test_engine_list_is_the_paper_matrix(self):
        assert set(ENGINE_KINDS) == {"aquila", "linux", "kmmap", "explicit"}


class TestFaultyDifferential:
    @pytest.mark.parametrize("batch", range(4))
    def test_faults_do_not_change_functional_results(self, batch):
        """Retries absorb transient faults: results equal, only cycles move."""
        for case in range(5):
            seed = 1000 + batch * 5 + case
            result = run_differential(seed, fault_spec=FAULTY_SPEC, **CASE_KWARGS)
            assert result.ok, f"seed {seed}: {result.mismatches}"

    def test_faulty_run_matches_clean_run_functionally(self):
        seed = 4242
        clean = run_differential(seed, **CASE_KWARGS)
        faulty = run_differential(seed, fault_spec=FAULTY_SPEC, **CASE_KWARGS)
        for kind in ENGINE_KINDS:
            assert faulty.runs[kind].reads == clean.runs[kind].reads
            assert faulty.runs[kind].durable == clean.runs[kind].durable


class TestDeterminism:
    def test_same_seed_identical_everything(self):
        """Same seed + plan => byte-identical results AND cycle totals."""
        runs = [
            run_differential(77, fault_spec=FAULTY_SPEC, **CASE_KWARGS)
            for _ in range(2)
        ]
        for kind in ENGINE_KINDS:
            first, second = runs[0].runs[kind], runs[1].runs[kind]
            assert first.reads == second.reads
            assert first.durable == second.durable
            assert first.cycles == second.cycles
            assert first.fault_summary == second.fault_summary

    def test_fault_schedule_identical_across_runs(self):
        ops = generate_workload(8, **{k: CASE_KWARGS[k] for k in ("num_ops", "file_bytes")})
        schedules = []
        for _ in range(2):
            plan = FaultPlan(8, FAULTY_SPEC)
            run_engine("aquila", ops, fault_plan=plan,
                       cache_pages=64, file_bytes=16 * units.PAGE_SIZE)
            schedules.append(plan.schedule())
        assert schedules[0] == schedules[1]

"""The two-level (core/NUMA) batched freelist."""

import pytest

from repro.hw.topology import Topology
from repro.mem.frames import FramePool
from repro.mem.freelist import TwoLevelFreelist
from repro.sim.clock import CycleClock


def _freelist(total=256, cores=4, move_batch=16, threshold=8):
    pool = FramePool(total, numa_nodes=2)
    topo = Topology(sockets=2, cores_per_socket=cores // 2, threads_per_core=1)
    return (
        TwoLevelFreelist(
            pool,
            cores,
            topo.numa_node_of,
            move_batch=move_batch,
            core_threshold=threshold,
        ),
        pool,
    )


class TestAllocation:
    def test_all_frames_initially_free(self):
        freelist, pool = _freelist(100)
        assert freelist.free_count() == 100

    def test_allocate_marks_allocated(self):
        freelist, pool = _freelist()
        clock = CycleClock()
        frame = freelist.allocate(clock, core=0)
        assert frame is not None
        assert pool.is_allocated(frame)
        assert freelist.free_count() == 255

    def test_refill_pulls_batch_to_core(self):
        freelist, _ = _freelist(move_batch=16)
        clock = CycleClock()
        freelist.allocate(clock, core=0)
        # One frame consumed, 15 remain parked on core 0's queue.
        assert freelist.core_queue_len(0) == 15
        assert freelist.batch_moves == 1

    def test_local_numa_preferred(self):
        freelist, pool = _freelist(total=256)
        clock = CycleClock()
        # Core 0 is NUMA node 0; frames 0..127 are node 0.
        frame = freelist.allocate(clock, core=0)
        assert pool.node_of(frame) == 0
        # A node-1 core pulls node-1 frames first.
        frame = freelist.allocate(clock, core=3)
        assert pool.node_of(frame) == 1

    def test_falls_back_to_remote_node(self):
        freelist, pool = _freelist(total=64, move_batch=64)
        clock = CycleClock()
        # Drain node 0 entirely from core 0.
        taken = [freelist.allocate(clock, 0) for _ in range(32)]
        assert all(pool.node_of(f) == 0 for f in taken)
        # Next allocation for core 0 must come from node 1.
        frame = freelist.allocate(clock, 0)
        assert pool.node_of(frame) == 1

    def test_exhaustion_returns_none(self):
        freelist, _ = _freelist(total=8, move_batch=8)
        clock = CycleClock()
        for _ in range(8):
            assert freelist.allocate(clock, 0) is not None
        assert freelist.allocate(clock, 0) is None


class TestFree:
    def test_free_goes_to_core_queue(self):
        freelist, _ = _freelist(threshold=64)   # high threshold: no spill
        clock = CycleClock()
        frame = freelist.allocate(clock, core=1)
        base = freelist.core_queue_len(1)
        freelist.free(clock, core=1, frame=frame)
        assert freelist.core_queue_len(1) == base + 1

    def test_spill_over_threshold(self):
        freelist, _ = _freelist(threshold=4, move_batch=4)
        clock = CycleClock()
        frames = [freelist.allocate(clock, 0) for _ in range(8)]
        node_before = freelist.node_queue_len(0)
        for frame in frames:
            freelist.free(clock, 0, frame)
        # The core queue spilled batches back to the NUMA queue.
        assert freelist.core_queue_len(0) <= 4 + 4
        assert freelist.node_queue_len(0) > node_before - 8

    def test_freed_frames_reusable_cross_core(self):
        freelist, _ = _freelist(total=8, move_batch=8, threshold=1)
        clock = CycleClock()
        frames = [freelist.allocate(clock, 0) for _ in range(8)]
        for frame in frames:
            freelist.free(clock, 0, frame)
        # Another core can now allocate (frames spilled to NUMA queues).
        assert freelist.allocate(clock, 2) is not None


class TestResizeSupport:
    def test_add_frames(self):
        freelist, pool = _freelist(total=16)
        new = pool.grow(8)
        freelist.add_frames(new)
        assert freelist.free_count() == 24

    def test_take_free_frames(self):
        freelist, _ = _freelist(total=32, move_batch=8)
        taken = freelist.take_free_frames(10)
        assert len(taken) == 10
        assert freelist.free_count() == 22

    def test_take_more_than_free(self):
        freelist, _ = _freelist(total=4, move_batch=4)
        assert len(freelist.take_free_frames(100)) == 4


class TestAccounting:
    def test_conservation(self):
        """allocated + free == total, always."""
        import random

        freelist, pool = _freelist(total=64, move_batch=8, threshold=4)
        clock = CycleClock()
        rng = random.Random(3)
        held = []
        for _ in range(500):
            if held and rng.random() < 0.5:
                core, frame = held.pop(rng.randrange(len(held)))
                freelist.free(clock, core, frame)
            else:
                core = rng.randrange(4)
                frame = freelist.allocate(clock, core)
                if frame is not None:
                    held.append((core, frame))
            assert freelist.free_count() + len(held) == 64

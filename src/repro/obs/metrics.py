"""Process-wide named metrics: counters, gauges, histograms, pull-probes.

The :data:`METRICS` registry is disabled by default; every mutator
(``inc``/``set``/``observe``) returns after one branch when disabled, so
instrumented hot paths stay cheap.  Two styles of metric coexist:

* **push** primitives (:class:`Counter`, :class:`Gauge`,
  :class:`Histogram`) for new event streams;
* **pull probes** (:meth:`MetricsRegistry.bind_object`) exposing the
  attribute counters components already keep (engine fault counts, cache
  hits, device totals), sampled only at :meth:`MetricsRegistry.snapshot`
  time — zero hot-path cost.

Components auto-bind themselves at construction; binding is a no-op
unless the registry is enabled, so enable (and usually :meth:`reset`)
*before* building the stack you want observed.

Metric names are dotted lowercase paths (``engine.aquila.faults.major``);
label-like variants go in the path, and duplicate prefixes from repeated
construction get a ``#N`` suffix so snapshots stay unambiguous.
"""

from __future__ import annotations

from bisect import bisect_left
from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple, Union

#: Counters wrap like 64-bit hardware counters rather than growing
#: unboundedly (and so that overflow semantics are defined and testable).
COUNTER_WRAP = 1 << 64

#: Default latency-histogram bucket bounds, in cycles (512 .. ~8M).
DEFAULT_CYCLE_BUCKETS = tuple(float(1 << i) for i in range(9, 24))


class Counter:
    """A monotonically increasing count (wraps at 2**64)."""

    __slots__ = ("name", "help", "value", "_registry")

    def __init__(self, name: str, registry: "MetricsRegistry", help: str = "") -> None:
        self.name = name
        self.help = help
        self.value = 0
        self._registry = registry

    def inc(self, n: Union[int, float] = 1) -> None:
        """Add ``n`` (must be non-negative) to the counter."""
        if not self._registry.enabled:
            return
        if n < 0:
            raise ValueError(f"counter {self.name} cannot decrease (n={n})")
        value = self.value + n
        self.value = value - COUNTER_WRAP if value >= COUNTER_WRAP else value

    def reset(self) -> None:
        """Zero the counter."""
        self.value = 0


class Gauge:
    """A value that can go up and down."""

    __slots__ = ("name", "help", "value", "_registry")

    def __init__(self, name: str, registry: "MetricsRegistry", help: str = "") -> None:
        self.name = name
        self.help = help
        self.value = 0.0
        self._registry = registry

    def set(self, value: float) -> None:
        """Set the gauge to ``value``."""
        if self._registry.enabled:
            self.value = value

    def add(self, delta: float) -> None:
        """Adjust the gauge by ``delta`` (either sign)."""
        if self._registry.enabled:
            self.value += delta

    def reset(self) -> None:
        """Zero the gauge."""
        self.value = 0.0


class Histogram:
    """Fixed-bucket distribution of observed values.

    ``buckets`` are ascending upper bounds; an observation lands in the
    first bucket whose bound is >= the value, or in the overflow slot.
    ``counts`` therefore has ``len(buckets) + 1`` entries.
    """

    __slots__ = ("name", "help", "buckets", "counts", "count", "sum", "_registry")

    def __init__(
        self,
        name: str,
        registry: "MetricsRegistry",
        buckets: Sequence[float] = DEFAULT_CYCLE_BUCKETS,
        help: str = "",
    ) -> None:
        bounds = [float(b) for b in buckets]
        if not bounds or sorted(bounds) != bounds:
            raise ValueError("buckets must be a non-empty ascending sequence")
        self.name = name
        self.help = help
        self.buckets = tuple(bounds)
        self.counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.sum = 0.0
        self._registry = registry

    def observe(self, value: float) -> None:
        """Record one observation."""
        if not self._registry.enabled:
            return
        self.counts[bisect_left(self.buckets, value)] += 1
        self.count += 1
        self.sum += value

    def observe_many(self, values) -> None:
        """Record a batch of observations."""
        for value in values:
            self.observe(value)

    def reset(self) -> None:
        """Zero all buckets."""
        self.counts = [0] * (len(self.buckets) + 1)
        self.count = 0
        self.sum = 0.0

    def mean(self) -> Optional[float]:
        """Mean of all observations, or ``None`` on an empty histogram."""
        return self.sum / self.count if self.count else None

    def quantile(self, q: float) -> Optional[float]:
        """Estimate the ``q``-quantile (0..1) from the bucket counts.

        The estimate interpolates linearly inside the bucket holding the
        target rank (between the previous bound — or 0 for the first
        bucket — and the bucket's own bound), which is the resolution a
        fixed-bucket histogram has.  Edge cases are defined rather than
        surprising: an empty histogram returns ``None``; a single sample
        returns its bucket estimate for every ``q`` (so p50 == p999); a
        rank landing in the overflow bucket returns the last finite
        bound, the only honest lower bound available.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile {q} outside [0, 1]")
        if self.count == 0:
            return None
        rank = max(1.0, q * self.count)
        cumulative = 0
        for index, bucket_count in enumerate(self.counts):
            if bucket_count == 0:
                continue
            before = cumulative
            cumulative += bucket_count
            if cumulative + 1e-12 >= rank:
                if index >= len(self.buckets):   # overflow slot
                    return self.buckets[-1]
                low = self.buckets[index - 1] if index > 0 else 0.0
                high = self.buckets[index]
                fraction = (rank - before) / bucket_count
                return low + fraction * (high - low)
        return self.buckets[-1]

    def summary(self) -> Dict[str, Optional[float]]:
        """Count, sum, mean and the standard tail quantile estimates."""
        return {
            "count": self.count,
            "sum": self.sum,
            "mean": self.mean(),
            "p50": self.quantile(0.50),
            "p90": self.quantile(0.90),
            "p99": self.quantile(0.99),
            "p999": self.quantile(0.999),
        }

    def as_dict(self) -> Dict[str, Any]:
        """Snapshot form: bounds, per-bucket counts, count and sum."""
        return {
            "buckets": list(zip(self.buckets, self.counts[:-1])),
            "overflow": self.counts[-1],
            "count": self.count,
            "sum": self.sum,
        }


class MetricsRegistry:
    """Name -> metric store with pull-probe collection."""

    def __init__(self) -> None:
        self.enabled = False
        self._metrics: Dict[str, Union[Counter, Gauge, Histogram]] = {}
        self._probes: Dict[str, Callable[[], float]] = {}
        self._prefixes: Dict[str, int] = {}

    # -- control ---------------------------------------------------------------

    def enable(self) -> None:
        """Turn the registry on (mutators and bindings become live)."""
        self.enabled = True

    def disable(self) -> None:
        """Turn the registry off (mutators and bindings become no-ops)."""
        self.enabled = False

    def reset(self) -> None:
        """Drop every metric and probe (fresh run)."""
        self._metrics = {}
        self._probes = {}
        self._prefixes = {}

    @contextmanager
    def isolated(self, enable: bool = True):
        """A scope with a fresh, private registry state; prior state restored.

        Sweep workers wrap each cell in this so a reused pooled process
        starts every cell with an empty registry (no counter leakage
        across cells) while the orchestrator's own counters — created in
        the outer state — survive untouched in serial mode.
        """
        saved = (self.enabled, self._metrics, self._probes, self._prefixes)
        self.enabled = enable
        self._metrics, self._probes, self._prefixes = {}, {}, {}
        try:
            yield self
        finally:
            self.enabled, self._metrics, self._probes, self._prefixes = saved

    # -- push metrics ------------------------------------------------------------

    def _get_or_create(self, name: str, kind, **kwargs):
        metric = self._metrics.get(name)
        if metric is None:
            metric = kind(name, self, **kwargs)
            self._metrics[name] = metric
        elif not isinstance(metric, kind):
            raise TypeError(
                f"metric {name!r} already registered as {type(metric).__name__}"
            )
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        """Get or create the counter ``name``."""
        return self._get_or_create(name, Counter, help=help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        """Get or create the gauge ``name``."""
        return self._get_or_create(name, Gauge, help=help)

    def histogram(
        self,
        name: str,
        buckets: Sequence[float] = DEFAULT_CYCLE_BUCKETS,
        help: str = "",
    ) -> Histogram:
        """Get or create the histogram ``name``."""
        return self._get_or_create(name, Histogram, buckets=buckets, help=help)

    # -- pull probes -------------------------------------------------------------

    def unique_prefix(self, prefix: str) -> str:
        """``prefix``, suffixed ``#N`` if already claimed by a bind."""
        count = self._prefixes.get(prefix, 0)
        self._prefixes[prefix] = count + 1
        return prefix if count == 0 else f"{prefix}#{count}"

    def register_probe(self, name: str, fn: Callable[[], float]) -> None:
        """Register a zero-argument callable sampled at snapshot time."""
        if not self.enabled:
            return
        self._probes[name] = fn

    def bind_object(
        self,
        prefix: str,
        obj: Any,
        fields: Dict[str, Union[str, Callable[[Any], float]]],
    ) -> None:
        """Expose attributes (or derivations) of ``obj`` as pull metrics.

        ``fields`` maps metric suffix -> attribute name or ``fn(obj)``.
        A no-op while the registry is disabled, so constructors can call
        this unconditionally.
        """
        if not self.enabled:
            return
        prefix = self.unique_prefix(prefix)
        for suffix, spec in fields.items():
            if callable(spec):
                fn = (lambda obj=obj, spec=spec: spec(obj))
            else:
                fn = (lambda obj=obj, spec=spec: getattr(obj, spec))
            self._probes[f"{prefix}.{suffix}"] = fn

    # -- collection ---------------------------------------------------------------

    def iter_metrics(self) -> Iterator[Tuple[str, Union[Counter, Gauge, Histogram]]]:
        """``(name, metric)`` pairs for every push metric, sorted by name."""
        return iter(sorted(self._metrics.items()))

    def iter_probes(self) -> Iterator[Tuple[str, Callable[[], float]]]:
        """``(name, fn)`` pairs for every registered probe, sorted by name."""
        return iter(sorted(self._probes.items()))

    def histograms(self) -> Dict[str, Histogram]:
        """Name -> :class:`Histogram` for every registered histogram."""
        return {
            name: metric
            for name, metric in self._metrics.items()
            if isinstance(metric, Histogram)
        }

    def snapshot(self) -> Dict[str, Any]:
        """Every metric's current value, sorted by name.

        Counters/gauges/probes yield numbers; histograms yield the
        :meth:`Histogram.as_dict` form.  A probe that raises (e.g. its
        source was torn down) reports ``None`` rather than failing the
        whole snapshot.
        """
        out: Dict[str, Any] = {}
        for name, metric in self._metrics.items():
            out[name] = metric.as_dict() if isinstance(metric, Histogram) else metric.value
        for name, fn in self._probes.items():
            try:
                out[name] = fn()
            except Exception:
                out[name] = None
        return dict(sorted(out.items()))


#: The process-wide registry every instrumented component binds to.
METRICS = MetricsRegistry()

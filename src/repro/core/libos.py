"""The Aquila library OS context (paper Section 4).

One :class:`Aquila` instance corresponds to one application process that
has entered Aquila mode.  It owns:

* the :class:`~repro.mmio.aquila.AquilaEngine` (page table, DRAM cache,
  fault handling) configured from an :class:`AquilaConfig`;
* the device-access path — DAX for pmem, SPDK + Blobstore for NVMe, or
  host syscalls for comparison (Section 3.3);
* the **system-call interception table** (Section 4.4): ``mmap``,
  ``munmap``, ``mremap``, ``madvise``, ``mprotect`` and ``msync`` are
  handled in non-root ring 0 as plain function calls; everything else is
  redirected to the host OS via vmcall;
* **dynamic cache resizing** through EPT granules (Section 3.5).

Applications need two integration points, mirroring the paper's
"minimal changes": ``enter()`` once at startup and
``register_thread()`` per thread.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.common import units
from repro.common.errors import ConfigError
from repro.core.config import AquilaConfig
from repro.devices.block import BlockDevice
from repro.devices.blobstore import Blobstore, FileBlobNamespace
from repro.devices.io_engines import DaxIO, HostSyscallIO, IOPath, SpdkIO
from repro.devices.pmem import PmemDevice
from repro.hw.ept import EPT
from repro.hw.machine import Machine
from repro.mmio.aquila import AquilaEngine
from repro.mmio.engine import Mapping
from repro.mmio.files import BackingFile, BlobFile, ExtentAllocator
from repro.sim.executor import SimThread

#: One-time cost of dune_init-style entry into non-root ring 0 (VMCS setup,
#: EPT install, page-table takeover) — charged once, off any hot path.
ENTER_COST_CYCLES = 2_000_000

#: Per-thread cost of switching a new thread into Aquila mode (vmlaunch).
THREAD_ENTER_COST_CYCLES = 50_000

#: System calls Aquila intercepts in non-root ring 0 (Section 4.4).
INTERCEPTED_SYSCALLS = frozenset(
    ["mmap", "munmap", "mremap", "madvise", "mprotect", "msync"]
)


class Aquila:
    """A process running under the Aquila library OS."""

    def __init__(
        self,
        machine: Machine,
        device: BlockDevice,
        config: Optional[AquilaConfig] = None,
    ) -> None:
        self.machine = machine
        self.device = device
        self.config = config if config is not None else AquilaConfig()
        self.config.validate()

        self.blobstore: Optional[Blobstore] = None
        self.namespace: Optional[FileBlobNamespace] = None
        self._extents: Optional[ExtentAllocator] = None
        io_path = self._build_io_path()

        ept = EPT(self.config.ept_granule) if self.config.use_ept else None
        self.engine = AquilaEngine(
            machine,
            cache_pages=self.config.cache_pages,
            io_path=io_path,
            eviction_batch=self.config.eviction_batch,
            shootdown_batch=self.config.shootdown_batch,
            freelist_move_batch=self.config.freelist_move_batch,
            freelist_core_threshold=self.config.freelist_core_threshold,
            readahead_pages=self.config.readahead_pages,
            ept=ept,
        )
        self._entered = False
        self._threads: Dict[int, SimThread] = {}
        self._files: Dict[str, BackingFile] = {}
        self.intercepted_calls = 0
        self.forwarded_calls = 0

    def _build_io_path(self) -> IOPath:
        if self.config.io_path == "dax":
            if not isinstance(self.device, PmemDevice):
                raise ConfigError("the DAX path requires a pmem device")
            return DaxIO(self.device, use_simd=self.config.use_simd_memcpy)
        if self.config.io_path == "spdk":
            self.blobstore = Blobstore(self.device)
            self.namespace = FileBlobNamespace(self.blobstore)
            return SpdkIO(self.device)
        # Host-syscall path: every I/O vmcalls into the host OS.  Uses its
        # own transition-cost model (same domain as the engine).
        from repro.hw.vmx import ExecutionDomain, VMXCostModel

        return HostSyscallIO(
            self.device, VMXCostModel(ExecutionDomain.NONROOT_RING0)
        )

    # -- lifecycle ----------------------------------------------------------

    def enter(self, thread: SimThread) -> None:
        """Initialize Aquila mode (the single call added to ``main``)."""
        if self._entered:
            return
        thread.clock.charge("aquila.enter", ENTER_COST_CYCLES)
        self._entered = True
        self.register_thread(thread)

    def register_thread(self, thread: SimThread) -> None:
        """Switch one application thread into non-root ring 0."""
        if thread.tid not in self._threads:
            thread.clock.charge("aquila.thread_enter", THREAD_ENTER_COST_CYCLES)
            self._threads[thread.tid] = thread

    @property
    def entered(self) -> bool:
        """Whether ``enter`` has run."""
        return self._entered

    # -- intercepted file / memory syscalls -----------------------------------

    def open(self, thread: SimThread, path: str, size_bytes: int = 0) -> BackingFile:
        """Resolve a file name to a backing file.

        With SPDK, ``open`` is intercepted and translated to a blob
        (Section 3.3); otherwise files are extents handed out by the host
        (a forwarded metadata operation).
        """
        existing = self._files.get(path)
        if existing is not None:
            return existing
        if self.namespace is not None:
            self.intercepted_calls += 1
            thread.clock.charge("aquila.open", 500)
            blob_id = self.namespace.open(path, create=True, size_bytes=size_bytes)
            file: BackingFile = BlobFile(path, self.blobstore, blob_id, size_bytes)
        else:
            # Metadata operations are forwarded to the host OS (Section 3.3).
            self.forwarded_calls += 1
            self.engine.vmx.syscall(thread.clock, "vmcall.open")
            if self._extents is None:
                self._extents = ExtentAllocator(self.device)
            file = self._extents.create(path, size_bytes)
        self._files[path] = file
        return file

    def mmap(
        self,
        thread: SimThread,
        file: BackingFile,
        num_pages: Optional[int] = None,
        file_start_page: int = 0,
    ) -> Mapping:
        """Intercepted mmap: handled in ring 0, no vmcall on this leg."""
        self.intercepted_calls += 1
        return self.engine.mmap(thread, file, num_pages, file_start_page)

    def syscall(self, thread: SimThread, name: str) -> bool:
        """Dispatch a named syscall; returns True when intercepted.

        Intercepted calls cost a function call; the rest vmcall into the
        host (Section 4.4).
        """
        if name in INTERCEPTED_SYSCALLS:
            self.intercepted_calls += 1
            thread.clock.charge("aquila.intercepted_syscall", 50)
            return True
        self.forwarded_calls += 1
        self.engine.vmx.syscall(thread.clock, f"vmcall.{name}")
        return False

    # -- dynamic cache resizing (Section 3.5) -----------------------------------

    def resize_cache(self, thread: SimThread, new_cache_pages: int) -> int:
        """Grow or shrink the DRAM cache in EPT-granule units.

        Growth: the host grants GPA ranges (one vmcall) and backing pages
        are installed lazily by EPT faults — cheap with 1 GB granules.
        Shrink: dirty victims are written back, pages evicted, granules
        revoked.  Returns the resulting capacity in pages.
        """
        if new_cache_pages <= 0:
            raise ConfigError("cache size must stay positive")
        cache = self.engine.cache
        current = cache.capacity_pages
        if new_cache_pages == current:
            return current
        self.engine.vmx.syscall(thread.clock, "vmcall.resize")
        if new_cache_pages > current:
            grown = cache.grow(new_cache_pages - current)
            if self.engine.ept is not None:
                self.engine.ept.grant(
                    grown[0] * units.PAGE_SIZE, len(grown) * units.PAGE_SIZE
                )
        else:
            needed = current - new_cache_pages
            while cache.freelist.free_count() < needed:
                self.engine._evict_batch(thread)
            shrunk = cache.shrink_free(needed)
            if self.engine.ept is not None and shrunk:
                # The host reclaims EPT backing only in whole granules
                # (1 GB in the paper's configuration): revoke a granule
                # only once every frame inside it has been retired.
                granule = self.engine.ept.granule_bytes
                pages_per_granule = max(1, granule // units.PAGE_SIZE)
                by_granule = {}
                for frame in shrunk:
                    index = frame * units.PAGE_SIZE // granule
                    by_granule.setdefault(index, []).append(frame)
                for index, frames in by_granule.items():
                    if len(frames) >= pages_per_granule:
                        self.engine.ept.revoke(index * granule, granule)
        return cache.capacity_pages

    # -- stats ------------------------------------------------------------------

    def cache_stats(self) -> Dict[str, int]:
        """Operational counters for reporting."""
        cache = self.engine.cache
        return {
            "capacity_pages": cache.capacity_pages,
            "resident_pages": cache.resident_pages(),
            "dirty_pages": cache.dirty_count(),
            "hits": cache.hits,
            "misses": cache.misses,
            "evictions": cache.evictions,
            "faults": self.engine.faults,
            "major_faults": self.engine.major_faults,
            "intercepted_calls": self.intercepted_calls,
            "forwarded_calls": self.forwarded_calls,
        }

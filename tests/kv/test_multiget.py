"""MultiGet: batched lookups, optionally over io_uring."""

import pytest

from repro.common import units
from repro.devices.io_uring import IoUring
from repro.devices.pmem import PmemDevice
from repro.hw.machine import Machine
from repro.hw.vmx import ExecutionDomain, VMXCostModel
from repro.kv.env import DirectIOEnv
from repro.kv.rocksdb import RocksDB
from repro.mmio.explicit import ExplicitIOEngine
from repro.mmio.files import ExtentAllocator
from repro.sim.executor import SimThread


def _db(with_uring: bool):
    device = PmemDevice(capacity_bytes=512 * units.MIB)
    machine = Machine()
    io = ExplicitIOEngine(machine, cache_pages=64)
    allocator = ExtentAllocator(device)
    ring = (
        IoUring(device, VMXCostModel(ExecutionDomain.ROOT_RING3), queue_depth=64)
        if with_uring
        else None
    )
    env = DirectIOEnv(io, allocator, io_uring=ring)
    db = RocksDB(env, memtable_bytes=8 * units.KIB, sst_bytes=16 * units.KIB)
    return db, SimThread(core=0)


def _load(db, thread, n=400):
    for i in range(n):
        db.put(thread, b"key-%04d" % i, b"val-%04d" % i)
    db.flush(thread)
    db.compact_all(thread)


@pytest.mark.parametrize("with_uring", [False, True])
class TestMultiGetCorrectness:
    def test_matches_single_gets(self, with_uring):
        db, thread = _db(with_uring)
        _load(db, thread)
        keys = [b"key-%04d" % i for i in range(0, 400, 7)] + [b"missing-key"]
        batched = db.multi_get(thread, keys)
        singles = [db.get(thread, key) for key in keys]
        assert batched == singles

    def test_memtable_hits(self, with_uring):
        db, thread = _db(with_uring)
        _load(db, thread, n=100)
        db.put(thread, b"key-0003", b"FRESH")
        results = db.multi_get(thread, [b"key-0003", b"key-0004"])
        assert results == [b"FRESH", b"val-0004"]

    def test_tombstone_shadows_older_value(self, with_uring):
        db, thread = _db(with_uring)
        _load(db, thread, n=100)
        db.delete(thread, b"key-0005")
        results = db.multi_get(thread, [b"key-0005", b"key-0006"])
        assert results == [None, b"val-0006"]

    def test_duplicate_keys(self, with_uring):
        db, thread = _db(with_uring)
        _load(db, thread, n=50)
        results = db.multi_get(thread, [b"key-0001", b"key-0001"])
        assert results == [b"val-0001", b"val-0001"]

    def test_empty_batch(self, with_uring):
        db, thread = _db(with_uring)
        assert db.multi_get(thread, []) == []


class TestMultiGetBatching:
    def test_uring_batches_syscalls(self):
        db, thread = _db(with_uring=True)
        _load(db, thread)
        ring = db.env.io_uring
        syscalls_before = ring.vmx.syscalls
        keys = [b"key-%04d" % i for i in range(0, 300, 3)]   # 100 cold keys
        db.multi_get(thread, keys)
        batch_syscalls = ring.vmx.syscalls - syscalls_before
        assert 0 < batch_syscalls <= 5, "misses should go out in few batches"

    def test_uring_faster_than_sequential(self):
        def run(with_uring):
            db, thread = _db(with_uring)
            _load(db, thread)
            start = thread.clock.now
            keys = [b"key-%04d" % i for i in range(0, 400, 4)]
            db.multi_get(thread, keys)
            return thread.clock.now - start

        assert run(True) < run(False)

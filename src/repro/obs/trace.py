"""Cycle-scoped tracing over the simulation clocks.

A :class:`Span` measures one named region of simulated work on one
thread's :class:`~repro.sim.clock.CycleClock`: its begin/end positions on
the simulated timeline, the cycles charged *directly* inside it (children
excluded), and which clock it ran on.  Spans nest; closing a span adds its
duration to the parent's ``child_cycles`` so exclusive (self) time falls
out without reconstructing the tree.

The process-wide :data:`TRACER` is disabled by default.  When disabled,
``TRACER.span(...)`` returns a shared no-op context manager after a single
branch, so instrumented hot paths cost one call per would-be span.  When
enabled, :class:`~repro.sim.clock.CycleClock` routes every ``charge`` /
``wait_until`` to the innermost open span of that clock (see
``CycleClock._obs_span``), giving per-span category breakdowns for free.

Finished spans land in a bounded ring buffer (oldest dropped first) and
export as Chrome ``trace_event`` JSON, so any run can be opened in
Perfetto or ``chrome://tracing``.
"""

from __future__ import annotations

import json
from collections import deque
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional

from repro.common import units

#: Default ring-buffer capacity (finished spans retained).
DEFAULT_CAPACITY = 1 << 17

#: Chrome-trace process name for the simulated process.  A fixed string
#: (never the OS pid): trace bytes must be identical across runs and
#: across which worker process produced them.
PROCESS_NAME = "repro-sim"


class _NoopSpan:
    """Shared do-nothing context manager for disabled tracing."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NOOP = _NoopSpan()


class Span:
    """One traced region on one clock's simulated timeline."""

    __slots__ = (
        "name",
        "track",
        "seq",
        "begin",
        "end",
        "depth",
        "charges",
        "child_cycles",
        "_parent",
        "_prev",
        "_clock",
        "_tracer",
    )

    def __init__(self, tracer: "Tracer", name: str, clock, track: int) -> None:
        self._tracer = tracer
        self._clock = clock
        self.name = name
        self.track = track
        self.seq = -1          # assigned when the span finishes
        self.begin = clock.now
        self.end = clock.now
        self.depth = 0
        self.charges: Dict[str, float] = {}
        self.child_cycles = 0.0
        self._parent: Optional["Span"] = None
        self._prev: Optional["Span"] = None

    # -- cycle accounting -----------------------------------------------------

    def charge(self, category: str, cycles: float) -> None:
        """Attribute ``cycles`` charged on this span's clock (clock hook)."""
        self.charges[category] = self.charges.get(category, 0.0) + cycles

    @property
    def duration(self) -> float:
        """Inclusive cycles: clock advance from begin to end."""
        return self.end - self.begin

    @property
    def self_cycles(self) -> float:
        """Exclusive cycles: duration minus time spent in child spans."""
        return (self.end - self.begin) - self.child_cycles

    # -- context-manager protocol ---------------------------------------------

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._tracer._close(self)
        return False

    def __repr__(self) -> str:
        return (
            f"Span({self.name!r}, [{self.begin:.0f}, {self.end:.0f}), "
            f"self={self.self_cycles:.0f})"
        )


class Tracer:
    """Collects nested cycle-scoped spans into a bounded ring buffer."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.enabled = False
        self.epoch = 0              # bumped on reset; invalidates clock track ids
        self.dropped = 0            # finished spans evicted by the ring bound
        self.total_finished = 0     # monotonically increasing span sequence
        self.noop_requests = 0      # span() calls taken while disabled
        self._ring: "deque[Span]" = deque(maxlen=capacity)
        self._tracks: List[str] = []
        self._current: Optional[Span] = None

    # -- control ---------------------------------------------------------------

    def enable(self) -> None:
        """Start recording spans (charges route to open spans)."""
        self.enabled = True

    def disable(self) -> None:
        """Stop recording.  Already-collected spans are kept."""
        self.enabled = False

    def reset(self, capacity: Optional[int] = None) -> None:
        """Drop all collected spans and track registrations.

        Must not be called while spans are open (open spans would leak
        stale parent links); callers reset between runs, not inside them.
        """
        if capacity is not None:
            if capacity <= 0:
                raise ValueError("capacity must be positive")
            self.capacity = capacity
        self.epoch += 1
        self.dropped = 0
        self.total_finished = 0
        self._ring = deque(maxlen=self.capacity)
        self._tracks = []
        self._current = None

    @contextmanager
    def isolated(self, enable: bool = True, capacity: Optional[int] = None):
        """A scope with a fresh, private tracer state; prior state restored.

        Used by sweep workers to give every cell its own span stream: on
        entry the ring, tracks and counters are saved and replaced by
        empty ones (and the tracer enabled per ``enable``); on exit the
        saved state — including the enabled flag — comes back exactly,
        so a reused pooled process cannot leak spans across cells and an
        in-process orchestrator keeps its own spans.  The epoch bump on
        both edges invalidates clock track ids minted inside the scope.
        """
        saved = (
            self.enabled,
            self.capacity,
            self.dropped,
            self.total_finished,
            self.noop_requests,
            self._ring,
            self._tracks,
            self._current,
        )
        self.reset(capacity=capacity)
        self.enabled = enable
        try:
            yield self
        finally:
            (
                self.enabled,
                self.capacity,
                self.dropped,
                self.total_finished,
                self.noop_requests,
                self._ring,
                self._tracks,
                self._current,
            ) = saved
            self.epoch += 1

    # -- span lifecycle ----------------------------------------------------------

    def span(self, name: str, clock=None):
        """Open a span on ``clock``; use as ``with tracer.span(...):``.

        ``clock`` may be omitted inside an already-open span, in which case
        the new span nests on the enclosing span's clock (the simulator
        executes one operation at a time, so the innermost open span is
        unambiguous).
        """
        if not self.enabled:
            self.noop_requests += 1
            return _NOOP
        if clock is None:
            if self._current is None:
                raise ValueError(
                    f"span {name!r} needs an explicit clock (no enclosing span)"
                )
            clock = self._current._clock
        track = clock._obs_track
        if track is None or track[0] != self.epoch:
            index = len(self._tracks)
            self._tracks.append(getattr(clock, "owner_name", "") or f"clock-{index}")
            track = (self.epoch, index)
            clock._obs_track = track
        span = Span(self, name, clock, track[1])
        parent = clock._obs_span
        span._parent = parent
        span.depth = 0 if parent is None else parent.depth + 1
        span._prev = self._current
        clock._obs_span = span
        self._current = span
        return span

    def _close(self, span: Span) -> None:
        clock = span._clock
        span.end = clock.now
        clock._obs_span = span._parent
        self._current = span._prev
        if span._parent is not None:
            span._parent.child_cycles += span.end - span.begin
        span.seq = self.total_finished
        self.total_finished += 1
        if len(self._ring) == self.capacity:
            self.dropped += 1
        self._ring.append(span)

    # -- retrieval ---------------------------------------------------------------

    def mark(self) -> int:
        """A position in the span sequence, for :meth:`finished_since`."""
        return self.total_finished

    def finished_spans(self) -> List[Span]:
        """All retained finished spans, oldest first."""
        return list(self._ring)

    def finished_since(self, mark: int) -> List[Span]:
        """Retained spans finished at or after ``mark`` (see :meth:`mark`)."""
        return [span for span in self._ring if span.seq >= mark]

    def track_names(self) -> List[str]:
        """Registered track (simulated-thread) names, by track id."""
        return list(self._tracks)

    # -- Chrome trace-event export -------------------------------------------------

    def iter_chrome_events(self) -> Iterator[Dict[str, Any]]:
        """Yield Chrome ``trace_event`` objects one at a time.

        Metadata first — a ``process_name`` event naming the simulated
        process and one ``thread_name`` per registered track — then one
        ``ph: "X"`` complete event per retained span.  Timestamps are
        simulated microseconds (cycles at 2.4 GHz), one ``tid`` per
        simulated thread, with the span's cycle totals and per-category
        charges in ``args``.  Streaming the ring this way lets the
        export run at O(1) extra memory however many spans are retained.
        """
        yield {
            "name": "process_name",
            "ph": "M",
            "pid": 0,
            "args": {"name": PROCESS_NAME},
        }
        for tid, name in enumerate(self._tracks):
            yield {
                "name": "thread_name",
                "ph": "M",
                "pid": 0,
                "tid": tid,
                "args": {"name": name},
            }
        for span in self._ring:
            yield {
                "name": span.name,
                "cat": "sim",
                "ph": "X",
                "pid": 0,
                "tid": span.track,
                "ts": round(units.cycles_to_us(span.begin), 6),
                "dur": round(units.cycles_to_us(span.duration), 6),
                "args": {
                    "cycles": round(span.duration, 2),
                    "self_cycles": round(span.self_cycles, 2),
                    "charges": {
                        category: round(cycles, 2)
                        for category, cycles in sorted(span.charges.items())
                    },
                },
            }

    def _other_data(self) -> Dict[str, Any]:
        return {
            "clock": f"simulated cycles at {units.CPU_FREQ_HZ / 1e9:.1f} GHz",
            "dropped_spans": self.dropped,
            "total_spans": self.total_finished,
        }

    def to_chrome_trace(self) -> Dict[str, Any]:
        """The retained spans as a Chrome ``trace_event`` JSON object.

        Materializes :meth:`iter_chrome_events`; prefer
        :meth:`write_chrome_trace` for large rings, which streams events
        to disk instead of buffering the whole trace.
        """
        return {
            "traceEvents": list(self.iter_chrome_events()),
            "displayTimeUnit": "ns",
            "otherData": self._other_data(),
        }

    def write_chrome_trace(self, path: str) -> int:
        """Stream the Chrome trace JSON to ``path``; returns event count.

        Events are serialized one at a time straight to the file, so a
        long traced run (a sweep cell with ``--trace``) exports with
        bounded RSS — the whole-trace JSON string is never built in
        memory.
        """
        count = 0
        with open(path, "w") as handle:
            handle.write('{"traceEvents":[')
            for event in self.iter_chrome_events():
                if count:
                    handle.write(",")
                json.dump(event, handle, separators=(",", ":"))
                count += 1
            handle.write('],"displayTimeUnit":"ns","otherData":')
            json.dump(self._other_data(), handle, separators=(",", ":"))
            handle.write("}")
        return count


#: The process-wide tracer every instrumented path reports to.
TRACER = Tracer()

"""Serve-layer tests: arrivals, admission, QoS, SLO properties."""

"""Future-work evaluation: asynchronous I/O (paper Sections 3.3, 7.1).

The paper defers evaluating libaio/io_uring-style access; this bench
fills that in with the model's io_uring implementation, confirming the
trade-off the paper predicts: fewer CPU cycles and higher throughput than
synchronous syscalls, at the price of tail latency under saturation —
and still more CPU per operation than Aquila's mmio hits, which need no
I/O submission at all.
"""

from repro.bench.report import Table, print_claims, ratio_line
from repro.common import units
from repro.devices.io_engines import HostSyscallIO, SpdkIO
from repro.devices.io_uring import IoUring, IoUringOp
from repro.devices.nvme import NvmeDevice
from repro.hw.vmx import ExecutionDomain, VMXCostModel
from repro.sim.clock import CycleClock
from repro.sim.stats import LatencyRecorder


def _sync_run(n):
    device = NvmeDevice(capacity_bytes=256 * units.MIB)
    path = HostSyscallIO(device, VMXCostModel(ExecutionDomain.ROOT_RING3))
    clock = CycleClock()
    latencies = LatencyRecorder()
    for i in range(n):
        start = clock.now
        path.read(clock, (i % 1024) * 4096, 4096)
        latencies.record(clock.now - start)
    return clock, latencies


def _spdk_run(n):
    device = NvmeDevice(capacity_bytes=256 * units.MIB)
    path = SpdkIO(device)
    clock = CycleClock()
    latencies = LatencyRecorder()
    for i in range(n):
        start = clock.now
        path.read(clock, (i % 1024) * 4096, 4096)
        latencies.record(clock.now - start)
    return clock, latencies


def _uring_run(n, batch):
    device = NvmeDevice(capacity_bytes=256 * units.MIB)
    ring = IoUring(device, VMXCostModel(ExecutionDomain.ROOT_RING3), queue_depth=batch)
    clock = CycleClock()
    latencies = LatencyRecorder()
    for start_index in range(0, n, batch):
        submit = clock.now
        ops = [
            IoUringOp(((start_index + i) % 1024) * 4096, 4096)
            for i in range(min(batch, n - start_index))
        ]
        ring.submit_and_wait(clock, ops)
        for op in ops:
            latencies.record(max(0.0, op.completion_cycles - submit))
    return clock, latencies


def test_async_io_tradeoff(once):
    """io_uring vs sync syscalls vs SPDK on NVMe random reads."""

    def run():
        n = 1024
        rows = {}
        rows["sync syscalls"] = _sync_run(n)
        rows["spdk (polled)"] = _spdk_run(n)
        for batch in (16, 64, 256):
            rows[f"io_uring qd={batch}"] = _uring_run(n, batch)
        return n, rows

    n, rows = once(run)

    table = Table(
        "Asynchronous I/O on NVMe: 1024 random 4 KB reads",
        ["path", "total ms", "cpu ms", "mean lat (us)", "p99.9 lat (us)"],
    )
    summary = {}
    for name, (clock, latencies) in rows.items():
        cpu = clock.now - clock.breakdown.prefix_total("idle")
        summary[name] = {
            "total": clock.now,
            "cpu": cpu,
            "mean": latencies.mean(),
            "p999": latencies.p999(),
        }
        table.add_row(
            name,
            units.cycles_to_seconds(clock.now) * 1000,
            units.cycles_to_seconds(cpu) * 1000,
            units.cycles_to_us(latencies.mean()),
            units.cycles_to_us(latencies.p999()),
        )
    table.show()

    sync = summary["sync syscalls"]
    uring = summary["io_uring qd=64"]
    deep = summary["io_uring qd=256"]
    print_claims(
        "Section 7.1 trade-off",
        [
            ratio_line("throughput gain (sync/uring total time)", None, sync["total"] / uring["total"]),
            ratio_line("CPU reduction (sync/uring cpu)", None, sync["cpu"] / uring["cpu"]),
            ratio_line("tail amplification (qd256 p99.9 / sync p99.9)", None, deep["p999"] / sync["p999"]),
        ],
    )

    # "reduces the required CPU cycles ... and increases throughput"
    assert uring["total"] < sync["total"]
    assert uring["cpu"] < 0.5 * sync["cpu"]
    # "it also increases tail latency due to batching" (past device QD).
    assert deep["p999"] > sync["p999"]
    # Polling (SPDK) burns CPU waiting; io_uring sleeps instead.
    assert summary["spdk (polled)"]["cpu"] > uring["cpu"]

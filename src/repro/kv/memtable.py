"""Skiplist-based memtable (the in-DRAM write buffer of both KV stores).

RocksDB's default memtable is a concurrent skiplist; this is a classic
single-writer skiplist with byte-string keys, tombstone support, and size
accounting so the LSM knows when to flush.
"""

from __future__ import annotations

import random
from typing import Iterator, List, Optional, Tuple

MAX_LEVEL = 12
P = 0.25

#: Sentinel distinguishing "key deleted" from "key absent".
TOMBSTONE = b"\x00__TOMBSTONE__\x00"


class _SkipNode:
    __slots__ = ("key", "value", "forward")

    def __init__(self, key: Optional[bytes], value: Optional[bytes], level: int) -> None:
        self.key = key
        self.value = value
        self.forward: List[Optional["_SkipNode"]] = [None] * level


class Memtable:
    """Sorted in-memory key-value buffer."""

    def __init__(self, seed: int = 0) -> None:
        self._head = _SkipNode(None, None, MAX_LEVEL)
        self._level = 1
        self._rng = random.Random(seed)
        self._count = 0
        self._bytes = 0

    def __len__(self) -> int:
        return self._count

    @property
    def approximate_bytes(self) -> int:
        """Payload bytes buffered (flush trigger)."""
        return self._bytes

    def _random_level(self) -> int:
        level = 1
        while level < MAX_LEVEL and self._rng.random() < P:
            level += 1
        return level

    def put(self, key: bytes, value: bytes) -> None:
        """Insert or overwrite ``key``."""
        update: List[_SkipNode] = [self._head] * MAX_LEVEL
        node = self._head
        for i in range(self._level - 1, -1, -1):
            while node.forward[i] is not None and node.forward[i].key < key:
                node = node.forward[i]
            update[i] = node
        candidate = node.forward[0]
        if candidate is not None and candidate.key == key:
            self._bytes += len(value) - len(candidate.value)
            candidate.value = value
            return
        level = self._random_level()
        if level > self._level:
            self._level = level
        fresh = _SkipNode(key, value, level)
        for i in range(level):
            fresh.forward[i] = update[i].forward[i]
            update[i].forward[i] = fresh
        self._count += 1
        self._bytes += len(key) + len(value)

    def delete(self, key: bytes) -> None:
        """Record a deletion (tombstone)."""
        self.put(key, TOMBSTONE)

    def get(self, key: bytes) -> Optional[bytes]:
        """Latest value for ``key`` (TOMBSTONE if deleted, None if absent)."""
        node = self._head
        for i in range(self._level - 1, -1, -1):
            while node.forward[i] is not None and node.forward[i].key < key:
                node = node.forward[i]
        candidate = node.forward[0]
        if candidate is not None and candidate.key == key:
            return candidate.value
        return None

    def items(self) -> Iterator[Tuple[bytes, bytes]]:
        """All entries in key order (tombstones included)."""
        node = self._head.forward[0]
        while node is not None:
            yield (node.key, node.value)
            node = node.forward[0]

    def range_items(self, start: bytes, count: int) -> List[Tuple[bytes, bytes]]:
        """Up to ``count`` entries with key >= ``start`` in order."""
        node = self._head
        for i in range(self._level - 1, -1, -1):
            while node.forward[i] is not None and node.forward[i].key < start:
                node = node.forward[i]
        out: List[Tuple[bytes, bytes]] = []
        node = node.forward[0]
        while node is not None and len(out) < count:
            out.append((node.key, node.value))
            node = node.forward[0]
        return out

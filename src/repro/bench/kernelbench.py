"""Simulation-kernel throughput benchmark: ``python -m repro.bench.kernelbench``.

Measures how fast the simulator itself runs (wall-clock sim-ops/sec), not
what it simulates.  Each cell is one figure configuration executed three
times — unbatched min-heap scheduler, epoch-batched scheduler, and
batched with the analytic fast-forward — so the report shows absolute
kernel throughput plus the two speedups the conformance tier proves are
free of simulation-visible effects (batched over unbatched, fast-forward
over batched).

Outputs ``BENCH_kernel.json``.  With ``--check`` it compares batched
sim-ops/sec against a committed baseline (``benchmarks/BENCH_baseline.json``)
and exits 1 on a >25% regression in any cell — the CI ``perf`` job runs
exactly that.  ``--check`` also enforces the fast-forward speedup floors
(:data:`FASTFORWARD_FLOORS`): wall-clock *ratios* measured within one
process are machine-independent enough to gate, and they are what keeps
the fig10b out-of-memory case from silently sliding back to the 0.96x
regression this tier was built to kill.  Absolute numbers stay
machine-dependent; that gate is deliberately loose and the baseline is
refreshed with ``--update-baseline`` whenever the kernel legitimately
changes speed class.

Every run also measures the headline configuration's **deterministic
per-stage cycle shares** (a traced run folded through
:data:`repro.obs.events.DEFAULT_STAGE_RULES`) and appends a ``kind:
"kernel"`` record to the bench-trajectory history
(``benchmarks/BENCH_history.jsonl`` by default): config digest, headline
speedup, per-cell throughput, stage shares, and — when a prior record
exists — the stage whose share moved the most since.  A ``--check``
failure therefore names a suspect stage next to the throughput gate
miss, attributing the regression instead of just flagging it.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Dict, List, Optional

#: Regression gate: fail if a cell's batched sim-ops/sec drops below this
#: fraction of the committed baseline.
REGRESSION_FRACTION = 0.75

#: The acceptance headline rides on this cell: the Figure 10(a) in-memory
#: shared-file configuration at bench scale, where the re-access tail is
#: long enough that per-run fixed costs (stack construction, plan
#: generation) stop masking the scheduler's marginal cost.
HEADLINE_CELL = "fig10a_shared_16t_benchscale"

#: Minimum fast-forward-over-batched wall-clock speedup per cell
#: (acceptance floors; ``--check`` fails below them).  The headline
#: in-memory cell must fast-forward ≥5x; the out-of-memory fig10b cells —
#: where batching alone managed 0.96x — must clear 1.5x via the fused
#: fault/eviction replay.
FASTFORWARD_FLOORS: Dict[str, float] = {
    HEADLINE_CELL: 5.0,
    "fig10b_shared_16t": 1.5,
}

#: (name, fig10 run_config kwargs).  Each cell runs once per mode.
CELLS: List[tuple] = [
    (
        "fig10a_shared_16t",
        dict(engine_kind="aquila", num_threads=16, shared_file=True,
             in_memory=True, cache_pages=2048, total_accesses=40960),
    ),
    (
        HEADLINE_CELL,
        dict(engine_kind="aquila", num_threads=16, shared_file=True,
             in_memory=True, cache_pages=2048, total_accesses=2621440),
    ),
    (
        "fig10a_private_16t",
        dict(engine_kind="aquila", num_threads=16, shared_file=False,
             in_memory=True, cache_pages=2048, total_accesses=40960),
    ),
    (
        "fig10b_shared_16t",
        dict(engine_kind="aquila", num_threads=16, shared_file=True,
             in_memory=False, cache_pages=512, total_accesses=32768),
    ),
    (
        "fig10b_private_16t",
        dict(engine_kind="aquila", num_threads=16, shared_file=False,
             in_memory=False, cache_pages=512, total_accesses=32768),
    ),
]


#: The three measured modes as (label, batched, fastforward) triples, in
#: the order they run within each repeat round.
_MODES = [
    ("unbatched", False, False),
    ("batched", True, False),
    ("fastforward", True, True),
]


def _run_cell_modes(kwargs: Dict, repeats: int) -> Dict[str, Dict]:
    """Best-of-``repeats`` wall time per mode, modes interleaved.

    Each repeat round runs all three modes back to back (unbatched,
    batched, fast-forward) instead of finishing one mode's repeats before
    starting the next.  On shared hosts the process's wall-clock speed
    drifts over a multi-second benchmark (CPU steal, frequency, allocator
    aging); interleaving puts every mode through the same drift, so the
    *ratios* the floors gate on stay stable even when absolute numbers
    wobble.

    GC is paused around each timed run: the unbatched scheduler allocates
    heavily (one heap entry per op) and collector pauses otherwise add
    tens of percent of run-to-run noise to an 8-second cell.
    """
    import gc

    from repro.bench.experiments.fig10 import run_config
    from repro.mmio.files import BackingFile
    from repro.sim.executor import SimThread

    best: Dict[str, Optional[float]] = {name: None for name, _, _ in _MODES}
    ops = 0
    gc_was_enabled = gc.isenabled()
    try:
        for _ in range(repeats):
            for mode, batched, fastforward in _MODES:
                SimThread.reset_ids()
                BackingFile.reset_ids()
                gc.collect()
                gc.disable()
                start = time.perf_counter()
                result = run_config(
                    batched=batched, fastforward=fastforward, **kwargs
                )
                wall = time.perf_counter() - start
                if gc_was_enabled:
                    gc.enable()
                ops = result["ops"]
                if best[mode] is None or wall < best[mode]:
                    best[mode] = wall
    finally:
        if gc_was_enabled:
            gc.enable()
    return {
        mode: {
            "wall_seconds": round(wall, 6),
            "sim_ops_per_sec": round(ops / wall, 1),
            "ops": ops,
        }
        for mode, wall in best.items()
    }


def run_benchmark(repeats: int = 3) -> Dict:
    """Run every cell in all three modes; returns the report dict."""
    cells: Dict[str, Dict] = {}
    for name, kwargs in CELLS:
        modes = _run_cell_modes(kwargs, repeats=repeats)
        unbatched = modes["unbatched"]
        batched = modes["batched"]
        fastforward = modes["fastforward"]
        speedup = batched["sim_ops_per_sec"] / unbatched["sim_ops_per_sec"]
        ff_speedup = (
            fastforward["sim_ops_per_sec"] / batched["sim_ops_per_sec"]
        )
        cells[name] = {
            "config": {k: v for k, v in kwargs.items()},
            "ops": batched["ops"],
            "unbatched": {k: v for k, v in unbatched.items() if k != "ops"},
            "batched": {k: v for k, v in batched.items() if k != "ops"},
            "fastforward": {
                k: v for k, v in fastforward.items() if k != "ops"
            },
            "speedup_batched_over_unbatched": round(speedup, 3),
            "speedup_fastforward_over_batched": round(ff_speedup, 3),
        }
        print(
            f"{name}: {batched['sim_ops_per_sec']:>12,.0f} sim-ops/s batched "
            f"({unbatched['sim_ops_per_sec']:,.0f} unbatched, "
            f"{speedup:.2f}x; fast-forward "
            f"{fastforward['sim_ops_per_sec']:,.0f}, {ff_speedup:.2f}x over "
            "batched)"
        )
    return {
        "schema": 2,
        "repeats": repeats,
        "cells": cells,
        "headline": {
            "cell": HEADLINE_CELL,
            "speedup_batched_over_unbatched": cells[HEADLINE_CELL][
                "speedup_batched_over_unbatched"
            ],
            "speedup_fastforward_over_batched": cells[HEADLINE_CELL][
                "speedup_fastforward_over_batched"
            ],
        },
    }


def measure_stage_shares(total_accesses: int = 40960) -> Dict[str, float]:
    """Deterministic per-stage cycle shares of the headline configuration.

    Runs the headline cell's config (at the short 40960-access size, so
    this adds well under a second) once, batched, inside isolated
    tracer/registry scopes, and folds its span stream through the default
    stage rules.  Simulated cycles are seed-deterministic, so two runs on
    any machines produce identical shares — which is what lets the
    trajectory tracker diff shares across history records to attribute a
    *wall-clock* regression to the stage whose *simulated* share moved.
    """
    from repro import obs
    from repro.bench.experiments.fig10 import run_config
    from repro.mmio.files import BackingFile
    from repro.obs import events as obs_events
    from repro.sim.executor import SimThread

    with obs.TRACER.isolated(enable=True), obs.METRICS.isolated(enable=True):
        SimThread.reset_ids()
        BackingFile.reset_ids()
        run_config(
            batched=True,
            engine_kind="aquila",
            num_threads=16,
            shared_file=True,
            in_memory=True,
            cache_pages=2048,
            total_accesses=total_accesses,
        )
        telemetry = obs_events.collect_cell_telemetry()
    return obs_events.stage_shares(telemetry)


def append_history(history_path: str, report: Dict) -> Dict:
    """Append one ``kind: "kernel"`` trajectory record; returns the record.

    The record carries the measured throughputs plus the deterministic
    stage shares; if the history already holds a kernel record, the
    largest share shift since it is attributed inline
    (:func:`repro.obs.events.attribute_shift`).
    """
    from repro.bench.sweep import load_manifest
    from repro.obs import events as obs_events
    from repro.sim.conformance import hash_digest

    previous = None
    if os.path.exists(history_path):
        for entry in load_manifest(history_path):
            if entry.get("kind") == "kernel":
                previous = entry
    record = {
        "kind": "kernel",
        "schema": 1,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "config_digest": hash_digest(
            [(name, sorted(kwargs.items())) for name, kwargs in CELLS]
        ),
        "headline_cell": report["headline"]["cell"],
        "headline_speedup": report["headline"]["speedup_batched_over_unbatched"],
        "headline_ff_speedup": report["headline"].get(
            "speedup_fastforward_over_batched"
        ),
        "cells": {
            name: {
                "batched_sim_ops_per_sec": cell["batched"]["sim_ops_per_sec"],
                "speedup": cell["speedup_batched_over_unbatched"],
                "ff_speedup": cell.get("speedup_fastforward_over_batched"),
            }
            for name, cell in sorted(report["cells"].items())
        },
        "stage_shares": report.get("stage_shares", {}),
    }
    if previous is not None and previous.get("stage_shares"):
        stage, delta = obs_events.attribute_shift(
            previous["stage_shares"], record["stage_shares"]
        )
        record["share_shift"] = {"stage": stage, "delta": delta}
    directory = os.path.dirname(history_path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(history_path, "a") as handle:
        handle.write(json.dumps(record, sort_keys=True) + "\n")
    return record


def attribute_regression(report: Dict, history_path: str) -> Optional[str]:
    """A one-line stage attribution for a ``--check`` failure, or None.

    Diffs the fresh stage shares against the most recent *prior* kernel
    history record (the one before this run's own append).  A regression
    whose simulated shares did not move is flagged as kernel-side
    (scheduler/allocator wall-time cost), which is the "unexplained"
    case the perf gate exists to catch.
    """
    from repro.bench.sweep import load_manifest
    from repro.obs import events as obs_events

    shares = report.get("stage_shares") or {}
    if not shares or not os.path.exists(history_path):
        return None
    kernels = [
        entry
        for entry in load_manifest(history_path)
        if entry.get("kind") == "kernel" and entry.get("stage_shares")
    ]
    # The last record is this run's own append; diff against the one before.
    priors = [k for k in kernels if k.get("stage_shares") != shares]
    if len(kernels) >= 2:
        prior = kernels[-2]
    elif priors:
        prior = priors[-1]
    else:
        return None
    stage, delta = obs_events.attribute_shift(prior["stage_shares"], shares)
    if abs(delta) < 0.005:
        return (
            "stage shares are unchanged since the last record — the "
            "regression is kernel-side (scheduler/allocator wall cost), "
            "not a workload shift"
        )
    return (
        f"largest stage-share shift since the last record: {stage} "
        f"({delta:+.1%} of total cycles) — suspect stage for the regression"
    )


def check_regressions(report: Dict, baseline: Dict) -> List[str]:
    """Compare batched sim-ops/sec to the baseline; returns failures.

    Also enforces the machine-independent fast-forward speedup floors
    (:data:`FASTFORWARD_FLOORS`) on the fresh report — those are ratios
    within one process, so they need no baseline.
    """
    failures = []
    for name, base_cell in baseline.get("cells", {}).items():
        cell = report["cells"].get(name)
        if cell is None:
            failures.append(f"{name}: present in baseline but not measured")
            continue
        base = base_cell["batched"]["sim_ops_per_sec"]
        now = cell["batched"]["sim_ops_per_sec"]
        if now < REGRESSION_FRACTION * base:
            failures.append(
                f"{name}: batched {now:,.0f} sim-ops/s is "
                f"{now / base:.2%} of baseline {base:,.0f} "
                f"(gate: >= {REGRESSION_FRACTION:.0%})"
            )
    for name, floor in FASTFORWARD_FLOORS.items():
        cell = report["cells"].get(name)
        if cell is None:
            failures.append(
                f"{name}: fast-forward floor cell missing from the report"
            )
            continue
        speedup = cell.get("speedup_fastforward_over_batched", 0.0)
        if speedup < floor:
            failures.append(
                f"{name}: fast-forward speedup {speedup:.2f}x is below the "
                f"{floor:.1f}x floor"
            )
    return failures


def main(argv: Optional[List[str]] = None) -> int:
    """Kernel-benchmark CLI body; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.kernelbench",
        description="Benchmark the simulation kernel (batched vs unbatched).",
    )
    parser.add_argument("--output", default="BENCH_kernel.json",
                        help="where to write the report (default: %(default)s)")
    parser.add_argument("--baseline", default="benchmarks/BENCH_baseline.json",
                        help="committed baseline for --check/--update-baseline")
    parser.add_argument("--check", action="store_true",
                        help="exit 1 if any cell regresses >25%% vs baseline")
    parser.add_argument("--update-baseline", action="store_true",
                        help="write the fresh report over the baseline file")
    parser.add_argument("--repeats", type=int, default=3,
                        help="wall-time repeats per cell (best is kept)")
    parser.add_argument("--history", default="benchmarks/BENCH_history.jsonl",
                        help="bench-trajectory JSONL to append this run's "
                        "record to (default: %(default)s)")
    parser.add_argument("--no-history", action="store_true",
                        help="do not append to the bench-trajectory history")
    args = parser.parse_args(argv)

    report = run_benchmark(repeats=args.repeats)
    report["stage_shares"] = measure_stage_shares()
    with open(args.output, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {args.output}")

    if not args.no_history:
        record = append_history(args.history, report)
        line = f"history: appended kernel record to {args.history}"
        if "share_shift" in record:
            shift = record["share_shift"]
            line += f" (share shift: {shift['stage']} {shift['delta']:+.1%})"
        print(line)

    if args.update_baseline:
        with open(args.baseline, "w") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"updated baseline {args.baseline}")
        return 0

    if args.check:
        try:
            with open(args.baseline) as handle:
                baseline = json.load(handle)
        except OSError as exc:
            print(f"error: cannot read baseline {args.baseline}: {exc}",
                  file=sys.stderr)
            return 2
        failures = check_regressions(report, baseline)
        if failures:
            print("kernel throughput regressions:", file=sys.stderr)
            for line in failures:
                print(f"  {line}", file=sys.stderr)
            attribution = attribute_regression(report, args.history)
            if attribution:
                print(f"  {attribution}", file=sys.stderr)
            return 1
        print(f"no regressions vs {args.baseline} "
              f"(gate: {REGRESSION_FRACTION:.0%} of baseline)")
    return 0


if __name__ == "__main__":
    sys.exit(main())

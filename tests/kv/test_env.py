"""Storage environment adapters."""

import pytest

from repro.bench.setups import make_aquila_stack, make_linux_stack
from repro.common import units
from repro.hw.machine import Machine
from repro.kv.env import DirectIOEnv, MmioEnv
from repro.mmio.explicit import ExplicitIOEngine
from repro.mmio.files import ExtentAllocator
from repro.devices.pmem import PmemDevice
from repro.sim.executor import SimThread


def _direct_env():
    device = PmemDevice(capacity_bytes=128 * units.MIB)
    io = ExplicitIOEngine(Machine(), cache_pages=128)
    return DirectIOEnv(io, ExtentAllocator(device))


def _mmio_env(kind="aquila"):
    maker = make_aquila_stack if kind == "aquila" else make_linux_stack
    stack = maker("pmem", cache_pages=128, capacity_bytes=128 * units.MIB)
    return MmioEnv(stack.engine, stack.allocator), stack


@pytest.fixture(params=["direct", "aquila", "linux"])
def env(request):
    if request.param == "direct":
        return _direct_env()
    return _mmio_env(request.param)[0]


class TestEnvContract:
    def test_write_then_read(self, env):
        thread = SimThread(core=0)
        file = env.write_file(thread, "f", b"environment bytes" * 100)
        assert env.read(thread, file, 0, 17) == b"environment bytes"
        assert env.read(thread, file, 17 * 99, 17) == b"environment bytes"

    def test_append(self, env):
        thread = SimThread(core=0)
        file = env.write_file(thread, "log", bytes(units.PAGE_SIZE * 4))
        env.append(thread, file, 100, b"appended-record")
        assert env.read(thread, file, 100, 15) == b"appended-record"

    def test_delete_releases(self, env):
        thread = SimThread(core=0)
        file = env.write_file(thread, "victim", bytes(units.PAGE_SIZE * 8))
        env.read(thread, file, 0, 64)
        env.delete_file(thread, file)
        # Space is reusable (no capacity exhaustion after heavy churn).
        for _ in range(50):
            f = env.write_file(thread, "churn", bytes(units.PAGE_SIZE * 8))
            env.delete_file(thread, f)


class TestMmioEnvSpecifics:
    def test_mapping_reused(self):
        env, stack = _mmio_env()
        thread = SimThread(core=0)
        file = env.write_file(thread, "f", bytes(units.PAGE_SIZE * 4))
        env.read(thread, file, 0, 8)
        mapping_a = env.mapping_of(thread, file)
        env.read(thread, file, 4096, 8)
        assert env.mapping_of(thread, file) is mapping_a

    def test_delete_drops_cached_pages(self):
        env, stack = _mmio_env()
        thread = SimThread(core=0)
        file = env.write_file(thread, "f", bytes(units.PAGE_SIZE * 4))
        env.read(thread, file, 0, 8)
        assert stack.engine.cache.resident_pages() > 0
        env.delete_file(thread, file)
        assert stack.engine.cache.pages_of_file(file.file_id) == []

    def test_msync_all(self):
        env, stack = _mmio_env()
        thread = SimThread(core=0)
        file = env.write_file(thread, "f", bytes(units.PAGE_SIZE * 4))
        mapping = env.mapping_of(thread, file)
        mapping.store(thread, 0, b"dirty")
        assert env.msync_all(thread) >= 1

    def test_reads_through_mapping_fault(self):
        env, stack = _mmio_env()
        thread = SimThread(core=0)
        file = env.write_file(thread, "f", bytes(units.PAGE_SIZE * 8))
        before = stack.engine.faults
        env.read(thread, file, 0, 8)
        assert stack.engine.faults > before


class TestDirectEnvSpecifics:
    def test_reads_through_user_cache(self):
        env = _direct_env()
        thread = SimThread(core=0)
        file = env.write_file(thread, "f", b"cached" * 1000)
        env.read(thread, file, 0, 6)
        assert env.io.cache.misses >= 1
        env.read(thread, file, 0, 6)
        assert env.io.cache.hits >= 1

    def test_delete_invalidates_user_cache(self):
        env = _direct_env()
        thread = SimThread(core=0)
        file = env.write_file(thread, "f", b"x" * 8192)
        env.read(thread, file, 0, 8)
        env.delete_file(thread, file)
        assert env.io.cache.resident_blocks() == 0

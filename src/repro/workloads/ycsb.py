"""YCSB workload generator (paper Table 1).

=========  ==================================  ================
Workload   Mix                                 Distribution
=========  ==================================  ================
A          50% reads, 50% updates              zipfian
B          95% reads, 5% updates               zipfian
C          100% reads                          zipfian/uniform
D          95% reads, 5% inserts               latest
E          95% scans, 5% inserts               zipfian
F          50% reads, 50% read-modify-write    zipfian
=========  ==================================  ================

The paper's Figure 5 runs workload C with the *uniform* distribution,
1 KB values and 30 B keys; Figure 9 runs all six workloads.  The driver
produces per-thread operation iterators compatible with the executor, and
works against any store exposing ``get``/``put``/``scan``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, Optional

from repro.obs import TRACER
from repro.sim.executor import SimThread
from repro.sim.rand import LatestGenerator, ScrambledZipfGenerator, derive_seed

#: Paper value/key sizes (Section 6.1): 1 KB values, 30 B keys.
DEFAULT_VALUE_BYTES = 1024
KEY_WIDTH = 22   # "user" + 18 digits = 22 bytes; padded to 30 below
KEY_PAD = 8

WORKLOADS = {
    "A": {"read": 0.5, "update": 0.5},
    "B": {"read": 0.95, "update": 0.05},
    "C": {"read": 1.0},
    "D": {"read": 0.95, "insert": 0.05},
    "E": {"scan": 0.95, "insert": 0.05},
    "F": {"read": 0.5, "rmw": 0.5},
}

#: Default distribution per workload (YCSB core properties).
DISTRIBUTIONS = {
    "A": "zipfian",
    "B": "zipfian",
    "C": "zipfian",
    "D": "latest",
    "E": "zipfian",
    "F": "zipfian",
}

MAX_SCAN_LENGTH = 100


def make_key(index: int) -> bytes:
    """YCSB-style 30-byte key for record ``index``."""
    return (b"user" + b"0" * KEY_PAD + f"{index:018d}".encode())


def make_value(index: int, size: int = DEFAULT_VALUE_BYTES) -> bytes:
    """Deterministic value payload for record ``index``."""
    seed = f"value-{index}-".encode()
    reps = size // len(seed) + 1
    return (seed * reps)[:size]


@dataclass
class YCSBConfig:
    """One YCSB run's parameters."""

    workload: str = "C"
    record_count: int = 10_000
    operation_count: int = 10_000
    value_bytes: int = DEFAULT_VALUE_BYTES
    distribution: Optional[str] = None   # None -> workload default
    seed: int = 42
    threads: int = 1

    def __post_init__(self) -> None:
        if self.workload not in WORKLOADS:
            raise ValueError(f"unknown workload {self.workload!r}")
        if self.distribution is None:
            self.distribution = DISTRIBUTIONS[self.workload]
        if self.distribution not in ("zipfian", "uniform", "latest"):
            raise ValueError(f"unknown distribution {self.distribution!r}")


@dataclass
class YCSBStats:
    """Aggregated outcome counters."""

    reads: int = 0
    updates: int = 0
    inserts: int = 0
    scans: int = 0
    rmws: int = 0
    not_found: int = 0
    scan_items: int = 0

    @property
    def operations(self) -> int:
        """Total operations executed."""
        return self.reads + self.updates + self.inserts + self.scans + self.rmws


class YCSBDriver:
    """Runs YCSB phases against a key-value store."""

    def __init__(self, store, config: YCSBConfig) -> None:
        self.store = store
        self.config = config
        self.stats = YCSBStats()
        self._record_count = config.record_count   # grows with inserts
        self._insert_lock_free_counter = config.record_count

    # -- load phase -----------------------------------------------------------

    def load(self, thread: SimThread, report_every: int = 0) -> None:
        """Insert the initial ``record_count`` records."""
        for index in range(self.config.record_count):
            self.store.put(
                thread, make_key(index), make_value(index, self.config.value_bytes)
            )

    def load_workload(self, thread: SimThread, start: int, count: int) -> Iterator[None]:
        """Executor-style iterator loading records [start, start+count)."""
        for index in range(start, start + count):
            self.store.put(
                thread, make_key(index), make_value(index, self.config.value_bytes)
            )
            yield

    # -- run phase ---------------------------------------------------------------

    def _key_chooser(self, stream: str):
        cfg = self.config
        seed = derive_seed(cfg.seed, stream)
        rng = random.Random(seed)
        if cfg.distribution == "uniform":
            return lambda: rng.randrange(self._record_count)
        if cfg.distribution == "latest":
            latest = LatestGenerator(cfg.record_count, rng=rng)
            self._latest = latest
            return lambda: latest.next()
        zipf = ScrambledZipfGenerator(cfg.record_count, rng=rng)
        return lambda: min(zipf.next(), self._record_count - 1)

    def _next_insert_index(self) -> int:
        index = self._insert_lock_free_counter
        self._insert_lock_free_counter += 1
        self._record_count = self._insert_lock_free_counter
        if hasattr(self, "_latest"):
            self._latest.grow()
        return index

    def run_workload(self, thread: SimThread, ops: int) -> Iterator[None]:
        """Executor-style iterator performing ``ops`` operations."""
        cfg = self.config
        mix = WORKLOADS[cfg.workload]
        op_rng = random.Random(derive_seed(cfg.seed, f"ops-{thread.tid}"))
        choose = self._key_chooser(f"keys-{thread.tid}")
        scan_rng = random.Random(derive_seed(cfg.seed, f"scan-{thread.tid}"))

        ops_sorted = sorted(mix.items())
        for _ in range(ops):
            start = thread.clock.now
            r = op_rng.random()
            cumulative = 0.0
            action = ops_sorted[-1][0]
            for name, weight in ops_sorted:
                cumulative += weight
                if r < cumulative:
                    action = name
                    break
            with TRACER.span("op." + action, thread.clock):
                if action == "read":
                    value = self.store.get(thread, make_key(choose()))
                    self.stats.reads += 1
                    if value is None:
                        self.stats.not_found += 1
                elif action == "update":
                    index = choose()
                    self.store.put(
                        thread, make_key(index), make_value(index, cfg.value_bytes)
                    )
                    self.stats.updates += 1
                elif action == "insert":
                    index = self._next_insert_index()
                    self.store.put(
                        thread, make_key(index), make_value(index, cfg.value_bytes)
                    )
                    self.stats.inserts += 1
                elif action == "scan":
                    length = scan_rng.randint(1, MAX_SCAN_LENGTH)
                    items = self.store.scan(thread, make_key(choose()), length)
                    self.stats.scans += 1
                    self.stats.scan_items += len(items)
                elif action == "rmw":
                    index = choose()
                    value = self.store.get(thread, make_key(index))
                    if value is None:
                        self.stats.not_found += 1
                    self.store.put(
                        thread, make_key(index), make_value(index, cfg.value_bytes)
                    )
                    self.stats.rmws += 1
            thread.record_op(start)
            yield

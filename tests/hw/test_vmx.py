"""VMX domain transition costs."""

from repro.common import constants
from repro.hw.vmx import ExecutionDomain, VMXCostModel
from repro.sim.clock import CycleClock


class TestFaultEntry:
    def test_ring3_trap(self):
        vmx = VMXCostModel(ExecutionDomain.ROOT_RING3)
        clock = CycleClock()
        vmx.fault_entry(clock)
        assert clock.now == constants.TRAP_RING3_CYCLES
        assert vmx.traps == 1

    def test_aquila_exception(self):
        vmx = VMXCostModel(ExecutionDomain.NONROOT_RING0)
        clock = CycleClock()
        vmx.fault_entry(clock)
        assert clock.now == constants.TRAP_AQUILA_CYCLES

    def test_paper_ratio(self):
        ring3 = VMXCostModel(ExecutionDomain.ROOT_RING3)
        aquila = VMXCostModel(ExecutionDomain.NONROOT_RING0)
        assert abs(ring3.trap_cost() / aquila.trap_cost() - 2.33) < 0.01


class TestSyscalls:
    def test_native_syscall(self):
        vmx = VMXCostModel(ExecutionDomain.ROOT_RING3)
        clock = CycleClock()
        vmx.syscall(clock)
        assert clock.now == constants.SYSCALL_CYCLES
        assert vmx.syscalls == 1
        assert vmx.vmcalls == 0

    def test_guest_syscall_is_vmcall(self):
        """From non-root ring 0 host syscalls become vmcalls (Section 4.4)."""
        vmx = VMXCostModel(ExecutionDomain.NONROOT_RING0)
        clock = CycleClock()
        vmx.syscall(clock)
        assert clock.now == constants.VMCALL_CYCLES
        assert vmx.vmcalls == 1
        assert vmx.vmexits == 1

    def test_vmcall_more_expensive_than_syscall(self):
        assert constants.VMCALL_CYCLES > constants.SYSCALL_CYCLES

    def test_explicit_vmexit(self):
        vmx = VMXCostModel(ExecutionDomain.NONROOT_RING0)
        clock = CycleClock()
        vmx.vmexit(clock)
        assert clock.now == constants.VMEXIT_CYCLES

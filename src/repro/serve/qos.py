"""QoS policies: tenant specs -> cache partition quotas.

Maps the serve configuration's partitioning policy onto a
:class:`repro.cache.partition.CachePartition` the shared cache consults
during victim selection.  Quota arithmetic is integer-exact and iterates
tenants in specification order, so the resulting partition — like every
other serve decision — is a pure function of the cell parameters.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.cache.partition import POLICIES, CachePartition


def build_partition(
    policy: str,
    tenants: Sequence,
    files: Sequence,
    cache_pages: int,
) -> Optional[CachePartition]:
    """Build the cache partition for ``policy`` (None for ``"none"``).

    ``tenants`` are :class:`repro.serve.core.TenantSpec` objects and
    ``files`` their backing files, aligned by index.

    * ``static`` — every tenant gets ``cache_pages // len(tenants)``;
    * ``proportional`` — quotas split proportionally to each tenant's
      offered arrival rate (``1 / mean_gap_cycles``), so a tenant that
      offers twice the load earns twice the cache.
    """
    if policy not in POLICIES:
        raise ValueError(f"unknown partition policy: {policy!r}")
    if policy == "none":
        return None
    if not tenants or len(tenants) != len(files):
        raise ValueError("need one backing file per tenant")
    partition = CachePartition(policy)
    quotas = _quota_pages(policy, tenants, cache_pages)
    for spec, file, quota in zip(tenants, files, quotas):
        partition.assign(file.file_id, spec.name)
        partition.set_quota(spec.name, quota)
    return partition


def _quota_pages(policy: str, tenants: Sequence, cache_pages: int) -> List[int]:
    """Per-tenant quotas in specification order."""
    if policy == "static":
        return [cache_pages // len(tenants)] * len(tenants)
    # Proportional: integer weights from the arrival rates (scaled so the
    # division below is exact integer arithmetic, never float-ordering
    # sensitive).
    weights = [round(1e9 / max(1.0, spec.mean_gap_cycles)) for spec in tenants]
    total = sum(weights)
    return [cache_pages * weight // total for weight in weights]

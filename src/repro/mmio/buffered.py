"""Buffered read/write I/O: Figure 1(a), the classic configuration.

The paper's motivation (Figure 1) contrasts four storage-cache setups;
configuration (a) is ordinary buffered syscalls through the *kernel*
page cache: every read is a syscall, a tree-locked page-cache lookup, and
a copy_to_user — even on hits.  Applications moved to user-space caches
(b) precisely to avoid the per-hit syscall; Aquila (d) removes the
remaining lookup cost entirely.

This engine reuses :class:`~repro.cache.kernel_cache.KernelPageCache`
(the same structure the mmap engine uses), so the contrast between
configurations is apples-to-apples.
"""

from __future__ import annotations

from typing import List, Optional

from repro.common import constants, units
from repro.common.errors import OutOfMemoryError
from repro.cache.base import CachePage
from repro.cache.kernel_cache import KernelPageCache
from repro.hw.machine import Machine
from repro.hw.vmx import ExecutionDomain, VMXCostModel
from repro.mmio.files import BackingFile
from repro.sim.executor import SimThread

#: Kernel-side copy between the page cache and the user buffer, per page
#: (copy_to_user/copy_from_user is the kernel's non-SIMD copy).
COPY_TO_USER_4K_CYCLES = constants.MEMCPY_4K_NOSIMD_CYCLES


class BufferedIOEngine:
    """read()/write() through the kernel page cache (Figure 1(a))."""

    name = "buffered-io"

    def __init__(self, machine: Machine, cache_pages: int) -> None:
        self.machine = machine
        self.cache = KernelPageCache(cache_pages)
        self.vmx = VMXCostModel(ExecutionDomain.ROOT_RING3)
        self.reads = 0
        self.writes = 0

    # -- page-cache fill -------------------------------------------------------

    def _get_page(self, thread: SimThread, file: BackingFile, file_page: int) -> CachePage:
        clock = thread.clock
        page = self.cache.lookup(clock, thread.tid, file, file_page)
        if page is not None:
            return page
        frame = self.cache.allocate_frame(clock)
        if frame is None:
            self._reclaim(thread)
            frame = self.cache.allocate_frame(clock)
            if frame is None:
                raise OutOfMemoryError("page cache exhausted")
        page = self.cache.insert(clock, thread.tid, file, file_page, frame)
        data = file.device.submit(
            clock,
            file.device_offset(file_page),
            units.PAGE_SIZE,
            is_write=False,
            wait_category="idle.io.buffered",
        )
        self.cache.pool.write(frame, data)
        return page

    def _reclaim(self, thread: SimThread) -> None:
        victims = self.cache.pick_victims(32)
        dirty = sorted((v for v in victims if v.dirty), key=lambda p: p.device_offset)
        for page in dirty:
            self.cache.pool.read(page.frame)
            page.file.device.submit_async(
                thread.clock,
                page.device_offset,
                units.PAGE_SIZE,
                is_write=True,
                data=self.cache.pool.read(page.frame),
            )
            thread.clock.charge("writeback.submit", 400)
            page.dirty = False
        removed = self.cache.remove_batch(thread.clock, thread.tid, victims)
        if not removed and victims:
            self.cache.remove(thread.clock, thread.tid, victims[0])

    # -- the syscall surface ------------------------------------------------------

    def pread(self, thread: SimThread, file: BackingFile, offset: int, nbytes: int) -> bytes:
        """Buffered read: one syscall, page-cache lookups, copy_to_user."""
        if offset < 0 or nbytes < 0 or offset + nbytes > file.size_bytes:
            raise ValueError("pread outside file bounds")
        self.reads += 1
        clock = thread.clock
        self.machine.absorb_interference(thread)
        self.vmx.syscall(clock, "io.syscall")
        chunks: List[bytes] = []
        pos = offset
        remaining = nbytes
        while remaining > 0:
            file_page = pos >> units.PAGE_SHIFT
            in_page = pos & (units.PAGE_SIZE - 1)
            take = min(remaining, units.PAGE_SIZE - in_page)
            page = self._get_page(thread, file, file_page)
            clock.charge(
                "io.copy_to_user", COPY_TO_USER_4K_CYCLES * take / units.PAGE_SIZE
            )
            chunks.append(self.cache.pool.read_partial(page.frame, in_page, take))
            pos += take
            remaining -= take
        return b"".join(chunks)

    def pwrite(self, thread: SimThread, file: BackingFile, offset: int, data: bytes) -> None:
        """Buffered write: dirty the page-cache pages; writeback is lazy."""
        if offset < 0 or offset + len(data) > file.size_bytes:
            raise ValueError("pwrite outside file bounds")
        self.writes += 1
        clock = thread.clock
        self.machine.absorb_interference(thread)
        self.vmx.syscall(clock, "io.syscall")
        pos = offset
        written = 0
        while written < len(data):
            file_page = pos >> units.PAGE_SHIFT
            in_page = pos & (units.PAGE_SIZE - 1)
            take = min(len(data) - written, units.PAGE_SIZE - in_page)
            page = self._get_page(thread, file, file_page)
            clock.charge(
                "io.copy_from_user", COPY_TO_USER_4K_CYCLES * take / units.PAGE_SIZE
            )
            self.cache.pool.write_partial(page.frame, in_page, data[written : written + take])
            self.cache.mark_dirty(clock, thread.tid, page)
            pos += take
            written += take

    def fsync(self, thread: SimThread, file: BackingFile) -> int:
        """Flush the file's dirty pages synchronously; returns pages written."""
        clock = thread.clock
        self.vmx.syscall(clock, "io.syscall")
        dirty = sorted(
            (p for p in self.cache.pages_of_file(file.file_id) if p.dirty),
            key=lambda p: p.device_offset,
        )
        completions = []
        for page in dirty:
            completions.append(
                file.device.submit_async(
                    clock,
                    page.device_offset,
                    units.PAGE_SIZE,
                    is_write=True,
                    data=self.cache.pool.read(page.frame),
                )
            )
            clock.charge("writeback.submit", 400)
            page.dirty = False
        if completions:
            clock.wait_until(max(completions), "idle.io.fsync")
        return len(dirty)

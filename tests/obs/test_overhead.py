"""Guard: disabled tracing must stay under 5% of microbenchmark runtime.

The instrumented hot paths call ``TRACER.span(...)`` unconditionally; when
tracing is off each call is one branch plus a counter bump and a shared
no-op context manager.  This test bounds that cost on the Figure 8(a)
fault microbenchmark: (span calls taken during the run) x (measured
per-call cost of a disabled span) must be below 5% of the run's wall time.
"""

import time

from repro.obs import TRACER
from repro.sim.clock import CycleClock


def _disabled_span_cost(iterations: int = 200_000) -> float:
    """Wall seconds per disabled ``with TRACER.span(...): pass``."""
    clock = CycleClock()
    span = TRACER.span   # the hot paths hold the bound method equivalent
    start = time.perf_counter()
    for _ in range(iterations):
        with span("overhead-probe", clock):
            pass
    return (time.perf_counter() - start) / iterations


def test_disabled_tracing_overhead_under_5_percent():
    from repro.bench.experiments.fig8 import run_fig8a

    assert not TRACER.enabled
    noops_before = TRACER.noop_requests
    start = time.perf_counter()
    run_fig8a()
    run_seconds = time.perf_counter() - start
    span_calls = TRACER.noop_requests - noops_before

    assert span_calls > 0, "instrumented paths should request spans"
    per_call = _disabled_span_cost()
    overhead = span_calls * per_call
    assert overhead < 0.05 * run_seconds, (
        f"disabled tracing cost {overhead * 1e3:.2f} ms over "
        f"{span_calls} span calls vs {run_seconds * 1e3:.1f} ms run "
        f"({100 * overhead / run_seconds:.2f}%)"
    )

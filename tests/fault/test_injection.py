"""Device-level fault injection and the retry-with-backoff policy."""

import pytest

from repro.common import units
from repro.common.errors import DeviceError, TornWriteError, TransientDeviceError
from repro.devices.io_engines import KernelFaultIO
from repro.devices.nvme import NvmeDevice
from repro.devices.pmem import PmemDevice
from repro.fault.plan import (
    FAULT_ERROR,
    FAULT_LATENCY,
    FAULT_TORN,
    FaultPlan,
    FaultSpec,
    clear_plan,
    plan_installed,
)
from repro.fault.retry import DEFAULT_RETRY_POLICY, RetryPolicy, with_retries
from repro.obs import METRICS
from repro.sim.clock import CycleClock

PAGE = units.PAGE_SIZE


@pytest.fixture(autouse=True)
def _clean_state():
    yield
    clear_plan()
    METRICS.disable()
    METRICS.reset()


def _nvme_with(triggers, **spec_kwargs):
    plan = FaultPlan(1, FaultSpec(triggers={"nvme0": triggers}, **spec_kwargs))
    with plan_installed(plan):
        device = NvmeDevice(capacity_bytes=4 * units.MIB)
    return device, plan


class TestDeviceInjection:
    def test_no_plan_no_faults(self):
        device = NvmeDevice(capacity_bytes=4 * units.MIB)
        assert device.faults is None
        device.submit(CycleClock(), 0, PAGE, is_write=False)

    def test_error_trigger_raises_transient(self):
        device, _ = _nvme_with({0: FAULT_ERROR})
        with pytest.raises(TransientDeviceError):
            device.submit(CycleClock(), 0, PAGE, is_write=False)

    def test_torn_write_lands_prefix_only(self):
        device, _ = _nvme_with({0: FAULT_TORN})
        data = bytes(range(256)) * (PAGE // 256)
        with pytest.raises(TornWriteError) as excinfo:
            device.submit(CycleClock(), 0, PAGE, is_write=True, data=data)
        torn = excinfo.value.written_bytes
        assert 0 <= torn < PAGE
        stored = device.store.read(0, PAGE)
        assert stored[:torn] == data[:torn]
        assert stored[torn:] == bytes(PAGE - torn)

    def test_latency_spike_delays_completion(self):
        clean = NvmeDevice(capacity_bytes=4 * units.MIB)
        clock_clean = CycleClock()
        clean.submit(clock_clean, 0, PAGE, is_write=False)

        device, _ = _nvme_with({0: FAULT_LATENCY})
        clock_faulty = CycleClock()
        device.submit(clock_faulty, 0, PAGE, is_write=False)
        assert clock_faulty.now > clock_clean.now

    def test_latency_scaled_by_device_class(self):
        """pmem spikes are ~100x shorter than NVMe spikes."""
        assert PmemDevice.fault_latency_scale < NvmeDevice.fault_latency_scale

    def test_submit_async_error_raises(self):
        device, _ = _nvme_with({0: FAULT_ERROR})
        with pytest.raises(TransientDeviceError):
            device.submit_async(CycleClock(), 0, PAGE, is_write=True, data=bytes(PAGE))

    def test_counters_accumulate(self):
        device, plan = _nvme_with({0: FAULT_ERROR, 1: FAULT_LATENCY})
        clock = CycleClock()
        with pytest.raises(TransientDeviceError):
            device.submit(clock, 0, PAGE, is_write=False)
        device.submit(clock, 0, PAGE, is_write=False)
        counters = plan.injector_for("nvme0").counters()
        assert counters["errors"] == 1
        assert counters["latency"] == 1
        assert plan.total_faults() == 2


class TestRetryPolicy:
    def test_backoff_is_exponential(self):
        policy = RetryPolicy()
        assert policy.backoff_cycles(0) == policy.base_backoff_cycles
        assert policy.backoff_cycles(1) == policy.base_backoff_cycles * policy.multiplier
        assert (
            policy.backoff_cycles(2)
            == policy.base_backoff_cycles * policy.multiplier**2
        )

    def test_retry_recovers_and_charges_backoff(self):
        METRICS.enable()
        device, _ = _nvme_with({0: FAULT_ERROR})
        io = KernelFaultIO(device)
        clock = CycleClock()
        data = io.read(clock, 0, PAGE, "io")
        assert data == bytes(PAGE)
        assert clock.breakdown.get("io.retry_backoff") == pytest.approx(
            DEFAULT_RETRY_POLICY.backoff_cycles(0)
        )
        assert METRICS.counter("fault.retries").value == 1

    def test_giveup_escalates_to_permanent_error(self):
        METRICS.enable()
        attempts = DEFAULT_RETRY_POLICY.max_attempts
        device, _ = _nvme_with({i: FAULT_ERROR for i in range(attempts)})
        io = KernelFaultIO(device)
        with pytest.raises(DeviceError) as excinfo:
            io.read(CycleClock(), 0, PAGE, "io")
        assert not isinstance(excinfo.value, TransientDeviceError)
        assert METRICS.counter("fault.giveups").value == 1
        assert METRICS.counter("fault.retries").value == attempts - 1

    def test_torn_write_is_retried_to_full_write(self):
        """A torn write retried lands the complete payload."""
        device, _ = _nvme_with({0: FAULT_TORN})
        io = KernelFaultIO(device)
        clock = CycleClock()
        data = b"\xab" * PAGE
        io.write(clock, 0, data, "io")
        assert device.store.read(0, PAGE) == data

    def test_custom_policy_attempt_count(self):
        device, _ = _nvme_with({i: FAULT_ERROR for i in range(10)})
        clock = CycleClock()
        policy = RetryPolicy(max_attempts=2)
        calls = []

        def attempt():
            calls.append(1)
            return device.submit(clock, 0, PAGE, is_write=False)

        with pytest.raises(DeviceError):
            with_retries(clock, attempt, "io", policy)
        assert len(calls) == 2

    def test_retry_cycle_totals_deterministic(self):
        """Same seed + plan => identical cycle totals across two runs."""
        totals = []
        for _ in range(2):
            plan = FaultPlan(42, FaultSpec(error_rate=0.2, latency_rate=0.2))
            with plan_installed(plan):
                device = NvmeDevice(capacity_bytes=4 * units.MIB)
            io = KernelFaultIO(device)
            clock = CycleClock()
            for index in range(50):
                io.write(clock, (index % 16) * PAGE, bytes(PAGE), "io")
            totals.append(clock.now)
        assert totals[0] == totals[1]

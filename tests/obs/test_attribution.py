"""CycleAttribution: folding spans into per-name and per-stage totals."""

import pytest

from repro.obs import CycleAttribution, Tracer
from repro.sim.clock import CycleClock


@pytest.fixture
def tracer():
    t = Tracer()
    t.enable()
    return t


def _trace_fault(tracer, clock, io_cycles):
    with tracer.span("fault", clock):
        clock.charge("fault.vma_lookup", 100)
        with tracer.span("fault.io"):
            clock.charge("idle.io", io_cycles)
        clock.charge("fault.pte_install", 50)


class TestSelfCycles:
    def test_per_name_totals(self, tracer):
        clock = CycleClock()
        _trace_fault(tracer, clock, 1000)
        _trace_fault(tracer, clock, 3000)
        att = CycleAttribution.from_tracer(tracer)
        assert att.self_cycles("fault") == 300       # 2 x (100 + 50)
        assert att.self_cycles("fault.io") == 4000
        assert att.count("fault") == 2
        assert att.total_cycles() == 4300
        assert att.span_names() == ["fault", "fault.io"]

    def test_prefix_totals_are_dotted(self, tracer):
        clock = CycleClock()
        _trace_fault(tracer, clock, 1000)
        att = CycleAttribution.from_tracer(tracer)
        # "fault" matches both "fault" and "fault.io"; "fault.i" matches neither.
        assert att.self_prefix_total("fault") == 1150
        assert att.self_prefix_total("fault.io") == 1000
        assert att.self_prefix_total("fault.i") == 0

    def test_total_equals_charged_clock_advance(self, tracer):
        clock = CycleClock()
        _trace_fault(tracer, clock, 777)
        att = CycleAttribution.from_tracer(tracer)
        assert att.total_cycles() == pytest.approx(clock.breakdown.total())

    def test_since_mark_window(self, tracer):
        clock = CycleClock()
        _trace_fault(tracer, clock, 1000)
        mark = tracer.mark()
        _trace_fault(tracer, clock, 2000)
        att = CycleAttribution.from_tracer(tracer, since=mark)
        assert att.count("fault") == 1
        assert att.self_cycles("fault.io") == 2000


class TestCharges:
    def test_charges_of(self, tracer):
        clock = CycleClock()
        _trace_fault(tracer, clock, 1000)
        att = CycleAttribution.from_tracer(tracer)
        assert att.charges_of("fault") == {
            "fault.vma_lookup": 100,
            "fault.pte_install": 50,
        }
        assert att.charges_of("fault.io") == {"idle.io": 1000}
        assert att.charges_of("missing") == {}

    def test_charges_of_prefix_merges(self, tracer):
        clock = CycleClock()
        _trace_fault(tracer, clock, 1000)
        att = CycleAttribution.from_tracer(tracer)
        merged = att.charges_of_prefix("fault")
        assert merged == {
            "fault.vma_lookup": 100,
            "fault.pte_install": 50,
            "idle.io": 1000,
        }


class TestPerStage:
    def test_first_match_wins_and_other(self, tracer):
        clock = CycleClock()
        _trace_fault(tracer, clock, 1000)
        with tracer.span("evict", clock):
            clock.charge("cache.lru", 90)
        att = CycleAttribution.from_tracer(tracer)
        stages = att.per_stage(
            [("fault.io", "device"), ("fault", "fault-path"), ("reclaim", "reclaim")]
        )
        assert stages == {
            "device": 1000,
            "fault-path": 150,
            "reclaim": 0.0,     # rule stage present even with no matching span
            "other": 90,        # "evict" matched nothing
        }

    def test_items_sorted_by_cycles_desc(self, tracer):
        clock = CycleClock()
        _trace_fault(tracer, clock, 1000)
        att = CycleAttribution.from_tracer(tracer)
        rows = att.items()
        assert rows == [("fault.io", 1000, 1), ("fault", 150, 1)]

"""Figure 8: page-fault overhead breakdowns (paper Section 6.4).

(a) average fault cost, pmem, in-memory dataset — Linux vs Aquila;
(b) average fault cost with evictions in the common path (8 GB cache,
    100 GB dataset) — Linux vs Aquila;
(c) Aquila fault cost under each device-access path: Cache-Hit, DAX-pmem,
    HOST-pmem, SPDK-NVMe, HOST-NVMe.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.bench.setups import make_aquila_stack, make_linux_stack, scaled_pages
from repro.common import units
from repro.mmio.vma import MADV_RANDOM
from repro.obs import DEFAULT_CYCLE_BUCKETS, METRICS
from repro.sim.executor import SimThread
from repro.workloads.microbench import MicrobenchConfig, run_microbench

#: Breakdown categories surfaced per figure row (prefix -> display name).
BREAKDOWN_PREFIXES = [
    ("fault.trap", "trap/exception"),
    ("fault.vma_lookup", "vma lookup"),
    ("fault.pcache_lookup", "page-cache lookup"),
    ("cache.hash.lookup", "hash lookup"),
    ("fault.io", "device I/O"),
    ("idle.io", "device wait"),
    ("idle.fault.io", "device wait (blocked)"),
    ("fault.pte_install", "pte install"),
    ("fault.lru", "lru"),
    ("cache.freelist", "freelist"),
    ("cache.hash.insert", "hash insert"),
    ("fault.pcache_insert", "page-cache insert"),
    ("fault.page_alloc", "page alloc"),
    ("reclaim", "reclaim"),
    ("evict", "evict select"),
    ("tlb.shootdown", "tlb shootdown"),
    ("writeback", "writeback"),
    ("fault.misc", "misc"),
]


def _per_fault_breakdown(result, faults: int) -> Dict[str, float]:
    merged = result.merged_breakdown()
    out: Dict[str, float] = {}
    for prefix, label in BREAKDOWN_PREFIXES:
        cycles = merged.prefix_total(prefix)
        if cycles > 0 and faults > 0:
            out[label] = cycles / faults
    return out


def run_fault_benchmark(
    engine_kind: str,
    dataset_pages: int,
    cache_pages: int,
    accesses: int,
    device_kind: str = "pmem",
    io_path: Optional[str] = None,
    touch_once: bool = True,
    write_fraction: float = 0.0,
) -> Dict:
    """Single-thread microbenchmark run; returns mean fault cost + breakdown."""
    if engine_kind == "linux":
        stack = make_linux_stack(device_kind, cache_pages)
    else:
        stack = make_aquila_stack(device_kind, cache_pages, io_path=io_path)
    file = stack.allocator.create("mb-data", dataset_pages * units.PAGE_SIZE)
    config = MicrobenchConfig(
        num_threads=1,
        accesses_per_thread=accesses,
        touch_once=touch_once,
        shared_file=True,
        write_fraction=write_fraction,
    )
    result = run_microbench(stack.engine, file, config)
    latencies = result.merged_latencies()
    steady_mean = latencies.tail_mean(0.5)   # order-safe: sorts use a cached view
    if METRICS.enabled:
        hist = METRICS.histogram(
            f"latency.fault.{stack.engine.name}.{device_kind}",
            buckets=DEFAULT_CYCLE_BUCKETS,
        )
        hist.observe_many(latencies.samples())
    faults = stack.engine.faults
    return {
        "engine": stack.engine.name,
        "device": device_kind,
        "mean_access_cycles": latencies.mean(),
        "steady_mean_cycles": steady_mean,
        "p99_cycles": latencies.p99(),
        "faults": faults,
        "accesses": latencies.count,
        "breakdown": _per_fault_breakdown(result, max(1, latencies.count)),
        "stack": stack,
        "_result": result,
    }


def run_fig8a(accesses: int = 800) -> Dict[str, Dict]:
    """In-memory fault cost: Linux vs Aquila on pmem."""
    dataset = accesses + 64
    cache = dataset + 64
    linux = run_fault_benchmark("linux", dataset, cache, accesses)
    aquila = run_fault_benchmark("aquila", dataset, cache, accesses)
    return {"linux": linux, "aquila": aquila}


def run_fig8b(cache_pages: int = 512, accesses: Optional[int] = None) -> Dict[str, Dict]:
    """Out-of-memory fault cost (evictions in the common path).

    Preserves the paper's 8 GB : 100 GB cache:dataset ratio; accesses run
    long enough that the second half of the run is in eviction steady
    state, which ``steady_mean_cycles`` reports.
    """
    dataset = cache_pages * 100 // 8
    if accesses is None:
        accesses = cache_pages * 3
    linux = run_fault_benchmark(
        "linux", dataset, cache_pages, accesses, touch_once=False
    )
    aquila = run_fault_benchmark(
        "aquila", dataset, cache_pages, accesses, touch_once=False
    )
    return {"linux": linux, "aquila": aquila}


def run_fig8c(accesses: int = 600) -> Dict[str, float]:
    """Aquila device-access paths: mean fault cost per path."""
    dataset = accesses + 64
    cache = dataset + 64
    results: Dict[str, float] = {}
    for label, device_kind, io_path in [
        ("DAX-pmem", "pmem", "dax"),
        ("HOST-pmem", "pmem", "host"),
        ("SPDK-NVMe", "nvme", "spdk"),
        ("HOST-NVMe", "nvme", "host"),
    ]:
        outcome = run_fault_benchmark(
            "aquila", dataset, cache, accesses, device_kind=device_kind, io_path=io_path
        )
        results[label] = outcome["mean_access_cycles"]
    results["Cache-Hit"] = _run_cache_hit(accesses)
    return results


def _run_cache_hit(accesses: int) -> float:
    """Faults that find the page already in the DRAM cache.

    Touch every page (populating the cache), unmap, remap, touch again:
    the second pass faults but needs no I/O.
    """
    dataset = accesses + 64
    stack = make_aquila_stack("pmem", cache_pages=dataset + 64, io_path="dax")
    file = stack.allocator.create("hit-data", dataset * units.PAGE_SIZE)
    thread = SimThread(core=0)
    mapping = stack.engine.mmap(thread, file)
    mapping.madvise(thread, MADV_RANDOM)
    for page in range(dataset):
        mapping.load(thread, page * units.PAGE_SIZE, 8)
    mapping.munmap(thread)

    mapping2 = stack.engine.mmap(thread, file)
    mapping2.madvise(thread, MADV_RANDOM)
    before_faults = stack.engine.faults
    start = thread.clock.now
    count = 0
    for page in range(0, dataset, 2):   # random-ish stride, all cache hits
        mapping2.load(thread, page * units.PAGE_SIZE, 8)
        count += 1
    elapsed = thread.clock.now - start
    faults = stack.engine.faults - before_faults
    assert faults == count, "cache-hit pass should fault on every page"
    return elapsed / count


#: Figure 8(c) device-access paths as (label, device_kind, io_path) rows.
FIG8C_PATHS = [
    ("DAX-pmem", "pmem", "dax"),
    ("HOST-pmem", "pmem", "host"),
    ("SPDK-NVMe", "nvme", "spdk"),
    ("HOST-NVMe", "nvme", "host"),
]


def enumerate_cells(scale: str = "figure") -> List[Dict]:
    """Every Figure 8 bar as an independent sweep work unit.

    Variants: (a) in-memory fault cost (linux/aquila), (b) eviction-path
    fault cost (linux/aquila), (c) one cell per Aquila device-access path
    plus the Cache-Hit cell.  ``scale="bench"`` shrinks access counts.
    """
    accesses_a = 800 if scale == "figure" else 200
    accesses_c = 600 if scale == "figure" else 150
    cache_b = 512 if scale == "figure" else 128
    cells = []
    for engine in ("linux", "aquila"):
        cells.append(
            {
                "cell_id": f"fig8a/{engine}",
                "figure": "fig8a",
                "params": {
                    "variant": "a",
                    "engine_kind": engine,
                    "accesses": accesses_a,
                },
            }
        )
        cells.append(
            {
                "cell_id": f"fig8b/{engine}",
                "figure": "fig8b",
                "params": {
                    "variant": "b",
                    "engine_kind": engine,
                    "cache_pages": cache_b,
                },
            }
        )
    for label, device_kind, io_path in FIG8C_PATHS:
        cells.append(
            {
                "cell_id": f"fig8c/{label}",
                "figure": "fig8c",
                "params": {
                    "variant": "c",
                    "label": label,
                    "device_kind": device_kind,
                    "io_path": io_path,
                    "accesses": accesses_c,
                },
            }
        )
    cells.append(
        {
            "cell_id": "fig8c/Cache-Hit",
            "figure": "fig8c",
            "params": {"variant": "hit", "accesses": accesses_c},
        }
    )
    return cells


def run_sweep_cell(params: Dict) -> Dict:
    """Run one enumerated Figure 8 cell; payload plus full-state digest.

    Variants (a), (b) and (c) run the fault microbenchmark and digest the
    complete end state with the PR 3 conformance machinery; the Cache-Hit
    variant reports its mean fault cost (its payload is its state).
    """
    from repro.sim.conformance import mmio_state_digest

    variant = params["variant"]
    if variant == "hit":
        mean = _run_cache_hit(params["accesses"])
        payload = {"label": "Cache-Hit", "mean_access_cycles": mean}
        return {"payload": payload, "state": payload}
    if variant == "a":
        accesses = params["accesses"]
        dataset = accesses + 64
        outcome = run_fault_benchmark(
            params["engine_kind"], dataset, dataset + 64, accesses
        )
    elif variant == "b":
        cache_pages = params["cache_pages"]
        outcome = run_fault_benchmark(
            params["engine_kind"],
            cache_pages * 100 // 8,
            cache_pages,
            cache_pages * 3,
            touch_once=False,
        )
    else:
        accesses = params["accesses"]
        dataset = accesses + 64
        outcome = run_fault_benchmark(
            "aquila",
            dataset,
            dataset + 64,
            accesses,
            device_kind=params["device_kind"],
            io_path=params["io_path"],
        )
        outcome["label"] = params["label"]
    stack = outcome.pop("stack")
    result = outcome.pop("_result")
    return {"payload": outcome, "state": mmio_state_digest(stack, result)}

"""Operation-granularity discrete-event executor.

Simulated threads are Python iterators: each ``next()`` performs exactly one
application-level operation (a KV get, one BFS step, one microbenchmark
access), mutating shared simulation state and charging cycles to the
thread's clock.  The executor always steps the thread whose clock is
furthest behind, so shared structures (caches, freelists, lock timelines)
are touched in simulated-time order — the property that makes the lock and
device timeline models meaningful.

This gives deterministic, single-OS-thread simulation of up to the paper's
32 hardware threads (DESIGN.md Section 4, item 1).
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, Iterable, Iterator, List, Optional, Sequence

from repro.common.errors import SimulationError
from repro.sim.clock import Breakdown, CycleClock
from repro.sim.stats import LatencyRecorder


class SimThread:
    """One simulated software thread pinned to a hardware thread.

    ``core`` is the hardware-thread index (0..31 on the paper's testbed);
    the topology module maps it to a physical core and NUMA node.
    """

    _ids = itertools.count()

    def __init__(self, core: int, name: str = "") -> None:
        self.tid = next(SimThread._ids)
        self.core = core
        self.name = name or f"thread-{self.tid}"
        self.clock = CycleClock()
        self.clock.owner_name = self.name
        self.latencies = LatencyRecorder()
        self.ops_completed = 0

    def record_op(self, start_cycles: float) -> None:
        """Record completion of one operation started at ``start_cycles``."""
        self.latencies.record(self.clock.now - start_cycles)
        self.ops_completed += 1

    def __repr__(self) -> str:
        return f"SimThread({self.name}, core={self.core}, now={self.clock.now:.0f})"


class RunResult:
    """Outcome of one executor run."""

    def __init__(self, threads: Sequence[SimThread]) -> None:
        self.threads = list(threads)

    @property
    def makespan_cycles(self) -> float:
        """Finish time of the slowest thread (total elapsed simulated time)."""
        if not self.threads:
            return 0.0
        return max(t.clock.now for t in self.threads)

    @property
    def total_ops(self) -> int:
        """Operations completed across all threads."""
        return sum(t.ops_completed for t in self.threads)

    def throughput_ops_per_sec(self) -> float:
        """Aggregate throughput over the makespan."""
        from repro.sim.stats import throughput_ops_per_sec

        return throughput_ops_per_sec(self.total_ops, self.makespan_cycles)

    def merged_latencies(self) -> LatencyRecorder:
        """All threads' operation latencies in one recorder."""
        merged = LatencyRecorder()
        for t in self.threads:
            merged.merge(t.latencies)
        return merged

    def merged_breakdown(self) -> Breakdown:
        """All threads' cycle breakdowns merged."""
        merged = Breakdown()
        for t in self.threads:
            merged.merge(t.clock.breakdown)
        return merged


class Executor:
    """Runs a set of (thread, workload-iterator) pairs to completion."""

    def __init__(self) -> None:
        self._entries: List[tuple] = []

    def add(self, thread: SimThread, workload: Iterable) -> None:
        """Register ``thread`` to execute operations from ``workload``.

        ``workload`` must be an iterable whose iterator performs one
        operation per ``next()`` call (yielded values are ignored).
        """
        self._entries.append((thread, iter(workload)))

    def run(self, max_ops: Optional[int] = None) -> RunResult:
        """Step threads in min-clock order until all workloads finish.

        ``max_ops`` bounds total operations as a runaway guard.
        """
        heap: List[tuple] = []
        for order, (thread, it) in enumerate(self._entries):
            heap.append((thread.clock.now, order, thread, it))
        heapq.heapify(heap)

        steps = 0
        while heap:
            _, order, thread, it = heapq.heappop(heap)
            try:
                before = thread.clock.now
                next(it)
                if thread.clock.now < before:
                    raise SimulationError(
                        f"{thread.name} moved backwards in time "
                        f"({before:.0f} -> {thread.clock.now:.0f})"
                    )
            except StopIteration:
                continue
            steps += 1
            if max_ops is not None and steps > max_ops:
                raise SimulationError(f"executor exceeded max_ops={max_ops}")
            heapq.heappush(heap, (thread.clock.now, order, thread, it))

        return RunResult([t for t, _ in self._entries])


def run_threads(
    make_workload: Callable[[SimThread], Iterator],
    num_threads: int,
    cores: Optional[Sequence[int]] = None,
    start_offset_cycles: float = 0.0,
) -> RunResult:
    """Convenience: build ``num_threads`` threads and run their workloads.

    ``make_workload`` receives each :class:`SimThread` and returns its
    operation iterator.  ``cores`` optionally pins threads to hardware
    threads (defaults to identity).  ``start_offset_cycles`` staggers thread
    start times to avoid artificial lockstep convoys.
    """
    executor = Executor()
    threads = []
    for i in range(num_threads):
        core = cores[i] if cores is not None else i
        thread = SimThread(core=core)
        thread.clock.now = i * start_offset_cycles
        threads.append(thread)
        executor.add(thread, make_workload(thread))
    return executor.run()

"""Graph processing: R-MAT generation, mmap-backed heaps, Ligra-style
BFS plus PageRank and connected components."""

from repro.graph.algorithms import ParallelComponents, ParallelPageRank
from repro.graph.ligra import UNVISITED, BFSResult, HeapGraph, ParallelBFS
from repro.graph.mmap_heap import DramHeap, HeapArray, MmapHeap
from repro.graph.rmat import CSRGraph, generate_rmat_edges, make_rmat_csr

__all__ = [
    "UNVISITED",
    "BFSResult",
    "HeapGraph",
    "ParallelBFS",
    "ParallelComponents",
    "ParallelPageRank",
    "DramHeap",
    "HeapArray",
    "MmapHeap",
    "CSRGraph",
    "generate_rmat_edges",
    "make_rmat_csr",
]

"""Explicit I/O engine: direct read/write syscalls + a user-space cache.

This is the paper's main non-mmio baseline — RocksDB's recommended
configuration (Section 5): every read first probes a sharded user-space
LRU cache (paying lookup cycles even on hits), and misses issue direct-I/O
pread syscalls (13 K cycles of kernel work per miss for RocksDB's file
layout, Figure 7) plus the device access.

It exposes a pread/pwrite-style interface over :class:`BackingFile` so
the KV stores can swap it for an mmio engine behind one adapter.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.common import constants, units
from repro.cache.user_cache import UserSpaceCache
from repro.fault.crash import CRASH
from repro.fault.retry import RetryPolicy, with_retries
from repro.hw.machine import Machine
from repro.hw.vmx import ExecutionDomain, VMXCostModel
from repro.mmio.files import BackingFile
from repro.obs import METRICS, TRACER
from repro.sim.executor import SimThread

#: RocksDB reads SST data in block-sized units; blocks here are one page.
BLOCK_SIZE = units.PAGE_SIZE


class ExplicitIOEngine:
    """Direct I/O with user-space caching."""

    name = "explicit-io"

    #: Batching-invariant audit (see ``repro.sim.executor``): unlike the
    #: mmio engines, explicit reads touch shared state (the sharded user
    #: cache) behind *lock timelines*, not behind a fixed preamble charge.
    #: Misses and writes do start with a >= 300-cycle syscall, so this
    #: declaration is honest for them — but cache hits do not, which is
    #: why :meth:`read_run` refuses to batch unless the thread runs solo.
    sync_preamble_cycles = constants.SYSCALL_CYCLES

    #: Retry policy for transient device faults (None = stack default).
    retry_policy: Optional[RetryPolicy] = None

    #: Analytic fast-forward switch (mirrors ``MmioEngine.fastforward``).
    #: When on, :meth:`read_run` retires solo hit runs through
    #: :meth:`UserSpaceCache.get_run_fast`, which skips the per-hit lock
    #: replay that a solo thread could never contend on.  Mode metadata,
    #: excluded from conformance digests.
    fastforward: bool = False

    def __init__(
        self,
        machine: Machine,
        cache_pages: int,
        syscall_miss_cycles: float = constants.USERCACHE_SYSCALL_MISS_CYCLES,
        num_shards: int = 64,
    ) -> None:
        self.machine = machine
        self.cache = UserSpaceCache(cache_pages, num_shards=num_shards)
        self.vmx = VMXCostModel(ExecutionDomain.ROOT_RING3)
        self.syscall_miss_cycles = syscall_miss_cycles
        self.reads = 0
        self.writes = 0
        METRICS.bind_object(
            f"engine.{self.name}",
            self,
            {"reads": "reads", "writes": "writes"},
        )

    def _read_block(self, thread: SimThread, file: BackingFile, block: int) -> bytes:
        """One cached block read: user-cache probe, then direct-I/O pread."""
        clock = thread.clock
        self.machine.absorb_interference(thread)
        with TRACER.span("ucache.lookup", clock):
            data = self.cache.get(clock, thread.tid, file.file_id, block)
        if data is not None:
            return data
        # Direct-I/O pread: syscall + VFS/filesystem/block-layer work
        # (the Figure 7 "system calls" component), then the device.
        with TRACER.span("io.syscall", clock):
            self.vmx.syscall(clock, "io.syscall")
            clock.charge(
                "io.syscall.kernel", self.syscall_miss_cycles - constants.SYSCALL_CYCLES
            )
        with TRACER.span("io.device", clock):
            data = with_retries(
                clock,
                lambda: file.device.submit(
                    clock,
                    file.device_offset(block),
                    BLOCK_SIZE,
                    is_write=False,
                    wait_category="idle.io.read",
                ),
                "io",
                self.retry_policy,
            )
        with TRACER.span("ucache.insert", clock):
            self.cache.insert(clock, thread.tid, file.file_id, block, data)
        return data

    def read_run(
        self,
        thread: SimThread,
        file: BackingFile,
        blocks,
        index: int,
        horizon: float,
    ) -> int:
        """Retire a run of consecutive cached single-block reads in one step.

        Batched-mode fast path for block-granular read workloads: consumes
        hits from ``blocks[index:]`` until the first miss, charging the
        user-cache lookup cost in bulk (``UserSpaceCache.get_run``).  The
        first miss is left to the caller's per-op slow path (:meth:`pread`)
        so its recorded latency matches unbatched execution exactly.

        Only batches when ``horizon`` is infinite — i.e. this thread is the
        sole runnable thread.  With concurrent threads every lookup is an
        interaction with the per-shard lock timelines, so each op must
        re-enter the scheduler heap; the executor encodes that by handing
        out finite horizons whenever another thread is runnable.

        Returns the number of block reads consumed (possibly 0).
        """
        if not math.isinf(horizon):
            return 0
        if index >= len(blocks):
            return 0
        clock = thread.clock
        self.machine.absorb_interference(thread)
        if (
            self.fastforward
            and clock.cpi_factor == 1.0
            and clock._obs_span is None
            and not TRACER.enabled
        ):
            consumed = self.cache.get_run_fast(clock, file.file_id, blocks, index)
        else:
            consumed = self.cache.get_run(clock, thread.tid, file.file_id, blocks, index)
        if consumed:
            # Solo + uncontended locks: each hit's latency is exactly the
            # lookup charge, so per-op recording needs no clock snapshots.
            per_op = constants.USERCACHE_LOOKUP_CYCLES * clock.cpi_factor
            for _ in range(consumed):
                thread.latencies.record(per_op)
            thread.ops_completed += consumed
            self.reads += consumed
        return consumed

    def pread(self, thread: SimThread, file: BackingFile, offset: int, nbytes: int) -> bytes:
        """Read ``nbytes`` at ``offset`` through the user cache."""
        if offset < 0 or nbytes < 0 or offset + nbytes > file.size_bytes:
            raise ValueError(
                f"pread [{offset}, +{nbytes}) outside file of {file.size_bytes} bytes"
            )
        self.reads += 1
        chunks = []
        pos = offset
        remaining = nbytes
        while remaining > 0:
            block = pos // BLOCK_SIZE
            in_block = pos % BLOCK_SIZE
            take = min(remaining, BLOCK_SIZE - in_block)
            data = self._read_block(thread, file, block)
            chunks.append(data[in_block : in_block + take])
            pos += take
            remaining -= take
        return b"".join(chunks)

    def pwrite(self, thread: SimThread, file: BackingFile, offset: int, data: bytes) -> None:
        """Direct write-through: one syscall + device write per call.

        RocksDB issues large sequential writes (WAL appends, compaction
        output), so the per-call overhead amortizes; data is not cached
        (direct I/O bypasses caches on writes).
        """
        if offset < 0 or offset + len(data) > file.size_bytes:
            raise ValueError("pwrite outside file bounds")
        self.writes += 1
        clock = thread.clock
        self.machine.absorb_interference(thread)
        with TRACER.span("io.syscall", clock):
            self.vmx.syscall(clock, "io.syscall")
            clock.charge(
                "io.syscall.kernel", self.syscall_miss_cycles - constants.SYSCALL_CYCLES
            )
        # Direct I/O bypasses the cache; stale cached blocks must go.  New
        # files (the common case: WAL, compaction output) have none.
        self.cache.invalidate_range(
            file.file_id, offset // BLOCK_SIZE, (offset + len(data) - 1) // BLOCK_SIZE
        )
        # Submit per device-contiguous run (extent files are one run).
        with TRACER.span("io.device", clock):
            pos = offset
            written = 0
            while written < len(data):
                page = pos // units.PAGE_SIZE
                in_page = pos % units.PAGE_SIZE
                run_pages = file.contiguous_run(page, units.pages(len(data) - written) + 1)
                take = min(len(data) - written, run_pages * units.PAGE_SIZE - in_page)
                chunk = data[written : written + take]
                dev_offset = file.device_offset(page) + in_page
                CRASH.point(f"{self.name}.pwrite.run")
                with_retries(
                    clock,
                    lambda dev_offset=dev_offset, chunk=chunk: file.device.submit(
                        clock,
                        dev_offset,
                        len(chunk),
                        is_write=True,
                        data=chunk,
                        wait_category="idle.io.write",
                    ),
                    "io",
                    self.retry_policy,
                )
                pos += take
                written += take

    def fsync(self, thread: SimThread, file: BackingFile) -> None:
        """Direct I/O writes are durable on completion; fsync is a syscall."""
        self.vmx.syscall(thread.clock, "io.syscall")
        CRASH.point(f"{self.name}.fsync")

"""Cross-stack integration: whole-system flows spanning many subsystems."""

import pytest

from repro.common import units
from repro.core import Aquila, AquilaConfig
from repro.devices.nvme import NvmeDevice
from repro.devices.pmem import PmemDevice
from repro.hw.machine import Machine
from repro.kv.env import MmioEnv
from repro.kv.rocksdb import RocksDB
from repro.mmio.files import ExtentAllocator
from repro.sim.executor import Executor, SimThread
from repro.workloads.ycsb import YCSBConfig, YCSBDriver


class TestRocksDBOnAquilaLibOS:
    """RocksDB running on the full Aquila library OS over SPDK blobs."""

    def test_end_to_end(self):
        machine = Machine()
        device = NvmeDevice(capacity_bytes=512 * units.MIB)
        aquila = Aquila(
            machine, device, AquilaConfig(cache_pages=512, io_path="spdk")
        )
        main = SimThread(core=0)
        aquila.enter(main)

        def blob_factory(thread, name, size_bytes):
            return aquila.open(thread, name, size_bytes=size_bytes)

        env = MmioEnv(aquila.engine, None, file_factory=blob_factory)
        db = RocksDB(env, memtable_bytes=16 * units.KIB, sst_bytes=32 * units.KIB)
        for i in range(300):
            db.put(main, b"key-%05d" % i, b"value-%d" % i)
        db.flush(main)
        db.compact_all(main)
        for i in range(300):
            assert db.get(main, b"key-%05d" % i) == b"value-%d" % i
        # Files were translated to blobs, not extents.
        assert aquila.blobstore is not None
        assert len(aquila.blobstore.blob_ids()) > 0


class TestMultiThreadedYCSBConsistency:
    """Concurrent YCSB-A over a shared store stays consistent."""

    @pytest.mark.parametrize("mode", ["aquila", "linux"])
    def test_reads_after_writes(self, mode):
        from repro.bench.setups import make_rocksdb

        db, stack = make_rocksdb(
            mode if mode != "linux" else "mmap",
            cache_pages=256,
            capacity_bytes=512 * units.MIB,
            memtable_bytes=32 * units.KIB,
        )
        loader = SimThread(core=0)
        config = YCSBConfig(
            workload="A", record_count=400, operation_count=400, value_bytes=128
        )
        driver = YCSBDriver(db, config)
        driver.load(loader)
        db.flush(loader)

        executor = Executor()
        threads = []
        for i in range(4):
            thread = SimThread(core=i)
            thread.clock.now = loader.clock.now
            threads.append(thread)
            executor.add(thread, driver.run_workload(thread, 100))
        executor.run()
        assert driver.stats.not_found == 0
        assert driver.stats.operations == 400


class TestHeapExtensionPersistence:
    """A graph heap persists across mappings through msync."""

    def test_bfs_state_durable(self):
        from repro.bench.setups import make_aquila_stack
        from repro.graph.ligra import ParallelBFS
        from repro.graph.mmap_heap import MmapHeap
        from repro.graph.rmat import make_rmat_csr

        stack = make_aquila_stack("pmem", cache_pages=128, capacity_bytes=128 * units.MIB)
        file = stack.allocator.create("heap", 8 * units.MIB)
        setup = SimThread(core=0)
        mapping = stack.engine.mmap(setup, file)
        heap = MmapHeap(mapping)
        graph = make_rmat_csr(400, 8, seed=12)
        threads = [SimThread(core=i) for i in range(2)]
        bfs = ParallelBFS(heap, graph, threads, setup_thread=setup)
        result = bfs.run(graph.largest_out_degree_vertex())
        mapping.msync(setup)
        mapping.munmap(setup)
        # Re-map: the parents array content is still there.
        mapping2 = stack.engine.mmap(setup, file)
        heap2 = MmapHeap(mapping2)
        from repro.graph.mmap_heap import HeapArray

        parents2 = HeapArray(heap2, bfs.parents.offset, bfs.parents.length)
        probe = SimThread(core=0)
        root = graph.largest_out_degree_vertex()
        assert parents2.read(probe, root) == root


class TestDeterminism:
    """The whole simulation is bit-deterministic."""

    def test_repeated_runs_identical(self):
        from repro.bench.experiments.fig8 import run_fig8a

        a = run_fig8a(accesses=100)
        b = run_fig8a(accesses=100)
        assert a["linux"]["mean_access_cycles"] == b["linux"]["mean_access_cycles"]
        assert a["aquila"]["mean_access_cycles"] == b["aquila"]["mean_access_cycles"]

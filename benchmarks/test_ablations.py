"""Ablations of Aquila's design choices (paper Sections 3-4).

Each ablation disables or resizes one mechanism the paper motivates and
checks it pulls its weight:

* SIMD memcpy for the DAX path (Section 3.3: 2x copy speedup);
* batched TLB shootdowns (Section 4.1: one IPI per batch);
* eviction batch size (Section 3.2: amortization vs hot-set theft);
* the non-root ring 0 trap (Section 6.4: the 2.33x domain-switch win);
* SPDK vs host syscalls for NVMe (Section 3.3).
"""

from repro.bench.setups import make_aquila_stack, scaled_pages
from repro.bench.report import Table, print_claims, ratio_line
from repro.common import constants, units
from repro.devices.io_engines import DaxIO
from repro.devices.pmem import PmemDevice
from repro.hw.machine import Machine
from repro.mmio.aquila import AquilaEngine
from repro.workloads.microbench import MicrobenchConfig, run_microbench


def _run_engine(engine, stack, accesses=800, dataset_pages=None, touch_once=True):
    if dataset_pages is None:
        dataset_pages = accesses + 64
    file = stack.allocator.create(
        f"abl-{id(engine)}", dataset_pages * units.PAGE_SIZE
    )
    config = MicrobenchConfig(
        num_threads=1, accesses_per_thread=accesses, touch_once=touch_once
    )
    result = run_microbench(engine, file, config)
    return result.merged_latencies().mean()


def test_ablation_simd_memcpy(once):
    """Without AVX2 streaming copies the DAX miss path slows by ~1200 cycles."""

    def run():
        machine = Machine()
        dev_simd = PmemDevice(capacity_bytes=256 * units.MIB)
        dev_plain = PmemDevice(capacity_bytes=256 * units.MIB)
        simd = AquilaEngine(machine, 2048, DaxIO(dev_simd, use_simd=True))
        plain = AquilaEngine(Machine(), 2048, DaxIO(dev_plain, use_simd=False))

        class _Stack:
            pass

        from repro.mmio.files import ExtentAllocator

        s1, s2 = _Stack(), _Stack()
        s1.allocator = ExtentAllocator(dev_simd)
        s2.allocator = ExtentAllocator(dev_plain)
        return _run_engine(simd, s1), _run_engine(plain, s2)

    simd_mean, plain_mean = once(run)
    delta = plain_mean - simd_mean
    expected = constants.MEMCPY_4K_NOSIMD_CYCLES - constants.MEMCPY_4K_AQUILA_DAX_CYCLES
    print_claims(
        "Ablation: SIMD memcpy",
        [
            ratio_line("fault-cost delta (cycles)", float(expected), delta, ""),
            ratio_line("copy speedup", 2.0, constants.MEMCPY_4K_NOSIMD_CYCLES / constants.MEMCPY_4K_AQUILA_DAX_CYCLES),
        ],
    )
    assert plain_mean > simd_mean
    assert abs(delta - expected) < 150


def test_ablation_shootdown_batch(once):
    """Smaller shootdown batches cost more IPI sends per evicted page."""

    def run():
        rows = []
        for batch in (1, 8, 64):
            stack = make_aquila_stack("pmem", cache_pages=512)
            stack.engine.shootdown_batch = batch
            stack.engine.cache.eviction_batch = 64
            # Populate other cores' TLBs so shootdowns have targets.
            file = stack.allocator.create("warm", 512 * units.PAGE_SIZE)
            config = MicrobenchConfig(
                num_threads=8, accesses_per_thread=700, touch_once=False
            )
            result = run_microbench(stack.engine, file, config)
            sends = stack.engine._shootdowns.ipis_sent
            pages = stack.engine._shootdowns.pages_invalidated
            rows.append((batch, sends, pages, result.merged_latencies().mean()))
        return rows

    rows = once(run)
    table = Table(
        "Ablation: TLB shootdown batch size",
        ["batch", "IPIs sent", "pages invalidated", "mean access cycles"],
    )
    for row in rows:
        table.add_row(*row)
    table.show()
    ipis_per_page = {batch: sends / max(1, pages) for batch, sends, pages, _ in rows}
    assert ipis_per_page[1] > 2 * ipis_per_page[64], "batching must amortize IPIs"


def test_ablation_eviction_batch(once):
    """Oversized eviction batches steal the hot set; tiny ones lose amortization."""

    def run():
        rows = []
        for batch in (2, 16, 256):
            stack = make_aquila_stack("pmem", cache_pages=512)
            stack.engine.cache.eviction_batch = batch
            mean = _run_engine(
                stack.engine,
                stack,
                accesses=1500,
                dataset_pages=1024,
                touch_once=False,
            )
            rows.append((batch, mean, stack.engine.eviction_batches))
        return rows

    rows = once(run)
    table = Table(
        "Ablation: eviction batch size (cache 512 pages, dataset 1024)",
        ["batch", "mean access cycles", "eviction batches"],
    )
    for row in rows:
        table.add_row(*row)
    table.show()
    by_batch = {batch: mean for batch, mean, _ in rows}
    # A batch of half the cache must hurt hit rate and cost.
    assert by_batch[256] > by_batch[16], "evicting half the cache must cost"


def test_ablation_trap_cost(once):
    """Replacing Aquila's exception with the ring-3 trap erases ~735 cycles/fault."""

    def run():
        from repro.hw.vmx import ExecutionDomain, VMXCostModel

        stack_fast = make_aquila_stack("pmem", cache_pages=1024)
        mean_fast = _run_engine(stack_fast.engine, stack_fast, accesses=600)
        stack_slow = make_aquila_stack("pmem", cache_pages=1024)
        stack_slow.engine.vmx = VMXCostModel(ExecutionDomain.ROOT_RING3)
        mean_slow = _run_engine(stack_slow.engine, stack_slow, accesses=600)
        return mean_fast, mean_slow

    mean_fast, mean_slow = once(run)
    delta = mean_slow - mean_fast
    expected = constants.TRAP_RING3_CYCLES - constants.TRAP_AQUILA_CYCLES
    print_claims(
        "Ablation: non-root ring 0 exception vs ring 3 trap",
        [ratio_line("per-fault delta (cycles)", float(expected), delta, "")],
    )
    assert abs(delta - expected) < 100


def test_ablation_spdk_vs_host_nvme(once):
    """SPDK's kernel bypass must beat host syscalls on NVMe (~1.5x)."""

    def run():
        spdk = make_aquila_stack("nvme", cache_pages=1024, io_path="spdk")
        host = make_aquila_stack("nvme", cache_pages=1024, io_path="host")
        return (
            _run_engine(spdk.engine, spdk, accesses=500),
            _run_engine(host.engine, host, accesses=500),
        )

    spdk_mean, host_mean = once(run)
    ratio = host_mean / spdk_mean
    print_claims(
        "Ablation: SPDK vs host syscalls (NVMe)",
        [ratio_line("host/spdk fault cost", 1.53, ratio)],
    )
    assert 1.2 < ratio < 2.0

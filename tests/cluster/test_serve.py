"""Multi-tenant serving across shards: placement and conformance."""

import pytest

from repro.cluster.ring import HashRing
from repro.cluster.serve import place_tenants, run_cluster_serve, tenant_key
from repro.serve.core import TenantSpec


def _tenants(count=6):
    return [
        TenantSpec(
            name=f"tenant-{i}",
            requests=80,
            mean_gap_cycles=400.0,
            dataset_pages=32,
            write_fraction=0.1,
        )
        for i in range(count)
    ]


class TestPlacement:
    def test_every_tenant_placed_exactly_once(self):
        ring = HashRing(range(3))
        placement = place_tenants(_tenants(), ring)
        placed = [name.name for specs in placement.values() for name in specs]
        assert sorted(placed) == sorted(t.name for t in _tenants())
        assert set(placement) == {0, 1, 2}

    def test_placement_is_name_stable(self):
        ring = HashRing(range(4), seed=5)
        first = place_tenants(_tenants(), ring, seed=5)
        second = place_tenants(_tenants(), ring, seed=5)
        assert {s: [t.name for t in v] for s, v in first.items()} == {
            s: [t.name for t in v] for s, v in second.items()
        }

    def test_tenant_key_is_seeded(self):
        assert tenant_key("a", 1) == tenant_key("a", 1)
        assert tenant_key("a", 1) != tenant_key("a", 2)
        assert tenant_key("a", 1) != tenant_key("b", 1)


class TestClusterServe:
    def test_modes_agree(self):
        tenants = _tenants()
        fast = run_cluster_serve(tenants, 3, batched=True, fastforward=True)
        slow = run_cluster_serve(tenants, 3, batched=False, fastforward=False)
        assert fast.merged_hash() == slow.merged_hash()

    def test_all_tenants_report_rows(self):
        result = run_cluster_serve(_tenants(), 3)
        assert len(result.tenant_rows) == 6
        assert all("shard" in row for row in result.tenant_rows)

    def test_single_shard_matches_plain_serve_shape(self):
        result = run_cluster_serve(_tenants(3), 1)
        assert result.placement == {0: ["tenant-0", "tenant-1", "tenant-2"]}

    def test_rejects_empty_cluster(self):
        with pytest.raises(ValueError):
            run_cluster_serve(_tenants(), 0)

"""EXPERIMENTS.md regeneration and the ``report --check`` staleness gate."""

import os

import pytest

from repro.bench.report import (
    check_experiments_md,
    generate_experiments_md,
    write_experiments_md,
)
from repro.bench.sweep import run_sweep

REPO = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
COMMITTED_DOC = os.path.join(REPO, "EXPERIMENTS.md")
COMMITTED_MANIFEST = os.path.join(REPO, "benchmarks", "MANIFEST_sweep.jsonl")


@pytest.fixture(scope="module")
def manifest(tmp_path_factory):
    """A complete bench-scale manifest (every figure, shrunk grids)."""
    path = tmp_path_factory.mktemp("report") / "manifest.jsonl"
    result = run_sweep(scale="bench", manifest_path=str(path))
    assert result.ok
    return str(path)


def test_generation_is_deterministic(manifest):
    assert generate_experiments_md(manifest) == generate_experiments_md(manifest)


def test_check_passes_on_fresh_doc(manifest, tmp_path):
    doc = tmp_path / "EXPERIMENTS.md"
    write_experiments_md(str(doc), manifest)
    assert check_experiments_md(str(doc), manifest) == []


def test_check_catches_stale_table(manifest, tmp_path):
    doc = tmp_path / "EXPERIMENTS.md"
    write_experiments_md(str(doc), manifest)
    text = doc.read_text()
    assert "2179" in text, "the Cache-Hit anchor should appear in the doc"
    doc.write_text(text.replace("2179", "1234", 1))
    problems = check_experiments_md(str(doc), manifest)
    assert problems, "a stale measured value must fail the check"
    assert any("1234" in line for line in problems)


def test_check_catches_missing_doc(manifest, tmp_path):
    problems = check_experiments_md(str(tmp_path / "absent.md"), manifest)
    assert problems == [f"{tmp_path / 'absent.md'} does not exist"]


def test_generation_names_missing_cells(manifest, tmp_path):
    import json

    pruned = tmp_path / "pruned.jsonl"
    with open(manifest) as src, open(pruned, "w") as dst:
        for line in src:
            record = json.loads(line)
            if record.get("cell_id") != "fig7/aquila":
                dst.write(line)
    with pytest.raises(KeyError, match="fig7/aquila"):
        generate_experiments_md(str(pruned))


@pytest.mark.skipif(
    not (os.path.exists(COMMITTED_DOC) and os.path.exists(COMMITTED_MANIFEST)),
    reason="committed sweep artifacts not present",
)
def test_committed_doc_matches_committed_manifest():
    """The repo's EXPERIMENTS.md must regenerate from the repo's manifest.

    This is the same gate CI runs (``python -m repro.bench report
    --check``); failing here means someone edited the doc by hand or
    changed the claims/generators without regenerating.
    """
    problems = check_experiments_md(COMMITTED_DOC, COMMITTED_MANIFEST)
    assert problems == [], "\n".join(problems[:40])

"""IPIs, interference accounts, and batched TLB shootdowns."""

from repro.common import constants
from repro.hw.ipi import InterferenceAccount, ShootdownController
from repro.hw.tlb import TLB
from repro.sim.clock import CycleClock


def _tlbs(count=4):
    return [TLB() for _ in range(count)]


class TestInterferenceAccount:
    def test_post_and_absorb(self):
        account = InterferenceAccount()
        account.post(2, 500)
        account.post(2, 300)
        clock = CycleClock()
        assert account.absorb(2, clock) == 800
        assert clock.now == 800
        assert account.absorb(2, clock) == 0   # drained

    def test_cores_independent(self):
        account = InterferenceAccount()
        account.post(0, 100)
        assert account.pending(1) == 0
        assert account.pending(0) == 100


class TestShootdownController:
    def test_no_targets_no_ipis(self):
        tlbs = _tlbs()
        controller = ShootdownController(tlbs, InterferenceAccount(), "aquila")
        clock = CycleClock()
        sent = controller.shootdown(clock, 0, [1, 2, 3])
        assert sent == 0   # no remote TLB holds those pages
        assert controller.ipis_sent == 0

    def test_targets_only_holding_cores(self):
        tlbs = _tlbs()
        warm = CycleClock()
        tlbs[1].access(7, warm)
        tlbs[3].access(7, warm)
        controller = ShootdownController(tlbs, InterferenceAccount(), "aquila")
        sent = controller.shootdown(CycleClock(), 0, [7])
        assert sent == 2
        assert not tlbs[1].contains(7)
        assert not tlbs[3].contains(7)

    def test_local_invalidation_always_happens(self):
        tlbs = _tlbs()
        warm = CycleClock()
        tlbs[0].access(9, warm)
        controller = ShootdownController(tlbs, InterferenceAccount(), "linux")
        controller.shootdown(CycleClock(), 0, [9])
        assert not tlbs[0].contains(9)

    def test_interference_posted_to_victims(self):
        tlbs = _tlbs()
        warm = CycleClock()
        tlbs[2].access(5, warm)
        account = InterferenceAccount()
        controller = ShootdownController(tlbs, account, "aquila")
        controller.shootdown(CycleClock(), 0, [5])
        assert account.pending(2) > 0
        assert account.pending(1) == 0

    def test_aquila_send_costs_vmexit_ipi(self):
        """The DoS-safe send path pays 2081 cycles per IPI (Section 4.1)."""
        tlbs = _tlbs()
        warm = CycleClock()
        tlbs[1].access(3, warm)
        controller = ShootdownController(tlbs, InterferenceAccount(), "aquila")
        clock = CycleClock()
        controller.shootdown(clock, 0, [3])
        sends = clock.breakdown.prefix_total("tlb.shootdown.send")
        assert sends == constants.IPI_SEND_VMEXIT_CYCLES

    def test_batching_amortizes_sends(self):
        """One IPI per target core regardless of batch size."""
        tlbs = _tlbs()
        warm = CycleClock()
        for vpn in range(64):
            tlbs[1].access(vpn, warm)
        controller = ShootdownController(tlbs, InterferenceAccount(), "aquila")
        controller.shootdown(CycleClock(), 0, list(range(64)))
        assert controller.ipis_sent == 1
        assert controller.pages_invalidated == 64

    def test_linux_receive_cost_scales_with_pages(self):
        """Linux receivers invalidate page by page; Aquila flushes once."""
        def receive_cost(mode):
            tlbs = _tlbs(2)
            warm = CycleClock()
            for vpn in range(32):
                tlbs[1].access(vpn, warm)
            account = InterferenceAccount()
            controller = ShootdownController(tlbs, account, mode)
            controller.shootdown(CycleClock(), 0, list(range(32)))
            return account.pending(1)

        assert receive_cost("linux") > receive_cost("aquila")

    def test_empty_batch_noop(self):
        controller = ShootdownController(_tlbs(), InterferenceAccount(), "linux")
        assert controller.shootdown(CycleClock(), 0, []) == 0

    def test_unknown_mode_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            ShootdownController(_tlbs(), InterferenceAccount(), "windows")

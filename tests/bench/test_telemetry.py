"""Per-cell telemetry: byte-identity, conformance safety, worker isolation.

The observability plane's three contracts (DESIGN.md §10), each pinned
here against real sweep cells:

* **byte-identity** — two runs of the same cell produce byte-identical
  deterministic telemetry views;
* **conformance safety** — telemetry on/off changes no state digest;
* **worker isolation** — two cells executed back to back in one process
  (the pooled-worker lifecycle) see independent registries and span
  rings, and leak nothing into the orchestrator's own metrics.
"""

import json
import os

import pytest

from repro.bench.sweep import _execute_cell, enumerate_cells, run_sweep
from repro.obs import METRICS, TRACER
from repro.obs.events import telemetry_bytes


@pytest.fixture(autouse=True)
def _globals_off():
    yield
    TRACER.disable()
    TRACER.reset()
    METRICS.disable()
    METRICS.reset()


def _cell(cell_id="fig10a/shared/aquila/t4"):
    cells = enumerate_cells(["fig10a"], "bench")
    (cell,) = [c for c in cells if c["cell_id"] == cell_id]
    return cell


class TestByteIdentity:
    def test_same_cell_twice_is_byte_identical(self):
        cell = _cell()
        cell["obs"] = {"telemetry": True}
        first = _execute_cell(dict(cell))
        second = _execute_cell(dict(cell))
        assert telemetry_bytes(first["telemetry"]) == telemetry_bytes(
            second["telemetry"]
        )
        assert first["telemetry_digest"] == second["telemetry_digest"]
        # wall_seconds is in the snapshot but excluded from the bytes.
        assert "wall_seconds" in first["telemetry"]

    def test_telemetry_json_round_trip_keeps_digest(self):
        from repro.obs.events import telemetry_digest

        cell = _cell()
        cell["obs"] = {"telemetry": True}
        entry = _execute_cell(cell)
        shipped = json.loads(json.dumps(entry["telemetry"]))
        assert telemetry_digest(shipped) == entry["telemetry_digest"]


class TestConformanceSafety:
    def test_state_digest_identical_with_and_without_telemetry(self):
        cell = _cell()
        with_telemetry = _execute_cell({**cell, "obs": {"telemetry": True}})
        without = _execute_cell({**cell, "obs": {"telemetry": False}})
        assert with_telemetry["state_digest"] == without["state_digest"]
        assert "telemetry" not in without

    def test_profiling_does_not_change_state_digest(self, tmp_path):
        cell = _cell()
        plain = _execute_cell({**cell, "obs": {"telemetry": True}})
        profiled = _execute_cell(
            {**cell, "obs": {"telemetry": True, "profile_dir": str(tmp_path)}}
        )
        assert profiled["state_digest"] == plain["state_digest"]
        assert profiled["telemetry_digest"] == plain["telemetry_digest"]


class TestWorkerIsolation:
    def test_two_cells_one_process_have_independent_telemetry(self):
        """The pooled-worker lifecycle: consecutive cells must not leak."""
        cells = enumerate_cells(["fig10a"], "bench")
        small = [c for c in cells if c["cell_id"] == "fig10a/shared/aquila/t1"][0]
        large = [c for c in cells if c["cell_id"] == "fig10a/shared/aquila/t16"][0]
        small["obs"] = large["obs"] = {"telemetry": True}
        # Baseline: each cell alone in a fresh call.
        alone_small = _execute_cell(dict(small))["telemetry"]
        # Back to back, same process, reversed and repeated orders.
        first = _execute_cell(dict(large))["telemetry"]
        second = _execute_cell(dict(small))["telemetry"]
        assert telemetry_bytes(second) == telemetry_bytes(alone_small)
        # The two cells really differ, so identical bytes above cannot be
        # an artifact of the cells coinciding.
        assert (
            first["attribution"]["total_cycles"]
            != second["attribution"]["total_cycles"]
        )

    def test_cells_leak_nothing_into_orchestrator_registry(self):
        from repro import obs

        obs.enable_metrics()
        before = set(METRICS.snapshot())
        cell = _cell()
        cell["obs"] = {"telemetry": True}
        _execute_cell(cell)
        after = METRICS.snapshot()
        # No cell-side counters (engine.*, fault.*) appeared outside.
        assert set(after) == before

    def test_orchestrator_counters_survive_serial_sweep(self, tmp_path):
        from repro import obs

        obs.enable_metrics()
        result = run_sweep(
            figures=["fig8c"],
            scale="bench",
            workers=1,
            manifest_path=str(tmp_path / "m.jsonl"),
        )
        assert result.ok
        snap = METRICS.snapshot()
        assert snap["sweep.cells.completed"] == len(result.entries)
        assert snap["sweep.cells.failed"] == 0


class TestProfileArtifacts:
    def test_profile_artifacts_content_addressed(self, tmp_path):
        cell = _cell()
        cell["obs"] = {"telemetry": True, "profile_dir": str(tmp_path)}
        entry = _execute_cell(cell)
        paths = entry["profile"]
        assert os.path.basename(paths["pstats"]) == f"{cell['config_digest']}.pstats"
        with open(paths["hotspots"]) as handle:
            hotspots = json.load(handle)
        assert hotspots["config_digest"] == cell["config_digest"]
        assert hotspots["cell_id"] == cell["cell_id"]
        assert hotspots["span_hotspots"], "span hotspots must be populated"
        assert hotspots["top_functions"], "cProfile rows must be populated"
        import pstats

        stats = pstats.Stats(paths["pstats"])
        assert stats.total_calls > 0

    def test_sweep_profile_flag_writes_next_to_manifest(self, tmp_path):
        result = run_sweep(
            figures=["fig8c"],
            scale="bench",
            workers=1,
            manifest_path=str(tmp_path / "m.jsonl"),
            profile=True,
        )
        assert result.ok
        profile_dir = tmp_path / "profiles"
        names = sorted(os.listdir(profile_dir))
        digests = {entry["config_digest"] for entry in result.entries}
        assert {n.split(".")[0] for n in names} == digests


class TestLogDashboard:
    def test_log_dashboard_output_is_deterministic(self, tmp_path):
        import io

        from repro.obs.dashboard import LogDashboard

        def run(directory):
            stream = io.StringIO()
            run_sweep(
                figures=["fig8c"],
                scale="bench",
                workers=1,
                manifest_path=str(directory / "m.jsonl"),
                dashboard=LogDashboard(stream=stream),
            )
            return stream.getvalue()

        (tmp_path / "a").mkdir()
        (tmp_path / "b").mkdir()
        first = run(tmp_path / "a")
        second = run(tmp_path / "b")
        assert first == second
        assert "[dash] start" in first
        assert "[dash] finish" in first
        assert "spans=" in first   # telemetry surfaced per cell

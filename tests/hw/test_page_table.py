"""Guest page table semantics."""

from hypothesis import given
from hypothesis import strategies as st

from repro.hw.page_table import PageTable


class TestPageTable:
    def test_install_lookup(self):
        table = PageTable()
        table.install(10, frame=3, writable=False)
        pte = table.lookup(10)
        assert pte is not None
        assert pte.frame == 3
        assert not pte.writable
        assert pte.accessed

    def test_missing_lookup(self):
        assert PageTable().lookup(99) is None

    def test_dirty_tracking_protocol(self):
        """Read fault installs read-only; first write upgrades + dirties."""
        table = PageTable()
        table.install(5, frame=1, writable=False)
        assert not table.lookup(5).dirty
        table.set_writable(5)
        table.mark_dirty(5)
        pte = table.lookup(5)
        assert pte.writable and pte.dirty
        table.clear_dirty(5)
        assert not table.lookup(5).dirty

    def test_remove(self):
        table = PageTable()
        table.install(1, frame=9)
        removed = table.remove(1)
        assert removed.frame == 9
        assert table.lookup(1) is None
        assert table.remove(1) is None
        assert table.removals == 1

    def test_reinstall_replaces(self):
        table = PageTable()
        table.install(1, frame=5)
        table.install(1, frame=7)
        assert table.lookup(1).frame == 7

    def test_mapped_range(self):
        table = PageTable()
        for vpn in (10, 12, 20):
            table.install(vpn, frame=vpn)
        found = dict(table.mapped_range(10, 5))   # [10, 15)
        assert set(found) == {10, 12}

    def test_mapped_range_large_window(self):
        """The sparse-table path (range larger than table)."""
        table = PageTable()
        table.install(1000, frame=1)
        table.install(2000, frame=2)
        found = dict(table.mapped_range(0, 10_000))
        assert set(found) == {1000, 2000}

    def test_frames_in_use(self):
        table = PageTable()
        table.install(3, frame=30)
        table.install(4, frame=40)
        assert table.frames_in_use() == {30: 3, 40: 4}

    @given(st.sets(st.integers(min_value=0, max_value=10_000), max_size=100))
    def test_install_remove_roundtrip(self, vpns):
        table = PageTable()
        for vpn in vpns:
            table.install(vpn, frame=vpn * 2)
        assert len(table) == len(vpns)
        for vpn in vpns:
            assert table.lookup(vpn).frame == vpn * 2
            table.remove(vpn)
        assert len(table) == 0

"""Crash a sweep mid-run, resume it, and get the same manifest back.

The manifest is append-only JSONL with one fsync-ed line per cell, so a
SIGKILL at any point loses at most the line being written.  ``--resume``
must skip every manifest-complete cell and the finished manifest's
deterministic content (cell ids, config digests, state digests, sweep
digest) must equal an uninterrupted run's.
"""

import json
import os
import signal
import subprocess
import sys
import time

from repro.bench.sweep import index_manifest, load_manifest, run_sweep, sweep_digest

FIGURES = ["fig7"]   # 2 cells, each slow enough to interrupt


def _env():
    env = dict(os.environ)
    src = os.path.join(os.getcwd(), "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return env


def _sweep_cmd(manifest, *extra):
    return [
        sys.executable, "-m", "repro.bench", "sweep",
        "--figures", *FIGURES, "--scale", "bench",
        "--manifest", str(manifest), *extra,
    ]


def test_resume_after_kill_completes_identically(tmp_path):
    killed = tmp_path / "killed.jsonl"
    reference = tmp_path / "reference.jsonl"

    # Uninterrupted reference run (in-process, serial).
    run_sweep(figures=FIGURES, scale="bench", manifest_path=str(reference))

    # Start the same sweep in a subprocess and SIGKILL it as soon as the
    # first cell record lands in the manifest.
    proc = subprocess.Popen(
        _sweep_cmd(killed),
        env=_env(),
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    deadline = time.time() + 90
    while time.time() < deadline:
        if killed.exists() and any(
            record.get("kind") == "cell" for record in load_manifest(str(killed))
        ):
            break
        if proc.poll() is not None:
            break
        time.sleep(0.02)
    if proc.poll() is None:
        proc.send_signal(signal.SIGKILL)
    proc.wait()

    before = index_manifest(load_manifest(str(killed)))
    assert before, "the kill landed before any cell completed; test is vacuous"

    # Resume: completed cells are skipped, the rest run to completion.
    result = run_sweep(
        figures=FIGURES, scale="bench", manifest_path=str(killed), resume=True
    )
    assert result.ok
    assert {entry["cell_id"] for entry in result.skipped} >= set(before)

    resumed = index_manifest(load_manifest(str(killed)))
    ref = index_manifest(load_manifest(str(reference)))
    deterministic = ("cell_id", "figure", "runner", "config_digest", "state_digest")
    assert {
        cid: {k: rec[k] for k in deterministic} for cid, rec in resumed.items()
    } == {cid: {k: rec[k] for k in deterministic} for cid, rec in ref.items()}
    assert sweep_digest(resumed) == sweep_digest(ref)


def test_truncated_final_line_is_tolerated(tmp_path):
    manifest = tmp_path / "manifest.jsonl"
    run_sweep(figures=FIGURES, scale="bench", manifest_path=str(manifest))
    whole = load_manifest(str(manifest))
    with open(manifest, "a") as handle:
        handle.write('{"kind": "cell", "cell_id": "fig7/tr')   # torn write
    assert load_manifest(str(manifest)) == whole
    result = run_sweep(
        figures=FIGURES, scale="bench", manifest_path=str(manifest), resume=True
    )
    assert result.ok and not result.entries, "all cells were already complete"

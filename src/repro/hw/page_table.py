"""Guest page table: GVA -> GPA translation (x86-64 4-level semantics).

Both Linux and Aquila use a single page table shared by all threads of a
process (paper Section 3.4: "We choose to have a single page table shared
by all cores, similar to what common OSes do").  The table stores, per
virtual page number, the guest-physical frame and the protection/state
bits the engines rely on: present, writable, dirty, accessed.

Dirty tracking through write faults (Section 3.2): a page faulted for read
is mapped read-only; the first write takes a second (protection) fault in
which the engine marks the page dirty and sets the writable bit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Optional, Tuple


@dataclass
class PTE:
    """One page-table entry."""

    frame: int
    writable: bool = False
    dirty: bool = False
    accessed: bool = False

    def copy(self) -> "PTE":
        """An independent copy of this entry."""
        return PTE(self.frame, self.writable, self.dirty, self.accessed)


class PageTable:
    """Per-process page table mapping virtual page numbers to frames."""

    def __init__(self) -> None:
        self._entries: Dict[int, PTE] = {}
        self.installs = 0
        self.removals = 0

    def lookup(self, vpn: int) -> Optional[PTE]:
        """The PTE for ``vpn`` or None when not present."""
        return self._entries.get(vpn)

    def is_mapped(self, vpn: int) -> bool:
        """Whether ``vpn`` has a present mapping."""
        return vpn in self._entries

    def install(self, vpn: int, frame: int, writable: bool = False) -> PTE:
        """Create (or replace) the mapping for ``vpn``."""
        pte = PTE(frame=frame, writable=writable, accessed=True)
        self._entries[vpn] = pte
        self.installs += 1
        return pte

    def set_writable(self, vpn: int, writable: bool = True) -> None:
        """Update the writable bit of an existing mapping."""
        self._entries[vpn].writable = writable

    def mark_dirty(self, vpn: int) -> None:
        """Set the dirty bit of an existing mapping."""
        self._entries[vpn].dirty = True

    def clear_dirty(self, vpn: int) -> None:
        """Clear the dirty bit (after writeback)."""
        pte = self._entries.get(vpn)
        if pte is not None:
            pte.dirty = False

    def remove(self, vpn: int) -> Optional[PTE]:
        """Tear down the mapping for ``vpn``; returns the old entry."""
        pte = self._entries.pop(vpn, None)
        if pte is not None:
            self.removals += 1
        return pte

    def mapped_range(self, start_vpn: int, count: int) -> Iterator[Tuple[int, PTE]]:
        """Iterate present mappings within ``[start_vpn, start_vpn+count)``."""
        if count < 0:
            raise ValueError("count must be non-negative")
        # Iterate the smaller side: the range or the table.
        if count < len(self._entries):
            for vpn in range(start_vpn, start_vpn + count):
                pte = self._entries.get(vpn)
                if pte is not None:
                    yield vpn, pte
        else:
            end = start_vpn + count
            for vpn in sorted(self._entries):
                if start_vpn <= vpn < end:
                    yield vpn, self._entries[vpn]

    def __len__(self) -> int:
        return len(self._entries)

    def frames_in_use(self) -> Dict[int, int]:
        """Map of frame -> vpn for every present mapping (reverse map)."""
        return {pte.frame: vpn for vpn, pte in self._entries.items()}

"""Per-core TLB model.

The TLB caches virtual-page -> PTE translations.  Functionally it matters
for two reasons in this reproduction:

* Modifying or removing a mapping requires invalidating the entry on every
  core whose TLB may hold it (shootdown, paper Section 4.1).
* Aquila flushes TLBs more often than Linux explicit I/O, which is why
  RocksDB's ``get`` costs rise from 15.3 K to 18.5 K cycles (Figure 7) —
  the extra misses are charged by :meth:`TLB.access`.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterable, Set

from repro.common import constants
from repro.sim.clock import CycleClock


class TLB:
    """One core's TLB: an LRU set of cached virtual-page numbers."""

    def __init__(self, capacity: int = 1536) -> None:
        if capacity <= 0:
            raise ValueError("TLB capacity must be positive")
        self.capacity = capacity
        self._entries: "OrderedDict[int, None]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        self.flushes = 0

    def access(self, vpn: int, clock: CycleClock) -> bool:
        """Translate ``vpn``; charge a page walk on a miss.  Returns hit."""
        if vpn in self._entries:
            self._entries.move_to_end(vpn)
            self.hits += 1
            return True
        self.misses += 1
        clock.charge("tlb.miss_walk", constants.TLB_MISS_WALK_CYCLES)
        self._insert(vpn)
        return False

    def _insert(self, vpn: int) -> None:
        self._entries[vpn] = None
        self._entries.move_to_end(vpn)
        if len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def contains(self, vpn: int) -> bool:
        """Whether the TLB currently caches ``vpn`` (no cost, no LRU touch)."""
        return vpn in self._entries

    def contains_any(self, vpns: Iterable[int]) -> bool:
        """Whether any vpn of a batch is cached (no cost, no LRU touch).

        Set-disjointness instead of a per-vpn probe loop: shootdown target
        selection scans every core's TLB against batches of up to 512 vpns.
        """
        return not self._entries.keys().isdisjoint(vpns)

    def invalidate(self, vpn: int) -> None:
        """Drop one entry (functional part of INVLPG)."""
        if vpn in self._entries:
            del self._entries[vpn]
            self.invalidations += 1

    def invalidate_many(self, vpns: Iterable[int]) -> None:
        """Drop a batch of entries (batched shootdown receive side)."""
        entries = self._entries
        for vpn in vpns:
            if vpn in entries:
                del entries[vpn]
                self.invalidations += 1

    def flush(self) -> None:
        """Drop every entry (CR3 reload / full shootdown)."""
        self._entries.clear()
        self.flushes += 1

    def resident_vpns(self) -> Set[int]:
        """Snapshot of cached virtual-page numbers."""
        return set(self._entries)

    @property
    def miss_ratio(self) -> float:
        """Fraction of accesses that missed."""
        total = self.hits + self.misses
        if total == 0:
            return 0.0
        return self.misses / total

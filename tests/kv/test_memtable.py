"""Skiplist memtable."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kv.memtable import TOMBSTONE, Memtable

keys = st.binary(min_size=1, max_size=24)
values = st.binary(max_size=64)


class TestBasics:
    def test_put_get(self):
        table = Memtable()
        table.put(b"k", b"v")
        assert table.get(b"k") == b"v"
        assert table.get(b"missing") is None

    def test_overwrite(self):
        table = Memtable()
        table.put(b"k", b"v1")
        table.put(b"k", b"v2")
        assert table.get(b"k") == b"v2"
        assert len(table) == 1

    def test_delete_leaves_tombstone(self):
        table = Memtable()
        table.put(b"k", b"v")
        table.delete(b"k")
        assert table.get(b"k") == TOMBSTONE

    def test_items_sorted(self):
        table = Memtable()
        for key in [b"c", b"a", b"b"]:
            table.put(key, key)
        assert [k for k, _ in table.items()] == [b"a", b"b", b"c"]

    def test_range_items(self):
        table = Memtable()
        for i in range(10):
            table.put(f"k{i}".encode(), b"v")
        result = table.range_items(b"k3", 4)
        assert [k for k, _ in result] == [b"k3", b"k4", b"k5", b"k6"]

    def test_range_items_beyond_end(self):
        table = Memtable()
        table.put(b"a", b"v")
        assert table.range_items(b"z", 5) == []

    def test_size_accounting(self):
        table = Memtable()
        table.put(b"key", b"value")
        assert table.approximate_bytes == 8
        table.put(b"key", b"longer-value")   # resize accounted
        assert table.approximate_bytes == 3 + 12


@settings(max_examples=100)
@given(st.lists(st.tuples(keys, values), max_size=60))
def test_model_equivalence(entries):
    table = Memtable()
    model = {}
    for key, value in entries:
        table.put(key, value)
        model[key] = value
    assert len(table) == len(model)
    assert [k for k, _ in table.items()] == sorted(model)
    for key, value in model.items():
        assert table.get(key) == value


@settings(max_examples=50)
@given(st.lists(keys, min_size=1, max_size=40), keys, st.integers(1, 10))
def test_range_matches_sorted_slice(all_keys, start, count):
    table = Memtable()
    for key in all_keys:
        table.put(key, key)
    got = [k for k, _ in table.range_items(start, count)]
    expected = sorted(set(k for k in all_keys if k >= start))[:count]
    assert got == expected

"""Figure 10: scalability of Aquila vs Linux mmap (paper Section 6.5).

Random reads with 1..32 threads in four configurations:

* (a) dataset fits in memory — shared file / private file per thread;
* (b) dataset 12.5x the cache — shared file / private file per thread.

The paper's profiling finding: with a shared file, Linux serializes on
the single per-inode tree lock (and on mmap_sem), so Aquila's lock-free
hash gains grow with threads (up to 12.92x); with private files the locks
don't contend and the win is the per-fault cost gap (~2x).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.bench.setups import make_aquila_stack, make_linux_stack
from repro.common import units
from repro.workloads.microbench import MicrobenchConfig, run_microbench

DEFAULT_THREAD_COUNTS = [1, 2, 4, 8, 16, 32]

#: Default per-figure access budget.  40x the original 4096 (10x from the
#: batched scheduler, another 4x from the analytic fast-forward): figure
#: runs default to fast-forward mode, which retires in-memory re-access
#: tails in closed form and replays out-of-memory faults fused, so
#: figure-scale runs stay fast while stepping further toward the paper's
#: full-scale access counts.
DEFAULT_TOTAL_ACCESSES = 163840


def size_fig10_cell(
    num_threads: int,
    shared_file: bool,
    in_memory: bool,
    cache_pages: int,
    total_accesses: int,
) -> Dict:
    """Pure sizing arithmetic for one Figure 10 cell.

    Device capacity is sized from the bytes the cell *actually allocates*:
    private mode splits the dataset across per-thread files (with a 64-page
    floor), so capacity must scale with ``per_file_pages * num_threads``,
    not with ``dataset_pages * num_threads`` — the latter overflows the
    pmem capacity defaults at batched figure scales.

    ``accesses_per_thread`` is no longer capped at the thread's partition
    share: the microbenchmark's touch-once plan re-accesses owned pages
    once the partition is exhausted (pure cache hits in-memory), which is
    the regime the batched fast path accelerates.
    """
    if in_memory:
        dataset_pages = cache_pages            # 100 GB data / 100 GB DRAM
        touch_once = True
    else:
        dataset_pages = cache_pages * 100 // 8  # 100 GB data / 8 GB DRAM
        touch_once = False
    if shared_file:
        per_file_pages = dataset_pages
        num_files = 1
    else:
        # The dataset total is fixed; private mode splits it across files.
        per_file_pages = max(64, dataset_pages // num_threads)
        num_files = num_threads
    file_bytes = per_file_pages * num_files * units.PAGE_SIZE
    return {
        "dataset_pages": dataset_pages,
        "per_file_pages": per_file_pages,
        "num_files": num_files,
        "capacity_bytes": max(512 * units.MIB, 2 * file_bytes),
        "accesses_per_thread": max(8, total_accesses // num_threads),
        "touch_once": touch_once,
    }


def _run_config_with_stack(
    engine_kind: str,
    num_threads: int,
    shared_file: bool,
    in_memory: bool,
    cache_pages: int = 2048,
    total_accesses: int = DEFAULT_TOTAL_ACCESSES,
    device_kind: str = "pmem",
    batched: bool = True,
    fastforward: bool = True,
):
    """One Figure 10 cell; returns ``(row, stack, result)`` for digesting."""
    sizing = size_fig10_cell(
        num_threads, shared_file, in_memory, cache_pages, total_accesses
    )
    capacity = sizing["capacity_bytes"]
    if engine_kind == "linux":
        stack = make_linux_stack(device_kind, cache_pages, capacity_bytes=capacity)
    else:
        stack = make_aquila_stack(device_kind, cache_pages, capacity_bytes=capacity)

    if shared_file:
        files = stack.allocator.create(
            "shared", sizing["dataset_pages"] * units.PAGE_SIZE
        )
    else:
        files = [
            stack.allocator.create(
                f"private-{i}", sizing["per_file_pages"] * units.PAGE_SIZE
            )
            for i in range(num_threads)
        ]
    config = MicrobenchConfig(
        num_threads=num_threads,
        accesses_per_thread=sizing["accesses_per_thread"],
        touch_once=sizing["touch_once"],
        shared_file=shared_file,
        batched=batched,
        fastforward=fastforward,
    )
    result = run_microbench(stack.engine, files, config)
    latencies = result.merged_latencies()
    row = {
        "engine": stack.engine.name,
        "threads": num_threads,
        "throughput": result.throughput_ops_per_sec(),
        "ops": result.total_ops,
        "makespan_cycles": result.makespan_cycles,
        "mean_latency_cycles": latencies.mean(),
        "p99_cycles": latencies.p99(),
        "p999_cycles": latencies.p999(),
    }
    return row, stack, result


def run_config(
    engine_kind: str,
    num_threads: int,
    shared_file: bool,
    in_memory: bool,
    cache_pages: int = 2048,
    total_accesses: int = DEFAULT_TOTAL_ACCESSES,
    device_kind: str = "pmem",
    batched: bool = True,
    fastforward: bool = True,
) -> Dict:
    """One (engine, threads, sharing, fit) cell of Figure 10."""
    row, _, _ = _run_config_with_stack(
        engine_kind,
        num_threads,
        shared_file,
        in_memory,
        cache_pages,
        total_accesses,
        device_kind,
        batched,
        fastforward,
    )
    return row


def run_sweep(
    shared_file: bool,
    in_memory: bool,
    thread_counts: Optional[List[int]] = None,
    cache_pages: int = 2048,
    total_accesses: int = DEFAULT_TOTAL_ACCESSES,
) -> List[Dict]:
    """Linux and Aquila across thread counts for one configuration."""
    counts = thread_counts if thread_counts is not None else DEFAULT_THREAD_COUNTS
    rows = []
    for threads in counts:
        linux = run_config(
            "linux", threads, shared_file, in_memory, cache_pages, total_accesses
        )
        aquila = run_config(
            "aquila", threads, shared_file, in_memory, cache_pages, total_accesses
        )
        rows.append(
            {
                "threads": threads,
                "linux": linux,
                "aquila": aquila,
                "speedup": aquila["throughput"] / max(linux["throughput"], 1e-9),
            }
        )
    return rows


def run_fig10a(thread_counts: Optional[List[int]] = None, cache_pages: int = 2048) -> Dict:
    """In-memory dataset: shared and private file sweeps."""
    return {
        "shared": run_sweep(True, True, thread_counts, cache_pages),
        "private": run_sweep(False, True, thread_counts, cache_pages),
    }


def run_fig10b(thread_counts: Optional[List[int]] = None, cache_pages: int = 1024) -> Dict:
    """Out-of-memory dataset: shared and private file sweeps."""
    return {
        "shared": run_sweep(True, False, thread_counts, cache_pages),
        "private": run_sweep(False, False, thread_counts, cache_pages),
    }


def enumerate_cells(scale: str = "figure") -> List[Dict]:
    """Every Figure 10 cell as an independent sweep work unit.

    Grid: variant (a: in-memory, b: out-of-memory) x shared/private file
    x engine (linux, aquila) x thread count.  ``scale="figure"`` uses the
    figure defaults (40960 accesses, 1-32 threads); ``scale="bench"``
    shrinks the access budget and thread grid for tests and CI.  Params
    fully determine the run — the cell's config digest is a pure function
    of this dict.
    """
    if scale == "figure":
        counts, total = DEFAULT_THREAD_COUNTS, DEFAULT_TOTAL_ACCESSES
    else:
        counts, total = [1, 4, 16], 4096
    cells = []
    for variant, in_memory, cache_pages in (("a", True, 2048), ("b", False, 1024)):
        for shared in (True, False):
            sharing = "shared" if shared else "private"
            for engine_kind in ("linux", "aquila"):
                for threads in counts:
                    cells.append(
                        {
                            "cell_id": f"fig10{variant}/{sharing}/{engine_kind}/t{threads}",
                            "figure": f"fig10{variant}",
                            "params": {
                                "engine_kind": engine_kind,
                                "num_threads": threads,
                                "shared_file": shared,
                                "in_memory": in_memory,
                                "cache_pages": cache_pages,
                                "total_accesses": total,
                            },
                        }
                    )
    return cells


def run_sweep_cell(params: Dict) -> Dict:
    """Run one enumerated cell; returns its payload and full-state digest.

    The state digest is the PR 3 conformance structure (thread clocks and
    latency streams, page table, TLBs, cache page checksums, device
    bytes, engine counters), so sharded and serial sweeps can be compared
    bit for bit — Figure 10 is the sweep's correctness-oracle grid.
    """
    from repro.sim.conformance import mmio_state_digest

    row, stack, result = _run_config_with_stack(**params)
    return {"payload": row, "state": mmio_state_digest(stack, result)}

"""Latency and throughput statistics for experiment reporting.

The paper reports average latency, p99 and p99.9 tail latency, and
throughput (ops/sec) for most experiments.  :class:`LatencyRecorder` stores
raw per-operation latencies (cycle counts) and computes those summaries.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from typing import Dict, List, Optional, Sequence

from repro.common import units


class LatencyRecorder:
    """Accumulates per-operation latencies in cycles.

    Samples are kept in recording order; percentile queries sort into a
    separate cached view, so order-dependent summaries (``tail_mean``) and
    rank-dependent ones (``percentile``) compose in either order.
    """

    def __init__(self) -> None:
        self._samples: List[float] = []
        self._sorted_cache: Optional[List[float]] = None

    def record(self, cycles: float) -> None:
        """Record one operation latency."""
        self._samples.append(cycles)
        self._sorted_cache = None

    def extend(self, cycles_list: Sequence[float]) -> None:
        """Record many operation latencies."""
        self._samples.extend(cycles_list)
        self._sorted_cache = None

    def merge(self, other: "LatencyRecorder") -> None:
        """Fold another recorder's samples into this one."""
        self._samples.extend(other._samples)
        self._sorted_cache = None

    def samples(self) -> List[float]:
        """A copy of the raw samples, in recording order."""
        return list(self._samples)

    def _sorted(self) -> List[float]:
        if self._sorted_cache is None:
            self._sorted_cache = sorted(self._samples)
        return self._sorted_cache

    @property
    def count(self) -> int:
        """Number of recorded operations."""
        return len(self._samples)

    @property
    def total_cycles(self) -> float:
        """Sum of all recorded latencies."""
        return sum(self._samples)

    def mean(self) -> float:
        """Average latency in cycles (0 when empty)."""
        if not self._samples:
            return 0.0
        return self.total_cycles / len(self._samples)

    def tail_mean(self, fraction: float = 0.5) -> float:
        """Mean of the last ``fraction`` of samples *in recording order*.

        Used to skip warmup (cache-fill) samples.  Recording order is
        preserved regardless of earlier percentile calls.
        """
        if not 0.0 < fraction <= 1.0:
            raise ValueError("fraction must be in (0, 1]")
        if not self._samples:
            return 0.0
        start = int(len(self._samples) * (1.0 - fraction))
        tail = self._samples[start:]
        return sum(tail) / len(tail)

    def percentile(self, pct: float) -> float:
        """Latency at percentile ``pct`` (0 < pct <= 100), nearest-rank."""
        if not self._samples:
            return 0.0
        if not 0.0 < pct <= 100.0:
            raise ValueError(f"percentile out of range: {pct}")
        ordered = self._sorted()
        # Round away the 1-ulp float error of pct/100*n before ceil(): at
        # exact rank boundaries (99.9% of 1000 samples) the product can
        # land epsilon above the integer and silently shift the rank.
        rank = max(1, math.ceil(round(pct / 100.0 * len(ordered), 9)))
        return ordered[rank - 1]

    def p50(self) -> float:
        """Median latency in cycles."""
        return self.percentile(50.0)

    def p99(self) -> float:
        """99th-percentile latency in cycles."""
        return self.percentile(99.0)

    def p999(self) -> float:
        """99.9th-percentile latency in cycles."""
        return self.percentile(99.9)

    def max(self) -> float:
        """Maximum recorded latency in cycles."""
        if not self._samples:
            return 0.0
        return self._sorted()[-1]

    def histogram(self, buckets: Sequence[float]) -> List[int]:
        """Per-bucket sample counts for ascending upper bounds ``buckets``.

        Returns ``len(buckets) + 1`` counts; the last slot holds samples
        above every bound.  Matches the bucket semantics of
        ``repro.obs.metrics.Histogram``.
        """
        bounds = [float(b) for b in buckets]
        if not bounds or sorted(bounds) != bounds:
            raise ValueError("buckets must be a non-empty ascending sequence")
        counts = [0] * (len(bounds) + 1)
        ordered = self._sorted()
        prev = 0
        # Each bucket holds samples <= its bound (first bound >= value,
        # mirroring Histogram.observe), hence bisect_right edges.
        for i, bound in enumerate(bounds):
            edge = bisect_right(ordered, bound)
            counts[i] = edge - prev
            prev = edge
        counts[-1] = len(ordered) - prev
        return counts

    def mean_us(self) -> float:
        """Average latency in microseconds."""
        return units.cycles_to_us(self.mean())

    def summary(self) -> Dict[str, float]:
        """Dict with count/mean/p50/p99/p999/max in cycles."""
        return {
            "count": float(self.count),
            "mean": self.mean(),
            "p50": self.p50(),
            "p99": self.p99(),
            "p999": self.p999(),
            "max": self.max(),
        }


def throughput_ops_per_sec(ops: int, elapsed_cycles: float) -> float:
    """Operations per second over an elapsed simulated interval."""
    if elapsed_cycles <= 0:
        return 0.0
    return ops / units.cycles_to_seconds(elapsed_cycles)


def speedup(baseline: float, improved: float) -> float:
    """How many times larger ``baseline`` is than ``improved``.

    Used for the paper's "N.NNx lower/higher" phrasing; returns ``inf``
    when ``improved`` is zero.
    """
    if improved == 0:
        return math.inf
    return baseline / improved

"""Discrete-event simulation core: clocks, locks, stats, randomness."""

from repro.sim.clock import Breakdown, CycleClock
from repro.sim.executor import Executor, RunResult, SimThread, run_threads
from repro.sim.locks import (
    CacheLineTimeline,
    LockRegistry,
    RWLockTimeline,
    SpinlockTimeline,
    StripedAtomicTimeline,
)
from repro.sim.rand import (
    LatestGenerator,
    ScrambledZipfGenerator,
    ZipfGenerator,
    derive_seed,
    fnv1a_64,
    stream,
)
from repro.sim.stats import LatencyRecorder, speedup, throughput_ops_per_sec

__all__ = [
    "Breakdown",
    "CycleClock",
    "Executor",
    "RunResult",
    "SimThread",
    "run_threads",
    "CacheLineTimeline",
    "LockRegistry",
    "RWLockTimeline",
    "SpinlockTimeline",
    "StripedAtomicTimeline",
    "LatestGenerator",
    "ScrambledZipfGenerator",
    "ZipfGenerator",
    "derive_seed",
    "fnv1a_64",
    "stream",
    "LatencyRecorder",
    "speedup",
    "throughput_ops_per_sec",
]

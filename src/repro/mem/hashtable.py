"""Lock-free hash table model for Aquila's cached-page index.

Paper Section 3.2: "the handler uses a lock-free hash table to perform a
fast lookup, similar [to] David et al. [ASPLOS'15]", and Section 6.5:
"Aquila replaces this single lock with a lock-free hash table which stores
all cached pages" — the change responsible for the shared-file
scalability win of Figure 10.

Functionally this is a dict.  The cost model charges CAS-based insert and
remove operations against a *striped* atomic timeline: operations on
different buckets never contend, and same-bucket collisions are rare, so
throughput scales with cores — in contrast to the Linux tree lock.
Lookups are wait-free reads (no atomic write traffic at all).
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, List, Optional

from repro.common import constants
from repro.sim.clock import CycleClock
from repro.sim.locks import StripedAtomicTimeline


class LockFreeHashTable:
    """Key -> value map with CAS-modeled mutation costs."""

    def __init__(self, stripes: int = 4096, name: str = "aquila-cache") -> None:
        self._map: Dict[Hashable, Any] = {}
        self._stripes = StripedAtomicTimeline(stripes, name)
        self.lookups = 0
        self.inserts = 0
        self.removes = 0

    def __len__(self) -> int:
        return len(self._map)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._map

    def lookup(self, clock: CycleClock, key: Hashable) -> Optional[Any]:
        """Wait-free read of ``key``."""
        self.lookups += 1
        clock.charge("cache.hash.lookup", constants.AQUILA_CACHE_LOOKUP_CYCLES)
        return self._map.get(key)

    def insert(self, clock: CycleClock, key: Hashable, value: Any) -> bool:
        """CAS-install ``key``; returns False if it already existed.

        Matches the fault-handler race the paper describes: "it may occur
        that upon checking the DRAM cache as part of the page fault
        handling routine, the page has been brought in the cache."
        """
        clock.charge("cache.hash.insert", constants.HASHTABLE_INSERT_CYCLES)
        self._stripes.atomic_op(clock, key)
        if key in self._map:
            return False
        self._map[key] = value
        self.inserts += 1
        return True

    def remove(self, clock: CycleClock, key: Hashable) -> Optional[Any]:
        """CAS-remove ``key``; returns the removed value or None."""
        clock.charge("cache.hash.remove", constants.HASHTABLE_REMOVE_CYCLES)
        self._stripes.atomic_op(clock, key)
        value = self._map.pop(key, None)
        if value is not None:
            self.removes += 1
        return value

    def get_nocost(self, key: Hashable) -> Optional[Any]:
        """Cost-free peek for assertions and invariant checks in tests."""
        return self._map.get(key)

    def keys(self) -> List[Hashable]:
        """Snapshot of all keys."""
        return list(self._map)

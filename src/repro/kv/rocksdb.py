"""RocksDB-like persistent key-value store (paper Section 5).

An LSM tree of SSTs with a WAL and a skiplist memtable, exposing the
paper's three I/O modes through the :class:`~repro.kv.env.StorageEnv`
layer:

* ``direct-io``: explicit pread + user-space block cache (recommended),
* ``mmio[linux-mmap]``: reads through Linux mmap,
* ``mmio[aquila]``: reads through Aquila.

CPU cost per get/put follows Figure 7: a get burns 15.3 K cycles of
RocksDB logic with explicit I/O and 18.5 K under Aquila (extra TLB misses
from remapping); I/O and cache-management cycles are charged by the env
underneath.
"""

from __future__ import annotations

import zlib
from typing import List, Optional, Tuple

from repro.common import constants, units
from repro.fault.crash import CRASH
from repro.kv.env import MmioEnv, StorageEnv
from repro.kv.lsm import LSMTree
from repro.kv.memtable import TOMBSTONE, Memtable
from repro.mmio.aquila import AquilaEngine
from repro.mmio.files import BackingFile
from repro.sim.executor import SimThread

#: Scaled memtable size: RocksDB's 64 MB write buffer at the default
#: 1/1024 experiment scale.
DEFAULT_MEMTABLE_BYTES = 64 * units.KIB
DEFAULT_SST_BYTES = 64 * units.KIB


class RocksDB:
    """LSM key-value store with pluggable storage env."""

    def __init__(
        self,
        env: StorageEnv,
        memtable_bytes: int = DEFAULT_MEMTABLE_BYTES,
        sst_bytes: int = DEFAULT_SST_BYTES,
        auto_compact: bool = True,
        wal_bytes: int = 16 * units.MIB,
    ) -> None:
        self.env = env
        self.memtable_bytes = memtable_bytes
        self.auto_compact = auto_compact
        self.lsm = LSMTree(env, sst_target_bytes=sst_bytes)
        self.memtable = Memtable()
        self.immutable: Optional[Memtable] = None
        self._wal_file: Optional[BackingFile] = None
        self._wal_offset = 0
        self._wal_capacity = wal_bytes
        #: Every WAL segment ever rotated in, in append order — the
        #: recovery "manifest" replay_wal walks after a crash.
        self.wal_files: List[BackingFile] = []
        self._flushes = 0
        self.gets = 0
        self.puts = 0
        # mmio modes pay two *miss-driven* surcharges the paper measures
        # in Figure 7 (an out-of-memory workload where nearly every get
        # faults): 11.8K cycles of block handling on freshly mapped data
        # (counted as cache management) and, under Aquila, 3.2K of extra
        # get CPU from TLB-shootdown pressure (18.5K vs 15.3K).  Warm
        # in-memory runs fault rarely and pay neither — which is why mmap
        # beats read/write in Figure 5(a).
        self._get_cpu = constants.ROCKSDB_GET_CPU_CYCLES
        self._mmio_engine = env.engine if isinstance(env, MmioEnv) else None
        self._aquila_tlb_surcharge = 0
        if self._mmio_engine is not None and isinstance(env.engine, AquilaEngine):
            self._aquila_tlb_surcharge = (
                constants.ROCKSDB_GET_CPU_AQUILA_CYCLES
                - constants.ROCKSDB_GET_CPU_CYCLES
            )

    # -- write path -------------------------------------------------------------

    def _wal_append(self, thread: SimThread, key: bytes, value: bytes) -> None:
        record = (
            len(key).to_bytes(2, "little")
            + key
            + len(value).to_bytes(4, "little")
            + value
            + zlib.crc32(key + value).to_bytes(4, "little")
        )
        if self._wal_file is None or self._wal_offset + len(record) > self._wal_capacity:
            self._wal_file = self.env.write_file(
                thread, f"wal/{len(self.wal_files):06d}.log", bytes(self._wal_capacity)
            )
            self.wal_files.append(self._wal_file)
            self._wal_offset = 0
        self.env.append(thread, self._wal_file, self._wal_offset, record)
        self._wal_offset += len(record)

    def put(self, thread: SimThread, key: bytes, value: bytes) -> None:
        """Insert or update: WAL append + memtable insert."""
        self.puts += 1
        thread.clock.charge("app.put", constants.ROCKSDB_PUT_CPU_CYCLES)
        self._wal_append(thread, key, value)
        self.memtable.put(key, value)
        if self.memtable.approximate_bytes >= self.memtable_bytes:
            self._flush(thread)

    def delete(self, thread: SimThread, key: bytes) -> None:
        """Delete via tombstone."""
        self.put(thread, key, TOMBSTONE)

    def _flush(self, thread: SimThread) -> None:
        """Rotate the memtable into a new L0 SST."""
        self._flushes += 1
        self.immutable = self.memtable
        self.memtable = Memtable(seed=self._flushes)
        self.lsm.add_l0(thread, self.immutable.items())
        self.immutable = None
        if self.auto_compact:
            self.lsm.compact_all(thread)
        CRASH.point("rocksdb.flush")

    def flush(self, thread: SimThread) -> None:
        """Force the memtable to disk (benchmark phase boundary)."""
        if len(self.memtable):
            self._flush(thread)

    def compact_all(self, thread: SimThread) -> int:
        """Run all pending compactions."""
        return self.lsm.compact_all(thread)

    # -- crash recovery -----------------------------------------------------------

    def _try_read_wal_record(
        self, thread: SimThread, file: BackingFile, offset: int
    ) -> Optional[Tuple[bytes, bytes, int]]:
        """Parse one WAL record at ``offset``; None if torn or absent.

        Unwritten WAL space reads as zeros (segments are preallocated),
        so a zero key length marks the end of valid records; an overrun
        or checksum mismatch marks a torn tail.
        """
        end = file.size_bytes
        if offset + 2 > end:
            return None
        klen = int.from_bytes(self.env.read(thread, file, offset, 2), "little")
        if klen == 0 or offset + 2 + klen + 4 > end:
            return None
        key = self.env.read(thread, file, offset + 2, klen)
        vlen = int.from_bytes(
            self.env.read(thread, file, offset + 2 + klen, 4), "little"
        )
        record_end = offset + 2 + klen + 4 + vlen + 4
        if record_end > end:
            return None
        value = self.env.read(thread, file, offset + 2 + klen + 4, vlen)
        crc = int.from_bytes(self.env.read(thread, file, record_end - 4, 4), "little")
        if crc != zlib.crc32(key + value):
            return None
        return key, value, record_end - offset

    def replay_wal(self, thread: SimThread) -> int:
        """Rebuild the memtable from WAL segments after a crash.

        Segments are replayed in append order; each scan stops at the
        first incomplete record — the torn tail a crash can leave.
        Appends are sequential, so acknowledged records always form a
        prefix and the stop cannot drop acked data.  Replayed puts go
        straight to the memtable without re-appending to the WAL.

        Returns the number of records replayed.
        """
        replayed = 0
        for file in self.wal_files:
            offset = 0
            while True:
                record = self._try_read_wal_record(thread, file, offset)
                if record is None:
                    break
                key, value, length = record
                self.memtable.put(key, value)
                offset += length
                replayed += 1
            if file is self._wal_file:
                self._wal_offset = offset
        return replayed

    # -- read path ---------------------------------------------------------------

    def get(self, thread: SimThread, key: bytes) -> Optional[bytes]:
        """Point lookup: memtable, immutable memtable, then the LSM."""
        self.gets += 1
        thread.clock.charge("app.get", self._get_cpu)
        for table in (self.memtable, self.immutable):
            if table is None:
                continue
            value = table.get(key)
            if value is not None:
                return None if value == TOMBSTONE else value
        faults_before = (
            self._mmio_engine.faults if self._mmio_engine is not None else 0
        )
        value = self.lsm.get(thread, key)
        if self._mmio_engine is not None and self._mmio_engine.faults > faults_before:
            thread.clock.charge(
                "cache.user_processing", constants.ROCKSDB_MMIO_PROCESSING_CYCLES
            )
            if self._aquila_tlb_surcharge:
                thread.clock.charge("app.get", self._aquila_tlb_surcharge)
        return value

    def multi_get(self, thread: SimThread, keys: List[bytes]) -> List[Optional[bytes]]:
        """Batched point lookups (RocksDB's MultiGet).

        Memtable hits resolve immediately; the rest descend the LSM with
        block reads batched per level — with an io_uring-backed env, one
        submission per level instead of one syscall per key.
        """
        results: List[Optional[bytes]] = [None] * len(keys)
        settled = [False] * len(keys)
        remaining: List[bytes] = []
        for index, key in enumerate(keys):
            self.gets += 1
            thread.clock.charge("app.get", self._get_cpu)
            value = None
            for table in (self.memtable, self.immutable):
                if table is None:
                    continue
                value = table.get(key)
                if value is not None:
                    break
            if value is not None:
                # A memtable hit settles the key — a tombstone here must
                # shadow any older value further down the LSM.
                results[index] = None if value == TOMBSTONE else value
                settled[index] = True
            else:
                remaining.append(key)
        if remaining:
            found = self.lsm.multi_get(thread, remaining)
            for index, key in enumerate(keys):
                if not settled[index] and key in found:
                    results[index] = found[key]
        return results

    def scan(self, thread: SimThread, start: bytes, count: int) -> List[Tuple[bytes, bytes]]:
        """Range scan merged across memtables and SST levels."""
        thread.clock.charge("app.scan", self._get_cpu + 1200 * count)
        mem_entries = self.memtable.range_items(start, count)
        lsm_entries = self.lsm.scan(thread, start, count + len(mem_entries))
        merged: dict = {}
        for key, value in lsm_entries:
            merged.setdefault(key, value)
        for key, value in mem_entries:
            merged[key] = value
        out = sorted(
            (k, v) for k, v in merged.items() if v != TOMBSTONE
        )
        return out[:count]

    # -- stats ---------------------------------------------------------------------

    def stats(self) -> dict:
        """Operational counters for reporting."""
        return {
            "gets": self.gets,
            "puts": self.puts,
            "flushes": self._flushes,
            "compactions": self.lsm.compactions,
            "sst_files": self.lsm.total_files(),
            "sst_bytes": self.lsm.total_bytes(),
            "level_shape": self.lsm.level_shape(),
        }

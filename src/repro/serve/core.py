"""Open-loop multi-tenant serving over one shared mmio stack.

Each tenant is one :class:`~repro.sim.executor.SimThread` running a FIFO
server over its own mapped dataset: requests arrive on a precomputed
open-loop schedule (:mod:`repro.serve.arrivals`), pass a bounded
admission queue (:mod:`repro.serve.admission`), and are served through
the engine's ordinary load/store paths — including the batched
``hit_run`` fast path and the analytic fast-forward, so serve cells are
bit-identical across unbatched / batched / fast-forward modes exactly
like the microbenchmark cells (the serve conformance tier asserts it).

Determinism argument (DESIGN.md Section 12, in brief):

* arrival stamps are integers fixed before the run — waiting for work
  uses ``CycleClock.wait_until`` (a pure local clock advance charged to
  an idle category) and never touches engine state;
* an admission decision for the arrival at cycle ``a`` is a pure
  function of the completion cycles <= ``a`` — and every such completion
  is registered before that arrival is processed in *every* executor
  mode, because a batched hit-run only serves requests that were already
  pending when the batch started;
* completion cycles are derived from the engine's per-op latency samples
  through one shared arithmetic chain (``_cursor``) in all modes, never
  read off the raw clock mid-batch, so the serve-layer sojourn streams
  and shed counters digest identically.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

try:
    import numpy as _np
except ImportError:          # plans fall back to pure-Python, same values
    _np = None

from repro.common import units
from repro.mmio.vma import MADV_RANDOM
from repro.obs import TRACER
from repro.serve.admission import AdmissionQueue
from repro.serve.arrivals import BurstPhase, burst_schedule, poisson_schedule
from repro.serve.qos import build_partition
from repro.sim.executor import RunResult, SimThread, make_epoch_executor
from repro.sim.fastforward import AccessPlan
from repro.sim.rand import counter_draws, derive_seed
from repro.sim.stats import LatencyRecorder
from repro.workloads.microbench import WRITE_DATA

#: Tags naming the independent counter streams of one tenant's request
#: plan (arrivals use ``repro.serve.arrivals.TAG_ARRIVAL`` over the same
#: per-tenant base seed).
_TAG_PAGE, _TAG_OFFSET, _TAG_WRITE = 21, 22, 23

#: Breakdown category charged while a tenant's server waits for the next
#: arrival — an idle wait outside all engine state, so open-loop pacing
#: never perturbs the quiescence certificate.
IDLE_ARRIVAL = "idle.serve.arrival"


@dataclass(frozen=True)
class TenantSpec:
    """One tenant of an open-loop serve cell."""

    name: str
    requests: int
    mean_gap_cycles: float
    dataset_pages: int
    queue_depth: int = 128
    write_fraction: float = 0.0
    #: When set, arrivals follow the periodic burst trace instead of a
    #: plain Poisson process.
    burst_phases: Optional[Tuple[BurstPhase, ...]] = None


@dataclass
class ServeConfig:
    """Parameters of one serve cell."""

    tenants: List[TenantSpec]
    engine_kind: str = "aquila"
    #: Cache QoS policy: ``none`` / ``static`` / ``proportional``
    #: (see ``repro.cache.partition``).
    policy: str = "none"
    cache_pages: int = 512
    device_kind: str = "pmem"
    seed: int = 7
    #: Same mode switches as the microbenchmark: batched epoch scheduling
    #: and the engine's analytic fast-forward on top of it.
    batched: bool = True
    fastforward: bool = True


class TenantStats:
    """Serve-layer accounting for one tenant (outside engine state)."""

    def __init__(self, spec: TenantSpec) -> None:
        self.spec = spec
        self.queue = AdmissionQueue(spec.queue_depth)
        #: Sojourn (arrival -> completion) cycles of completed requests.
        self.sojourns = LatencyRecorder()

    def row(self) -> Dict:
        """One payload row: queue counters + sojourn SLO percentiles."""
        row = {"tenant": self.spec.name}
        row.update(self.queue.snapshot())
        row.update(
            {
                "p50_cycles": self.sojourns.p50(),
                "p99_cycles": self.sojourns.p99(),
                "p999_cycles": self.sojourns.p999(),
                "mean_cycles": self.sojourns.mean(),
            }
        )
        return row

    def digest(self) -> Dict:
        """Digest entry: counters plus the exact sojourn stream."""
        entry = self.queue.snapshot()
        entry["sojourns"] = tuple(self.sojourns.samples())
        return entry


@dataclass
class ServeOutcome:
    """Everything one serve run produced."""

    stack: object
    result: RunResult
    tenants: List[TenantStats]
    config: ServeConfig = field(default=None)

    def rows(self) -> List[Dict]:
        """Per-tenant payload rows."""
        return [stats.row() for stats in self.tenants]

    def victim_sojourns(self) -> LatencyRecorder:
        """All non-antagonist tenants' sojourns pooled.

        The headline figure statistic: pooling the victims doubles the
        sample count behind the tail percentiles, which is what keeps
        the pinned p99 expectations stable against single-tenant noise.
        """
        pooled = LatencyRecorder()
        for stats in self.tenants:
            if stats.spec.name != "antagonist":
                pooled.merge(stats.sojourns)
        return pooled


def _request_plan(
    base: int, dataset_pages: int, count: int, write_fraction: float
) -> Tuple[List[int], List[int], List[bool]]:
    """One tenant's request plan: uniform random (page, offset, is_write).

    Same counter-stream idiom as the microbenchmark's ``_op_plan`` —
    bulk draws, bit-identical with or without numpy — but kept as plain
    lists: batched serving re-slices the plan per admission batch, so
    per-batch :class:`AccessPlan` views are built on demand instead.
    """
    page_draws = counter_draws(base, _TAG_PAGE, count)
    offset_draws = counter_draws(base, _TAG_OFFSET, count)
    if _np is not None and not isinstance(page_draws, list):
        pages = (page_draws % dataset_pages).astype(_np.int64).tolist()
        offsets = (offset_draws % (units.PAGE_SIZE - 8)).astype(_np.int64).tolist()
    else:
        pages = [d % dataset_pages for d in page_draws]
        offsets = [d % (units.PAGE_SIZE - 8) for d in offset_draws]
    if write_fraction <= 0.0:
        writes = [False] * count
    elif write_fraction >= 1.0:
        writes = [True] * count
    else:
        threshold = min(int(write_fraction * 2.0 ** 64), (1 << 64) - 1)
        write_draws = counter_draws(base, _TAG_WRITE, count)
        if _np is not None and not isinstance(write_draws, list):
            writes = (write_draws < threshold).tolist()
        else:
            writes = [d < threshold for d in write_draws]
    return pages, offsets, writes


def _batch_plan(
    batch: List[int],
    pages_seq: List[int],
    offsets_seq: List[int],
    writes_seq: List[bool],
) -> AccessPlan:
    """An :class:`AccessPlan` over the pending requests of one batch."""
    pages = [pages_seq[i] for i in batch]
    offsets = [offsets_seq[i] for i in batch]
    writes = [writes_seq[i] for i in batch]
    np_pages = np_writes = None
    if _np is not None:
        np_pages = _np.asarray(pages, dtype=_np.int64)
        np_writes = _np.asarray(writes, dtype=bool)
    return AccessPlan.build(pages, offsets, writes, np_pages, np_writes)


def serve_workload(
    thread: SimThread,
    mapping,
    arrivals: List[int],
    plan: Tuple[List[int], List[int], List[bool]],
    stats: TenantStats,
) -> Iterator[None]:
    """One tenant's FIFO server loop over ``mapping``.

    Each executor step performs exactly one of: an idle wait for the next
    arrival, one per-op service (unbatched / slow path), or — in batched
    mode — one ``hit_run`` over the currently pending admitted requests.
    Admission runs at the top of every step and after every wait, so the
    decision for each arrival sees exactly the completions at or before
    it regardless of mode (module docstring).
    """
    engine = mapping.engine
    clock = thread.clock
    queue = stats.queue
    sojourns = stats.sojourns
    pages_seq, offsets_seq, writes_seq = plan
    load_op_fast = engine.load_op_fast
    samples = thread.latencies._samples
    total = len(arrivals)
    pending: deque = deque()
    next_req = 0
    # Completion-cycle chain shared verbatim by all executor modes:
    # reset to the (exact, integer) clock after every idle wait, advanced
    # by the engine's per-op latency samples while the server is busy.
    cursor = clock.now

    def admit_upto(now: float) -> int:
        """Process all arrivals at or before ``now``; returns new index."""
        index = next_req
        while index < total and arrivals[index] <= now:
            if queue.on_arrival(arrivals[index]):
                pending.append(index)
            index += 1
        return index

    def complete(request: int, completion: float) -> None:
        queue.on_completion(completion)
        sojourns.record(completion - arrivals[request])

    while True:
        next_req = admit_upto(clock.now)
        if not pending:
            if next_req >= total:
                return
            clock.wait_until(float(arrivals[next_req]), IDLE_ARRIVAL)
            cursor = clock.now
            yield
            continue
        horizon = thread.run_horizon
        if horizon is not None:
            batch = list(pending)
            sub_plan = _batch_plan(batch, pages_seq, offsets_seq, writes_seq)
            consumed = engine.hit_run(thread, mapping, sub_plan, 0, horizon, WRITE_DATA)
            if consumed:
                base = len(samples) - consumed
                for j in range(consumed):
                    cursor += samples[base + j]
                    complete(pending.popleft(), cursor)
                yield
                continue
            request = pending[0]
            if (
                engine.fastforward
                and not writes_seq[request]
                and load_op_fast(
                    thread, mapping, pages_seq[request], offsets_seq[request]
                )
            ):
                cursor += samples[-1]
                complete(pending.popleft(), cursor)
                yield
                continue
        request = pending.popleft()
        start = clock.now
        offset = pages_seq[request] * units.PAGE_SIZE + offsets_seq[request]
        with TRACER.span("op.access", clock):
            if writes_seq[request]:
                mapping.store(thread, offset, WRITE_DATA)
            else:
                mapping.load(thread, offset, 8)
        thread.record_op(start)
        cursor += samples[-1]
        complete(request, cursor)
        yield


#: Stack factories by serve engine kind.
_STACK_MAKERS = {
    "aquila": "make_aquila_stack",
    "kmmap": "make_kmmap_stack",
    "linux": "make_linux_stack",
}


def run_serve(config: ServeConfig) -> ServeOutcome:
    """Run one serve cell: N tenants over one shared stack."""
    from repro.bench import setups

    maker = _STACK_MAKERS.get(config.engine_kind)
    if maker is None:
        raise ValueError(f"unknown serve engine kind: {config.engine_kind!r}")
    stack = getattr(setups, maker)(
        device_kind=config.device_kind, cache_pages=config.cache_pages
    )
    engine = stack.engine
    engine.fastforward = bool(config.batched and config.fastforward)
    files = [
        stack.allocator.create(
            f"serve-{spec.name}", spec.dataset_pages * units.PAGE_SIZE
        )
        for spec in config.tenants
    ]
    partition = build_partition(
        config.policy, config.tenants, files, config.cache_pages
    )
    if partition is not None:
        engine.cache.partition = partition
    executor = make_epoch_executor(
        config.batched, engine.run_ahead_unbounded_ok if config.batched else None
    )
    threads: List[SimThread] = []
    tenants: List[TenantStats] = []
    for index, spec in enumerate(config.tenants):
        thread = SimThread(
            core=index % engine.machine.topology.num_hw_threads,
            name=f"serve-{spec.name}",
        )
        mapping = engine.mmap(thread, files[index])
        mapping.madvise(thread, MADV_RANDOM)
        base = derive_seed(config.seed, f"serve-{spec.name}")
        if spec.burst_phases:
            arrivals = burst_schedule(
                base, spec.requests, spec.mean_gap_cycles, spec.burst_phases
            )
        else:
            arrivals = poisson_schedule(base, spec.requests, spec.mean_gap_cycles)
        plan = _request_plan(
            base, spec.dataset_pages, spec.requests, spec.write_fraction
        )
        stats = TenantStats(spec)
        threads.append(thread)
        tenants.append(stats)
        executor.add(thread, serve_workload(thread, mapping, arrivals, plan, stats))
    engine.machine.apply_smt_penalty(threads)
    result = executor.run()
    return ServeOutcome(stack=stack, result=result, tenants=tenants, config=config)


def serve_state_digest(outcome: ServeOutcome) -> Dict:
    """Full serve-cell digest: engine end state + serve accounting.

    The standard :func:`repro.sim.conformance.mmio_state_digest` (thread
    clocks, latency streams, TLBs, engine counters, device bytes, page
    table, cache) extended with a ``serve`` section per tenant — queue
    counters and the exact sojourn stream — so mode and worker-count
    conformance covers the serving layer too.
    """
    from repro.sim.conformance import mmio_state_digest

    digest = mmio_state_digest(outcome.stack, outcome.result)
    digest["serve"] = {
        stats.spec.name: stats.digest() for stats in outcome.tenants
    }
    return digest


#: Antagonist mean arrival gap at intensity 1 (cycles).  Intensities 1-3
#: stay under the antagonist's fault service rate (so victim p99 degrades
#: monotonically with intensity — the serve property tier's claim); the
#: figure cells run intensity 6, deep into saturation, for the headline
#: tail-latency contrast.
ANTAGONIST_BASE_GAP_CYCLES = 28_800.0


def standard_tenants(
    antagonist_intensity: float = 0,
    victim_requests: int = 2400,
    antagonist_requests: int = 1200,
    cache_pages: int = 512,
    victim_dataset_pages: int = 96,
    queue_depth: int = 128,
    write_fraction: float = 0.0,
) -> List[TenantSpec]:
    """The canonical serve tenant mix.

    Two "victim" tenants with small in-memory datasets and Poisson
    arrivals paced near the fault service time (so their tails reflect
    steady-state cache behavior, not cold-start queueing), plus — when
    ``antagonist_intensity > 0`` — one antagonist tenant whose bursty
    trace sweeps a dataset twice the cache size, so it faults on nearly
    every request and keeps batch eviction running.  Intensity scales
    the antagonist's arrival rate linearly from well under its fault
    service rate (intensity 1) toward saturation, which is what makes
    victim p99 degrade monotonically: more antagonist admissions mean
    more evictions of the victims' (LRU-cold) resident pages, hence
    more victim refaults in the tail.
    """
    tenants = [
        TenantSpec(
            "alpha", victim_requests, 6000.0, victim_dataset_pages,
            queue_depth, write_fraction,
        ),
        TenantSpec(
            "beta", victim_requests, 7500.0, victim_dataset_pages,
            queue_depth, write_fraction,
        ),
    ]
    if antagonist_intensity > 0:
        tenants.append(
            TenantSpec(
                "antagonist",
                antagonist_requests,
                ANTAGONIST_BASE_GAP_CYCLES / antagonist_intensity,
                cache_pages * 2,
                queue_depth,
                0.0,
                (BurstPhase(30_000, 4.0), BurstPhase(90_000, 0.5)),
            )
        )
    return tenants


def engagement_tenants() -> List[TenantSpec]:
    """A tenant mix whose open-loop load provably reaches the analytic
    fast-forward path.

    The first tenant's burst trace idles near the Poisson base rate long
    enough to warm its (in-memory) dataset, then bursts 80x for 3000
    cycles: arrivals outpace the ~6-cycle hit service, the backlog grows
    past :data:`repro.sim.fastforward.MIN_ANALYTIC_RUN`, and the next
    quiescent ``hit_run`` drains it through the closed form.  The serve
    engagement test asserts ``ff_runs > 0`` on exactly this mix so the
    analytic path can never silently stop covering serve cells.
    """
    phases = (BurstPhase(250_000, 0.6), BurstPhase(3_000, 80.0))
    return [
        TenantSpec(
            "alpha", 3000, 300.0, 48, queue_depth=256, burst_phases=phases
        ),
        TenantSpec("beta", 800, 520.0, 48, queue_depth=128),
    ]


def run_conformance_cell(
    batched: bool,
    fastforward: bool = False,
    engine_kind: str = "aquila",
    policy: str = "none",
    antagonist_intensity: float = 0,
    victim_requests: int = 240,
    antagonist_requests: int = 100,
    cache_pages: int = 256,
    queue_depth: int = 96,
    write_fraction: float = 0.0,
    seed: int = 7,
    mix: str = "standard",
) -> Dict:
    """Run one serve cell and return its full state digest.

    ``run_cell``-style entry point for
    :func:`repro.sim.conformance.assert_fastforward_agrees`; resets the
    global id counters for reproducible back-to-back runs.  ``mix``
    selects :func:`standard_tenants` (parameterized by the remaining
    arguments) or the fixed :func:`engagement_tenants`.
    """
    from repro.mmio.files import BackingFile

    SimThread.reset_ids()
    BackingFile.reset_ids()
    if mix == "engagement":
        tenants = engagement_tenants()
    elif mix == "standard":
        tenants = standard_tenants(
            antagonist_intensity=antagonist_intensity,
            victim_requests=victim_requests,
            antagonist_requests=antagonist_requests,
            cache_pages=cache_pages,
            queue_depth=queue_depth,
            write_fraction=write_fraction,
        )
    else:
        raise ValueError(f"unknown tenant mix: {mix!r}")
    config = ServeConfig(
        tenants=tenants,
        engine_kind=engine_kind,
        policy=policy,
        cache_pages=cache_pages,
        seed=seed,
        batched=batched,
        fastforward=fastforward,
    )
    return serve_state_digest(run_serve(config))

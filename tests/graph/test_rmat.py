"""R-MAT generation and CSR structure."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.rmat import CSRGraph, generate_rmat_edges, make_rmat_csr


class TestGeneration:
    def test_edge_count(self):
        edges = generate_rmat_edges(100, 1000, seed=1)
        assert len(edges) == 1000

    def test_vertices_in_range(self):
        edges = generate_rmat_edges(100, 1000, seed=1)
        for src, dst in edges:
            assert 0 <= src < 100
            assert 0 <= dst < 100

    def test_deterministic(self):
        assert generate_rmat_edges(50, 200, seed=7) == generate_rmat_edges(50, 200, seed=7)
        assert generate_rmat_edges(50, 200, seed=7) != generate_rmat_edges(50, 200, seed=8)

    def test_skewed_degree_distribution(self):
        """R-MAT produces heavy-tailed out-degrees (unlike uniform)."""
        graph = make_rmat_csr(1000, edge_factor=10, seed=3)
        degrees = sorted((graph.out_degree(v) for v in range(1000)), reverse=True)
        top_share = sum(degrees[:50]) / max(1, sum(degrees))
        assert top_share > 0.2, "top 5% of vertices should own >20% of edges"

    def test_rejects_bad_dims(self):
        with pytest.raises(ValueError):
            generate_rmat_edges(0, 10)


class TestCSR:
    def test_structure(self):
        edges = [(0, 1), (0, 2), (1, 2), (2, 0)]
        graph = CSRGraph(3, edges)
        assert graph.num_edges == 4
        assert sorted(graph.neighbors(0)) == [1, 2]
        assert graph.neighbors(1) == [2]
        assert graph.out_degree(2) == 1

    def test_offsets_monotone(self):
        graph = make_rmat_csr(200, 10, seed=2)
        for v in range(200):
            assert graph.offsets[v] <= graph.offsets[v + 1]
        assert graph.offsets[-1] == graph.num_edges

    def test_largest_degree_vertex(self):
        edges = [(5, i) for i in range(10)] + [(0, 1)]
        graph = CSRGraph(11, edges)
        assert graph.largest_out_degree_vertex() == 5

    @settings(max_examples=20)
    @given(st.integers(2, 60), st.integers(0, 300))
    def test_edges_conserved(self, vertices, num_edges):
        edges = generate_rmat_edges(vertices, num_edges, seed=11)
        graph = CSRGraph(vertices, edges)
        rebuilt = [
            (v, n) for v in range(vertices) for n in graph.neighbors(v)
        ]
        assert sorted(rebuilt) == sorted(edges)

"""Backing files: extents, blob files, allocator reuse."""

import pytest

from repro.common import units
from repro.common.errors import OutOfSpaceError
from repro.devices.blobstore import CLUSTER_SIZE, Blobstore
from repro.devices.nvme import NvmeDevice
from repro.devices.pmem import PmemDevice
from repro.mmio.files import BlobFile, ExtentAllocator, ExtentFile


class TestExtentFile:
    def test_offsets_contiguous(self):
        device = PmemDevice(capacity_bytes=64 * units.MIB)
        file = ExtentFile("f", device, units.MIB, 8 * units.PAGE_SIZE)
        assert file.device_offset(0) == units.MIB
        assert file.device_offset(3) == units.MIB + 3 * units.PAGE_SIZE

    def test_bounds(self):
        device = PmemDevice(capacity_bytes=64 * units.MIB)
        file = ExtentFile("f", device, 0, 4 * units.PAGE_SIZE)
        with pytest.raises(OutOfSpaceError):
            file.device_offset(4)

    def test_unaligned_base_rejected(self):
        device = PmemDevice(capacity_bytes=64 * units.MIB)
        with pytest.raises(ValueError):
            ExtentFile("f", device, 100, units.PAGE_SIZE)

    def test_beyond_capacity_rejected(self):
        device = PmemDevice(capacity_bytes=units.MIB)
        with pytest.raises(OutOfSpaceError):
            ExtentFile("f", device, 0, 2 * units.MIB)

    def test_contiguous_run_full(self):
        device = PmemDevice(capacity_bytes=64 * units.MIB)
        file = ExtentFile("f", device, 0, 8 * units.PAGE_SIZE)
        assert file.contiguous_run(0, 100) == 8
        assert file.contiguous_run(6, 100) == 2

    def test_size_pages_rounds_up(self):
        device = PmemDevice(capacity_bytes=64 * units.MIB)
        file = ExtentFile("f", device, 0, units.PAGE_SIZE + 1)
        assert file.size_pages == 2

    def test_unique_file_ids(self):
        device = PmemDevice(capacity_bytes=64 * units.MIB)
        a = ExtentFile("a", device, 0, units.PAGE_SIZE)
        b = ExtentFile("b", device, units.PAGE_SIZE, units.PAGE_SIZE)
        assert a.file_id != b.file_id


class TestExtentAllocator:
    def test_non_overlapping(self):
        device = PmemDevice(capacity_bytes=64 * units.MIB)
        allocator = ExtentAllocator(device)
        a = allocator.create("a", 10_000)
        b = allocator.create("b", 10_000)
        a_end = a.base_offset + units.page_align_up(a.size_bytes)
        assert b.base_offset >= a_end

    def test_free_reuse_first_fit(self):
        device = PmemDevice(capacity_bytes=64 * units.MIB)
        allocator = ExtentAllocator(device)
        a = allocator.create("a", units.MIB)
        b = allocator.create("b", units.MIB)
        allocator.free(a)
        c = allocator.create("c", units.MIB)
        assert c.base_offset == a.base_offset

    def test_free_split_on_smaller_reuse(self):
        device = PmemDevice(capacity_bytes=64 * units.MIB)
        allocator = ExtentAllocator(device)
        a = allocator.create("a", 4 * units.PAGE_SIZE)
        allocator.free(a)
        small = allocator.create("s", units.PAGE_SIZE)
        small2 = allocator.create("s2", units.PAGE_SIZE)
        assert small.base_offset == a.base_offset
        assert small2.base_offset == a.base_offset + units.PAGE_SIZE

    def test_churn_does_not_exhaust(self):
        """LSM-style create/delete churn stays within the device."""
        device = PmemDevice(capacity_bytes=4 * units.MIB)
        allocator = ExtentAllocator(device)
        for _ in range(100):
            file = allocator.create("tmp", units.MIB)
            allocator.free(file)
        assert allocator.bytes_allocated <= 4 * units.MIB


class TestBlobFile:
    def test_translation_via_clusters(self):
        device = NvmeDevice(capacity_bytes=64 * units.MIB)
        blobstore = Blobstore(device)
        file = BlobFile.create("blobby", blobstore, 2 * CLUSTER_SIZE)
        # Offsets within one cluster are contiguous.
        assert file.device_offset(1) == file.device_offset(0) + units.PAGE_SIZE
        assert file.size_pages == 2 * CLUSTER_SIZE // units.PAGE_SIZE

    def test_contiguous_run_stops_at_cluster_gap(self):
        device = NvmeDevice(capacity_bytes=64 * units.MIB)
        blobstore = Blobstore(device)
        a = BlobFile.create("a", blobstore, CLUSTER_SIZE)
        blobstore.create(CLUSTER_SIZE)   # interleave another blob
        blobstore.resize(a.blob_id, 2 * CLUSTER_SIZE)
        a.size_bytes = 2 * CLUSTER_SIZE
        pages_per_cluster = CLUSTER_SIZE // units.PAGE_SIZE
        run = a.contiguous_run(0, 10_000)
        assert run == pages_per_cluster

    def test_name_xattr(self):
        device = NvmeDevice(capacity_bytes=64 * units.MIB)
        blobstore = Blobstore(device)
        file = BlobFile.create("named", blobstore, CLUSTER_SIZE)
        assert blobstore.get_xattr(file.blob_id, "name") == b"named"

"""Analytic fast-forward of quiescent phases: vectorized closed forms.

The epoch-batched executor (``repro.sim.executor``) already retires runs
of consecutive pure cache hits in one step, but it still *executes* every
hit in a Python loop.  This module provides the closed forms that let
``MmioEngine.hit_run`` retire a whole window of all-hit accesses
analytically — the hybrid analytic/discrete-event idea of LANL's PPT
processor models, applied to the mmio access protocol.

The contract mirrors the batching invariant one level up: the analytic
path must be **bit-identical** to stepping the same accesses through the
slim hit loop.  That holds because, inside a window proven to be all
hits with no TLB eviction and no pending interference:

* every access charges the same integer cycle counts (6-cycle hit, plus
  a 100-cycle walk on each page's first TLB miss), and sums of integers
  below 2**53 are exact under any association, so one bulk float add
  equals the stepped adds;
* the per-access latency of access *i* is a pure function of whether it
  is the first occurrence of a not-yet-resident page — computable for
  the whole window from a first-occurrence profile;
* the final TLB recency order is "all untouched entries, then touched
  pages by last occurrence" — computable from a last-occurrence profile.

What the closed forms must know about a window is therefore only the
**first and last occurrence position of every page**, which
:func:`window_profile` computes with unbuffered ``ufunc.at`` scatter
reductions (deterministic under duplicate indices, unlike fancy-index
assignment, and ~40x faster than an ``np.unique`` formulation at the
headline cell's window sizes).

Safety gates (the certificate refinement): the engine *cuts* the window
at the first write, the first out-of-bounds page, the first access whose
PTE is missing, and the first access that would overflow the TLB, then
re-profiles until the cuts are stable — so an access is only ever
retired analytically if the slim loop would have retired it identically.
Anything after the cut falls back to the loop.  A window is only
attempted at all when the executor granted an *unbounded* horizon (the
quiescence certificate ``run_ahead_unbounded_ok``, or a solo thread) and
:func:`expected_hit_run_length` — the analytic miss-rate model that
extends the certificate to steady-state eviction regimes — predicts the
profiling cost will amortize.
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

try:
    import numpy as _np
except ImportError:      # pragma: no cover - numpy ships with the toolchain
    _np = None

#: Minimum accesses an analytic window must retire to amortize its numpy
#: setup; shorter prospective runs fall through to the slim Python loop.
MIN_ANALYTIC_RUN = 64

#: Analytic windows are clipped to this many accesses per ``hit_run``
#: call so every per-call scan (write cut, bounds cut, profile) is O(1)
#: in the *remaining plan length* — a miss-heavy cell that calls and
#: rejects on every op must never go quadratic.
MAX_ANALYTIC_WINDOW = 1 << 17

#: Upper bound on mapping size (in pages) for the dense first/last
#: occurrence profile arrays; larger mappings fall back to the loop.
MAX_ANALYTIC_PAGES = 1 << 22


def numpy_available() -> bool:
    """Whether the vectorized closed forms can run at all."""
    return _np is not None


class AccessPlan(tuple):
    """A thread's precomputed access plan with optional vectorized views.

    Behaves exactly like the historical 3-tuple ``(pages,
    in_page_offsets, is_write_flags)`` of parallel Python lists — every
    existing consumer (the per-op slow path, the slim hit loop) unpacks
    it unchanged — while optionally carrying ``np_pages`` (int64) and
    ``np_writes`` (bool) numpy views of the same values for the analytic
    fast-forward path.  The arrays are derived from the *same draws* as
    the lists (never recomputed), so list and array entries are equal by
    construction.
    """

    #: int64 array equal to the pages list, or None (no numpy / caller
    #: built the plan by hand).
    np_pages = None
    #: bool array equal to the writes list, or None.
    np_writes = None

    @classmethod
    def build(cls, pages, offsets, writes, np_pages=None, np_writes=None):
        """Assemble a plan from parallel lists plus optional array views."""
        plan = cls((pages, offsets, writes))
        plan.np_pages = np_pages
        plan.np_writes = np_writes
        return plan


class LazyIntSeq:
    """List-like view over an int64 array yielding Python ints.

    Fast-forward plans keep their draws as arrays and wrap them in these
    views instead of calling ``tolist()`` — at headline figure scales the
    list materialization alone costs more than the whole analytic replay.
    ``__getitem__`` converts on access so consumers only ever see Python
    ints (numpy scalars must never leak into clocks, dict keys, or
    digested state); per-op consumers touch a few thousand entries of a
    multi-million-entry plan, so the conversions never add up.
    """

    __slots__ = ("_arr",)

    def __init__(self, arr) -> None:
        self._arr = arr

    def __len__(self) -> int:
        return int(self._arr.shape[0])

    def __getitem__(self, index: int) -> int:
        return int(self._arr[index])


class LazyBoolSeq:
    """List-like view over a bool array yielding Python bools.

    Same contract as :class:`LazyIntSeq`, for the plan's write flags.
    """

    __slots__ = ("_arr",)

    def __init__(self, arr) -> None:
        self._arr = arr

    def __len__(self) -> int:
        return int(self._arr.shape[0])

    def __getitem__(self, index: int) -> bool:
        return bool(self._arr[index])


def write_cut(np_writes, index: int, limit: int) -> int:
    """First write position in ``[index, limit)``, or ``limit`` if none.

    The analytic path handles pure loads only (stores mutate frame bytes
    and PTE dirty protocol state per access), so the window is cut just
    before the first write and the slim loop takes over there.  ``None``
    for ``np_writes`` means the plan carries no write flags and the
    window is treated as all-reads.
    """
    if np_writes is None:
        return limit
    window = np_writes[index:limit]
    if not window.any():
        return limit
    return index + int(window.argmax())


def window_profile(window, num_pages: int) -> Tuple:
    """First/last occurrence profile of a page-index window.

    Returns ``(touched, first, last)``: ``touched`` is the ascending
    int64 array of distinct pages occurring in ``window``; ``first[p]``
    / ``last[p]`` are the window-relative positions of page ``p``'s
    first / last occurrence (``len(window)`` / ``-1`` for untouched
    pages).  Uses ``np.minimum.at`` / ``np.maximum.at``, which are
    documented to apply unbuffered (every duplicate index participates),
    so the result is deterministic — fancy-index assignment is not.
    """
    n = int(window.shape[0])
    positions = _np.arange(n, dtype=_np.int64)
    first = _np.full(num_pages, n, dtype=_np.int64)
    _np.minimum.at(first, window, positions)
    last = _np.full(num_pages, -1, dtype=_np.int64)
    _np.maximum.at(last, window, positions)
    touched = _np.flatnonzero(last >= 0)
    return touched, first, last


def expected_hit_run_length(mapped_pages: int, capacity_pages: int) -> float:
    """Expected consecutive-hit run length under uniform random access.

    The analytic miss-rate model that extends the quiescence certificate
    to steady-state eviction regimes: with ``mapped_pages`` uniformly
    accessed pages competing for ``capacity_pages`` cache frames, the
    steady-state per-access miss probability is ``1 - capacity/mapped``
    and hit runs are geometric with expectation ``1 / miss_rate``.  An
    in-memory working set (``mapped <= capacity``) never misses after
    warmup — the expectation is infinite, which is exactly the regime
    where unbounded analytic windows pay off.  Out-of-memory cells
    (paper Figure 10(b)) get short runs, telling the engine to skip the
    per-call analytic setup and lean on the fused fault/eviction paths
    instead.
    """
    if capacity_pages <= 0:
        return 0.0
    if mapped_pages <= capacity_pages:
        return math.inf
    return 1.0 / (1.0 - capacity_pages / mapped_pages)

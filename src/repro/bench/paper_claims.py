"""The paper's evaluation claims, pinned, with manifest-backed verdicts.

Each :class:`Claim` is one row of EXPERIMENTS.md's summary table: the
paper's published number (pinned here, never regenerated) and a
``measure`` function that extracts the corresponding measured value from
a sweep-manifest cell index (cell id -> payload dict, see
:mod:`repro.bench.sweep`) and computes the verdict.  EXPERIMENTS.md is
generated from this table by ``python -m repro.bench report`` — the doc
can only change when the measured data or these pins change, and CI
diffs the committed doc against the regeneration (``report --check``).

Verdict vocabulary:

* ``exact`` — matches the paper's number to ~1%;
* ``=`` — matches within the claim's tolerance;
* ``shape ✓`` — direction and rough magnitude agree (who wins, where
  crossovers fall), absolute factor differs;
* ``shape ✓, overshoots`` — right shape, ratio above the paper's (see
  deviation D5);
* ``see Dn`` — a pinned, explained deviation (EXPERIMENTS.md §Known
  deviations);
* ``✗`` — the claim's direction does not reproduce (a regression; CI
  surfaces it through the ``report --check`` diff).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

Cells = Dict[str, dict]
Measured = Tuple[str, str]   # (measured display, verdict)


@dataclass(frozen=True)
class Claim:
    """One summary-table row: a pinned paper number and its extractor."""

    experiment: str                      # e.g. "Fig 5(a)"
    claim: str                           # what the paper asserts
    paper: str                           # the paper's value, as displayed
    measure: Callable[[Cells], Measured]  # manifest -> (measured, verdict)


# -- formatting helpers --------------------------------------------------------


def _x(value: float) -> str:
    return f"{value:.2f}×"


def _rng(lo: float, hi: float) -> str:
    return f"{lo:.2f}–{hi:.2f}×"


def _k(cycles: float) -> str:
    return f"{cycles / 1000:.1f}K"


def _within(measured: float, paper: float, tol: float) -> bool:
    return paper != 0 and abs(measured / paper - 1.0) <= tol


# -- extraction helpers --------------------------------------------------------


def _need(cells: Cells, cell_id: str) -> dict:
    if cell_id not in cells:
        raise KeyError(
            f"manifest is missing cell {cell_id!r} needed by a paper claim "
            "(run: python -m repro.bench sweep)"
        )
    return cells[cell_id]


def fig5_threads(cells: Cells, variant: str) -> List[int]:
    """Thread counts present in the fig5 grid for ``variant`` ("a"/"b")."""
    counts = set()
    for cell_id in cells:
        parts = cell_id.split("/")
        if parts[0] == f"fig5{variant}" and len(parts) == 4:
            counts.add(int(parts[2][1:]))
    return sorted(counts)


def fig10_threads(cells: Cells, variant: str, sharing: str) -> List[int]:
    """Thread counts present in the fig10 grid for one variant/sharing."""
    counts = set()
    for cell_id in cells:
        parts = cell_id.split("/")
        if parts[0] == f"fig10{variant}" and parts[1] == sharing and len(parts) == 4:
            counts.add(int(parts[3][1:]))
    return sorted(counts)


def _fig5_ratio_range(
    cells: Cells, variant: str, devices, numerator: str, denominator: str
) -> Tuple[float, float]:
    ratios = []
    for device in devices:
        for threads in fig5_threads(cells, variant):
            num = _need(cells, f"fig5{variant}/{device}/t{threads}/{numerator}")
            den = _need(cells, f"fig5{variant}/{device}/t{threads}/{denominator}")
            ratios.append(num["throughput"] / max(1e-9, den["throughput"]))
    return min(ratios), max(ratios)


def _fig5_all_cells_beat(
    cells: Cells, variant: str, winner: str, loser: str
) -> Tuple[int, int]:
    wins = total = 0
    for device in ("pmem", "nvme"):
        for threads in fig5_threads(cells, variant):
            win = _need(cells, f"fig5{variant}/{device}/t{threads}/{winner}")
            lose = _need(cells, f"fig5{variant}/{device}/t{threads}/{loser}")
            total += 1
            wins += win["throughput"] > lose["throughput"]
    return wins, total


def fig6_speedup(cells: Cells, variant: str, threads: int) -> float:
    """Linux-pmem over Aquila-pmem BFS execution-cycle ratio."""
    linux = _need(cells, f"fig6{variant}/linux-pmem/t{threads}")
    aquila = _need(cells, f"fig6{variant}/aquila-pmem/t{threads}")
    return linux["execution_cycles"] / aquila["execution_cycles"]


def fig9_mean_ratio(cells: Cells, device: str, field: str, invert: bool) -> float:
    """Mean over YCSB workloads of the per-workload kmmap:aquila ratio.

    ``invert=False`` reports aquila/kmmap (throughput: higher is better);
    ``invert=True`` reports kmmap/aquila (latency: lower is better).
    """
    workloads = sorted(
        cell_id.split("/")[2]
        for cell_id in cells
        if cell_id.startswith(f"fig9/{device}/") and cell_id.endswith("/aquila")
    )
    ratios = []
    for workload in workloads:
        kmmap = _need(cells, f"fig9/{device}/{workload}/kmmap")
        aquila = _need(cells, f"fig9/{device}/{workload}/aquila")
        if invert:
            ratios.append(kmmap[field] / max(1e-9, aquila[field]))
        else:
            ratios.append(aquila[field] / max(1e-9, kmmap[field]))
    return sum(ratios) / len(ratios)


def fig10_speedup(cells: Cells, variant: str, sharing: str, threads: int) -> float:
    """Aquila over Linux throughput for one fig10 cell pair."""
    linux = _need(cells, f"fig10{variant}/{sharing}/linux/t{threads}")
    aquila = _need(cells, f"fig10{variant}/{sharing}/aquila/t{threads}")
    return aquila["throughput"] / max(1e-9, linux["throughput"])


def _fig10_latency_ratio(cells: Cells, variant: str, threads: int, field: str) -> float:
    linux = _need(cells, f"fig10{variant}/shared/linux/t{threads}")
    aquila = _need(cells, f"fig10{variant}/shared/aquila/t{threads}")
    return linux[field] / max(1e-9, aquila[field])


# -- the claims ---------------------------------------------------------------


def _table1(cells: Cells) -> Measured:
    return "exact (asserted in `tests/workloads/test_ycsb.py`)", "="


def _fig5a_mmap_beats_direct(cells: Cells) -> Measured:
    wins, total = _fig5_all_cells_beat(cells, "a", "mmap", "direct")
    if wins == total:
        return "yes, all cells", "="
    return f"{wins}/{total} cells", "✗"


def _fig5a_aquila_over_mmap(cells: Cells) -> Measured:
    lo, hi = _fig5_ratio_range(cells, "a", ("pmem", "nvme"), "aquila", "mmap")
    if lo < 1.0:
        return _rng(lo, hi), "✗"
    if hi <= 1.15 * 1.15:
        return _rng(lo, hi), "="
    return _rng(lo, hi), "shape ✓, overshoots"


def _fig5b_mmap_collapses(cells: Cells) -> Measured:
    wins, total = _fig5_all_cells_beat(cells, "b", "direct", "mmap")
    if wins == total:
        return "yes (mmap < direct everywhere)", "="
    return f"mmap < direct in {wins}/{total} cells", "✗"


def _fig5b_aquila_pmem(cells: Cells) -> Measured:
    lo, hi = _fig5_ratio_range(cells, "b", ("pmem",), "aquila", "direct")
    if lo < 1.0:
        return _rng(lo, hi), "✗"
    if 1.18 * 0.9 <= lo and hi <= 1.65 * 1.05:
        return _rng(lo, hi), "="
    return _rng(lo, hi), "shape ✓, overshoots"


def _fig5b_aquila_nvme(cells: Cells) -> Measured:
    lo, hi = _fig5_ratio_range(cells, "b", ("nvme",), "aquila", "direct")
    max_t = fig5_threads(cells, "b")[-1]
    return f"{_rng(lo, hi)} at ≤{max_t}t", "see D1"


def _s61_latency(cells: Cells) -> Measured:
    ratios = [
        _need(cells, f"fig5b/pmem/t{threads}/direct")["mean_latency_cycles"]
        / max(
            1e-9,
            _need(cells, f"fig5b/pmem/t{threads}/aquila")["mean_latency_cycles"],
        )
        for threads in fig5_threads(cells, "b")
    ]
    lo, hi = min(ratios), max(ratios)
    return _rng(lo, hi), ("shape ✓" if lo > 1.0 else "✗")


def _fig6a_speedups(cells: Cells) -> Measured:
    counts = sorted(
        int(cell_id.rsplit("/t", 1)[1])
        for cell_id in cells
        if cell_id.startswith("fig6a/aquila-pmem/t")
    )
    speedups = [fig6_speedup(cells, "a", threads) for threads in counts]
    display = "/".join(f"{s:.2f}" for s in speedups) + "×"
    monotone = all(b > a for a, b in zip(speedups, speedups[1:]))
    if all(s > 1.0 for s in speedups) and monotone:
        return display, "shape ✓"
    return display, "✗"


def _fig6_max_threads(cells: Cells, variant: str) -> int:
    return max(
        int(cell_id.rsplit("/t", 1)[1])
        for cell_id in cells
        if cell_id.startswith(f"fig6{variant}/aquila-pmem/t")
    )


def _fig6b_speedup(cells: Cells) -> Measured:
    speedup = fig6_speedup(cells, "b", _fig6_max_threads(cells, "b"))
    return _x(speedup), ("=" if speedup <= 2.3 * 1.1 and speedup > 1.0 else "shape ✓")


def _fig6c_user_share(cells: Cells) -> Measured:
    threads = _fig6_max_threads(cells, "a")
    linux = _need(cells, f"fig6a/linux-pmem/t{threads}")["user_pct"]
    aquila = _need(cells, f"fig6a/aquila-pmem/t{threads}")["user_pct"]
    display = f"{linux:.1f}% → {aquila:.1f}%"
    return display, ("shape ✓" if aquila > linux else "✗")


def _fig7_cache_mgmt(cells: Cells) -> Measured:
    ratio = _need(cells, "fig7/direct")["sections"]["cache_mgmt"] / max(
        1.0, _need(cells, "fig7/aquila")["sections"]["cache_mgmt"]
    )
    return _x(ratio), ("=" if _within(ratio, 2.58, 0.15) else "shape ✓")


def _fig7_throughput(cells: Cells) -> Measured:
    gain = _need(cells, "fig7/aquila")["throughput"] / max(
        1.0, _need(cells, "fig7/direct")["throughput"]
    )
    display = f"+{(gain - 1) * 100:.0f}%"
    if _within(gain, 1.40, 0.1):
        return display, "="
    return display, ("shape ✓" if gain > 1.2 else "✗")


def _fig7_get_cpu(cells: Cells) -> Measured:
    aquila = _need(cells, "fig7/aquila")["sections"]["get"]
    direct = _need(cells, "fig7/direct")["sections"]["get"]
    display = f"{_k(aquila)} vs {_k(direct)}"
    return display, ("=" if aquila > direct else "✗")


def _fig8a_linux_total(cells: Cells) -> Measured:
    mean = _need(cells, "fig8a/linux")["mean_access_cycles"]
    return f"{mean:.0f}", ("=" if _within(mean, 5380, 0.05) else "shape ✓")


def _fig8a_trap_ratio(cells: Cells) -> Measured:
    linux = _need(cells, "fig8a/linux")["breakdown"]["trap/exception"]
    aquila = _need(cells, "fig8a/aquila")["breakdown"]["trap/exception"]
    ratio = linux / max(1e-9, aquila)
    return _x(ratio), ("exact" if _within(ratio, 2.33, 0.01) else "=")


def _fig8a_reduction(cells: Cells) -> Measured:
    linux = _need(cells, "fig8a/linux")["mean_access_cycles"]
    aquila = _need(cells, "fig8a/aquila")["mean_access_cycles"]
    return f"{(1 - aquila / linux) * 100:.0f}%", "see D2"


def _fig8b_ratio(cells: Cells) -> Measured:
    linux = _need(cells, "fig8b/linux")["steady_mean_cycles"]
    aquila = _need(cells, "fig8b/aquila")["steady_mean_cycles"]
    ratio = linux / max(1e-9, aquila)
    if _within(ratio, 2.06, 0.1):
        return _x(ratio), "="
    return _x(ratio), ("shape ✓" if ratio > 1.3 else "✗")


def _fig8b_no_dominator(cells: Cells) -> Measured:
    cell = _need(cells, "fig8b/aquila")
    breakdown = cell["breakdown"]
    total = cell["steady_mean_cycles"]
    non_io = {
        label: cycles
        for label, cycles in breakdown.items()
        if "device" not in label and "wait" not in label
    }
    worst = max(non_io.values()) / max(1e-9, total)
    display = f"max non-I/O component <{worst * 100:.0f}%"
    return display, ("=" if worst < 0.10 else "shape ✓")


def _fig8c_cache_hit(cells: Cells) -> Measured:
    mean = _need(cells, "fig8c/Cache-Hit")["mean_access_cycles"]
    if abs(mean - 2179) < 1.0:
        return f"{mean:.0f}", "exact"
    return f"{mean:.0f}", ("=" if _within(mean, 2179, 0.05) else "shape ✓")


def _device_cycles(payload: dict) -> float:
    return sum(
        cycles
        for label, cycles in payload["breakdown"].items()
        if "device" in label
    )


def _fig8c_host_vs_dax(cells: Cells) -> Measured:
    host = _need(cells, "fig8c/HOST-pmem")
    dax = _need(cells, "fig8c/DAX-pmem")
    io_ratio = _device_cycles(host) / max(1e-9, _device_cycles(dax))
    total_ratio = host["mean_access_cycles"] / max(1e-9, dax["mean_access_cycles"])
    display = f"{_x(io_ratio)} (I/O component; total {total_ratio:.1f}×)"
    return display, ("=" if _within(io_ratio, 7.77, 0.05) else "shape ✓")


def _fig8c_host_vs_spdk(cells: Cells) -> Measured:
    ratio = _need(cells, "fig8c/HOST-NVMe")["mean_access_cycles"] / max(
        1e-9, _need(cells, "fig8c/SPDK-NVMe")["mean_access_cycles"]
    )
    return _x(ratio), ("=" if _within(ratio, 1.53, 0.1) else "shape ✓")


def _fig9_throughput(device: str, paper: float):
    def measure(cells: Cells) -> Measured:
        ratio = fig9_mean_ratio(cells, device, "throughput", invert=False)
        if _within(ratio, paper, 0.1):
            return _x(ratio), "="
        return _x(ratio), ("shape ✓" if ratio > 0.95 else "✗")

    return measure


def _fig9_avg_latency(cells: Cells) -> Measured:
    nvme = fig9_mean_ratio(cells, "nvme", "mean_latency_cycles", invert=True)
    pmem = fig9_mean_ratio(cells, "pmem", "mean_latency_cycles", invert=True)
    display = f"{nvme:.2f}/{pmem:.2f}×"
    return display, ("shape ✓" if nvme > 1.0 and pmem > 1.0 else "✗")


def _fig9_p999(cells: Cells) -> Measured:
    nvme = fig9_mean_ratio(cells, "nvme", "p999_cycles", invert=True)
    pmem = fig9_mean_ratio(cells, "pmem", "p999_cycles", invert=True)
    return f"{nvme:.2f}/{pmem:.2f}×", "see D3"


def _fig10_shared(variant: str, paper_1t: float, paper_max: float, tol: float):
    def measure(cells: Cells) -> Measured:
        counts = fig10_threads(cells, variant, "shared")
        lo_t, hi_t = counts[0], counts[-1]
        first = fig10_speedup(cells, variant, "shared", lo_t)
        last = fig10_speedup(cells, variant, "shared", hi_t)
        display = f"{first:.2f}× / {last:.2f}×"
        if _within(last, paper_max, tol):
            return display, "="
        return display, ("shape ✓" if last > first > 1.0 else "✗")

    return measure


def _fig10a_private(cells: Cells) -> Measured:
    threads = fig10_threads(cells, "a", "private")[-1]
    speedup = fig10_speedup(cells, "a", "private", threads)
    display = f"{speedup:.2f}× (flat, no collapse)"
    return display, ("shape ✓" if speedup > 0.95 else "✗")


def _fig10b_private(cells: Cells) -> Measured:
    threads = fig10_threads(cells, "b", "private")[-1]
    return _x(fig10_speedup(cells, "b", "private", threads)), "see D4"


def _s65_avg_latency(cells: Cells) -> Measured:
    threads = fig10_threads(cells, "b", "shared")[-1]
    ratio = _fig10_latency_ratio(cells, "b", threads, "mean_latency_cycles")
    return _x(ratio), ("shape ✓" if ratio > 1.0 else "✗")


def _s65_tails(cells: Cells) -> Measured:
    threads = fig10_threads(cells, "b", "shared")[-1]
    p99 = _fig10_latency_ratio(cells, "b", threads, "p99_cycles")
    p999 = _fig10_latency_ratio(cells, "b", threads, "p999_cycles")
    return f"{p99:.2f}× / {p999:.2f}×", "see D3"


# -- beyond-paper expectations (serve) ----------------------------------------


def _serve_victim_p99(cells: Cells, engine: str, policy: str, intensity: int) -> float:
    """Pooled victim p99 of one serve cell (the serve headline statistic)."""
    return _need(cells, f"serve/{engine}/{policy}/a{intensity}")["victim_p99_cycles"]


def _serve_antagonist_inflates(engine: str):
    """Victim p99 must rise when the antagonist arrives (no QoS)."""

    def measure(cells: Cells) -> Measured:
        base = _serve_victim_p99(cells, engine, "none", 0)
        contended = _serve_victim_p99(cells, engine, "none", 6)
        display = f"{_k(base)} → {_k(contended)}"
        return display, ("=" if contended > base else "✗")

    return measure


def _serve_qos_restores(engine: str):
    """Cache partitioning must pull victim p99 back toward the baseline."""

    def measure(cells: Cells) -> Measured:
        none = _serve_victim_p99(cells, engine, "none", 6)
        static = _serve_victim_p99(cells, engine, "static", 6)
        prop = _serve_victim_p99(cells, engine, "proportional", 6)
        display = f"none {_k(none)}, static {_k(static)}, prop {_k(prop)}"
        return display, ("=" if static <= none and prop <= none else "✗")

    return measure


def _serve_engine_order(cells: Cells) -> Measured:
    """Under the antagonist, engines must rank aquila < kmmap < linux."""
    aquila = _serve_victim_p99(cells, "aquila", "none", 6)
    kmmap = _serve_victim_p99(cells, "kmmap", "none", 6)
    linux = _serve_victim_p99(cells, "linux", "none", 6)
    display = f"{_k(aquila)} < {_k(kmmap)} < {_k(linux)}"
    return display, ("=" if aquila < kmmap < linux else "✗")


# -- beyond-paper expectations (cluster) ---------------------------------------


def _m(ops_per_sec: float) -> str:
    """Format a cluster throughput as millions of ops/s."""
    return f"{ops_per_sec / 1e6:.1f}M"


def _cluster_scaleout(engine: str):
    """Sharding the one logical dataset must raise aggregate throughput.

    At replication=2 a 2-shard cluster still holds the whole dataset on
    every machine (owned + replica), so the honest comparison is 1 shard
    vs 4 — where cold faults and serving genuinely divide.
    """

    def measure(cells: Cells) -> Measured:
        one = _need(cells, f"cluster/{engine}/s1")["throughput"]
        four = _need(cells, f"cluster/{engine}/s4")["throughput"]
        display = f"{_m(one)} → {_m(four)} ({_x(four / one)})"
        return display, ("=" if four > one else "✗")

    return measure


def _cluster_failover_serves_all(cells: Cells) -> Measured:
    """A mid-epoch primary kill must lose no client op: the ring promotes
    replicas and the coordinator re-routes the victim's unserved tail."""
    for engine in ("aquila", "kmmap", "linux"):
        clean = _need(cells, f"cluster/{engine}/s4")
        failed = _need(cells, f"cluster/{engine}/s4-failover")
        ok = (
            failed["client_ops"] == clean["client_ops"]
            and failed["rerouted_ops"] > 0
            and len(failed["dead_shards"]) == 1
        )
        if not ok:
            return f"{engine}: {failed['client_ops']}/{clean['client_ops']}", "✗"
    failed = _need(cells, "cluster/aquila/s4-failover")
    display = (
        f"{failed['client_ops']} ops, {failed['rerouted_ops']} rerouted, 1 dead"
    )
    return display, "="


def _cluster_failover_degrades_bounded(cells: Cells) -> Measured:
    """Losing 1 of 4 shards must cost throughput — but the degraded
    cluster must still beat the single machine, for every engine."""
    for engine in ("aquila", "kmmap", "linux"):
        one = _need(cells, f"cluster/{engine}/s1")["throughput"]
        four = _need(cells, f"cluster/{engine}/s4")["throughput"]
        failed = _need(cells, f"cluster/{engine}/s4-failover")["throughput"]
        if not one < failed < four:
            return f"{engine}: {_m(one)} / {_m(failed)} / {_m(four)}", "✗"
    one = _need(cells, "cluster/aquila/s1")["throughput"]
    four = _need(cells, "cluster/aquila/s4")["throughput"]
    failed = _need(cells, "cluster/aquila/s4-failover")["throughput"]
    display = f"s1 {_m(one)} < killed {_m(failed)} < s4 {_m(four)} (aquila)"
    return display, "="


#: The summary table, in document order.  Paper values are pinned
#: verbatim from the paper's Section 6; measured values and verdicts are
#: recomputed from the sweep manifest on every regeneration.
PAPER_CLAIMS: List[Claim] = [
    Claim("Table 1", "YCSB mixes A–F", "spec", _table1),
    Claim("Fig 5(a)", "mmap > read/write in memory", "yes", _fig5a_mmap_beats_direct),
    Claim("Fig 5(a)", "Aquila/mmap", "≤1.15×", _fig5a_aquila_over_mmap),
    Claim("Fig 5(b)", "mmap collapses out of memory", "yes", _fig5b_mmap_collapses),
    Claim("Fig 5(b)", "Aquila/direct, pmem", "1.18–1.65×", _fig5b_aquila_pmem),
    Claim("Fig 5(b)", "Aquila/direct, NVMe", "~1× (saturated)", _fig5b_aquila_nvme),
    Claim("§6.1", "avg latency direct/Aquila o-o-m", "1.26×", _s61_latency),
    Claim("Fig 6(a)", "Aquila/mmap @1/8/16t (pmem)", "1.56/2.54/4.14×", _fig6a_speedups),
    Claim("Fig 6(b)", "Aquila/mmap @16t, larger cache", "≤2.3×", _fig6b_speedup),
    Claim("Fig 6(c)", "user share mmap → Aquila", "10.6% → 55.9%", _fig6c_user_share),
    Claim("Fig 7", "cache-mgmt cycles direct/Aquila", "2.58×", _fig7_cache_mgmt),
    Claim("Fig 7", "throughput gain", "+40%", _fig7_throughput),
    Claim("Fig 7", "Aquila get CPU > direct get CPU", "18.5K vs 15.3K", _fig7_get_cpu),
    Claim("Fig 8(a)", "Linux fault total (pmem)", "5380 cycles", _fig8a_linux_total),
    Claim("Fig 8(a)", "trap ring3 / Aquila exception", "2.33×", _fig8a_trap_ratio),
    Claim("Fig 8(a)", "Aquila fault latency reduction", "45.3%", _fig8a_reduction),
    Claim("Fig 8(b)", "mmap/Aquila with evictions", "2.06×", _fig8b_ratio),
    Claim("Fig 8(b)", "no Aquila component dominates", "<10% each", _fig8b_no_dominator),
    Claim("Fig 8(c)", "Cache-Hit fault", "2179 cycles", _fig8c_cache_hit),
    Claim("Fig 8(c)", "HOST-pmem / DAX-pmem I/O", "7.77×", _fig8c_host_vs_dax),
    Claim("Fig 8(c)", "HOST-NVMe / SPDK-NVMe", "1.53×", _fig8c_host_vs_spdk),
    Claim("Fig 9", "NVMe throughput ratio", "1.02×", _fig9_throughput("nvme", 1.02)),
    Claim("Fig 9", "pmem throughput ratio", "1.22×", _fig9_throughput("pmem", 1.22)),
    Claim("Fig 9", "avg latency ratios", "1.29/1.43×", _fig9_avg_latency),
    Claim("Fig 9", "p99.9 ratios", "3.78/13.72×", _fig9_p999),
    Claim(
        "Fig 10(a)",
        "shared file @1t / @32t",
        "1.81× / 8.37×",
        _fig10_shared("a", 1.81, 8.37, 0.15),
    ),
    Claim("Fig 10(a)", "private file @32t", "1.99×", _fig10a_private),
    Claim(
        "Fig 10(b)",
        "shared file @1t / @32t",
        "2.17× / 12.92×",
        _fig10_shared("b", 2.17, 12.92, 0.2),
    ),
    Claim("Fig 10(b)", "private file @32t", "2.84×", _fig10b_private),
    Claim("§6.5", "avg latency @32t shared", "8.52×", _s65_avg_latency),
    Claim("§6.5", "p99/p99.9 @32t shared", "177× / 213×", _s65_tails),
]


#: Expectations for figure families the paper does not contain, pinned
#: from validated runs the same way the paper claims pin Section 6
#: numbers.  The "paper" column reads "beyond paper"; verdicts use the
#: same vocabulary (``=`` holds, ``✗`` regressed).
BEYOND_PAPER_EXPECTATIONS: List[Claim] = [
    Claim(
        "Serve",
        "antagonist inflates aquila victim p99 (no QoS)",
        "beyond paper",
        _serve_antagonist_inflates("aquila"),
    ),
    Claim(
        "Serve",
        "antagonist inflates kmmap victim p99 (no QoS)",
        "beyond paper",
        _serve_antagonist_inflates("kmmap"),
    ),
    Claim(
        "Serve",
        "antagonist inflates linux victim p99 (no QoS)",
        "beyond paper",
        _serve_antagonist_inflates("linux"),
    ),
    Claim(
        "Serve",
        "QoS partition restores aquila victim p99",
        "beyond paper",
        _serve_qos_restores("aquila"),
    ),
    Claim(
        "Serve",
        "QoS partition restores kmmap victim p99",
        "beyond paper",
        _serve_qos_restores("kmmap"),
    ),
    Claim(
        "Serve",
        "QoS partition restores linux victim p99",
        "beyond paper",
        _serve_qos_restores("linux"),
    ),
    Claim(
        "Serve",
        "victim p99 under antagonist: aquila < kmmap < linux",
        "beyond paper",
        _serve_engine_order,
    ),
    Claim(
        "Cluster",
        "aquila throughput scales 1 → 4 shards",
        "beyond paper",
        _cluster_scaleout("aquila"),
    ),
    Claim(
        "Cluster",
        "kmmap throughput scales 1 → 4 shards",
        "beyond paper",
        _cluster_scaleout("kmmap"),
    ),
    Claim(
        "Cluster",
        "linux throughput scales 1 → 4 shards",
        "beyond paper",
        _cluster_scaleout("linux"),
    ),
    Claim(
        "Cluster",
        "mid-epoch primary kill loses no client op",
        "beyond paper",
        _cluster_failover_serves_all,
    ),
    Claim(
        "Cluster",
        "degraded 4-shard cluster still beats 1 machine",
        "beyond paper",
        _cluster_failover_degrades_bounded,
    ),
]


#: Figure families (the first ``/`` component of a cell id) covered by a
#: pinned claim above.  Families present in a manifest but absent here
#: surface through :func:`unclaimed_rows` instead of silently vanishing
#: from the summary table.
CLAIMED_FAMILIES = frozenset(
    {
        "fig5a",
        "fig5b",
        "fig6a",
        "fig6b",
        "fig7",
        "fig8a",
        "fig8b",
        "fig8c",
        "fig9",
        "fig10a",
        "fig10b",
        "serve",
        "cluster",
    }
)


def cell_family(cell_id: str) -> str:
    """The figure family of a cell id (its first ``/`` component)."""
    return cell_id.split("/", 1)[0]


def unclaimed_rows(cells: Cells) -> List[Tuple[str, str, str, str, str]]:
    """Summary rows for measured families with no pinned claim.

    A figure family in the manifest that no claim covers still gets one
    row per family — measured cell count, no verdict — so beyond-paper
    data is rendered rather than skipped (its numbers live in the
    measured-figures sections).
    """
    families: Dict[str, int] = {}
    for cell_id in cells:
        family = cell_family(cell_id)
        if family not in CLAIMED_FAMILIES:
            families[family] = families.get(family, 0) + 1
    return [
        (
            family,
            f"{count} measured cells (no pinned claim)",
            "—",
            "see measured figures",
            "",
        )
        for family, count in sorted(families.items())
    ]


def summary_rows(cells: Cells) -> List[Tuple[str, str, str, str, str]]:
    """Evaluate every claim; returns (experiment, claim, paper, measured,
    verdict) rows for the summary table.  Paper claims come first, then
    the pinned beyond-paper expectations.  Raises ``KeyError`` naming the
    first missing cell if the manifest is incomplete."""
    rows = []
    for claim in PAPER_CLAIMS + BEYOND_PAPER_EXPECTATIONS:
        measured, verdict = claim.measure(cells)
        rows.append((claim.experiment, claim.claim, claim.paper, measured, verdict))
    return rows

"""Tracer: span nesting, cycle attribution, ring bound, Chrome export."""

import json

import pytest

from repro.common import units
from repro.obs import TRACER, Tracer, enable_tracing
from repro.sim.clock import CycleClock


@pytest.fixture
def tracer():
    t = Tracer(capacity=64)
    t.enable()
    return t


@pytest.fixture(autouse=True)
def _global_tracer_off():
    """Tests here must not leak state into the process-wide TRACER."""
    yield
    TRACER.disable()
    TRACER.reset()


class TestSpanNesting:
    def test_self_cycles_exclude_children(self, tracer):
        clock = CycleClock()
        with tracer.span("outer", clock):
            clock.charge("a", 100)
            with tracer.span("inner"):   # clock inherited from enclosing span
                clock.charge("b", 50)
            clock.charge("a", 25)
        outer, inner = None, None
        for span in tracer.finished_spans():
            if span.name == "outer":
                outer = span
            elif span.name == "inner":
                inner = span
        assert inner.duration == 50
        assert inner.self_cycles == 50
        assert outer.duration == 175
        assert outer.self_cycles == 125
        assert outer.depth == 0 and inner.depth == 1

    def test_charges_route_to_innermost_span(self, tracer):
        clock = CycleClock()
        with tracer.span("outer", clock):
            clock.charge("x", 10)
            with tracer.span("inner", clock):
                clock.charge("x", 7)
                clock.charge("y", 3)
        spans = {s.name: s for s in tracer.finished_spans()}
        assert spans["inner"].charges == {"x": 7, "y": 3}
        assert spans["outer"].charges == {"x": 10}

    def test_wait_until_charges_span(self, tracer):
        clock = CycleClock()
        with tracer.span("s", clock):
            clock.wait_until(clock.now + 40, "idle.io")
        (span,) = tracer.finished_spans()
        assert span.charges == {"idle.io": 40}
        assert span.duration == 40

    def test_cpi_scaling_reaches_span(self, tracer):
        clock = CycleClock()
        clock.cpi_factor = 2.0
        with tracer.span("s", clock):
            clock.charge("work", 10)
        (span,) = tracer.finished_spans()
        assert span.charges == {"work": 20}
        assert span.duration == 20

    def test_no_clock_and_no_enclosing_span_raises(self, tracer):
        with pytest.raises(ValueError):
            tracer.span("orphan")

    def test_spans_on_two_clocks_get_two_tracks(self, tracer):
        a, b = CycleClock(), CycleClock()
        a.owner_name = "alpha"
        with tracer.span("sa", a):
            a.charge("w", 1)
        with tracer.span("sb", b):
            b.charge("w", 1)
        sa, sb = tracer.finished_spans()
        assert sa.track != sb.track
        names = tracer.track_names()
        assert names[sa.track] == "alpha"
        assert names[sb.track].startswith("clock-")


class TestRingBuffer:
    def test_oldest_spans_dropped(self):
        tracer = Tracer(capacity=4)
        tracer.enable()
        clock = CycleClock()
        for i in range(10):
            with tracer.span(f"s{i}", clock):
                clock.charge("w", 1)
        assert tracer.dropped == 6
        assert tracer.total_finished == 10
        assert [s.name for s in tracer.finished_spans()] == ["s6", "s7", "s8", "s9"]

    def test_mark_windows_spans(self, tracer):
        clock = CycleClock()
        with tracer.span("before", clock):
            clock.charge("w", 1)
        mark = tracer.mark()
        with tracer.span("after", clock):
            clock.charge("w", 1)
        assert [s.name for s in tracer.finished_since(mark)] == ["after"]

    def test_reset_clears_and_bumps_epoch(self, tracer):
        clock = CycleClock()
        with tracer.span("s", clock):
            clock.charge("w", 1)
        epoch = tracer.epoch
        tracer.reset(capacity=8)
        assert tracer.epoch == epoch + 1
        assert tracer.capacity == 8
        assert tracer.finished_spans() == []
        assert tracer.total_finished == 0
        # The clock's cached track id is stale now; a new span re-registers.
        with tracer.span("s2", clock):
            clock.charge("w", 1)
        assert tracer.track_names() == ["clock-0"]

    def test_bad_capacity_rejected(self):
        with pytest.raises(ValueError):
            Tracer(capacity=0)
        with pytest.raises(ValueError):
            Tracer().reset(capacity=-1)


class TestDisabled:
    def test_disabled_span_is_shared_noop(self):
        tracer = Tracer()
        before = tracer.noop_requests
        first = tracer.span("a", CycleClock())
        second = tracer.span("b")   # no clock needed while disabled
        assert first is second
        assert tracer.noop_requests == before + 2
        with first:
            pass
        assert tracer.finished_spans() == []

    def test_charges_not_recorded_while_disabled(self):
        tracer = Tracer()
        clock = CycleClock()
        with tracer.span("s", clock):
            clock.charge("w", 5)
        assert tracer.total_finished == 0
        assert clock.breakdown.total() == 5   # the clock itself still charges


class TestChromeExport:
    def test_schema_round_trip(self, tracer, tmp_path):
        clock = CycleClock()
        clock.owner_name = "worker-0"
        with tracer.span("fault", clock):
            clock.charge("fault.vma_lookup", 120)
            with tracer.span("fault.io"):
                clock.charge("idle.io", 2400)
        path = tmp_path / "trace.json"
        events = tracer.write_chrome_trace(str(path))
        trace = json.loads(path.read_text())
        # 1 process_name + 1 thread_name + 2 spans
        assert len(trace["traceEvents"]) == events == 4
        meta = [e for e in trace["traceEvents"] if e["ph"] == "M"]
        complete = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert meta[0]["name"] == "process_name"
        assert meta[0]["args"]["name"] == "repro-sim"
        assert meta[1]["name"] == "thread_name"
        assert meta[1]["args"]["name"] == "worker-0"
        by_name = {e["name"]: e for e in complete}
        fault, io = by_name["fault"], by_name["fault.io"]
        # ts/dur are simulated microseconds at the simulated frequency.
        assert io["dur"] == pytest.approx(units.cycles_to_us(2400), abs=1e-6)
        assert io["ts"] == pytest.approx(units.cycles_to_us(120), abs=1e-6)
        assert fault["args"]["cycles"] == 2520
        assert fault["args"]["self_cycles"] == 120
        assert fault["args"]["charges"] == {"fault.vma_lookup": 120}
        assert io["args"]["charges"] == {"idle.io": 2400}
        assert trace["otherData"]["dropped_spans"] == 0

    def test_streamed_file_matches_materialized_trace(self, tracer, tmp_path):
        clock = CycleClock()
        for i in range(20):
            with tracer.span(f"s{i}", clock):
                clock.charge("w", 10 + i)
        path = tmp_path / "trace.json"
        count = tracer.write_chrome_trace(str(path))
        streamed = json.loads(path.read_text())
        assert streamed == tracer.to_chrome_trace()
        # process_name + thread_name + 20 spans
        assert count == len(streamed["traceEvents"]) == 22

    def test_empty_tracer_still_writes_valid_trace(self, tracer, tmp_path):
        path = tmp_path / "empty.json"
        count = tracer.write_chrome_trace(str(path))
        trace = json.loads(path.read_text())
        assert count == 1   # just the process_name metadata event
        assert trace["traceEvents"][0]["name"] == "process_name"
        assert trace["otherData"]["total_spans"] == 0

    def test_determinism_identical_runs_identical_traces(self):
        """Two identical traced runs serialize to byte-identical JSON."""

        def traced_run() -> str:
            from repro.bench.setups import make_aquila_stack
            from repro.mmio.vma import MADV_RANDOM
            from repro.sim.executor import SimThread

            tracer = enable_tracing(capacity=1 << 12)
            stack = make_aquila_stack("pmem", cache_pages=128)
            file = stack.allocator.create("det-data", 64 * units.PAGE_SIZE)
            thread = SimThread(core=0, name="det-thread")
            mapping = stack.engine.mmap(thread, file)
            mapping.madvise(thread, MADV_RANDOM)
            for page in range(48):
                with tracer.span("op.access", thread.clock):
                    mapping.load(thread, page * units.PAGE_SIZE, 8)
            blob = json.dumps(tracer.to_chrome_trace(), sort_keys=True)
            tracer.disable()
            tracer.reset()
            return blob

        assert traced_run() == traced_run()


class TestIsolated:
    def test_isolated_scope_restores_outer_state(self, tracer):
        clock = CycleClock()
        with tracer.span("outer-span", clock):
            clock.charge("w", 5)
        outer_epoch = tracer.epoch
        with tracer.isolated(enable=True):
            inner_clock = CycleClock()
            with tracer.span("inner-span", inner_clock):
                inner_clock.charge("w", 7)
            assert [s.name for s in tracer.finished_spans()] == ["inner-span"]
            assert tracer.total_finished == 1
        assert [s.name for s in tracer.finished_spans()] == ["outer-span"]
        assert tracer.total_finished == 1
        assert tracer.epoch == outer_epoch + 2   # bump on entry and exit

    def test_isolated_restores_disabled_flag(self):
        t = Tracer(capacity=8)
        assert not t.enabled
        with t.isolated(enable=True):
            assert t.enabled
            with t.span("s", CycleClock()):
                pass
        assert not t.enabled
        assert t.finished_spans() == []

    def test_stale_track_ids_do_not_leak_across_scopes(self, tracer):
        clock = CycleClock()
        clock.owner_name = "shared-clock"
        with tracer.isolated(enable=True):
            with tracer.span("a", clock):
                pass
        with tracer.isolated(enable=True):
            with tracer.span("b", clock):
                pass
            # The epoch bump forced re-registration instead of reusing the
            # first scope's track id.
            assert tracer.track_names() == ["shared-clock"]

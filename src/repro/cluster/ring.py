"""Consistent-hash routing of keys over shard replicas.

The cluster's router is a classic consistent-hash ring with virtual
nodes: every shard owns ``vnodes`` points on a 64-bit ring, a key is
owned by the first point at or clockwise of its hash, and its replicas
are the next ``replication - 1`` *distinct* shards further clockwise.
All hashes are :func:`repro.sim.rand.mix64` / sha-derived — never
Python's randomized ``hash()`` — so placement is a pure function of
``(seed, shard ids, vnodes)`` and identical in every process, which is
what lets the serial reference and the multi-process cluster backend
route the same key to the same shard (DESIGN.md §13).

The ring is also the failover mechanism: :meth:`HashRing.remove` drops a
dead shard's points, and by the successor rule every key the dead shard
owned remaps exactly to its *first replica* — the shard that already
holds the key's replicated data.  :func:`promoted_owner_is_replica`
states that invariant; ``tests/cluster/test_ring.py`` checks it key by
key.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, List, Sequence, Tuple

from repro.sim.rand import derive_seed, mix64

#: Default virtual nodes per shard.  Enough that a 4-shard ring splits a
#: uniform key space within a few percent of evenly; small enough that
#: ring construction stays trivial.
DEFAULT_VNODES = 64


def key_hash(key: int, seed: int = 0) -> int:
    """The 64-bit ring position of ``key`` (splitmix64-mixed, stable)."""
    return mix64((key ^ mix64(seed)) & ((1 << 64) - 1))


class HashRing:
    """A consistent-hash ring over integer shard ids.

    ``shard_ids`` seed the ring; ``remove`` handles failover.  Lookup is
    a binary search over the sorted point list — O(log(shards * vnodes))
    per key, cheap enough to route every client op individually.
    """

    def __init__(
        self,
        shard_ids: Sequence[int],
        vnodes: int = DEFAULT_VNODES,
        seed: int = 0,
    ) -> None:
        if not shard_ids:
            raise ValueError("a ring needs at least one shard")
        if len(set(shard_ids)) != len(shard_ids):
            raise ValueError("shard ids must be unique")
        if vnodes < 1:
            raise ValueError("vnodes must be positive")
        self.seed = seed
        self.vnodes = vnodes
        self.shard_ids: Tuple[int, ...] = tuple(shard_ids)
        self._points: List[Tuple[int, int]] = []   # (hash, shard_id)
        for shard_id in self.shard_ids:
            for v in range(vnodes):
                point = derive_seed(seed, f"ring-shard{shard_id}-v{v}")
                self._points.append((point, shard_id))
        # Ties between vnode points are broken by shard id so the sorted
        # order (hence every placement) is total and deterministic.
        self._points.sort()
        self._hashes = [point for point, _ in self._points]

    def owners(self, key: int, count: int = 1) -> List[int]:
        """The first ``count`` distinct shards clockwise of ``key``'s hash.

        Entry 0 is the primary; the rest are the replicas in replication
        order.  ``count`` is clamped to the number of live shards, so a
        one-shard ring simply yields ``[that shard]``.
        """
        position = key_hash(key, self.seed)
        start = bisect_left(self._hashes, position) % len(self._points)
        owners: List[int] = []
        want = min(count, len(self.shard_ids))
        for step in range(len(self._points)):
            shard_id = self._points[(start + step) % len(self._points)][1]
            if shard_id not in owners:
                owners.append(shard_id)
                if len(owners) == want:
                    break
        return owners

    def primary(self, key: int) -> int:
        """The shard owning ``key``."""
        return self.owners(key, 1)[0]

    def replicas(self, key: int, replication: int) -> List[int]:
        """The replica shards of ``key`` (primary excluded)."""
        return self.owners(key, replication)[1:]

    def remove(self, shard_id: int) -> "HashRing":
        """A new ring without ``shard_id`` (failover promotion).

        By the successor rule, every key previously owned by the removed
        shard remaps to the next distinct shard on the ring — its first
        replica under the old ring — so a replicated key's data is
        already present on its promoted owner.
        """
        if shard_id not in self.shard_ids:
            raise ValueError(f"shard {shard_id} is not on the ring")
        survivors = tuple(s for s in self.shard_ids if s != shard_id)
        return HashRing(survivors, self.vnodes, self.seed)

    def assignment_counts(self, keys: Sequence[int]) -> Dict[int, int]:
        """How many of ``keys`` each shard primaries (balance check)."""
        counts = {shard_id: 0 for shard_id in self.shard_ids}
        for key in keys:
            counts[self.primary(key)] += 1
        return counts


def promoted_owner_is_replica(ring: HashRing, dead: int, keys: Sequence[int]) -> bool:
    """Whether, for every ``key`` primaried by ``dead``, removal promotes
    the key's first replica (the shard already holding its data).

    This is the property that makes ring-removal failover lossless for
    committed epochs at replication >= 2; the ring test suite asserts it
    over seeded key samples.
    """
    survivors = ring.remove(dead)
    for key in keys:
        if ring.primary(key) != dead:
            continue
        old_replicas = ring.replicas(key, 2)
        if not old_replicas:
            return False
        if survivors.primary(key) != old_replicas[0]:
            return False
    return True

"""The Linux kernel page-cache model."""

import pytest

from repro.common import units
from repro.cache.kernel_cache import KernelPageCache
from repro.devices.pmem import PmemDevice
from repro.mmio.files import ExtentFile
from repro.sim.clock import CycleClock


def _file(name="f", pages=64):
    device = PmemDevice(capacity_bytes=64 * units.MIB)
    return ExtentFile(name, device, 0, pages * units.PAGE_SIZE)


class TestLookupInsert:
    def test_miss_then_hit(self):
        cache = KernelPageCache(16)
        file = _file()
        clock = CycleClock()
        assert cache.lookup(clock, 1, file, 0) is None
        frame = cache.allocate_frame(clock)
        cache.insert(clock, 1, file, 0, frame)
        page = cache.lookup(clock, 1, file, 0)
        assert page is not None and page.frame == frame
        assert cache.hits == 1 and cache.misses == 1

    def test_per_file_isolation(self):
        cache = KernelPageCache(16)
        a, b = _file("a"), _file("b")
        clock = CycleClock()
        cache.insert(clock, 1, a, 0, cache.allocate_frame(clock))
        assert cache.lookup(clock, 1, b, 0) is None

    def test_per_file_tree_locks_distinct(self):
        cache = KernelPageCache(16)
        a, b = _file("a"), _file("b")
        assert cache.tree_lock_of(a) is not cache.tree_lock_of(b)
        assert cache.tree_lock_of(a) is cache.tree_lock_of(a)

    def test_allocate_exhaustion(self):
        cache = KernelPageCache(2)
        clock = CycleClock()
        assert cache.allocate_frame(clock) is not None
        assert cache.allocate_frame(clock) is not None
        assert cache.allocate_frame(clock) is None


class TestDirtyAndVictims:
    def test_mark_dirty_takes_lock(self):
        cache = KernelPageCache(8)
        file = _file()
        clock = CycleClock()
        page = cache.insert(clock, 1, file, 0, cache.allocate_frame(clock))
        lock = cache.tree_lock_of(file)
        acquisitions = lock.acquisitions
        cache.mark_dirty(clock, 1, page)
        assert page.dirty
        assert lock.acquisitions == acquisitions + 1
        assert cache.dirty_pages() == 1

    def test_pick_victims_lru_order(self):
        cache = KernelPageCache(8)
        file = _file()
        clock = CycleClock()
        pages = [
            cache.insert(clock, 1, file, i, cache.allocate_frame(clock))
            for i in range(4)
        ]
        cache.lookup(clock, 1, file, 0)   # refresh page 0
        victims = cache.pick_victims(2)
        assert [v.file_page for v in victims] == [1, 2]

    def test_remove_returns_frame(self):
        cache = KernelPageCache(2)
        file = _file()
        clock = CycleClock()
        frame = cache.allocate_frame(clock)
        page = cache.insert(clock, 1, file, 0, frame)
        cache.allocate_frame(clock)
        assert cache.allocate_frame(clock) is None
        cache.remove(clock, 1, page)
        assert cache.allocate_frame(clock) == frame
        assert cache.evictions == 1

    def test_remove_batch_groups_by_file(self):
        cache = KernelPageCache(16)
        a, b = _file("a"), _file("b")
        clock = CycleClock()
        pages = []
        for i in range(3):
            pages.append(cache.insert(clock, 1, a, i, cache.allocate_frame(clock)))
            pages.append(cache.insert(clock, 1, b, i, cache.allocate_frame(clock)))
        lock_a = cache.tree_lock_of(a)
        before = lock_a.acquisitions
        removed = cache.remove_batch(clock, 1, pages)
        assert len(removed) == 6
        assert lock_a.acquisitions == before + 1   # one acquisition per file

    def test_remove_batch_skips_busy_files(self):
        cache = KernelPageCache(16)
        file = _file()
        clock = CycleClock()
        page = cache.insert(clock, 1, file, 0, cache.allocate_frame(clock))
        # Simulate the lock being held into the future.
        holder = CycleClock()
        holder.charge("hold", 10_000)
        lock = cache.tree_lock_of(file)
        lock.acquire(holder, 99)
        removed = cache.remove_batch(clock, 1, [page])
        assert removed == []
        assert cache.get_nocost(file, 0) is page
        lock.release(holder, 99)

    def test_pages_of_file(self):
        cache = KernelPageCache(16)
        a, b = _file("a"), _file("b")
        clock = CycleClock()
        cache.insert(clock, 1, a, 0, cache.allocate_frame(clock))
        cache.insert(clock, 1, a, 1, cache.allocate_frame(clock))
        cache.insert(clock, 1, b, 0, cache.allocate_frame(clock))
        assert len(cache.pages_of_file(a.file_id)) == 2
        assert len(cache.pages_of_file(b.file_id)) == 1

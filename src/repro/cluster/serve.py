"""Multi-tenant serving across cluster shards.

The open-loop serving layer (:mod:`repro.serve`) runs N tenants over one
shared stack; this module places those tenants over cluster shards with
the same consistent-hash ring the data path uses, then runs each shard's
tenant subset through the ordinary :func:`repro.serve.core.run_serve` on
the shard's own stack.  Tenant placement is a pure function of the
tenant's *name* (hashed through the seeded ring), so adding a shard
moves only the tenants whose ring segment changed — the standard
consistent-hashing economy — and a placement is replayable from the
config alone.

Each shard's serve run observes the same identity discipline as the data
path (:mod:`repro.cluster.shard`): global id counters are reset before
the shard's stack is built, so the shard's digest is identical whether
it ran alone or as the Nth shard of a serial sweep over the cluster.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.cluster.ring import DEFAULT_VNODES, HashRing
from repro.mmio.files import BackingFile
from repro.serve.core import ServeConfig, TenantSpec, run_serve, serve_state_digest
from repro.sim.conformance import hash_digest
from repro.sim.executor import SimThread
from repro.sim.rand import derive_seed


def tenant_key(name: str, seed: int = 0) -> int:
    """The ring key of a tenant: a seeded hash of its (stable) name."""
    return derive_seed(seed, f"cluster-tenant:{name}")


def place_tenants(
    tenants: Sequence[TenantSpec], ring: HashRing, seed: int = 0
) -> Dict[int, List[TenantSpec]]:
    """Assign each tenant to its primary shard under ``ring``.

    Returns ``{shard_id: [tenant, ...]}`` with every live shard present
    (possibly empty) and tenants in their original declaration order.
    """
    placement: Dict[int, List[TenantSpec]] = {sid: [] for sid in ring.shard_ids}
    for spec in tenants:
        placement[ring.primary(tenant_key(spec.name, seed))].append(spec)
    return placement


@dataclass
class ClusterServeResult:
    """Per-shard serve outcomes plus the merged digest."""

    placement: Dict[int, List[str]]
    shard_digests: Dict[int, Dict]
    tenant_rows: List[Dict] = field(default_factory=list)

    def merged_digest(self) -> Dict:
        """All shard serve digests plus the placement that produced them."""
        return {
            "placement": {
                sid: tuple(names) for sid, names in sorted(self.placement.items())
            },
            "shards": {sid: d for sid, d in sorted(self.shard_digests.items())},
        }

    def merged_hash(self) -> str:
        """Canonical sha256 of :meth:`merged_digest`."""
        return hash_digest(self.merged_digest())


def run_cluster_serve(
    tenants: Sequence[TenantSpec],
    num_shards: int,
    engine_kind: str = "aquila",
    policy: str = "none",
    cache_pages: int = 512,
    device_kind: str = "pmem",
    seed: int = 7,
    batched: bool = True,
    fastforward: bool = True,
    vnodes: int = DEFAULT_VNODES,
) -> ClusterServeResult:
    """Serve ``tenants`` across ``num_shards`` shard stacks.

    Shards run serially in shard-id order; because each shard's stack,
    tenant schedules, and plans depend only on ``(seed, tenant names)``
    and ids are reset per shard, the result digest is independent of
    that order — the same contract the data-path backends satisfy.
    """
    if num_shards < 1:
        raise ValueError("a serve cluster needs at least one shard")
    ring = HashRing(range(num_shards), vnodes, seed)
    placement = place_tenants(tenants, ring, seed)
    shard_digests: Dict[int, Dict] = {}
    rows: List[Dict] = []
    for sid in sorted(placement):
        subset = placement[sid]
        if not subset:
            shard_digests[sid] = {"empty": True}
            continue
        SimThread.reset_ids()
        BackingFile.reset_ids()
        outcome = run_serve(
            ServeConfig(
                tenants=list(subset),
                engine_kind=engine_kind,
                policy=policy,
                cache_pages=cache_pages,
                device_kind=device_kind,
                seed=seed,
                batched=batched,
                fastforward=fastforward,
            )
        )
        shard_digests[sid] = serve_state_digest(outcome)
        for stats in outcome.tenants:
            row = stats.row()
            row["shard"] = sid
            rows.append(row)
    return ClusterServeResult(
        placement={sid: [s.name for s in specs] for sid, specs in placement.items()},
        shard_digests=shard_digests,
        tenant_rows=rows,
    )

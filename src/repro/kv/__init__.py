"""Key-value stores: RocksDB-like LSM over SSTs and Kreon-like log+B-tree."""

from repro.kv.bloom import BloomFilter
from repro.kv.btree import FileBTree, PageAllocator
from repro.kv.env import DirectIOEnv, MmioEnv, StorageEnv
from repro.kv.kreon import Kreon
from repro.kv.lsm import LSMTree, merge_sorted_unique
from repro.kv.memtable import TOMBSTONE, Memtable
from repro.kv.rocksdb import RocksDB
from repro.kv.sst import SSTable, SSTBuilder, build_sst

__all__ = [
    "BloomFilter",
    "FileBTree",
    "PageAllocator",
    "DirectIOEnv",
    "MmioEnv",
    "StorageEnv",
    "Kreon",
    "LSMTree",
    "merge_sorted_unique",
    "TOMBSTONE",
    "Memtable",
    "RocksDB",
    "SSTable",
    "SSTBuilder",
    "build_sst",
]

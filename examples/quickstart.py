#!/usr/bin/env python3
"""Quickstart: run an application under the Aquila library OS.

Mirrors the paper's minimal-integration story (Section 4): one call to
enter Aquila in main(), one call per thread, and the familiar
open/mmap/load/store/msync surface — with page faults handled in non-root
ring 0 and device access through DAX.

Run:  python examples/quickstart.py
"""

from repro.common import units
from repro.core import Aquila, AquilaConfig
from repro.devices.pmem import PmemDevice
from repro.hw.machine import Machine
from repro.sim.executor import SimThread


def main() -> None:
    # The simulated testbed: dual-socket Xeon (32 hw threads) + pmem.
    machine = Machine()
    device = PmemDevice(capacity_bytes=256 * units.MIB)

    # Configure Aquila: a 2048-page (8 MiB) DRAM cache over the DAX path,
    # batch sizes rescaled from the paper's 8 GB configuration.
    config = AquilaConfig(cache_pages=2048, io_path="dax").scaled_for_cache()
    aquila = Aquila(machine, device, config)

    # The single integration point the paper requires in main().
    main_thread = SimThread(core=0)
    aquila.enter(main_thread)

    # Open a file (a metadata operation forwarded to the host) and map it
    # (intercepted in ring 0: no vmcall).
    file = aquila.open(main_thread, "/data/example", size_bytes=4 * units.MIB)
    mapping = aquila.mmap(main_thread, file)

    # Plain loads and stores; misses fault in non-root ring 0 at 552
    # cycles of exception cost instead of the kernel's 1287-cycle trap.
    mapping.store(main_thread, 0, b"Hello, memory-mapped storage!")
    data = mapping.load(main_thread, 0, 29)
    print(f"read back: {data.decode()}")

    # Cache hits are pure hardware: watch the cycle counter barely move.
    before = main_thread.clock.now
    mapping.load(main_thread, 0, 8)
    print(f"hit cost: {main_thread.clock.now - before:.0f} cycles")

    # A miss pays the fault path (~3.8K cycles with DAX on pmem).
    before = main_thread.clock.now
    mapping.load(main_thread, 2 * units.MIB, 8)
    print(f"miss cost: {main_thread.clock.now - before:.0f} cycles")

    # msync is intercepted too: dirty pages flush in device-offset order.
    written = mapping.msync(main_thread)
    print(f"msync wrote {written} page(s)")

    # Resize the cache at runtime through EPT granules (Section 3.5).
    new_capacity = aquila.resize_cache(main_thread, 4096)
    print(f"cache resized to {new_capacity} pages")

    print("\ncache stats:")
    for key, value in aquila.cache_stats().items():
        print(f"  {key:20s} {value}")

    seconds = main_thread.clock.seconds
    print(f"\nsimulated time elapsed: {seconds * 1e6:.1f} us")


if __name__ == "__main__":
    main()

"""Golden-number regression tier: pin each figure's headline numbers.

The simulation is fully deterministic, so every figure cell produces the
exact same number on every run of the same code.  These tests pin the
headline value of each paper figure (at fast, test-scale parameters) with
a narrow tolerance band.  A failure means a code change moved a simulated
figure — either an accidental regression (fix the code) or a deliberate
model change (re-pin the golden and say so in the PR).

Failure messages print three numbers side by side: what this run
*observed*, what the golden file *pins*, and what the *paper* reports for
the corresponding full-scale claim — so a drift is immediately legible
without re-running anything.

Scales here are test-sized (hundreds of ops), so absolute values differ
from the paper's full-scale numbers; the paper column is context, not the
assertion target.  ``benchmarks/`` holds the figure-scale claim checks.
"""

import pytest

from repro.mmio.files import BackingFile
from repro.sim.executor import SimThread

#: rel-tolerance of every golden pin.  Wide enough to survive float noise
#: (there is none — the sim is deterministic) and platform differences in
#: libm-free arithmetic (also none); narrow enough that any real cost
#: model or scheduling change trips it.
GOLDEN_RTOL = 1e-6


@pytest.fixture(autouse=True)
def _fresh_ids():
    """Golden cells must not depend on how many threads/files ran before."""
    SimThread.reset_ids()
    BackingFile.reset_ids()
    yield
    SimThread.reset_ids()
    BackingFile.reset_ids()


def check_golden(name: str, observed: float, pinned: float, paper: str,
                 rtol: float = GOLDEN_RTOL) -> None:
    """Assert ``observed`` matches the pinned golden value.

    ``paper`` is a human-readable note of the corresponding full-scale
    paper claim, printed in the failure message for context.
    """
    assert observed == pytest.approx(pinned, rel=rtol), (
        f"golden drift in {name}:\n"
        f"  observed : {observed}\n"
        f"  pinned   : {pinned}  (rel tolerance {rtol})\n"
        f"  paper    : {paper}\n"
        "If this change to the simulated figure is intentional, re-pin the "
        "golden in tests/regression/test_paper_golden.py and call it out "
        "in the PR description."
    )


class TestFig8Goldens:
    """Figure 8: page-fault cost, Linux vs Aquila (paper Section 6.4)."""

    def test_fig8a_fault_cost(self):
        from repro.bench.experiments.fig8 import run_fig8a

        r = run_fig8a(accesses=200)
        linux = r["linux"]["mean_access_cycles"]
        aquila = r["aquila"]["mean_access_cycles"]
        check_golden("fig8a linux fault cycles", linux, 5460.0,
                     "Linux in-memory fault = 5380 cycles (Fig 8a)")
        check_golden("fig8a aquila fault cycles", aquila, 3787.3,
                     "Aquila cuts fault latency by 45.3% (Fig 8a)")
        check_golden("fig8a linux/aquila ratio", linux / aquila,
                     5460.0 / 3787.3,
                     "paper full-scale ratio ~1.83x (5380 vs ~2943)")

    def test_fig8c_device_paths(self):
        from repro.bench.experiments.fig8 import run_fig8c

        r = run_fig8c(accesses=150)
        check_golden("fig8c Cache-Hit", r["Cache-Hit"], 2179.0,
                     "Cache-Hit fault = 2179 cycles (Fig 8c, exact)")
        check_golden("fig8c DAX-pmem", r["DAX-pmem"], 3787.8333333333335,
                     "DAX-pmem is the cheapest I/O path (Fig 8c)")
        check_golden("fig8c HOST-pmem", r["HOST-pmem"], 11911.833333333334,
                     "host syscall path costs ~3x DAX on pmem (Fig 8c)")
        check_golden("fig8c SPDK-NVMe", r["SPDK-NVMe"], 27187.833333333332,
                     "SPDK beats host I/O on NVMe (Fig 8c)")
        check_golden("fig8c HOST-NVMe", r["HOST-NVMe"], 40175.833333333336,
                     "host-NVMe penalty ~1.53x over SPDK (Fig 8c)")
        # Orderings are the figure's qualitative claim; keep them explicit
        # so a re-pin can't silently invert a bar.
        assert r["Cache-Hit"] < r["DAX-pmem"] < r["HOST-pmem"]
        assert r["SPDK-NVMe"] < r["HOST-NVMe"]


class TestFig7Goldens:
    """Figure 7: RocksDB cycle breakdown, explicit I/O vs Aquila."""

    def test_fig7_ratios(self):
        from repro.bench.experiments.fig7 import run_fig7

        r = run_fig7(record_count=4096, operations=600, cache_pages=256)
        check_golden("fig7 cache-mgmt ratio", r["cache_mgmt_ratio"],
                     2.654004152059097,
                     "explicit I/O spends 2.58x Aquila's cycles on cache "
                     "management (Fig 7)")
        check_golden("fig7 throughput gain", r["throughput_gain"],
                     1.6186812719264623,
                     "mmap path gains 1.40x over pread/pwrite (Fig 7)")


class TestFig5Goldens:
    """Figure 5: RocksDB YCSB-C throughput across I/O engines."""

    def test_fig5_pmem_in_memory_cell(self):
        from repro.bench.experiments.fig5 import run_cell

        thr = {}
        for mode in ("direct", "mmap", "aquila"):
            SimThread.reset_ids()
            BackingFile.reset_ids()
            thr[mode] = run_cell(mode, "pmem", 2048, 666, 4, 200)["throughput"]
        check_golden("fig5a direct ops/s", thr["direct"], 308388.9504239063,
                     "pread/pwrite baseline (Fig 5a pmem)")
        check_golden("fig5a mmap ops/s", thr["mmap"], 357175.478638395,
                     "Linux mmap beats explicit I/O in-memory (Fig 5a)")
        check_golden("fig5a aquila ops/s", thr["aquila"], 521655.3537190087,
                     "Aquila leads both engines (Fig 5a pmem)")
        assert thr["aquila"] > thr["mmap"] > thr["direct"]


class TestFig9Goldens:
    """Figure 9: Kreon over kmmap vs over Aquila."""

    def test_fig9_ycsb_c_pmem(self):
        from repro.bench.experiments.fig9 import run_cell

        kmmap = run_cell("kmmap", "pmem", "C", record_count=2048,
                         cache_pages=512, operations=600)
        SimThread.reset_ids()
        BackingFile.reset_ids()
        aquila = run_cell("aquila", "pmem", "C", record_count=2048,
                          cache_pages=512, operations=600)
        ratio = aquila["throughput"] / kmmap["throughput"]
        check_golden("fig9 C/pmem throughput ratio", ratio,
                     1.0327828558100323,
                     "paper pmem mean throughput ratio 1.22x (Fig 9)")
        assert aquila["not_found"] == kmmap["not_found"] == 0


class TestFig10Goldens:
    """Figure 10: scalability, Aquila vs Linux mmap (the tentpole cell)."""

    @staticmethod
    def _speedup(shared, in_memory, cache_pages, total_accesses):
        from repro.bench.experiments.fig10 import run_config

        SimThread.reset_ids()
        BackingFile.reset_ids()
        linux = run_config("linux", 16, shared, in_memory,
                           cache_pages=cache_pages,
                           total_accesses=total_accesses)
        SimThread.reset_ids()
        BackingFile.reset_ids()
        aquila = run_config("aquila", 16, shared, in_memory,
                            cache_pages=cache_pages,
                            total_accesses=total_accesses)
        return linux["throughput"], aquila["throughput"]

    def test_fig10a_shared_16_threads(self):
        linux, aquila = self._speedup(True, True, 2048, 40960)
        check_golden("fig10a shared linux ops/s", linux, 65803953.699464224,
                     "Linux serializes on the per-inode tree lock (Sec 6.5)")
        check_golden("fig10a shared aquila ops/s", aquila, 192438248.0414381,
                     "Aquila's lock-free hash keeps scaling (Sec 6.5)")
        check_golden("fig10a shared speedup @16t", aquila / linux,
                     2.9244177169099936,
                     "paper in-memory shared-file speedup reaches 8.37x @32t")

    def test_fig10a_private_16_threads(self):
        linux, aquila = self._speedup(False, True, 2048, 40960)
        check_golden("fig10a private speedup @16t", aquila / linux,
                     1.58399470107774,
                     "private files avoid the lock collapse: paper 1.99x @32t")

    def test_fig10b_shared_16_threads(self):
        linux, aquila = self._speedup(True, False, 512, 8192)
        check_golden("fig10b shared speedup @16t", aquila / linux,
                     7.386646376883854,
                     "paper out-of-memory shared-file speedup 12.92x @32t")

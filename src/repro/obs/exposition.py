"""OpenMetrics-style text exposition of the metrics registry.

Point-in-time dumps in the de-facto text format (the subset shared by
Prometheus and OpenMetrics): ``# HELP``/``# TYPE`` comments, counters
suffixed ``_total``, histograms as cumulative ``_bucket{le="..."}``
series plus ``_count``/``_sum``, and a terminating ``# EOF`` line.  Dots
in the registry's metric paths become underscores (``engine.aquila.hits``
-> ``engine_aquila_hits``), which keeps names legal for any scraper.

Zero dependencies and purely observational — this renders whatever the
registry holds, it never mutates it.  The output is sorted by metric
name, so two dumps of the same registry state are byte-identical.
"""

from __future__ import annotations

import re
from typing import Any, Dict, List, Optional

from repro.obs.metrics import METRICS, Counter, Gauge, Histogram, MetricsRegistry

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")


def metric_name(name: str) -> str:
    """A registry path as a legal exposition metric name."""
    sanitized = _NAME_RE.sub("_", name)
    if not sanitized or sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return sanitized


def _format_value(value: float) -> str:
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value) if isinstance(value, float) else str(value)


def _help_line(name: str, help_text: str) -> List[str]:
    if not help_text:
        return []
    return [f"# HELP {name} {help_text}".replace("\n", " ")]


def _histogram_lines(name: str, histogram: Histogram) -> List[str]:
    lines = _help_line(name, histogram.help) + [f"# TYPE {name} histogram"]
    cumulative = 0
    for bound, count in zip(histogram.buckets, histogram.counts[:-1]):
        cumulative += count
        lines.append(f'{name}_bucket{{le="{bound:g}"}} {cumulative}')
    cumulative += histogram.counts[-1]
    lines.append(f'{name}_bucket{{le="+Inf"}} {cumulative}')
    lines.append(f"{name}_count {histogram.count}")
    lines.append(f"{name}_sum {_format_value(histogram.sum)}")
    return lines


def render_openmetrics(registry: Optional[MetricsRegistry] = None) -> str:
    """The registry's current state as OpenMetrics-style text.

    Counters render as ``<name>_total`` with ``# TYPE ... counter``,
    gauges and pull probes as gauges (a probe that raises is skipped —
    same tolerance as :meth:`MetricsRegistry.snapshot`), histograms as
    cumulative bucket series.  Ends with ``# EOF``.
    """
    registry = registry if registry is not None else METRICS
    lines: List[str] = []
    for name, metric in registry.iter_metrics():
        exposition = metric_name(name)
        if isinstance(metric, Counter):
            lines += _help_line(exposition, metric.help)
            lines.append(f"# TYPE {exposition} counter")
            lines.append(f"{exposition}_total {_format_value(metric.value)}")
        elif isinstance(metric, Gauge):
            lines += _help_line(exposition, metric.help)
            lines.append(f"# TYPE {exposition} gauge")
            lines.append(f"{exposition} {_format_value(metric.value)}")
        elif isinstance(metric, Histogram):
            lines += _histogram_lines(exposition, metric)
    for name, fn in registry.iter_probes():
        exposition = metric_name(name)
        try:
            value = fn()
        except Exception:
            continue
        if not isinstance(value, (int, float)):
            continue
        lines.append(f"# TYPE {exposition} gauge")
        lines.append(f"{exposition} {_format_value(float(value))}")
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def render_snapshot(snapshot: Dict[str, Any]) -> str:
    """A plain :meth:`MetricsRegistry.snapshot` dict as exposition text.

    For rendering telemetry that crossed a process boundary (a manifest
    row's ``telemetry.metrics``), where the Counter/Gauge distinction is
    gone: numbers render as untyped gauges, histogram dumps (dicts with
    ``buckets``) as cumulative bucket series, ``None`` probes are
    skipped.
    """
    lines: List[str] = []
    for name, value in sorted(snapshot.items()):
        exposition = metric_name(name)
        if isinstance(value, dict) and "buckets" in value:
            lines.append(f"# TYPE {exposition} histogram")
            cumulative = 0
            for bound, count in value["buckets"]:
                cumulative += count
                lines.append(f'{exposition}_bucket{{le="{bound:g}"}} {cumulative}')
            cumulative += value.get("overflow", 0)
            lines.append(f'{exposition}_bucket{{le="+Inf"}} {cumulative}')
            lines.append(f"{exposition}_count {value['count']}")
            lines.append(f"{exposition}_sum {_format_value(value['sum'])}")
        elif isinstance(value, (int, float)):
            lines.append(f"# TYPE {exposition} gauge")
            lines.append(f"{exposition} {_format_value(float(value))}")
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def write_openmetrics(path: str, registry: Optional[MetricsRegistry] = None) -> int:
    """Write the registry exposition to ``path``; returns line count."""
    text = render_openmetrics(registry)
    with open(path, "w") as handle:
        handle.write(text)
    return text.count("\n")

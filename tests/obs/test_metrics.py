"""Metrics registry: primitives, disabled no-ops, pull probes, snapshots."""

import pytest

from repro.obs import METRICS
from repro.obs.metrics import COUNTER_WRAP, Counter, Histogram, MetricsRegistry


@pytest.fixture
def registry():
    r = MetricsRegistry()
    r.enable()
    return r


@pytest.fixture(autouse=True)
def _global_registry_off():
    yield
    METRICS.disable()
    METRICS.reset()


class TestCounter:
    def test_inc(self, registry):
        c = registry.counter("c")
        c.inc()
        c.inc(5)
        assert c.value == 6

    def test_wraps_like_hardware(self, registry):
        c = registry.counter("c")
        c.inc(COUNTER_WRAP - 2)
        c.inc(5)
        assert c.value == 3

    def test_negative_rejected(self, registry):
        with pytest.raises(ValueError):
            registry.counter("c").inc(-1)

    def test_reset(self, registry):
        c = registry.counter("c")
        c.inc(9)
        c.reset()
        assert c.value == 0


class TestGauge:
    def test_set_and_add(self, registry):
        g = registry.gauge("g")
        g.set(10)
        g.add(-4)
        assert g.value == 6
        g.reset()
        assert g.value == 0.0


class TestHistogram:
    def test_bucketing(self, registry):
        h = registry.histogram("h", buckets=[10, 100])
        h.observe_many([1, 10, 11, 100, 5000])
        # first bound >= value: 1 and 10 land in le[10], 11 and 100 in le[100]
        assert h.counts == [2, 2, 1]
        assert h.count == 5
        assert h.sum == 5122

    def test_as_dict(self, registry):
        h = registry.histogram("h", buckets=[2.0])
        h.observe(1)
        h.observe(3)
        assert h.as_dict() == {
            "buckets": [(2.0, 1)],
            "overflow": 1,
            "count": 2,
            "sum": 4.0,
        }

    def test_bad_buckets_rejected(self, registry):
        with pytest.raises(ValueError):
            registry.histogram("bad1", buckets=[])
        with pytest.raises(ValueError):
            registry.histogram("bad2", buckets=[10, 2])


class TestHistogramQuantiles:
    def test_empty_recorder_has_no_quantiles(self, registry):
        h = registry.histogram("h", buckets=[10, 100])
        assert h.mean() is None
        assert h.quantile(0.5) is None
        assert h.summary() == {
            "count": 0,
            "sum": 0.0,
            "mean": None,
            "p50": None,
            "p90": None,
            "p99": None,
            "p999": None,
        }

    def test_single_sample_pins_every_quantile(self, registry):
        h = registry.histogram("h", buckets=[2.0, 8.0])
        h.observe(4.0)
        summary = h.summary()
        # One sample: every percentile interpolates inside its bucket,
        # landing on the same value for p50 through p999.
        assert summary["p50"] == summary["p999"]
        assert 2.0 < summary["p50"] <= 8.0
        assert summary["mean"] == 4.0

    def test_p999_on_tiny_sample_count_stays_in_range(self, registry):
        h = registry.histogram("h", buckets=[10.0, 100.0, 1000.0])
        h.observe_many([5, 50, 500])
        p999 = h.quantile(0.999)
        assert 100.0 < p999 <= 1000.0   # the max sample's bucket

    def test_overflow_quantile_reports_last_bound(self, registry):
        h = registry.histogram("h", buckets=[4.0, 8.0])
        h.observe_many([1, 2, 1e9])
        assert h.quantile(0.999) == 8.0   # overflow clamps to the last bound

    def test_quantile_out_of_range_rejected(self, registry):
        h = registry.histogram("h", buckets=[1.0])
        with pytest.raises(ValueError):
            h.quantile(-0.1)
        with pytest.raises(ValueError):
            h.quantile(1.5)

    def test_quantiles_are_monotone(self, registry):
        h = registry.histogram("h", buckets=[10.0, 100.0, 1000.0, 10000.0])
        h.observe_many([3, 30, 30, 300, 300, 300, 3000])
        values = [h.quantile(q) for q in (0.1, 0.5, 0.9, 0.99, 0.999)]
        assert values == sorted(values)


class TestIsolated:
    def test_isolated_scope_restores_outer_metrics(self, registry):
        registry.counter("outer.count").inc(3)
        with registry.isolated(enable=True):
            registry.counter("inner.count").inc(7)
            assert registry.snapshot() == {"inner.count": 7}
        assert registry.snapshot() == {"outer.count": 3}

    def test_isolated_restores_disabled_flag(self):
        registry = MetricsRegistry()   # disabled
        with registry.isolated(enable=True):
            registry.counter("c").inc(2)
            assert registry.snapshot() == {"c": 2}
        registry.counter("c2").inc(5)  # mutation is a no-op again outside
        assert registry.snapshot() == {"c2": 0}

    def test_isolated_drops_probes_and_prefixes(self, registry):
        registry.register_probe("outer.probe", lambda: 1)
        assert registry.unique_prefix("dev") == "dev"
        with registry.isolated(enable=True):
            assert registry.snapshot() == {}
            # Fresh prefix table: the same prefix is available again.
            assert registry.unique_prefix("dev") == "dev"
        assert registry.snapshot() == {"outer.probe": 1}
        assert registry.unique_prefix("dev") == "dev#1"


class TestRegistry:
    def test_get_or_create_returns_same_instance(self, registry):
        assert registry.counter("x") is registry.counter("x")

    def test_kind_conflict_raises(self, registry):
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.gauge("x")

    def test_disabled_mutators_are_noops(self):
        registry = MetricsRegistry()   # disabled
        c = registry.counter("c")
        c.inc(5)
        g = registry.gauge("g")
        g.set(3)
        h = registry.histogram("h", buckets=[1])
        h.observe(0.5)
        assert c.value == 0 and g.value == 0.0 and h.count == 0

    def test_disabled_bind_is_noop(self):
        registry = MetricsRegistry()
        registry.bind_object("obj", object(), {"f": lambda o: 1})
        registry.register_probe("p", lambda: 1)
        assert registry.snapshot() == {}

    def test_bind_object_pull_probes(self, registry):
        class Engine:
            faults = 3

        engine = Engine()
        registry.bind_object(
            "engine.test", engine, {"faults": "faults", "twice": lambda e: e.faults * 2}
        )
        engine.faults = 7   # probes sample at snapshot time, not bind time
        snap = registry.snapshot()
        assert snap["engine.test.faults"] == 7
        assert snap["engine.test.twice"] == 14

    def test_unique_prefix_suffixes_duplicates(self, registry):
        assert registry.unique_prefix("dev") == "dev"
        assert registry.unique_prefix("dev") == "dev#1"
        assert registry.unique_prefix("dev") == "dev#2"

    def test_probe_exception_reports_none(self, registry):
        def broken():
            raise RuntimeError("torn down")

        registry.register_probe("broken", broken)
        assert registry.snapshot() == {"broken": None}

    def test_snapshot_sorted_and_mixed(self, registry):
        registry.counter("b.count").inc(2)
        registry.gauge("a.level").set(1.5)
        h = registry.histogram("c.hist", buckets=[10])
        h.observe(4)
        snap = registry.snapshot()
        assert list(snap) == ["a.level", "b.count", "c.hist"]
        assert snap["c.hist"]["count"] == 1

    def test_reset_drops_everything(self, registry):
        registry.counter("c").inc()
        registry.register_probe("p", lambda: 1)
        registry.reset()
        assert registry.snapshot() == {}


class TestEnableHelpers:
    def test_enable_metrics_binds_lock_stats(self):
        from repro import obs

        obs.enable_metrics()
        snap = obs.METRICS.snapshot()
        assert "locks.acquisitions" in snap
        assert "locks.contended" in snap
        assert "locks.wait_cycles" in snap

"""Aquila's DRAM I/O cache (paper Section 3.2, Figure 4).

Components, each mirroring the paper:

* **lock-free hash table** of resident pages — fast fault-path lookups
  with no shared lock;
* **two-level freelist** (per-core queues over per-NUMA queues) with
  batched movement;
* **approximate LRU** updated on page faults only (hits are invisible to
  software);
* **per-core red-black trees of dirty pages**, sorted by device offset, so
  writeback can merge adjacent pages into large I/Os;
* **batch eviction**: when the freelist runs dry the faulting thread
  synchronously evicts a batch (512 pages in the paper's config).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.common import constants
from repro.mem.frames import FramePool
from repro.mem.freelist import TwoLevelFreelist
from repro.mem.hashtable import LockFreeHashTable
from repro.mem.lru import ApproxLRU
from repro.mem.rbtree import RBTree
from typing import TYPE_CHECKING

if TYPE_CHECKING:   # break the cache <-> mmio import cycle
    from repro.mmio.files import BackingFile
from repro.cache.base import CachePage
from repro.obs import METRICS
from repro.sim.clock import CycleClock


class AquilaCache:
    """Scalable DRAM cache for the Aquila mmio engine."""

    def __init__(
        self,
        capacity_pages: int,
        num_cores: int,
        core_of_numa_node,
        eviction_batch: int = constants.EVICTION_BATCH_PAGES,
        freelist_move_batch: int = constants.FREELIST_MOVE_BATCH_PAGES,
        freelist_core_threshold: int = constants.FREELIST_CORE_THRESHOLD_PAGES,
    ) -> None:
        if capacity_pages <= 0:
            raise ValueError("capacity must be positive")
        self.capacity_pages = capacity_pages
        self.num_cores = num_cores
        self.eviction_batch = eviction_batch
        self.pool = FramePool(capacity_pages, numa_nodes=2)
        self.freelist = TwoLevelFreelist(
            self.pool,
            num_cores,
            core_of_numa_node,
            move_batch=freelist_move_batch,
            core_threshold=freelist_core_threshold,
        )
        self.table = LockFreeHashTable(name="aquila.pages")
        self.lru = ApproxLRU()
        #: Optional per-tenant QoS partition (``repro.cache.partition``);
        #: when installed, victim selection prefers over-quota tenants.
        self.partition = None
        self._dirty_trees: List[RBTree] = [RBTree() for _ in range(num_cores)]
        self._pages: Dict[Tuple[int, int], CachePage] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        METRICS.bind_object(
            "cache.aquila",
            self,
            {
                "hits": "hits",
                "misses": "misses",
                "evictions": "evictions",
                "resident_pages": lambda c: c.resident_pages(),
                "dirty_pages": lambda c: c.dirty_count(),
            },
        )

    def resident_pages(self) -> int:
        """Pages currently cached."""
        return len(self._pages)

    def dirty_count(self) -> int:
        """Dirty pages across all per-core trees."""
        return sum(len(tree) for tree in self._dirty_trees)

    # -- fault-path operations ------------------------------------------------

    def lookup(self, clock: CycleClock, file: "BackingFile", file_page: int) -> Optional[CachePage]:
        """Lock-free hash probe; LRU refreshed on fault-path lookups."""
        page = self.table.lookup(clock, (file.file_id, file_page))
        if page is not None:
            self.hits += 1
            self.lru.touch(page.key)
            clock.charge("fault.lru", constants.AQUILA_LRU_UPDATE_CYCLES)
        else:
            self.misses += 1
        return page

    def allocate_frame(self, clock: CycleClock, core: int) -> Optional[int]:
        """Pop a frame via the two-level freelist; None means evict first."""
        return self.freelist.allocate(clock, core)

    def insert(
        self,
        clock: CycleClock,
        file: "BackingFile",
        file_page: int,
        frame: int,
    ) -> CachePage:
        """CAS-install a freshly read page."""
        page = CachePage(file, file_page, frame)
        if not self.table.insert(clock, page.key, page):
            # Lost the race: another thread faulted the page in first.
            # Return the winner; the caller frees its speculative frame.
            existing = self.table.get_nocost(page.key)
            if existing is not None:
                return existing
        self._pages[page.key] = page
        self.lru.touch(page.key)
        clock.charge("fault.lru", constants.AQUILA_LRU_UPDATE_CYCLES)
        return page

    def mark_dirty(self, clock: CycleClock, core: int, page: CachePage) -> None:
        """Track a dirty page in ``core``'s red-black tree, by device offset."""
        if page.dirty:
            return
        page.dirty = True
        page.owner_core = core
        self._dirty_trees[core].insert(page.device_offset, page)
        clock.charge("fault.dirty_track", constants.RBTREE_OP_CYCLES)

    def clear_dirty(self, clock: CycleClock, page: CachePage) -> None:
        """Remove a written-back page from its dirty tree."""
        if not page.dirty:
            return
        page.dirty = False
        if page.owner_core is not None:
            self._dirty_trees[page.owner_core].remove(page.device_offset)
            page.owner_core = None
        clock.charge("writeback.dirty_untrack", constants.RBTREE_OP_CYCLES)

    # -- eviction -------------------------------------------------------------

    def pick_victims(self, clock: CycleClock, count: int) -> List[CachePage]:
        """Choose up to ``count`` cold pages (approximate LRU order).

        With a QoS ``partition`` installed, candidates are reordered so
        over-quota tenants' pages come first (still LRU order within each
        preference class); the per-victim selection charge is unchanged.
        """
        keys = self.lru.keys_cold_to_hot()
        if self.partition is not None:
            keys = self.partition.victim_order(keys, self._pages)
        victims: List[CachePage] = []
        for key in keys:
            page = self._pages.get(key)
            if page is not None:
                victims.append(page)
                clock.charge("evict.select", constants.LRU_VICTIM_SELECT_CYCLES)
                if len(victims) >= count:
                    break
        return victims

    def remove(self, clock: CycleClock, core: int, page: CachePage) -> None:
        """Drop an (already clean) page and recycle its frame."""
        self.table.remove(clock, page.key)
        self._pages.pop(page.key, None)
        self.lru.remove(page.key)
        self.freelist.free(clock, core, page.frame)
        self.evictions += 1

    def dirty_pages_sorted(self, core: int) -> List[CachePage]:
        """Dirty pages of one core's tree in device-offset order.

        The sorted order is what allows merging adjacent pages into large
        writeback I/Os (paper Section 3.2).
        """
        return [page for _, page in self._dirty_trees[core].items()]

    def all_dirty_pages_sorted(self) -> List[CachePage]:
        """Dirty pages of all cores merged in device-offset order."""
        merged: List[Tuple[int, CachePage]] = []
        for tree in self._dirty_trees:
            merged.extend(tree.items())
        merged.sort(key=lambda item: item[0])
        return [page for _, page in merged]


    def pages_of_file(self, file_id: int) -> List[CachePage]:
        """All resident pages belonging to ``file_id`` (file deletion)."""
        return [page for key, page in self._pages.items() if key[0] == file_id]

    def get_nocost(self, file: "BackingFile", file_page: int) -> Optional[CachePage]:
        """Cost-free peek for tests."""
        return self._pages.get((file.file_id, file_page))

    # -- dynamic resizing (paper Section 3.5) -----------------------------------

    def grow(self, additional_pages: int) -> List[int]:
        """Add DRAM to the cache; returns the new frame ids."""
        frames = self.pool.grow(additional_pages)
        self.freelist.add_frames(frames)
        self.capacity_pages += additional_pages
        return frames

    def shrink_free(self, count: int) -> List[int]:
        """Retire up to ``count`` *free* frames (caller evicts first if
        the freelist cannot cover the request); returns retired frames."""
        frames = self.freelist.take_free_frames(count)
        self.pool.shrink_frames(frames)
        self.capacity_pages -= len(frames)
        return frames

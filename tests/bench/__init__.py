"""Sweep orchestrator, report generation, and CLI contract tests."""

"""One cluster shard: a full engine/cache/device stack serving a key range.

A :class:`ShardSim` is one "machine" of the sharded simulation — its own
:class:`~repro.hw.machine.Machine`, device, mmio engine, DRAM cache, and
a single server :class:`~repro.sim.executor.SimThread` mapping a file
spanning the *whole logical dataset* — pages are addressed by their
global index, so only the pages this shard owns (or holds replicas of)
are ever faulted in.  Epoch by epoch it (1) applies the replication
messages delivered at the boundary, then (2) serves its slice of the
global client op stream through the engine's ordinary load/store paths —
including the batched ``hit_run`` fast path and the analytic
fast-forward — collecting an outbox of cycle-stamped replication
messages for the writes it served.

Identity discipline: every shard resets the global ``SimThread`` /
``BackingFile`` id counters before building its stack, so a shard sees
the *same local id space* whether it is built inside a dedicated worker
process or as the Nth shard of the serial reference — the property that
makes the two backends digest-identical (DESIGN.md §13).

Completion stamps reuse the serving layer's cursor idiom (DESIGN.md
§12): an op's completion cycle is the epoch-start clock advanced by the
engine's per-op latency samples through one shared arithmetic chain, in
every executor mode — never the raw clock read mid-batch — so outbox
stamps (and therefore bus delivery order) are mode-invariant.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple

try:
    import numpy as _np
except ImportError:          # plans fall back to pure-Python, same values
    _np = None

from repro.cluster.bus import ShardMessage
from repro.common import units
from repro.mmio.files import BackingFile
from repro.mmio.vma import MADV_RANDOM
from repro.obs import TRACER
from repro.sim.conformance import stack_state_digest
from repro.sim.executor import SimThread, make_epoch_executor
from repro.sim.fastforward import AccessPlan
from repro.workloads.microbench import WRITE_DATA

#: Payload every replicated store writes on the replica — the same
#: constant-byte idiom as the microbenchmark's ``WRITE_DATA`` (identical
#: bytes are what make concurrent hit-stores commute).
REPL_DATA = b"\x5A" * 8

#: Message kind for primary -> replica write replication.
KIND_REPLICATE = "replicate"


class ShardOps:
    """One shard's client-op slice for one epoch (parallel lists).

    ``pages`` (global dataset page indices), ``offsets``, and ``writes``
    drive the engine accesses; ``keys`` and ``dests`` ride along so
    writes can be stamped into replication messages (``dests`` is the
    page's replica set under the ring the coordinator routed with).
    Plain lists of primitives, so a slice pickles cheaply to a worker
    process.
    """

    __slots__ = ("pages", "offsets", "writes", "keys", "dests")

    def __init__(self) -> None:
        self.pages: List[int] = []
        self.offsets: List[int] = []
        self.writes: List[bool] = []
        self.keys: List[int] = []
        self.dests: List[Tuple[int, ...]] = []

    def append(
        self, page: int, offset: int, write: bool, key: int, dest: Tuple[int, ...]
    ) -> None:
        """Append one routed client op."""
        self.pages.append(page)
        self.offsets.append(offset)
        self.writes.append(write)
        self.keys.append(key)
        self.dests.append(dest)

    def __len__(self) -> int:
        return len(self.pages)

    def truncated(self, count: int) -> "ShardOps":
        """The first ``count`` ops (the served prefix of a kill epoch)."""
        ops = ShardOps()
        ops.pages = self.pages[:count]
        ops.offsets = self.offsets[:count]
        ops.writes = self.writes[:count]
        ops.keys = self.keys[:count]
        ops.dests = self.dests[:count]
        return ops

    def tail(self, start: int) -> List[Tuple[int, int, bool, int]]:
        """The unserved ``(page, key, write, offset)`` ops from ``start``
        on (what the coordinator re-routes after a failover)."""
        return [
            (self.pages[i], self.keys[i], self.writes[i], self.offsets[i])
            for i in range(start, len(self.pages))
        ]


class ShardSim:
    """One shard's stack, server thread, and epoch loop."""

    def __init__(self, shard_id: int, params: Dict) -> None:
        from repro.bench.setups import (
            make_aquila_stack,
            make_kmmap_stack,
            make_linux_stack,
        )

        makers = {
            "aquila": make_aquila_stack,
            "kmmap": make_kmmap_stack,
            "linux": make_linux_stack,
        }
        engine_kind = params["engine_kind"]
        if engine_kind not in makers:
            raise ValueError(f"unknown cluster engine kind {engine_kind!r}")
        # Same local id space in every backend: a shard built as the Nth
        # of a serial run must equal one built alone in a fresh worker.
        SimThread.reset_ids()
        BackingFile.reset_ids()
        self.shard_id = shard_id
        self.dataset_pages = int(params["dataset_pages"])
        self.batched = bool(params["batched"])
        self.stack = makers[engine_kind](
            params.get("device_kind", "pmem"), int(params["cache_pages"])
        )
        self.engine = self.stack.engine
        self.engine.fastforward = bool(
            self.batched and params.get("fastforward", True)
        )
        self.thread = SimThread(core=0, name=f"shard-{shard_id}")
        file = self.stack.allocator.create(
            f"shard-{shard_id}", self.dataset_pages * units.PAGE_SIZE
        )
        self.mapping = self.engine.mmap(self.thread, file)
        self.mapping.madvise(self.thread, MADV_RANDOM)
        self.engine.machine.apply_smt_penalty([self.thread])
        self.alive = True
        self.epochs_run = 0
        self.client_ops = 0
        self.repl_applied = 0
        self.repl_sent = 0
        self.killed_at: Optional[Tuple[int, int]] = None
        self.lost_outbox = 0

    # -- epoch body -----------------------------------------------------------

    def _apply_inbox(self, inbox: Sequence[ShardMessage]) -> None:
        """Apply boundary-delivered replication stores, in delivery order.

        Plain per-op stores on the server thread, *outside* any executor
        run: they charge cycles and dirty pages identically in every
        executor mode, and they complete before the epoch's first client
        op — so no hit-run or fast-forward window can ever observe a
        half-applied inbox.
        """
        for message in inbox:
            offset = message.page * units.PAGE_SIZE + message.offset
            self.mapping.store(self.thread, offset, REPL_DATA)
            self.repl_applied += 1

    def _serve_workload(
        self, ops: ShardOps, outbox: List[ShardMessage]
    ) -> Iterator[None]:
        """The epoch's client-serving iterator (one op or run per step).

        Structurally the microbenchmark's ``access_workload`` — slow-path
        per-op service, batched ``hit_run``, fast-forward single-op
        retirement — plus the completion cursor that stamps each served
        write into ``outbox`` with the shared-arithmetic completion cycle
        (module docstring).
        """
        engine = self.engine
        thread = self.thread
        mapping = self.mapping
        pages_seq, offsets_seq, writes_seq = ops.pages, ops.offsets, ops.writes
        np_pages = np_writes = None
        if _np is not None:
            np_pages = _np.asarray(pages_seq, dtype=_np.int64)
            np_writes = _np.asarray(writes_seq, dtype=bool)
        plan = AccessPlan.build(pages_seq, offsets_seq, writes_seq, np_pages, np_writes)
        load_op_fast = engine.load_op_fast
        samples = thread.latencies._samples
        cursor = thread.clock.now
        index = 0
        total = len(pages_seq)

        def emit(op_index: int, completion: float) -> None:
            if writes_seq[op_index] and ops.dests[op_index]:
                outbox.append(
                    ShardMessage(
                        cycle=completion,
                        shard_id=self.shard_id,
                        seq=len(outbox),
                        kind=KIND_REPLICATE,
                        dest=ops.dests[op_index],
                        key=ops.keys[op_index],
                        page=pages_seq[op_index],
                        offset=offsets_seq[op_index],
                    )
                )

        while index < total:
            horizon = thread.run_horizon
            if horizon is not None:
                consumed = engine.hit_run(
                    thread, mapping, plan, index, horizon, WRITE_DATA
                )
                if consumed:
                    base = len(samples) - consumed
                    for j in range(consumed):
                        cursor += samples[base + j]
                        emit(index + j, cursor)
                    index += consumed
                    yield
                    continue
                if (
                    engine.fastforward
                    and not writes_seq[index]
                    and load_op_fast(
                        thread, mapping, pages_seq[index], offsets_seq[index]
                    )
                ):
                    cursor += samples[-1]
                    index += 1
                    yield
                    continue
            start = thread.clock.now
            offset = pages_seq[index] * units.PAGE_SIZE + offsets_seq[index]
            with TRACER.span("op.access", thread.clock):
                if writes_seq[index]:
                    mapping.store(thread, offset, WRITE_DATA)
                else:
                    mapping.load(thread, offset, 8)
            thread.record_op(start)
            cursor += samples[-1]
            emit(index, cursor)
            index += 1
            yield

    def run_epoch(
        self,
        ops: ShardOps,
        inbox: Sequence[ShardMessage],
        kill_at: Optional[int] = None,
    ) -> List[ShardMessage]:
        """Run one epoch; returns the outbox to commit at the boundary.

        ``kill_at`` (from a :class:`~repro.fault.shardkill.ShardKillSpec`)
        truncates the epoch to its first ``kill_at`` client ops, marks
        the shard dead with its engine state frozen exactly there, and
        **discards** the partial outbox — an uncommitted epoch is the
        failover's deterministic data-loss window.  A dead shard ignores
        further epochs (the coordinator stops routing to it anyway).
        """
        if not self.alive:
            return []
        served = ops
        if kill_at is not None:
            served = ops.truncated(min(kill_at, len(ops)))
        self._apply_inbox(inbox)
        outbox: List[ShardMessage] = []
        if len(served):
            executor = make_epoch_executor(
                self.batched, self.engine.run_ahead_unbounded_ok
            )
            executor.add(self.thread, self._serve_workload(served, outbox))
            executor.run()
        self.epochs_run += 1
        self.client_ops += len(served)
        if kill_at is not None:
            self.alive = False
            self.killed_at = (self.epochs_run - 1, len(served))
            self.lost_outbox = len(outbox)
            return []
        self.repl_sent += len(outbox)
        return outbox

    # -- state ---------------------------------------------------------------

    def digest(self) -> Dict:
        """This shard's full-state digest (engine + shard accounting).

        The engine section is the standard conformance structure
        (:func:`repro.sim.conformance.stack_state_digest`); the ``shard``
        section adds the cluster-layer counters, including liveness and
        the frozen kill point.  Mode-reporting counters are excluded by
        the standard ``MODE_COUNTERS`` rule, so the digest is identical
        across unbatched / batched / fast-forward executor modes.
        """
        digest = stack_state_digest(self.stack, [self.thread])
        digest["shard"] = {
            "shard_id": self.shard_id,
            "alive": self.alive,
            "epochs_run": self.epochs_run,
            "client_ops": self.client_ops,
            "repl_applied": self.repl_applied,
            "repl_sent": self.repl_sent,
            "killed_at": self.killed_at,
            "lost_outbox": self.lost_outbox,
        }
        return digest

    def summary(self) -> Dict:
        """Small payload row: per-shard throughput inputs and counters."""
        return {
            "shard_id": self.shard_id,
            "alive": self.alive,
            "clock_cycles": self.thread.clock.now,
            "ops": self.thread.ops_completed,
            "client_ops": self.client_ops,
            "repl_applied": self.repl_applied,
            "repl_sent": self.repl_sent,
            "cache_capacity_pages": getattr(
                self.engine.cache, "capacity_pages", None
            ),
        }

"""io_uring model: batching semantics and the paper's stated trade-off."""

import pytest

from repro.common import constants, units
from repro.devices.io_engines import HostSyscallIO
from repro.devices.io_uring import IoUring, IoUringOp
from repro.devices.nvme import NvmeDevice
from repro.hw.vmx import ExecutionDomain, VMXCostModel
from repro.sim.clock import CycleClock


def _ring(queue_depth=64):
    device = NvmeDevice(capacity_bytes=128 * units.MIB)
    vmx = VMXCostModel(ExecutionDomain.ROOT_RING3)
    return IoUring(device, vmx, queue_depth=queue_depth), device, vmx


class TestBatching:
    def test_one_syscall_per_batch(self):
        ring, _, vmx = _ring()
        clock = CycleClock()
        ring.read_batch(clock, [i * 4096 for i in range(32)], 4096)
        assert vmx.syscalls == 1
        assert ring.ops_submitted == 32

    def test_queue_depth_splits_batches(self):
        ring, _, vmx = _ring(queue_depth=8)
        clock = CycleClock()
        ring.read_batch(clock, [i * 4096 for i in range(20)], 4096)
        assert vmx.syscalls == 3   # 8 + 8 + 4

    def test_empty_batch(self):
        ring, _, vmx = _ring()
        assert ring.submit_and_wait(CycleClock(), []) == []
        assert vmx.syscalls == 0

    def test_data_returned(self):
        ring, device, _ = _ring()
        clock = CycleClock()
        device.submit(clock, 8192, 4096, is_write=True, data=b"\x42" * 4096)
        results = ring.read_batch(clock, [8192], 4096)
        assert results[0] == b"\x42" * 4096

    def test_writes_land(self):
        ring, device, _ = _ring()
        clock = CycleClock()
        op = IoUringOp(0, 4096, is_write=True, data=b"\x99" * 4096)
        ring.submit_and_wait(clock, [op])
        assert device.store.read_page(0) == b"\x99" * 4096

    def test_rejects_zero_depth(self):
        device = NvmeDevice(capacity_bytes=units.MIB)
        with pytest.raises(ValueError):
            IoUring(device, VMXCostModel(ExecutionDomain.ROOT_RING3), queue_depth=0)


class TestPaperTradeoff:
    """Section 7.1: less CPU, more throughput, worse tails than sync I/O."""

    def _sync_costs(self, n):
        device = NvmeDevice(capacity_bytes=128 * units.MIB)
        vmx = VMXCostModel(ExecutionDomain.ROOT_RING3)
        path = HostSyscallIO(device, vmx)
        clock = CycleClock()
        latencies = []
        for i in range(n):
            start = clock.now
            path.read(clock, i * 4096, 4096)
            latencies.append(clock.now - start)
        return clock, latencies, vmx

    def _async_costs(self, n):
        ring, _, vmx = _ring(queue_depth=n)
        clock = CycleClock()
        submit = clock.now
        ops = [IoUringOp(i * 4096, 4096) for i in range(n)]
        ring.submit_and_wait(clock, ops)
        latencies = [op.completion_cycles - submit for op in ops]
        return clock, latencies, vmx

    def test_async_higher_throughput(self):
        n = 32
        sync_clock, _, _ = self._sync_costs(n)
        async_clock, _, _ = self._async_costs(n)
        assert async_clock.now < sync_clock.now, "batch completes sooner overall"

    def test_async_fewer_syscalls(self):
        n = 32
        _, _, sync_vmx = self._sync_costs(n)
        _, _, async_vmx = self._async_costs(n)
        assert async_vmx.syscalls == 1
        assert sync_vmx.syscalls == n

    def test_async_worse_tail_than_best_case(self):
        """Batching spreads completions once the device queue saturates.

        A batch larger than the NVMe's internal queue (128 commands)
        queues its excess, so the last completions arrive much later than
        the first — the paper's "increases tail latency due to batching".
        """
        n = 256
        _, async_lat, _ = self._async_costs(n)
        spread = max(async_lat) - min(async_lat)
        assert spread > min(async_lat), "saturated batch must spread completions"

    def test_async_less_cpu_per_op(self):
        """CPU work (not waiting) per op is far lower with batching."""
        n = 64
        sync_clock, _, _ = self._sync_costs(n)
        async_clock, _, _ = self._async_costs(n)
        sync_cpu = sync_clock.now - sync_clock.breakdown.prefix_total("idle")
        async_cpu = async_clock.now - async_clock.breakdown.prefix_total("idle")
        assert async_cpu < 0.5 * sync_cpu

"""Plain-text table rendering for benchmark output.

The benchmark harness prints the same rows/series the paper's figures
report, plus a paper-vs-measured line per headline claim, so
``pytest benchmarks/ -s`` regenerates every table and figure.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence


class Table:
    """A fixed-column text table."""

    def __init__(self, title: str, columns: Sequence[str]) -> None:
        self.title = title
        self.columns = list(columns)
        self.rows: List[List[str]] = []

    def add_row(self, *cells: Any) -> None:
        """Append one row (cells are str()-ed; floats get 3 significant)."""
        if len(cells) != len(self.columns):
            raise ValueError(
                f"row has {len(cells)} cells, table has {len(self.columns)} columns"
            )
        self.rows.append([_format_cell(cell) for cell in cells])

    def render(self) -> str:
        """The formatted table as a string."""
        widths = [len(col) for col in self.columns]
        for row in self.rows:
            for index, cell in enumerate(row):
                widths[index] = max(widths[index], len(cell))
        lines = [self.title, "=" * len(self.title)]
        header = "  ".join(col.ljust(widths[i]) for i, col in enumerate(self.columns))
        lines.append(header)
        lines.append("-" * len(header))
        for row in self.rows:
            lines.append(
                "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row))
            )
        return "\n".join(lines)

    def show(self) -> None:
        """Print the table with surrounding blank lines."""
        print()
        print(self.render())
        print()


def _format_cell(cell: Any) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 1000:
            return f"{cell:,.0f}"
        if abs(cell) >= 10:
            return f"{cell:.1f}"
        return f"{cell:.2f}"
    return str(cell)


def metrics_table(snapshot: Dict[str, Any], title: str = "metrics") -> Table:
    """Render a :meth:`MetricsRegistry.snapshot` as a two-column table.

    Histograms (dict-valued entries) expand to one row per non-empty
    bucket plus count/sum summary rows.
    """
    table = Table(title, ["metric", "value"])
    for name, value in snapshot.items():
        if isinstance(value, dict) and "buckets" in value:
            table.add_row(f"{name}.count", value["count"])
            table.add_row(f"{name}.sum", value["sum"])
            for bound, count in value["buckets"]:
                if count:
                    table.add_row(f"{name}.le[{bound:g}]", count)
            if value["overflow"]:
                table.add_row(f"{name}.le[+inf]", value["overflow"])
        else:
            table.add_row(name, "n/a" if value is None else value)
    return table


def ratio_line(
    label: str,
    paper_value: Optional[float],
    measured_value: float,
    unit: str = "x",
) -> str:
    """A "claim: paper vs measured" line for EXPERIMENTS.md-style output."""
    paper = f"{paper_value:.2f}{unit}" if paper_value is not None else "n/a"
    return f"  {label}: paper {paper} | measured {measured_value:.2f}{unit}"


def print_claims(title: str, claims: List[str]) -> None:
    """Print a block of paper-vs-measured claim lines."""
    print(f"\n{title}")
    for claim in claims:
        print(claim)
    print()

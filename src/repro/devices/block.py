"""Storage backing store and the generic block-device timing model.

Devices store **real bytes** (DESIGN.md Section 4, item 2): every read
returns exactly what was written, so data-integrity tests can verify the
whole stack end to end.  Timing is modeled per device with three
parameters taken from datasheets:

* fixed per-command service latency,
* a per-byte transfer cost (bandwidth cap),
* a minimum command inter-arrival time (IOPS cap), enforced by a timeline
  shared by all submitters.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.common import units
from repro.common.errors import OutOfSpaceError, TornWriteError, TransientDeviceError
from repro.fault.plan import (
    FAULT_ERROR,
    FAULT_LATENCY,
    FAULT_NONE,
    FAULT_TORN,
    DeviceFaultInjector,
    active_plan,
)
from repro.obs import METRICS
from repro.sim.clock import CycleClock

ZERO_PAGE = bytes(units.PAGE_SIZE)


class BackingStore:
    """Sparse page-granularity byte storage for one device."""

    def __init__(self, capacity_bytes: int) -> None:
        if capacity_bytes <= 0:
            raise ValueError("capacity must be positive")
        self.capacity_bytes = capacity_bytes
        self._pages: Dict[int, bytes] = {}

    @property
    def capacity_pages(self) -> int:
        """Device capacity in 4 KiB pages."""
        return self.capacity_bytes // units.PAGE_SIZE

    def _check(self, page_index: int) -> None:
        if not 0 <= page_index < self.capacity_pages:
            raise OutOfSpaceError(
                f"page {page_index} beyond device capacity "
                f"({self.capacity_pages} pages)"
            )

    def read_page(self, page_index: int) -> bytes:
        """The 4 KiB contents of ``page_index`` (zeros if never written)."""
        self._check(page_index)
        return self._pages.get(page_index, ZERO_PAGE)

    def write_page(self, page_index: int, data: bytes) -> None:
        """Replace the 4 KiB contents of ``page_index``."""
        self._check(page_index)
        if len(data) != units.PAGE_SIZE:
            raise ValueError(f"write_page needs {units.PAGE_SIZE} bytes, got {len(data)}")
        self._pages[page_index] = bytes(data)

    def read(self, offset: int, nbytes: int) -> bytes:
        """Read an arbitrary byte range (page-spanning allowed)."""
        if nbytes < 0 or offset < 0:
            raise ValueError("negative offset or size")
        if offset + nbytes > self.capacity_bytes:
            raise OutOfSpaceError("read beyond device capacity")
        chunks = []
        pos = offset
        remaining = nbytes
        while remaining > 0:
            page_index = pos >> units.PAGE_SHIFT
            in_page = pos & (units.PAGE_SIZE - 1)
            take = min(remaining, units.PAGE_SIZE - in_page)
            chunks.append(self.read_page(page_index)[in_page : in_page + take])
            pos += take
            remaining -= take
        return b"".join(chunks)

    def write(self, offset: int, data: bytes) -> None:
        """Write an arbitrary byte range (page-spanning allowed)."""
        if offset < 0:
            raise ValueError("negative offset")
        if offset + len(data) > self.capacity_bytes:
            raise OutOfSpaceError("write beyond device capacity")
        pos = offset
        written = 0
        while written < len(data):
            page_index = pos >> units.PAGE_SHIFT
            in_page = pos & (units.PAGE_SIZE - 1)
            take = min(len(data) - written, units.PAGE_SIZE - in_page)
            page = bytearray(self.read_page(page_index))
            page[in_page : in_page + take] = data[written : written + take]
            self._pages[page_index] = bytes(page)
            pos += take
            written += take

    def used_pages(self) -> int:
        """Number of pages that have ever been written."""
        return len(self._pages)


class DeviceTimeline:
    """Enforces a device's IOPS cap across all submitting threads.

    Token-bucket model: command credits refill at the IOPS rate up to a
    burst of ``QUEUE_DEPTH`` (device-internal queueing).  A command finding
    no credit queues, which is how device saturation shows up as latency
    (the "bottleneck is the NVMe device itself" plateaus of Figures 5/9).

    A token bucket — unlike a strict monotone timeline — tolerates the
    discrete-event executor's op-granularity reordering: submissions whose
    local clocks arrive slightly out of order do not artificially delay
    one another while the device is below saturation.
    """

    QUEUE_DEPTH = 128.0

    def __init__(self, min_interarrival_cycles: float) -> None:
        if min_interarrival_cycles < 0:
            raise ValueError("inter-arrival must be non-negative")
        self.min_interarrival_cycles = min_interarrival_cycles
        self._tokens = self.QUEUE_DEPTH
        self._last_refill = 0.0
        self.commands = 0
        self.total_queue_cycles = 0.0

    def admit(self, now: float) -> float:
        """Admission time for a command submitted at ``now``."""
        self.commands += 1
        if self.min_interarrival_cycles == 0:
            return now
        if now > self._last_refill:
            refill = (now - self._last_refill) / self.min_interarrival_cycles
            self._tokens = min(self.QUEUE_DEPTH, self._tokens + refill)
            self._last_refill = now
        self._tokens -= 1.0
        if self._tokens >= 0:
            return now
        delay = -self._tokens * self.min_interarrival_cycles
        self.total_queue_cycles += delay
        return max(now, self._last_refill) + delay


class BandwidthTimeline:
    """Aggregate media-bandwidth cap shared by all accessors of a device.

    Each transfer reserves the media for ``nbytes * cycles_per_byte``;
    concurrent transfers queue.  Used for pmem, whose DRAM-backed media
    saturates around real DRAM bandwidth even though individual accesses
    are cheap.
    """

    #: Burst capacity: bytes the media can absorb instantly (row buffers,
    #: queues) before the rate limit bites.
    BURST_BYTES = 1 << 20

    def __init__(self, bandwidth_bytes_per_sec: float) -> None:
        if bandwidth_bytes_per_sec <= 0:
            raise ValueError("bandwidth must be positive")
        self.cycles_per_byte = units.CPU_FREQ_HZ / bandwidth_bytes_per_sec
        self._tokens = float(self.BURST_BYTES)
        self._last_refill = 0.0
        self.total_bytes = 0
        self.total_queue_cycles = 0.0

    def admit(self, now: float, nbytes: int) -> float:
        """Reserve media bandwidth for ``nbytes``; returns completion time.

        Token bucket (see :class:`DeviceTimeline` for why): transfers pay
        a delay only when aggregate traffic exceeds the media rate.
        """
        self.total_bytes += nbytes
        if now > self._last_refill:
            refill = (now - self._last_refill) / self.cycles_per_byte
            self._tokens = min(float(self.BURST_BYTES), self._tokens + refill)
            self._last_refill = now
        self._tokens -= nbytes
        if self._tokens >= 0:
            return now
        delay = -self._tokens * self.cycles_per_byte
        self.total_queue_cycles += delay
        return max(now, self._last_refill) + delay


class BlockDevice:
    """A block device with real contents and a calibrated timing model."""

    #: Device-specific multiplier on injected latency spikes (an NVMe
    #: internal-GC stall is much longer than a DRAM-media hiccup).
    fault_latency_scale = 1.0

    def __init__(
        self,
        name: str,
        capacity_bytes: int,
        read_latency_cycles: float,
        write_latency_cycles: float,
        read_cycles_per_byte: float,
        write_cycles_per_byte: float,
        read_iops_cap: Optional[float] = None,
        write_iops_cap: Optional[float] = None,
        media_bandwidth_bytes_per_sec: Optional[float] = None,
    ) -> None:
        self.name = name
        self.store = BackingStore(capacity_bytes)
        self.read_latency_cycles = read_latency_cycles
        self.write_latency_cycles = write_latency_cycles
        self.read_cycles_per_byte = read_cycles_per_byte
        self.write_cycles_per_byte = write_cycles_per_byte
        self._read_timeline = self._make_timeline(read_iops_cap)
        self._write_timeline = self._make_timeline(write_iops_cap)
        self.media = (
            BandwidthTimeline(media_bandwidth_bytes_per_sec)
            if media_bandwidth_bytes_per_sec is not None
            else None
        )
        self.reads = 0
        self.writes = 0
        self.bytes_read = 0
        self.bytes_written = 0
        self.faults: Optional[DeviceFaultInjector] = None
        plan = active_plan()
        if plan is not None:
            self.attach_faults(plan.injector_for(self.name))
        METRICS.bind_object(
            f"device.{self.name}",
            self,
            {
                "reads": "reads",
                "writes": "writes",
                "bytes_read": "bytes_read",
                "bytes_written": "bytes_written",
                "queue_cycles.read": lambda dev: dev._read_timeline.total_queue_cycles,
                "queue_cycles.write": lambda dev: dev._write_timeline.total_queue_cycles,
            },
        )

    @staticmethod
    def _make_timeline(iops_cap: Optional[float]) -> DeviceTimeline:
        if iops_cap is None:
            return DeviceTimeline(0.0)
        return DeviceTimeline(units.CPU_FREQ_HZ / iops_cap)

    # -- fault injection ----------------------------------------------------

    def attach_faults(self, injector: DeviceFaultInjector) -> None:
        """Make every command consult ``injector`` (see :mod:`repro.fault`)."""
        self.faults = injector
        METRICS.bind_object(
            f"device.{self.name}.faults",
            injector,
            {
                "errors": "errors_injected",
                "latency": "latency_injected",
                "torn": "torn_injected",
            },
        )

    def _apply_fault(
        self,
        decision,
        offset: int,
        nbytes: int,
        is_write: bool,
        data: Optional[bytes],
    ) -> float:
        """Apply a fault decision; returns extra completion latency.

        Errors and torn writes raise (after landing the torn prefix on
        the media); latency spikes return the extra service cycles.
        """
        if decision.kind == FAULT_LATENCY:
            return decision.extra_latency_cycles * self.fault_latency_scale
        if decision.kind == FAULT_TORN and is_write:
            torn_bytes = int(nbytes * decision.torn_fraction)
            if torn_bytes and data is not None:
                self.store.write(offset, data[:torn_bytes])
                self.bytes_written += torn_bytes
            raise TornWriteError(
                f"{self.name}: write at {offset} torn after {torn_bytes}/{nbytes} bytes",
                written_bytes=torn_bytes,
            )
        if decision.kind in (FAULT_ERROR, FAULT_TORN):
            verb = "write" if is_write else "read"
            raise TransientDeviceError(
                f"{self.name}: transient {verb} failure at offset {offset}"
            )
        raise ValueError(f"unknown fault kind {decision.kind!r}")

    def service_cycles(self, nbytes: int, is_write: bool) -> float:
        """Raw service time of one command, excluding queueing."""
        if is_write:
            return self.write_latency_cycles + nbytes * self.write_cycles_per_byte
        return self.read_latency_cycles + nbytes * self.read_cycles_per_byte

    def submit(
        self,
        clock: CycleClock,
        offset: int,
        nbytes: int,
        is_write: bool,
        data: Optional[bytes] = None,
        wait_category: str = "idle.io",
    ) -> Optional[bytes]:
        """Synchronously execute one command, blocking the clock.

        Returns the data for reads; stores ``data`` for writes.  The
        calling thread waits from submission to completion (queueing +
        service), charged to ``wait_category``.
        """
        timeline = self._write_timeline if is_write else self._read_timeline
        start = timeline.admit(clock.now)
        completion = start + self.service_cycles(nbytes, is_write)
        if self.media is not None:
            completion = max(completion, self.media.admit(start, nbytes))
        if self.faults is not None:
            decision = self.faults.decide(clock.now, is_write, nbytes)
            if decision.kind != FAULT_NONE:
                if decision.kind == FAULT_LATENCY:
                    completion += self._apply_fault(
                        decision, offset, nbytes, is_write, data
                    )
                else:
                    # A failed command still occupies the device for its
                    # service time before reporting the error.
                    clock.wait_until(completion, wait_category)
                    self._apply_fault(decision, offset, nbytes, is_write, data)
        clock.wait_until(completion, wait_category)

        if is_write:
            if data is None or len(data) != nbytes:
                raise ValueError("write needs data of the stated size")
            self.store.write(offset, data)
            self.writes += 1
            self.bytes_written += nbytes
            return None
        self.reads += 1
        self.bytes_read += nbytes
        return self.store.read(offset, nbytes)

    def submit_async(
        self,
        clock: CycleClock,
        offset: int,
        nbytes: int,
        is_write: bool,
        data: Optional[bytes] = None,
    ) -> float:
        """Queue one command without blocking; returns its completion time.

        Used for readahead and batched writeback, where the issuing thread
        does not wait for each individual command.  Data moves immediately
        (the simulation has no torn intermediate states to model).
        """
        timeline = self._write_timeline if is_write else self._read_timeline
        start = timeline.admit(clock.now)
        completion = start + self.service_cycles(nbytes, is_write)
        if self.media is not None:
            completion = max(completion, self.media.admit(start, nbytes))
        if self.faults is not None:
            decision = self.faults.decide(clock.now, is_write, nbytes)
            if decision.kind != FAULT_NONE:
                if decision.kind == FAULT_LATENCY:
                    completion += self._apply_fault(
                        decision, offset, nbytes, is_write, data
                    )
                else:
                    # Asynchronous submission failure: the caller learns
                    # immediately (submission-queue error), nothing landed
                    # beyond a torn prefix.
                    self._apply_fault(decision, offset, nbytes, is_write, data)
        if is_write:
            if data is None or len(data) != nbytes:
                raise ValueError("write needs data of the stated size")
            self.store.write(offset, data)
            self.writes += 1
            self.bytes_written += nbytes
        else:
            self.reads += 1
            self.bytes_read += nbytes
        return completion

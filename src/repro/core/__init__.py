"""Aquila library OS: the paper's primary contribution.

Public entry point::

    from repro.core import Aquila, AquilaConfig

    aquila = Aquila(machine, device, AquilaConfig(cache_pages=2048, io_path="dax"))
    aquila.enter(main_thread)                   # once, in main()
    aquila.register_thread(worker)              # once per thread
    f = aquila.open(main_thread, "/data/file", size_bytes=1 << 20)
    mapping = aquila.mmap(main_thread, f)       # intercepted, no vmcall
    data = mapping.load(main_thread, 0, 4096)   # hits are hardware-only
"""

from repro.core.config import AquilaConfig
from repro.core.libos import Aquila

__all__ = ["Aquila", "AquilaConfig"]

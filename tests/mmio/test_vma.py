"""VMA stores: Linux rb-tree + mmap_sem vs Aquila radix + per-entry locks."""

import pytest

from repro.common import units
from repro.devices.pmem import PmemDevice
from repro.mmio.files import ExtentFile
from repro.mmio.vma import (
    MADV_NORMAL,
    PROT_READ,
    PROT_WRITE,
    VMA,
    AquilaVMAStore,
    LinuxVMAStore,
)
from repro.sim.clock import CycleClock


def _file(pages=64, name="f"):
    device = PmemDevice(capacity_bytes=64 * units.MIB)
    return ExtentFile(name, device, 0, pages * units.PAGE_SIZE)


@pytest.fixture(params=[LinuxVMAStore, AquilaVMAStore])
def store(request):
    return request.param()


class TestVMA:
    def test_contains(self):
        vma = VMA(1, start_vpn=100, num_pages=10, file=_file())
        assert vma.contains(100)
        assert vma.contains(109)
        assert not vma.contains(110)
        assert not vma.contains(99)

    def test_file_page_of(self):
        vma = VMA(1, start_vpn=100, num_pages=10, file=_file(), file_start_page=5)
        assert vma.file_page_of(100) == 5
        assert vma.file_page_of(109) == 14

    def test_file_page_outside_raises(self):
        from repro.common.errors import SegmentationFault

        vma = VMA(1, start_vpn=100, num_pages=10, file=_file())
        with pytest.raises(SegmentationFault):
            vma.file_page_of(110)


class TestVMAStoreCommon:
    def test_mmap_creates_valid_area(self, store):
        clock = CycleClock()
        vma = store.mmap(clock, _file(16))
        assert vma.num_pages == 16
        assert store.lookup(clock, vma.start_vpn) is vma
        assert store.lookup(clock, vma.end_vpn - 1) is vma

    def test_lookup_outside_returns_none(self, store):
        clock = CycleClock()
        vma = store.mmap(clock, _file(16))
        assert store.lookup(clock, vma.start_vpn - 1) is None
        assert store.lookup(clock, vma.end_vpn) is None

    def test_multiple_areas_disjoint(self, store):
        clock = CycleClock()
        a = store.mmap(clock, _file(8, "a"))
        b = store.mmap(clock, _file(8, "b"))
        assert a.end_vpn <= b.start_vpn
        assert store.lookup(clock, a.start_vpn) is a
        assert store.lookup(clock, b.start_vpn) is b

    def test_remove(self, store):
        clock = CycleClock()
        vma = store.mmap(clock, _file(8))
        store.remove(clock, vma)
        assert store.lookup(clock, vma.start_vpn) is None

    def test_partial_file_mapping(self, store):
        clock = CycleClock()
        vma = store.mmap(clock, _file(16), num_pages=4, file_start_page=8)
        assert vma.num_pages == 4
        assert vma.file_page_of(vma.start_vpn) == 8

    def test_mapping_past_eof_rejected(self, store):
        with pytest.raises(ValueError):
            store.mmap(CycleClock(), _file(4), num_pages=8)
        with pytest.raises(ValueError):
            store.mmap(CycleClock(), _file(4), num_pages=2, file_start_page=3)

    def test_zero_pages_rejected(self, store):
        with pytest.raises(ValueError):
            store.mmap(CycleClock(), _file(4), num_pages=0)

    def test_default_prot(self, store):
        vma = store.mmap(CycleClock(), _file(4))
        assert vma.prot & PROT_READ
        assert vma.prot & PROT_WRITE
        assert vma.advice == MADV_NORMAL


class TestLinuxStoreSpecifics:
    def test_lookup_takes_mmap_sem_read(self):
        store = LinuxVMAStore()
        clock = CycleClock()
        vma = store.mmap(clock, _file(4))
        before = store.mmap_sem.read_acquisitions
        store.lookup(clock, vma.start_vpn)
        assert store.mmap_sem.read_acquisitions == before + 1

    def test_updates_take_write_lock(self):
        store = LinuxVMAStore()
        clock = CycleClock()
        before = store.mmap_sem.write_acquisitions
        vma = store.mmap(clock, _file(4))
        store.remove(clock, vma)
        assert store.mmap_sem.write_acquisitions == before + 2


class TestAquilaStoreSpecifics:
    def test_refcount_tracks_areas(self):
        store = AquilaVMAStore()
        clock = CycleClock()
        a = store.mmap(clock, _file(4, "a"))
        b = store.mmap(clock, _file(4, "b"))
        assert store.refcount == 2
        store.remove(clock, a)
        assert store.refcount == 1

    def test_lookup_cheaper_than_linux(self):
        """Radix validity check vs trap + mmap_sem + rb-tree walk."""
        linux, aquila = LinuxVMAStore(), AquilaVMAStore()
        c1, c2 = CycleClock(), CycleClock()
        v1 = linux.mmap(c1, _file(4))
        v2 = aquila.mmap(c2, _file(4))
        c1, c2 = CycleClock(), CycleClock()
        linux.lookup(c1, v1.start_vpn)
        aquila.lookup(c2, v2.start_vpn)
        assert c2.now < c1.now

"""Benchmark harness: experiment stacks, per-figure runners, reporting."""

from repro.bench.report import Table, print_claims, ratio_line
from repro.bench.setups import (
    make_aquila_stack,
    make_device,
    make_kmmap_stack,
    make_kreon,
    make_linux_stack,
    make_rocksdb,
    scaled_pages,
)

__all__ = [
    "Table",
    "print_claims",
    "ratio_line",
    "make_aquila_stack",
    "make_device",
    "make_kmmap_stack",
    "make_kreon",
    "make_linux_stack",
    "make_rocksdb",
    "scaled_pages",
]

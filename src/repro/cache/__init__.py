"""DRAM cache implementations: kernel page cache, Aquila cache, user cache."""

from repro.cache.aquila_cache import AquilaCache
from repro.cache.base import CachePage
from repro.cache.kernel_cache import KernelPageCache
from repro.cache.user_cache import UserSpaceCache

__all__ = ["AquilaCache", "CachePage", "KernelPageCache", "UserSpaceCache"]

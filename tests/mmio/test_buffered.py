"""Buffered I/O (Figure 1(a)) and the four-configuration cost ordering."""

import pytest

from repro.common import constants, units
from repro.hw.machine import Machine
from repro.mmio.buffered import BufferedIOEngine
from repro.mmio.files import ExtentAllocator
from repro.devices.pmem import PmemDevice
from repro.sim.executor import SimThread


def _setup(cache_pages=64, file_pages=128):
    machine = Machine()
    device = PmemDevice(capacity_bytes=64 * units.MIB)
    engine = BufferedIOEngine(machine, cache_pages=cache_pages)
    allocator = ExtentAllocator(device)
    file = allocator.create("buf", file_pages * units.PAGE_SIZE)
    return engine, file, SimThread(core=0)


class TestBufferedIO:
    def test_roundtrip(self):
        engine, file, thread = _setup()
        engine.pwrite(thread, file, 1000, b"buffered bytes")
        assert engine.pread(thread, file, 1000, 14) == b"buffered bytes"

    def test_write_is_lazy_fsync_persists(self):
        engine, file, thread = _setup()
        engine.pwrite(thread, file, 0, b"lazy")
        assert file.device.store.read(file.device_offset(0), 4) != b"lazy"
        assert engine.fsync(thread, file) == 1
        assert file.device.store.read(file.device_offset(0), 4) == b"lazy"

    def test_hit_still_pays_syscall_and_copy(self):
        """Figure 1(a)'s pathology: hits are far from free."""
        engine, file, thread = _setup()
        engine.pread(thread, file, 0, 4096)   # warm
        before = thread.clock.now
        engine.pread(thread, file, 0, 4096)
        hit_cost = thread.clock.now - before
        assert hit_cost >= (
            constants.SYSCALL_CYCLES
            + constants.LINUX_PCACHE_LOOKUP_CYCLES
            + constants.MEMCPY_4K_NOSIMD_CYCLES
        )

    def test_page_spanning(self):
        engine, file, thread = _setup()
        data = bytes(range(256)) * 40
        engine.pwrite(thread, file, 4000, data)
        assert engine.pread(thread, file, 4000, len(data)) == data

    def test_eviction_with_writeback(self):
        engine, file, thread = _setup(cache_pages=16, file_pages=64)
        engine.pwrite(thread, file, 0, b"evict me safely")
        for page in range(1, 64):
            engine.pread(thread, file, page * units.PAGE_SIZE, 8)
        assert engine.cache.resident_pages() <= 16
        assert engine.pread(thread, file, 0, 15) == b"evict me safely"

    def test_bounds(self):
        engine, file, thread = _setup(file_pages=4)
        with pytest.raises(ValueError):
            engine.pread(thread, file, 4 * units.PAGE_SIZE, 1)
        with pytest.raises(ValueError):
            engine.pwrite(thread, file, 4 * units.PAGE_SIZE - 1, b"xx")


class TestFigure1Ordering:
    def test_hit_cost_across_configurations(self):
        """Figure 1: cache *hits* cost real software in (a) and (b) but are
        hardware-only under mmio (c)/(d) — the paper's core motivation.

        Per-hit cost of reading 1 KB that is already cached, in each of
        the four configurations.
        """
        from repro.bench.setups import make_aquila_stack, make_linux_stack
        from repro.mmio.explicit import ExplicitIOEngine

        costs = {}

        engine, file, thread = _setup()
        engine.pread(thread, file, 0, 1024)
        t0 = thread.clock.now
        engine.pread(thread, file, 0, 1024)
        costs["a-buffered"] = thread.clock.now - t0

        machine = Machine()
        device = PmemDevice(capacity_bytes=64 * units.MIB)
        io = ExplicitIOEngine(machine, cache_pages=64)
        ufile = ExtentAllocator(device).create("u", 64 * units.PAGE_SIZE)
        uthread = SimThread(core=0)
        io.pread(uthread, ufile, 0, 1024)
        t0 = uthread.clock.now
        io.pread(uthread, ufile, 0, 1024)
        costs["b-user-cache"] = uthread.clock.now - t0

        for label, maker in (
            ("c-mmap", make_linux_stack),
            ("d-aquila", make_aquila_stack),
        ):
            stack = maker("pmem", cache_pages=64)
            mfile = stack.allocator.create("m", 64 * units.PAGE_SIZE)
            mthread = SimThread(core=0)
            mapping = stack.engine.mmap(mthread, mfile)
            mapping.load(mthread, 0, 1024)
            t0 = mthread.clock.now
            mapping.load(mthread, 0, 1024)
            costs[label] = mthread.clock.now - t0

        # The paper's Figure 1 point: configurations (a) and (b) pay real
        # software cost on *every* hit; mmio hits (c)/(d) are hardware-only.
        assert costs["a-buffered"] >= (
            constants.SYSCALL_CYCLES + constants.LINUX_PCACHE_LOOKUP_CYCLES
        )
        assert costs["b-user-cache"] >= constants.USERCACHE_LOOKUP_CYCLES
        assert costs["c-mmap"] < 200
        assert costs["d-aquila"] < 200
        assert min(costs["a-buffered"], costs["b-user-cache"]) > 5 * costs["c-mmap"]

"""Aquila's DRAM cache: hash, freelist, dirty trees, eviction, resize."""

import pytest

from repro.common import units
from repro.cache.aquila_cache import AquilaCache
from repro.devices.pmem import PmemDevice
from repro.hw.topology import Topology
from repro.mmio.files import ExtentFile
from repro.sim.clock import CycleClock


def _cache(capacity=64, **kwargs):
    topo = Topology()
    return AquilaCache(
        capacity,
        num_cores=topo.num_hw_threads,
        core_of_numa_node=topo.numa_node_of,
        **kwargs,
    )


def _file(name="f", pages=256):
    device = PmemDevice(capacity_bytes=64 * units.MIB)
    return ExtentFile(name, device, 0, pages * units.PAGE_SIZE)


class TestLookupInsert:
    def test_miss_then_hit(self):
        cache = _cache()
        file = _file()
        clock = CycleClock()
        assert cache.lookup(clock, file, 0) is None
        frame = cache.allocate_frame(clock, core=0)
        page = cache.insert(clock, file, 0, frame)
        assert cache.lookup(clock, file, 0) is page
        assert cache.hits == 1 and cache.misses == 1

    def test_insert_race_returns_winner(self):
        cache = _cache()
        file = _file()
        clock = CycleClock()
        f1 = cache.allocate_frame(clock, 0)
        first = cache.insert(clock, file, 0, f1)
        f2 = cache.allocate_frame(clock, 0)
        second = cache.insert(clock, file, 0, f2)
        assert second is first

    def test_resident_count(self):
        cache = _cache()
        file = _file()
        clock = CycleClock()
        for i in range(5):
            cache.insert(clock, file, i, cache.allocate_frame(clock, 0))
        assert cache.resident_pages() == 5


class TestDirtyTrees:
    def test_mark_and_clear(self):
        cache = _cache()
        file = _file()
        clock = CycleClock()
        page = cache.insert(clock, file, 3, cache.allocate_frame(clock, 0))
        cache.mark_dirty(clock, core=2, page=page)
        assert page.dirty and page.owner_core == 2
        assert cache.dirty_count() == 1
        cache.clear_dirty(clock, page)
        assert not page.dirty and page.owner_core is None
        assert cache.dirty_count() == 0

    def test_mark_dirty_idempotent(self):
        cache = _cache()
        file = _file()
        clock = CycleClock()
        page = cache.insert(clock, file, 0, cache.allocate_frame(clock, 0))
        cache.mark_dirty(clock, 1, page)
        cache.mark_dirty(clock, 5, page)   # second mark keeps the owner
        assert page.owner_core == 1
        assert cache.dirty_count() == 1

    def test_per_core_sorted_by_device_offset(self):
        """The property writeback merging relies on (Section 3.2)."""
        cache = _cache()
        file = _file()
        clock = CycleClock()
        for file_page in (9, 2, 5):
            page = cache.insert(clock, file, file_page, cache.allocate_frame(clock, 0))
            cache.mark_dirty(clock, core=0, page=page)
        sorted_pages = cache.dirty_pages_sorted(0)
        offsets = [p.device_offset for p in sorted_pages]
        assert offsets == sorted(offsets)

    def test_all_dirty_merged_sorted(self):
        cache = _cache()
        file = _file()
        clock = CycleClock()
        for core, file_page in [(0, 8), (1, 1), (0, 3), (1, 6)]:
            page = cache.insert(clock, file, file_page, cache.allocate_frame(clock, 0))
            cache.mark_dirty(clock, core=core, page=page)
        offsets = [p.device_offset for p in cache.all_dirty_pages_sorted()]
        assert offsets == sorted(offsets)


class TestEviction:
    def test_pick_victims_cold_first(self):
        cache = _cache()
        file = _file()
        clock = CycleClock()
        for i in range(4):
            cache.insert(clock, file, i, cache.allocate_frame(clock, 0))
        cache.lookup(clock, file, 0)   # refresh 0
        victims = cache.pick_victims(clock, 2)
        assert [v.file_page for v in victims] == [1, 2]

    def test_remove_recycles_frame(self):
        cache = _cache(capacity=4, freelist_move_batch=4, freelist_core_threshold=2)
        file = _file()
        clock = CycleClock()
        pages = [
            cache.insert(clock, file, i, cache.allocate_frame(clock, 0))
            for i in range(4)
        ]
        assert cache.allocate_frame(clock, 0) is None
        cache.remove(clock, 0, pages[0])
        assert cache.allocate_frame(clock, 0) is not None
        assert cache.evictions == 1


class TestResize:
    def test_grow(self):
        cache = _cache(capacity=16)
        frames = cache.grow(8)
        assert len(frames) == 8
        assert cache.capacity_pages == 24
        assert cache.freelist.free_count() == 24

    def test_shrink_free(self):
        cache = _cache(capacity=16)
        retired = cache.shrink_free(4)
        assert len(retired) == 4
        assert cache.capacity_pages == 12
        assert cache.freelist.free_count() == 12

"""Fold traced spans into per-stage cycle breakdowns.

:class:`CycleAttribution` turns a list of finished spans (from
:class:`~repro.obs.trace.Tracer`) into exclusive-cycle totals per span
name, per-span-name charge-category totals, and grouped stage summaries —
the machinery behind the paper's Figure 7/8 breakdowns, derived from a
real traced run instead of hand-assembled constants.

Invariant used by the benchmarks: because a span's *self* cycles are its
clock advance minus its children's, summing self cycles over every span
equals the total clock advance inside root spans — i.e. the cycles the
engines actually charged while traced work was running.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.obs.trace import Span, Tracer


def _matches(name: str, prefix: str) -> bool:
    return name == prefix or name.startswith(prefix + ".")


class CycleAttribution:
    """Per-stage cycle accounting over a set of finished spans."""

    def __init__(self, spans: Iterable[Span]) -> None:
        self.spans: List[Span] = list(spans)
        self._self: Dict[str, float] = {}
        self._counts: Dict[str, int] = {}
        self._charges: Dict[str, Dict[str, float]] = {}
        for span in self.spans:
            name = span.name
            self._self[name] = self._self.get(name, 0.0) + span.self_cycles
            self._counts[name] = self._counts.get(name, 0) + 1
            by_cat = self._charges.setdefault(name, {})
            for category, cycles in span.charges.items():
                by_cat[category] = by_cat.get(category, 0.0) + cycles

    @classmethod
    def from_tracer(cls, tracer: Tracer, since: Optional[int] = None) -> "CycleAttribution":
        """Attribution over a tracer's retained spans (optionally windowed).

        ``since`` is a :meth:`~repro.obs.trace.Tracer.mark` value bounding
        the window to spans finished at or after the mark.
        """
        spans = tracer.finished_spans() if since is None else tracer.finished_since(since)
        return cls(spans)

    # -- exclusive (self) cycles ---------------------------------------------------

    def span_names(self) -> List[str]:
        """Sorted names of every span seen."""
        return sorted(self._self)

    def self_cycles(self, name: str) -> float:
        """Exclusive cycles of spans named exactly ``name``."""
        return self._self.get(name, 0.0)

    def self_prefix_total(self, prefix: str) -> float:
        """Exclusive cycles across span names matching ``prefix`` (dotted)."""
        return sum(
            cycles for name, cycles in self._self.items() if _matches(name, prefix)
        )

    def count(self, name: str) -> int:
        """How many spans named exactly ``name`` finished."""
        return self._counts.get(name, 0)

    def total_cycles(self) -> float:
        """Exclusive cycles summed over every span (= traced clock advance)."""
        return sum(self._self.values())

    # -- charge categories ----------------------------------------------------------

    def charges_of(self, name: str) -> Dict[str, float]:
        """Direct charge categories of spans named exactly ``name``."""
        return dict(self._charges.get(name, {}))

    def charges_of_prefix(self, prefix: str) -> Dict[str, float]:
        """Merged direct charges across span names matching ``prefix``."""
        merged: Dict[str, float] = {}
        for name, by_cat in self._charges.items():
            if _matches(name, prefix):
                for category, cycles in by_cat.items():
                    merged[category] = merged.get(category, 0.0) + cycles
        return merged

    # -- grouping -----------------------------------------------------------------

    def per_stage(
        self,
        rules: Sequence[Tuple[str, str]],
        other: str = "other",
    ) -> Dict[str, float]:
        """Fold self cycles into named stages.

        ``rules`` is an ordered list of ``(span_prefix, stage)`` pairs;
        each span's self cycles go to the stage of the first matching
        prefix, or to ``other``.  Every stage named in the rules appears
        in the result (possibly 0.0), so tables have stable rows.
        """
        stages: Dict[str, float] = {stage: 0.0 for _, stage in rules}
        stages.setdefault(other, 0.0)
        for name, cycles in self._self.items():
            for prefix, stage in rules:
                if _matches(name, prefix):
                    stages[stage] += cycles
                    break
            else:
                stages[other] += cycles
        return stages

    def items(self) -> List[Tuple[str, float, int]]:
        """``(name, self_cycles, count)`` rows sorted by cycles, descending."""
        return sorted(
            ((name, cycles, self._counts[name]) for name, cycles in self._self.items()),
            key=lambda row: -row[1],
        )

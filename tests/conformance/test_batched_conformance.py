"""Property-based conformance: batched == unbatched, bit for bit.

Every cell replays one seed-generated workload under the unbatched
min-heap scheduler and the epoch-batched scheduler and asserts the
complete state digests agree exactly: per-thread clocks and latency
streams, page table, TLBs, cache contents down to page-byte checksums,
durable device bytes, and every engine counter (minus the two counters
that *describe* batching).  See ``repro.sim.conformance``.
"""

import pytest

from repro.fault.plan import FaultSpec, clear_plan
from repro.sim.conformance import (
    ENGINE_KINDS,
    MMIO_ENGINE_KINDS,
    MODE_COUNTERS,
    assert_modes_agree,
    run_cell,
    run_explicit_cell,
)

FAULTY_SPEC = FaultSpec(error_rate=0.02, latency_rate=0.02, torn_rate=0.01)

SEEDS = [1, 7, 23]


@pytest.fixture(autouse=True)
def _clean_plan():
    yield
    clear_plan()


def _mmio(engine_kind, batched, seed, **kwargs):
    return run_cell(engine_kind, batched, seed=seed, **kwargs)


class TestCleanConformance:
    @pytest.mark.parametrize("engine_kind", MMIO_ENGINE_KINDS)
    @pytest.mark.parametrize("seed", SEEDS)
    def test_in_memory_shared(self, engine_kind, seed):
        assert_modes_agree(_mmio, engine_kind=engine_kind, seed=seed)

    @pytest.mark.parametrize("engine_kind", MMIO_ENGINE_KINDS)
    def test_in_memory_reaccess_heavy(self, engine_kind):
        # More accesses than pages: the touch-once plan re-accesses owned
        # pages, which is the pure-hit regime run-ahead accelerates most.
        assert_modes_agree(
            _mmio,
            engine_kind=engine_kind,
            seed=11,
            accesses_per_thread=900,
            dataset_pages=160,
        )

    @pytest.mark.parametrize("engine_kind", MMIO_ENGINE_KINDS)
    def test_read_only_unbounded_certificate(self, engine_kind):
        # write_fraction=0 and an in-cache dataset keep the engine's
        # quiescence certificate (run_ahead_unbounded_ok) true for the
        # whole run, so each thread retires its re-access tail under an
        # infinite horizon — the most aggressive batching the executor
        # ever does, and it must still be bit-exact.
        assert_modes_agree(
            _mmio,
            engine_kind=engine_kind,
            seed=19,
            write_fraction=0.0,
            accesses_per_thread=1200,
            dataset_pages=160,
        )

    @pytest.mark.parametrize("engine_kind", MMIO_ENGINE_KINDS)
    def test_private_files(self, engine_kind):
        assert_modes_agree(
            _mmio, engine_kind=engine_kind, seed=5, shared_file=False
        )

    @pytest.mark.parametrize("engine_kind", MMIO_ENGINE_KINDS)
    def test_out_of_memory_evictions(self, engine_kind):
        # Eviction + shootdown heavy: every barrier-op hazard is live.
        assert_modes_agree(
            _mmio,
            engine_kind=engine_kind,
            seed=13,
            touch_once=False,
            dataset_pages=1024,
            cache_pages=128,
        )

    def test_single_thread_infinite_horizon(self):
        assert_modes_agree(
            _mmio, engine_kind="aquila", seed=3, num_threads=1
        )

    def test_smt_core_sharing_disables_run_ahead_but_stays_exact(self):
        # 33+ threads can't fit 32 hardware threads; cores collide and the
        # executor degrades to zero quantum — results must still match.
        assert_modes_agree(
            _mmio,
            engine_kind="aquila",
            seed=9,
            num_threads=36,
            accesses_per_thread=64,
        )

    @pytest.mark.parametrize("seed", SEEDS)
    def test_explicit_solo(self, seed):
        assert_modes_agree(run_explicit_cell, seed=seed)

    def test_explicit_multithreaded_fallback(self, ):
        assert_modes_agree(run_explicit_cell, seed=17, num_threads=4)


class TestFaultyConformance:
    @pytest.mark.parametrize("engine_kind", MMIO_ENGINE_KINDS)
    @pytest.mark.parametrize("seed", SEEDS)
    def test_mmio_with_faults(self, engine_kind, seed):
        # Out-of-memory so device traffic (the faultable surface) is heavy;
        # the digest includes the injected fault schedule itself.
        digest = assert_modes_agree(
            _mmio,
            engine_kind=engine_kind,
            seed=seed,
            touch_once=False,
            dataset_pages=768,
            cache_pages=96,
            fault_spec=FAULTY_SPEC,
            fault_seed=seed,
        )
        assert digest["fault_schedule"], "fault plan injected nothing"

    def test_explicit_with_faults(self):
        digest = assert_modes_agree(
            run_explicit_cell,
            seed=29,
            reads_per_thread=400,
            cache_pages=16,
            file_pages=128,
            fault_spec=FAULTY_SPEC,
            fault_seed=4,
        )
        assert digest["fault_schedule"], "fault plan injected nothing"


class TestBatchingEngages:
    """The fast path must actually fire — a vacuous conformance pass
    (batched mode never batching) would prove nothing."""

    def test_mode_counters_excluded_from_digest(self):
        digest = run_cell(
            "aquila", True, seed=11, accesses_per_thread=900, dataset_pages=160
        )
        assert "hit_runs" not in digest["engine"]
        assert "batched_hits" not in digest["engine"]

    def test_mode_counters_nonzero_in_batched_mode(self):
        from repro.bench.setups import make_aquila_stack
        from repro.common import units
        from repro.mmio.files import BackingFile
        from repro.sim.executor import SimThread
        from repro.workloads.microbench import MicrobenchConfig, run_microbench

        SimThread.reset_ids()
        BackingFile.reset_ids()
        stack = make_aquila_stack("pmem", 256)
        f = stack.allocator.create("engage", 160 * units.PAGE_SIZE)
        cfg = MicrobenchConfig(
            num_threads=4, accesses_per_thread=900, touch_once=True, batched=True
        )
        run_microbench(stack.engine, f, cfg)
        assert stack.engine.hit_runs > 0
        assert stack.engine.batched_hits > stack.engine.hit_runs
        assert MODE_COUNTERS == {
            "hit_runs",
            "batched_hits",
            "ff_runs",
            "ff_hits",
            "ff_faults",
            "ff_evictions",
            "fastforward",
        }

    def test_explicit_read_run_engages_solo(self):
        from repro.sim.conformance import run_explicit_cell

        digest = run_explicit_cell(True, reads_per_thread=300, cache_pages=64,
                                   file_pages=48, seed=2)
        # Small file + big cache => hit-heavy; cache counters must show
        # the same hits as unbatched (they are real hits, not metadata).
        assert digest["cache_counters"]["hits"] > 0

    def test_engine_matrix_is_complete(self):
        assert set(ENGINE_KINDS) == {"aquila", "linux", "kmmap", "explicit"}

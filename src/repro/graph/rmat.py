"""R-MAT recursive graph generator (Chakrabarti et al., cited by the paper).

The paper's Ligra experiment (Section 6.2): "we generate a R-Mat graph of
100M vertices, with the number of directed edges set to 10x the number of
vertices", producing a read-mostly random access pattern under BFS.

Standard R-MAT parameters (a, b, c, d) = (0.57, 0.19, 0.19, 0.05) — the
Graph500 values — yield the heavy-tailed degree distribution that makes
frontier sizes swing the way real social graphs do.
"""

from __future__ import annotations

import random
from typing import List, Tuple


def generate_rmat_edges(
    num_vertices: int,
    num_edges: int,
    seed: int = 42,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
) -> List[Tuple[int, int]]:
    """Directed edge list of an R-MAT graph (duplicates allowed, like R-MAT)."""
    if num_vertices <= 0 or num_edges < 0:
        raise ValueError("graph dimensions must be positive")
    scale = max(1, (num_vertices - 1).bit_length())
    rng = random.Random(seed)
    edges: List[Tuple[int, int]] = []
    for _ in range(num_edges):
        src = dst = 0
        for _ in range(scale):
            r = rng.random()
            if r < a:
                quadrant = (0, 0)
            elif r < a + b:
                quadrant = (0, 1)
            elif r < a + b + c:
                quadrant = (1, 0)
            else:
                quadrant = (1, 1)
            src = (src << 1) | quadrant[0]
            dst = (dst << 1) | quadrant[1]
        edges.append((src % num_vertices, dst % num_vertices))
    return edges


class CSRGraph:
    """Compressed sparse row adjacency: offsets + edge targets."""

    def __init__(self, num_vertices: int, edges: List[Tuple[int, int]]) -> None:
        self.num_vertices = num_vertices
        self.num_edges = len(edges)
        degree = [0] * num_vertices
        for src, _ in edges:
            degree[src] += 1
        self.offsets = [0] * (num_vertices + 1)
        for v in range(num_vertices):
            self.offsets[v + 1] = self.offsets[v] + degree[v]
        self.targets = [0] * len(edges)
        cursor = list(self.offsets[:-1])
        for src, dst in edges:
            self.targets[cursor[src]] = dst
            cursor[src] += 1

    def out_degree(self, vertex: int) -> int:
        """Out-degree of ``vertex``."""
        return self.offsets[vertex + 1] - self.offsets[vertex]

    def neighbors(self, vertex: int) -> List[int]:
        """Out-neighbors of ``vertex``."""
        return self.targets[self.offsets[vertex] : self.offsets[vertex + 1]]

    def largest_out_degree_vertex(self) -> int:
        """A good BFS root: the highest-out-degree vertex."""
        best, best_deg = 0, -1
        for v in range(self.num_vertices):
            deg = self.out_degree(v)
            if deg > best_deg:
                best, best_deg = v, deg
        return best


def make_rmat_csr(num_vertices: int, edge_factor: int = 10, seed: int = 42) -> CSRGraph:
    """Convenience: R-MAT CSR with ``edge_factor`` edges per vertex."""
    edges = generate_rmat_edges(num_vertices, num_vertices * edge_factor, seed)
    return CSRGraph(num_vertices, edges)

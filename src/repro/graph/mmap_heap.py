"""Heap allocator over a memory-mapped file (paper Section 6.2).

"We convert all malloc/free calls of Ligra to allocate space over a
memory-mapped file on a fast storage device."  The heap extends the
application's address space over the device: allocations are bump-pointer
regions of one big mapping, and element accesses become mmio loads/stores
that fault and cache like any other mapped page.

:class:`DramHeap` is the paper's *DRAM-only* baseline (plain malloc): the
same interface with no engine underneath and zero access cost beyond the
CPU work the application charges itself.
"""

from __future__ import annotations

import struct
from typing import List

from repro.common import units
from repro.common.errors import OutOfMemoryError
from repro.mmio.engine import Mapping
from repro.sim.executor import SimThread

_U64 = struct.Struct("<Q")


class HeapArray:
    """A typed uint64 array living on a heap."""

    def __init__(self, heap: "MmapHeap", offset: int, length: int) -> None:
        self.heap = heap
        self.offset = offset
        self.length = length

    def read(self, thread: SimThread, index: int) -> int:
        """Element load (an mmio access on mapped heaps)."""
        if not 0 <= index < self.length:
            raise IndexError(f"index {index} out of range {self.length}")
        raw = self.heap.load(thread, self.offset + index * 8, 8)
        return _U64.unpack(raw)[0]

    def write(self, thread: SimThread, index: int, value: int) -> None:
        """Element store."""
        if not 0 <= index < self.length:
            raise IndexError(f"index {index} out of range {self.length}")
        self.heap.store(thread, self.offset + index * 8, _U64.pack(value))

    def read_range(self, thread: SimThread, start: int, count: int) -> List[int]:
        """Contiguous element loads (one mmio access per spanned page)."""
        if start < 0 or count < 0 or start + count > self.length:
            raise IndexError("range out of bounds")
        if count == 0:
            return []
        raw = self.heap.load(thread, self.offset + start * 8, count * 8)
        return [ _U64.unpack_from(raw, i * 8)[0] for i in range(count) ]

    def fill(self, thread: SimThread, value: int) -> None:
        """Initialize every element (bulk stores, page at a time)."""
        encoded = _U64.pack(value)
        page_elems = units.PAGE_SIZE // 8
        for start in range(0, self.length, page_elems):
            count = min(page_elems, self.length - start)
            self.heap.store(thread, self.offset + start * 8, encoded * count)


class MmapHeap:
    """Bump allocator over one mapping."""

    def __init__(self, mapping: Mapping) -> None:
        self.mapping = mapping
        self._brk = 0

    @property
    def capacity_bytes(self) -> int:
        """Total heap capacity."""
        return self.mapping.size_bytes

    @property
    def allocated_bytes(self) -> int:
        """Bytes handed out so far."""
        return self._brk

    def alloc(self, nbytes: int, align: int = 8) -> int:
        """Allocate ``nbytes``; returns the heap offset."""
        if nbytes < 0:
            raise ValueError("negative allocation")
        start = (self._brk + align - 1) // align * align
        if start + nbytes > self.capacity_bytes:
            raise OutOfMemoryError(
                f"heap exhausted: need {nbytes} at {start}, capacity "
                f"{self.capacity_bytes}"
            )
        self._brk = start + nbytes
        return start

    def alloc_array(self, length: int) -> HeapArray:
        """Allocate a uint64 array of ``length`` elements."""
        return HeapArray(self, self.alloc(length * 8), length)

    def load(self, thread: SimThread, offset: int, nbytes: int) -> bytes:
        """mmio load through the mapping."""
        return self.mapping.load(thread, offset, nbytes)

    def store(self, thread: SimThread, offset: int, data: bytes) -> None:
        """mmio store through the mapping."""
        self.mapping.store(thread, offset, data)


class DramHeap:
    """malloc/free baseline: plain memory, no I/O engine (Figure 6 DRAM bars)."""

    def __init__(self, capacity_bytes: int) -> None:
        self.capacity_bytes = capacity_bytes
        self._data = bytearray(capacity_bytes)
        self._brk = 0

    @property
    def allocated_bytes(self) -> int:
        """Bytes handed out so far."""
        return self._brk

    def alloc(self, nbytes: int, align: int = 8) -> int:
        """Allocate ``nbytes``; returns the heap offset."""
        start = (self._brk + align - 1) // align * align
        if start + nbytes > self.capacity_bytes:
            raise OutOfMemoryError("DRAM heap exhausted")
        self._brk = start + nbytes
        return start

    def alloc_array(self, length: int) -> HeapArray:
        """Allocate a uint64 array of ``length`` elements."""
        return HeapArray(self, self.alloc(length * 8), length)

    def load(self, thread: SimThread, offset: int, nbytes: int) -> bytes:
        """Plain DRAM read: no charged cost (caches hide it at this scale)."""
        return bytes(self._data[offset : offset + nbytes])

    def store(self, thread: SimThread, offset: int, data: bytes) -> None:
        """Plain DRAM write."""
        self._data[offset : offset + len(data)] = data

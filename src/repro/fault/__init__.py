"""repro.fault — deterministic fault injection and crash recovery.

Three cooperating pieces, all seed-deterministic and all disabled (one
branch of cost) by default:

* :class:`~repro.fault.plan.FaultPlan` — a seeded, per-device schedule of
  transient errors, latency spikes, and torn writes that the device
  models consult on every command.  Install one process-wide with
  :func:`install_plan` (or the :class:`plan_installed` context manager)
  *before* building a stack; devices pick it up at construction.
* :mod:`~repro.fault.retry` — the shared retry-with-backoff policy the
  I/O paths apply to transient faults, with cycles charged and
  ``fault.retries`` / ``fault.giveups`` metrics.
* :data:`~repro.fault.crash.CRASH` — the crash-point controller:
  writeback/msync/eviction/WAL boundaries report to it, and an armed run
  crashes deterministically at the Nth boundary with a durable-state
  snapshot for recovery testing.

Cluster runs add a fourth piece:
:class:`~repro.fault.shardkill.ShardKillSpec` — a seeded shard-kill
trigger (victim, epoch, intra-epoch op ordinal) driving deterministic
primary failover in :mod:`repro.cluster`.

The cross-engine differential oracle lives in
:mod:`repro.fault.differential` (imported on demand — it pulls in the
whole engine stack).
"""

from __future__ import annotations

from repro.common.errors import (
    DeviceError,
    SimulatedCrash,
    TornWriteError,
    TransientDeviceError,
)
from repro.fault.crash import (
    CRASH,
    CrashController,
    DeviceSnapshot,
    restore_devices,
    snapshot_devices,
)
from repro.fault.plan import (
    DEFAULT_LATENCY_SPIKE_CYCLES,
    FAULT_ERROR,
    FAULT_LATENCY,
    FAULT_NONE,
    FAULT_TORN,
    DeviceFaultInjector,
    FaultDecision,
    FaultPlan,
    FaultSpec,
    active_plan,
    clear_plan,
    install_plan,
    plan_installed,
)
from repro.fault.retry import DEFAULT_RETRY_POLICY, RetryPolicy, with_retries
from repro.fault.shardkill import ShardKillSpec, derive_shard_kill

__all__ = [
    "CRASH",
    "CrashController",
    "DEFAULT_LATENCY_SPIKE_CYCLES",
    "DEFAULT_RETRY_POLICY",
    "DeviceError",
    "DeviceFaultInjector",
    "DeviceSnapshot",
    "FAULT_ERROR",
    "FAULT_LATENCY",
    "FAULT_NONE",
    "FAULT_TORN",
    "FaultDecision",
    "FaultPlan",
    "FaultSpec",
    "RetryPolicy",
    "ShardKillSpec",
    "SimulatedCrash",
    "derive_shard_kill",
    "TornWriteError",
    "TransientDeviceError",
    "active_plan",
    "clear_plan",
    "install_plan",
    "plan_installed",
    "restore_devices",
    "snapshot_devices",
    "with_retries",
]

"""Tiny-scale smoke coverage for every experiment runner.

The full-scale runs live in ``benchmarks/``; these keep the experiment
code paths under `pytest tests/` at minimal cost.
"""

import pytest

from repro.bench.experiments.fig5 import run_cell as fig5_cell
from repro.bench.experiments.fig6 import heap_pages_for, run_bfs_config
from repro.bench.experiments.fig9 import run_cell as fig9_cell
from repro.bench.experiments.fig10 import run_sweep


class TestFig5Runner:
    @pytest.mark.parametrize("mode", ["direct", "mmap", "aquila"])
    def test_cell_shape(self, mode):
        cell = fig5_cell(
            mode, "pmem", record_count=512, cache_pages=256,
            num_threads=2, ops_per_thread=40, warmup_ops=40,
        )
        assert cell["throughput"] > 0
        assert cell["not_found"] == 0
        assert cell["mean_latency_cycles"] > 0
        assert cell["p999_cycles"] >= cell["mean_latency_cycles"]


class TestFig6Runner:
    def test_heap_pages_formula(self):
        # offsets + targets + parents words, 8 bytes each, plus slack.
        pages = heap_pages_for(1000, 10)
        assert pages >= (8 * (1000 + 1 + 10_000 + 1000)) // 4096

    @pytest.mark.parametrize("engine", ["dram", "linux", "aquila"])
    def test_config_runs(self, engine):
        cell = run_bfs_config(engine, "pmem", num_vertices=500,
                              num_threads=2, cache_fraction=0.5)
        assert cell["visited"] > 1
        assert cell["execution_cycles"] > 0
        total_pct = cell["user_pct"] + cell["system_pct"] + cell["idle_pct"]
        assert total_pct == pytest.approx(100.0, abs=0.1)


class TestFig9Runner:
    @pytest.mark.parametrize("engine", ["kmmap", "aquila"])
    def test_cell_shape(self, engine):
        cell = fig9_cell(engine, "pmem", "C", record_count=512,
                         cache_pages=256, operations=60)
        assert cell["throughput"] > 0
        assert cell["not_found"] == 0
        assert cell["store_stats"]["gets"] >= 50


class TestFig10Runner:
    def test_sweep_shape(self):
        rows = run_sweep(
            shared_file=True, in_memory=True,
            thread_counts=[1, 2], cache_pages=256, total_accesses=128,
        )
        assert [row["threads"] for row in rows] == [1, 2]
        for row in rows:
            assert row["speedup"] > 0
            assert row["linux"]["ops"] == row["aquila"]["ops"]

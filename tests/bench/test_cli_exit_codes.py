"""The bench CLI's exit-code contract and --help coverage.

Exit codes: 0 success, 1 failed cells / digest mismatch / stale doc,
2 usage or environment errors.  ``--help`` must document every flag the
CLI has grown (``--trace``, ``--metrics``, ``--faults``, the sweep and
report options) so the contract is discoverable.
"""

import json

import pytest

import repro.bench.cli as cli
import repro.bench.sweep as sweep_mod
from repro.bench.sweep import run_sweep


def _main(argv):
    return cli.main(argv)


def test_help_documents_every_flag(capsys):
    with pytest.raises(SystemExit) as excinfo:
        _main(["--help"])
    assert excinfo.value.code == 0
    text = capsys.readouterr().out
    for flag in (
        "--trace",
        "--metrics",
        "--faults",
        "--threads",
        "--workloads",
        "--workers",
        "--figures",
        "--scale",
        "--resume",
        "--verify",
        "--dashboard",
        "--profile",
        "--no-telemetry",
        "--openmetrics",
        "--history",
        "--no-history",
        "--manifest",
        "--output",
        "--check",
    ):
        assert flag in text, f"--help must document {flag}"
    assert "sweep" in text and "report" in text


def test_sweep_success_exits_zero(tmp_path, capsys):
    code = _main(
        ["sweep", "--figures", "fig7", "--scale", "bench",
         "--manifest", str(tmp_path / "m.jsonl")]
    )
    assert code == 0
    assert "0 failed" in capsys.readouterr().out


def test_failed_cell_exits_one(tmp_path, monkeypatch, capsys):
    real = sweep_mod._execute_cell

    def sabotage(cell):
        if cell["cell_id"] == "fig7/aquila":
            raise RuntimeError("injected cell failure")
        return real(cell)

    monkeypatch.setattr(sweep_mod, "_execute_cell", sabotage)
    code = _main(
        ["sweep", "--figures", "fig7", "--scale", "bench",
         "--manifest", str(tmp_path / "m.jsonl")]
    )
    assert code == 1
    err = capsys.readouterr().err
    assert "fig7/aquila" in err and "failed" in err


def test_failed_cell_is_retried_and_recorded(tmp_path, monkeypatch):
    attempts = {"n": 0}
    real = sweep_mod._execute_cell

    def flaky(cell):
        if cell["cell_id"] == "fig7/aquila":
            attempts["n"] += 1
            if attempts["n"] == 1:
                raise RuntimeError("transient")
        return real(cell)

    monkeypatch.setattr(sweep_mod, "_execute_cell", flaky)
    result = run_sweep(
        figures=["fig7"], scale="bench", manifest_path=str(tmp_path / "m.jsonl")
    )
    assert result.ok and attempts["n"] == 2
    record = next(e for e in result.entries if e["cell_id"] == "fig7/aquila")
    assert record["attempts"] == 2, "the retry count must be in the manifest"


def test_digest_mismatch_exits_one(tmp_path, capsys):
    manifest = tmp_path / "m.jsonl"
    assert _main(
        ["sweep", "--figures", "fig7", "--scale", "bench", "--manifest", str(manifest)]
    ) == 0
    capsys.readouterr()

    tampered = []
    for line in manifest.read_text().splitlines():
        record = json.loads(line)
        if record.get("kind") == "cell":
            record["state_digest"] = "0" * 64
        tampered.append(json.dumps(record))
    manifest.write_text("\n".join(tampered) + "\n")

    code = _main(
        ["sweep", "--figures", "fig7", "--scale", "bench",
         "--manifest", str(manifest), "--resume", "--verify"]
    )
    assert code == 1
    assert "determinism violation" in capsys.readouterr().err


def test_faults_with_sweep_exits_two(tmp_path, capsys):
    code = _main(
        ["sweep", "--faults", str(tmp_path / "plan.json"),
         "--manifest", str(tmp_path / "m.jsonl")]
    )
    assert code == 2
    assert "--faults" in capsys.readouterr().err


def test_unknown_figure_exits_two(tmp_path, capsys):
    code = _main(
        ["sweep", "--figures", "fig99", "--manifest", str(tmp_path / "m.jsonl")]
    )
    assert code == 2
    assert "fig99" in capsys.readouterr().err


def test_report_without_manifest_exits_two(tmp_path, capsys):
    code = _main(
        ["report", "--manifest", str(tmp_path / "absent.jsonl"),
         "--output", str(tmp_path / "doc.md")]
    )
    assert code == 2


def test_report_check_cycle(tmp_path, capsys):
    manifest = tmp_path / "m.jsonl"
    doc = tmp_path / "EXPERIMENTS.md"
    run_sweep(scale="bench", manifest_path=str(manifest))
    assert _main(
        ["report", "--manifest", str(manifest), "--output", str(doc)]
    ) == 0
    assert _main(
        ["report", "--check", "--manifest", str(manifest), "--output", str(doc)]
    ) == 0
    doc.write_text(doc.read_text() + "\nhand edit\n")
    capsys.readouterr()
    assert _main(
        ["report", "--check", "--manifest", str(manifest), "--output", str(doc)]
    ) == 1
    assert "regenerate with" in capsys.readouterr().err

"""Red-black tree keyed by integer (device page offset).

Aquila keeps dirty pages in **per-core red-black trees** so that writeback
can emit pages sorted by device offset and merge adjacent pages into large
I/Os (paper Section 3.2: "Dirty pages need to be sorted by device offset
... we use per-core red-black trees").  The Linux kernel also uses an
rb-tree for VMAs; we reuse this implementation there.

This is a complete textbook (CLRS) red-black tree with insert, delete,
lookup, minimum, and sorted iteration.  Invariants (checked by
``validate``, exercised by property-based tests):

1. every node is red or black;
2. the root is black;
3. red nodes have black children;
4. every root-to-leaf path has the same number of black nodes.
"""

from __future__ import annotations

from typing import Any, Iterator, List, Optional, Tuple

RED = True
BLACK = False


class _Node:
    __slots__ = ("key", "value", "color", "left", "right", "parent")

    def __init__(self, key: int, value: Any, color: bool, nil: "_Node") -> None:
        self.key = key
        self.value = value
        self.color = color
        self.left = nil
        self.right = nil
        self.parent = nil


class RBTree:
    """Sorted int-keyed map with O(log n) insert/delete/lookup."""

    def __init__(self) -> None:
        self._nil = _Node.__new__(_Node)
        self._nil.key = 0
        self._nil.value = None
        self._nil.color = BLACK
        self._nil.left = self._nil
        self._nil.right = self._nil
        self._nil.parent = self._nil
        self._root = self._nil
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def __contains__(self, key: int) -> bool:
        return self._find(key) is not self._nil

    def __bool__(self) -> bool:
        return self._size > 0

    # -- search -------------------------------------------------------------

    def _find(self, key: int) -> _Node:
        node = self._root
        while node is not self._nil:
            if key == node.key:
                return node
            node = node.left if key < node.key else node.right
        return self._nil

    def get(self, key: int, default: Any = None) -> Any:
        """Value stored under ``key`` or ``default``."""
        node = self._find(key)
        return default if node is self._nil else node.value

    def min_key(self) -> Optional[int]:
        """Smallest key or None when empty."""
        if self._root is self._nil:
            return None
        return self._minimum(self._root).key

    def max_key(self) -> Optional[int]:
        """Largest key or None when empty."""
        if self._root is self._nil:
            return None
        node = self._root
        while node.right is not self._nil:
            node = node.right
        return node.key

    def _minimum(self, node: _Node) -> _Node:
        while node.left is not self._nil:
            node = node.left
        return node

    def ceiling(self, key: int) -> Optional[Tuple[int, Any]]:
        """Smallest (key, value) with key >= ``key``, or None."""
        node = self._root
        best: Optional[_Node] = None
        while node is not self._nil:
            if node.key == key:
                return (node.key, node.value)
            if node.key > key:
                best = node
                node = node.left
            else:
                node = node.right
        if best is None:
            return None
        return (best.key, best.value)

    def floor(self, key: int) -> Optional[Tuple[int, Any]]:
        """Largest (key, value) with key <= ``key``, or None."""
        node = self._root
        best: Optional[_Node] = None
        while node is not self._nil:
            if node.key == key:
                return (node.key, node.value)
            if node.key < key:
                best = node
                node = node.right
            else:
                node = node.left
        if best is None:
            return None
        return (best.key, best.value)

    # -- rotation -----------------------------------------------------------

    def _rotate_left(self, x: _Node) -> None:
        y = x.right
        x.right = y.left
        if y.left is not self._nil:
            y.left.parent = x
        y.parent = x.parent
        if x.parent is self._nil:
            self._root = y
        elif x is x.parent.left:
            x.parent.left = y
        else:
            x.parent.right = y
        y.left = x
        x.parent = y

    def _rotate_right(self, x: _Node) -> None:
        y = x.left
        x.left = y.right
        if y.right is not self._nil:
            y.right.parent = x
        y.parent = x.parent
        if x.parent is self._nil:
            self._root = y
        elif x is x.parent.right:
            x.parent.right = y
        else:
            x.parent.left = y
        y.right = x
        x.parent = y

    # -- insert -------------------------------------------------------------

    def insert(self, key: int, value: Any = None) -> bool:
        """Insert or update ``key``; returns True if the key was new."""
        parent = self._nil
        node = self._root
        while node is not self._nil:
            parent = node
            if key == node.key:
                node.value = value
                return False
            node = node.left if key < node.key else node.right
        fresh = _Node(key, value, RED, self._nil)
        fresh.parent = parent
        if parent is self._nil:
            self._root = fresh
        elif key < parent.key:
            parent.left = fresh
        else:
            parent.right = fresh
        self._size += 1
        self._insert_fixup(fresh)
        return True

    def _insert_fixup(self, z: _Node) -> None:
        while z.parent.color is RED:
            grand = z.parent.parent
            if z.parent is grand.left:
                uncle = grand.right
                if uncle.color is RED:
                    z.parent.color = BLACK
                    uncle.color = BLACK
                    grand.color = RED
                    z = grand
                else:
                    if z is z.parent.right:
                        z = z.parent
                        self._rotate_left(z)
                    z.parent.color = BLACK
                    z.parent.parent.color = RED
                    self._rotate_right(z.parent.parent)
            else:
                uncle = grand.left
                if uncle.color is RED:
                    z.parent.color = BLACK
                    uncle.color = BLACK
                    grand.color = RED
                    z = grand
                else:
                    if z is z.parent.left:
                        z = z.parent
                        self._rotate_right(z)
                    z.parent.color = BLACK
                    z.parent.parent.color = RED
                    self._rotate_left(z.parent.parent)
        self._root.color = BLACK

    # -- delete -------------------------------------------------------------

    def remove(self, key: int) -> bool:
        """Delete ``key``; returns True if it was present."""
        z = self._find(key)
        if z is self._nil:
            return False
        self._size -= 1
        y = z
        y_color = y.color
        if z.left is self._nil:
            x = z.right
            self._transplant(z, z.right)
        elif z.right is self._nil:
            x = z.left
            self._transplant(z, z.left)
        else:
            y = self._minimum(z.right)
            y_color = y.color
            x = y.right
            if y.parent is z:
                x.parent = y
            else:
                self._transplant(y, y.right)
                y.right = z.right
                y.right.parent = y
            self._transplant(z, y)
            y.left = z.left
            y.left.parent = y
            y.color = z.color
        if y_color is BLACK:
            self._delete_fixup(x)
        return True

    def _transplant(self, u: _Node, v: _Node) -> None:
        if u.parent is self._nil:
            self._root = v
        elif u is u.parent.left:
            u.parent.left = v
        else:
            u.parent.right = v
        v.parent = u.parent

    def _delete_fixup(self, x: _Node) -> None:
        while x is not self._root and x.color is BLACK:
            if x is x.parent.left:
                w = x.parent.right
                if w.color is RED:
                    w.color = BLACK
                    x.parent.color = RED
                    self._rotate_left(x.parent)
                    w = x.parent.right
                if w.left.color is BLACK and w.right.color is BLACK:
                    w.color = RED
                    x = x.parent
                else:
                    if w.right.color is BLACK:
                        w.left.color = BLACK
                        w.color = RED
                        self._rotate_right(w)
                        w = x.parent.right
                    w.color = x.parent.color
                    x.parent.color = BLACK
                    w.right.color = BLACK
                    self._rotate_left(x.parent)
                    x = self._root
            else:
                w = x.parent.left
                if w.color is RED:
                    w.color = BLACK
                    x.parent.color = RED
                    self._rotate_right(x.parent)
                    w = x.parent.left
                if w.right.color is BLACK and w.left.color is BLACK:
                    w.color = RED
                    x = x.parent
                else:
                    if w.left.color is BLACK:
                        w.right.color = BLACK
                        w.color = RED
                        self._rotate_left(w)
                        w = x.parent.left
                    w.color = x.parent.color
                    x.parent.color = BLACK
                    w.left.color = BLACK
                    self._rotate_right(x.parent)
                    x = self._root
        x.color = BLACK

    def pop_min(self) -> Optional[Tuple[int, Any]]:
        """Remove and return the smallest (key, value), or None."""
        if self._root is self._nil:
            return None
        node = self._minimum(self._root)
        item = (node.key, node.value)
        self.remove(node.key)
        return item

    # -- iteration ----------------------------------------------------------

    def items(self) -> Iterator[Tuple[int, Any]]:
        """In-order (sorted by key) iteration of (key, value) pairs."""
        stack: List[_Node] = []
        node = self._root
        while stack or node is not self._nil:
            while node is not self._nil:
                stack.append(node)
                node = node.left
            node = stack.pop()
            yield (node.key, node.value)
            node = node.right

    def keys(self) -> Iterator[int]:
        """Sorted key iteration."""
        for key, _ in self.items():
            yield key

    # -- validation (for tests) ----------------------------------------------

    def validate(self) -> None:
        """Assert all red-black invariants; raises AssertionError on breach."""
        assert self._root.color is BLACK, "root must be black"

        def walk(node: _Node, low: float, high: float) -> int:
            if node is self._nil:
                return 1
            assert low < node.key < high, "BST order violated"
            if node.color is RED:
                assert node.left.color is BLACK, "red node with red left child"
                assert node.right.color is BLACK, "red node with red right child"
            left_black = walk(node.left, low, node.key)
            right_black = walk(node.right, node.key, high)
            assert left_black == right_black, "black-height mismatch"
            return left_black + (1 if node.color is BLACK else 0)

        walk(self._root, float("-inf"), float("inf"))

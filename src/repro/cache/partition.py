"""Per-tenant cache partitioning (QoS) for the serving layer.

The serve extension (``repro.serve``, DESIGN.md Section 12) runs N tenants
against one shared DRAM cache.  A :class:`CachePartition` maps backing
files to tenants and assigns each tenant a page quota; victim selection
then *prefers* pages of over-quota tenants while preserving LRU order
within each preference class.  Quotas are soft: a tenant may exceed its
quota while others underuse theirs (the cache never idles frames), but
under pressure the over-quota tenant pays the evictions first — the same
contract as cgroup soft limits.

Three policies, selected by the serve configuration:

* ``none`` — no partition object is installed; victim selection is the
  plain global LRU (the paper's configuration);
* ``static`` — every tenant gets an equal share of the cache;
* ``proportional`` — quotas proportional to each tenant's offered arrival
  rate, so heavier (but admitted) tenants earn proportionally more cache.

Determinism: :meth:`CachePartition.victim_order` is a pure reordering of
the LRU's cold-to-hot key list driven only by resident-page counts, so it
is bit-identical across executor modes and worker counts like every other
cache decision (the serve conformance tier covers it).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

#: Victim-selection policies understood by the serve layer.
POLICIES = ("none", "static", "proportional")


class CachePartition:
    """File-to-tenant map plus per-tenant page quotas.

    Installed on a cache as ``cache.partition``; ``pick_victims`` consults
    it to reorder eviction candidates.  The attribute is deliberately
    non-numeric so it stays out of the conformance digests' numeric-state
    sweep (only its *effects* on cache contents are digested).
    """

    def __init__(self, policy: str) -> None:
        if policy not in POLICIES:
            raise ValueError(f"unknown partition policy: {policy!r}")
        if policy == "none":
            raise ValueError("policy 'none' means: install no partition")
        self.policy = policy
        self._tenant_of_file: Dict[int, str] = {}
        self._quota_pages: Dict[str, int] = {}

    def assign(self, file_id: int, tenant: str) -> None:
        """Attribute all pages of ``file_id`` to ``tenant``."""
        self._tenant_of_file[file_id] = tenant

    def set_quota(self, tenant: str, quota_pages: int) -> None:
        """Set ``tenant``'s soft quota in pages."""
        if quota_pages < 0:
            raise ValueError("quota must be non-negative")
        self._quota_pages[tenant] = quota_pages

    def tenant_of(self, file_id: int) -> Optional[str]:
        """Owning tenant of a file id (None when unassigned)."""
        return self._tenant_of_file.get(file_id)

    def quota_of(self, tenant: str) -> Optional[int]:
        """Quota of a tenant in pages (None when unset)."""
        return self._quota_pages.get(tenant)

    def quotas(self) -> Dict[str, int]:
        """Copy of the quota table (for payloads and tests)."""
        return dict(self._quota_pages)

    def victim_order(
        self,
        keys: List[Tuple[int, int]],
        resident: Iterable[Tuple[int, int]],
    ) -> List[Tuple[int, int]]:
        """Reorder cold-to-hot ``keys`` to evict over-quota tenants first.

        ``resident`` iterates the cache's resident page keys
        (``(file_id, file_page)``); per-tenant resident counts decide who
        is over quota.  Keys of over-quota tenants are preferred, in LRU
        order, and the preference for a tenant stops as soon as enough of
        its keys have been selected to bring it back to quota (the count
        is decremented per selected key).  All remaining keys follow,
        still in LRU order, so selection beyond the over-quota surplus
        degrades gracefully to the global LRU.
        """
        counts: Dict[str, int] = {}
        for key in resident:
            tenant = self._tenant_of_file.get(key[0])
            if tenant is not None:
                counts[tenant] = counts.get(tenant, 0) + 1
        preferred: List[Tuple[int, int]] = []
        rest: List[Tuple[int, int]] = []
        for key in keys:
            tenant = self._tenant_of_file.get(key[0])
            quota = self._quota_pages.get(tenant) if tenant is not None else None
            if quota is not None and counts.get(tenant, 0) > quota:
                preferred.append(key)
                counts[tenant] -= 1
            else:
                rest.append(key)
        return preferred + rest

"""OpenMetrics-style exposition: naming, typing, histograms, snapshots."""

import pytest

from repro.obs.exposition import (
    metric_name,
    render_openmetrics,
    render_snapshot,
    write_openmetrics,
)
from repro.obs.metrics import MetricsRegistry


@pytest.fixture
def registry():
    r = MetricsRegistry()
    r.enable()
    return r


class TestNames:
    def test_dots_become_underscores(self):
        assert metric_name("engine.aquila.hits") == "engine_aquila_hits"

    def test_illegal_chars_replaced(self):
        assert metric_name("a b/c-d") == "a_b_c_d"

    def test_leading_digit_guarded(self):
        assert metric_name("9lives") == "_9lives"


class TestRender:
    def test_counter_gauge_histogram_sections(self, registry):
        registry.counter("faults", help="total faults").inc(3)
        registry.gauge("cache.pages").set(128)
        registry.histogram("lat.us", buckets=[10.0, 100.0]).observe_many([5, 50, 5000])
        text = render_openmetrics(registry)
        assert "# HELP faults total faults" in text
        assert "# TYPE faults counter" in text
        assert "faults_total 3" in text
        assert "# TYPE cache_pages gauge" in text
        assert "cache_pages 128" in text
        # Histogram buckets are cumulative.
        assert 'lat_us_bucket{le="10"} 1' in text
        assert 'lat_us_bucket{le="100"} 2' in text
        assert 'lat_us_bucket{le="+Inf"} 3' in text
        assert "lat_us_count 3" in text
        assert text.endswith("# EOF\n")

    def test_probes_render_as_gauges_and_raisers_skipped(self, registry):
        registry.register_probe("live.value", lambda: 7)

        def broken():
            raise RuntimeError("torn down")

        registry.register_probe("broken.value", broken)
        text = render_openmetrics(registry)
        assert "live_value 7" in text
        assert "broken_value" not in text

    def test_two_renders_are_byte_identical(self, registry):
        registry.counter("c").inc(2)
        registry.histogram("h", buckets=[1.0]).observe(0.5)
        assert render_openmetrics(registry) == render_openmetrics(registry)

    def test_write_returns_line_count(self, registry, tmp_path):
        registry.counter("c").inc()
        path = tmp_path / "om.txt"
        lines = write_openmetrics(str(path), registry)
        assert path.read_text().count("\n") == lines
        assert path.read_text().endswith("# EOF\n")


class TestRenderSnapshot:
    def test_plain_snapshot_renders(self):
        snapshot = {
            "engine.faults": 3,
            "dead.probe": None,
            "lat": {"buckets": [(10.0, 1), (100.0, 1)], "overflow": 1,
                    "count": 3, "sum": 5055.0},
        }
        text = render_snapshot(snapshot)
        assert "engine_faults 3" in text
        assert "dead_probe" not in text
        assert 'lat_bucket{le="100"} 2' in text
        assert 'lat_bucket{le="+Inf"} 3' in text
        assert "lat_sum 5055" in text

    def test_manifest_telemetry_metrics_round_trip(self):
        # What a manifest row's telemetry.metrics looks like after JSON:
        # histogram bucket tuples became lists.
        snapshot = {"lat": {"buckets": [[10.0, 2]], "overflow": 0,
                            "count": 2, "sum": 8.0}}
        text = render_snapshot(snapshot)
        assert 'lat_bucket{le="10"} 2' in text

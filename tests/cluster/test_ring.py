"""Consistent-hash ring: placement, balance, failover promotion.

The edge cases the cluster depends on: a one-shard ring routes
everything to that shard; shard counts that do not divide the key space
still cover every key; removing a shard promotes exactly each of its
keys' first replicas and never moves a key between surviving shards.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.ring import (
    DEFAULT_VNODES,
    HashRing,
    key_hash,
    promoted_owner_is_replica,
)

KEYS = list(range(4096))


class TestPlacement:
    def test_one_shard_ring_owns_everything(self):
        ring = HashRing([0])
        assert all(ring.primary(k) == 0 for k in KEYS[:256])
        # Replication clamps to the live shard count.
        assert ring.owners(17, 3) == [0]
        assert ring.replicas(17, 2) == []

    def test_every_key_lands_on_a_live_shard(self):
        # 3 shards over a key space 3 does not divide (4096 keys).
        ring = HashRing([0, 1, 2])
        for key in KEYS:
            assert ring.primary(key) in (0, 1, 2)

    def test_balance_within_a_few_percent_of_even(self):
        ring = HashRing(range(4))
        counts = ring.assignment_counts(KEYS)
        assert set(counts) == {0, 1, 2, 3}
        for count in counts.values():
            # Uniform would be 1024 per shard; vnodes keep the spread
            # loose but bounded.
            assert 0.5 * 1024 <= count <= 1.5 * 1024

    def test_placement_is_a_pure_function_of_config(self):
        a = HashRing([0, 1, 2, 3], seed=9)
        b = HashRing([0, 1, 2, 3], seed=9)
        assert [a.primary(k) for k in KEYS[:512]] == [
            b.primary(k) for k in KEYS[:512]
        ]
        # A different seed rearranges placement (with overwhelming
        # probability over 512 keys).
        c = HashRing([0, 1, 2, 3], seed=10)
        assert [a.primary(k) for k in KEYS[:512]] != [
            c.primary(k) for k in KEYS[:512]
        ]

    def test_replicas_are_distinct_shards(self):
        ring = HashRing(range(4))
        for key in KEYS[:512]:
            owners = ring.owners(key, 3)
            assert len(owners) == len(set(owners)) == 3

    def test_key_hash_is_stable_and_64_bit(self):
        assert key_hash(12345, 7) == key_hash(12345, 7)
        assert 0 <= key_hash(12345, 7) < (1 << 64)
        assert key_hash(12345, 7) != key_hash(12345, 8)


class TestFailover:
    def test_removal_promotes_first_replica(self):
        ring = HashRing(range(4))
        for dead in range(4):
            assert promoted_owner_is_replica(ring, dead, KEYS[:1024])

    def test_removal_never_moves_surviving_keys(self):
        ring = HashRing(range(4))
        survivors = ring.remove(2)
        for key in KEYS[:1024]:
            old = ring.primary(key)
            if old != 2:
                assert survivors.primary(key) == old

    @settings(max_examples=30, deadline=None)
    @given(
        dead=st.integers(min_value=0, max_value=4),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    def test_promotion_property_over_seeds(self, dead, seed):
        ring = HashRing(range(5), vnodes=16, seed=seed)
        assert promoted_owner_is_replica(ring, dead, KEYS[:256])


class TestValidation:
    def test_rejects_empty_and_duplicate_ids(self):
        with pytest.raises(ValueError):
            HashRing([])
        with pytest.raises(ValueError):
            HashRing([1, 1])
        with pytest.raises(ValueError):
            HashRing([0], vnodes=0)

    def test_remove_unknown_shard_raises(self):
        with pytest.raises(ValueError):
            HashRing([0, 1]).remove(7)

    def test_default_vnodes(self):
        assert HashRing([0]).vnodes == DEFAULT_VNODES

"""Beyond-paper figure families must render, not silently vanish.

Regression tier for the report fix: a figure family present in the sweep
manifest but covered by no pinned claim used to drop out of the summary
table entirely.  Now :func:`repro.bench.paper_claims.unclaimed_rows`
emits one verdict-less row per unclaimed family and the summary section
appends them.
"""

from repro.bench.paper_claims import (
    BEYOND_PAPER_EXPECTATIONS,
    CLAIMED_FAMILIES,
    cell_family,
    unclaimed_rows,
)
from repro.bench.report import _summary_section


class TestUnclaimedRows:
    def test_empty_manifest_has_no_rows(self):
        assert unclaimed_rows({}) == []

    def test_claimed_families_produce_no_rows(self):
        cells = {
            "fig7/aquila": {},
            "serve/aquila/none/a0": {},
            "serve/aquila/none/a6": {},
        }
        assert unclaimed_rows(cells) == []

    def test_unclaimed_family_renders_without_verdict(self):
        cells = {
            "figx/pmem/t1": {"throughput": 1.0},
            "figx/pmem/t4": {"throughput": 2.0},
            "serve/aquila/none/a0": {},
        }
        rows = unclaimed_rows(cells)
        assert len(rows) == 1
        experiment, claim, paper, measured, verdict = rows[0]
        assert experiment == "figx"
        assert "2 measured cells" in claim
        assert verdict == "", "unclaimed rows must carry no verdict"

    def test_families_sort_deterministically(self):
        cells = {"zeta/a": {}, "alpha/b": {}, "alpha/c": {}}
        assert [row[0] for row in unclaimed_rows(cells)] == ["alpha", "zeta"]

    def test_cell_family_is_first_component(self):
        assert cell_family("serve/aquila/static/a6") == "serve"
        assert cell_family("fig7/aquila") == "fig7"
        assert cell_family("standalone") == "standalone"


class TestClaimCoverage:
    def test_every_enumerated_family_is_claimed(self):
        # The full sweep grid must never regress into an unclaimed state:
        # new figure families either get pinned expectations or an
        # explicit CLAIMED_FAMILIES exemption is a review decision.
        from repro.bench.sweep import enumerate_cells

        families = {cell_family(c["cell_id"]) for c in enumerate_cells(scale="bench")}
        assert families <= CLAIMED_FAMILIES

    def test_serve_expectations_are_pinned(self):
        serve = [c for c in BEYOND_PAPER_EXPECTATIONS if c.experiment == "Serve"]
        assert len(serve) >= 3
        assert all(c.paper == "beyond paper" for c in serve)


class TestSummarySection:
    def test_summary_appends_unclaimed_rows(self, monkeypatch):
        # Isolate the section from the full claims table, which would
        # need a complete manifest.
        import repro.bench.paper_claims as pc

        monkeypatch.setattr(pc, "summary_rows", lambda cells: [])
        lines = _summary_section({"figx/pmem/t1": {}, "figx/pmem/t4": {}})
        text = "\n".join(lines)
        assert "figx" in text
        assert "2 measured cells (no pinned claim)" in text

    def test_summary_keeps_claimed_rows_first(self, monkeypatch):
        import repro.bench.paper_claims as pc

        monkeypatch.setattr(
            pc,
            "summary_rows",
            lambda cells: [("Fig X", "claimed", "1×", "1×", "=")],
        )
        lines = _summary_section({"figy/a": {}})
        text = "\n".join(lines)
        assert text.index("Fig X") < text.index("figy")

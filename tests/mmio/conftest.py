"""Shared engine fixtures for the mmio test suite."""

import pytest

from repro.bench.setups import make_aquila_stack, make_kmmap_stack, make_linux_stack

ENGINE_MAKERS = {
    "linux": make_linux_stack,
    "aquila": make_aquila_stack,
    "kmmap": make_kmmap_stack,
}


@pytest.fixture(params=sorted(ENGINE_MAKERS))
def engine_kind(request):
    """Parametrizes a test over all three mmio engines."""
    return request.param


@pytest.fixture
def make_stack(engine_kind):
    """Factory building a fresh stack of the parametrized engine kind."""

    def _make(cache_pages=64, device_kind="pmem", **kwargs):
        return ENGINE_MAKERS[engine_kind](
            device_kind, cache_pages=cache_pages, **kwargs
        )

    return _make

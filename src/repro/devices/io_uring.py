"""io_uring-style asynchronous I/O (paper Sections 3.3 and 7.1).

The paper leaves asynchronous device access as future work but describes
its trade-off precisely: "It allows batching in the issue path, with a
single system call initiating multiple I/O operations.  In the completion
path, it does not require any system calls as it uses shared memory ...
Asynchronous I/O reduces the required CPU cycles in the I/O path and
increases throughput in most cases.  However, it also increases tail
latency due to batching."

This model reproduces exactly that trade-off:

* a batch of N operations costs **one** syscall (``io_uring_enter``) plus
  a small per-SQE setup, instead of N full syscalls;
* completions are read from shared memory (no syscall, small per-CQE
  cost);
* all N operations are in flight together, so per-operation latency is
  measured from batch submission to each operation's completion — later
  completions in the batch push the tail up.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.devices.block import BlockDevice
from repro.fault.retry import RetryPolicy, with_retries
from repro.hw.vmx import VMXCostModel
from repro.sim.clock import CycleClock

#: CPU cycles to prepare one submission-queue entry.
SQE_PREP_CYCLES = 150

#: CPU cycles to reap one completion-queue entry from shared memory.
CQE_REAP_CYCLES = 120


class IoUringOp:
    """One operation in a submission batch."""

    __slots__ = ("offset", "nbytes", "is_write", "data", "result", "completion_cycles")

    def __init__(
        self, offset: int, nbytes: int, is_write: bool = False, data: Optional[bytes] = None
    ) -> None:
        self.offset = offset
        self.nbytes = nbytes
        self.is_write = is_write
        self.data = data
        self.result: Optional[bytes] = None
        self.completion_cycles: float = 0.0


class IoUring:
    """A submission/completion ring over one device."""

    def __init__(
        self,
        device: BlockDevice,
        vmx: VMXCostModel,
        queue_depth: int = 64,
        retry_policy: Optional[RetryPolicy] = None,
    ) -> None:
        if queue_depth <= 0:
            raise ValueError("queue depth must be positive")
        self.device = device
        self.vmx = vmx
        self.queue_depth = queue_depth
        self.retry_policy = retry_policy
        self.syscalls = 0
        self.ops_submitted = 0

    def submit_and_wait(
        self,
        clock: CycleClock,
        ops: Sequence[IoUringOp],
        category: str = "io.uring",
    ) -> List[IoUringOp]:
        """Submit a batch and wait for every completion.

        Returns the ops with ``result`` (reads) and ``completion_cycles``
        (absolute simulated completion time of each op) filled in —
        callers compute per-op latency from the batch's submit time.
        """
        if not ops:
            return []
        results: List[IoUringOp] = []
        for start in range(0, len(ops), self.queue_depth):
            chunk = ops[start : start + self.queue_depth]
            results.extend(self._submit_chunk(clock, list(chunk), category))
        return results

    def _submit_chunk(
        self, clock: CycleClock, chunk: List[IoUringOp], category: str
    ) -> List[IoUringOp]:
        # Prepare SQEs, then ONE io_uring_enter for the whole chunk.
        clock.charge(category + ".sqe", SQE_PREP_CYCLES * len(chunk))
        self.vmx.syscall(clock, category + ".enter")
        self.syscalls += 1
        self.ops_submitted += len(chunk)

        completions: List[Tuple[IoUringOp, float]] = []
        for op in chunk:
            # A failed SQE is reported through its CQE and resubmitted
            # individually (how io_uring callers handle -EAGAIN/-EIO);
            # the backoff is charged to the submitting thread.
            done_at = with_retries(
                clock,
                lambda op=op: self.device.submit_async(
                    clock, op.offset, op.nbytes, op.is_write, op.data
                ),
                category,
                self.retry_policy,
            )
            if not op.is_write:
                op.result = self.device.store.read(op.offset, op.nbytes)
            completions.append((op, done_at))

        # Completion path: poll shared memory, no syscalls.  The caller
        # blocks until the last CQE; each op records its own finish time.
        for op, done_at in completions:
            op.completion_cycles = done_at
        last = max(done_at for _, done_at in completions)
        clock.wait_until(last, "idle.io.uring")
        clock.charge(category + ".cqe", CQE_REAP_CYCLES * len(chunk))
        return chunk

    def read_batch(
        self, clock: CycleClock, offsets: Sequence[int], nbytes: int
    ) -> List[bytes]:
        """Convenience: batched fixed-size reads; returns their data."""
        ops = [IoUringOp(offset, nbytes) for offset in offsets]
        self.submit_and_wait(clock, ops)
        return [op.result for op in ops]

"""Red-black tree: full invariant checking plus model-based properties."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mem.rbtree import RBTree


class TestBasics:
    def test_empty(self):
        tree = RBTree()
        assert len(tree) == 0
        assert not tree
        assert tree.min_key() is None
        assert tree.max_key() is None
        assert tree.pop_min() is None
        assert 5 not in tree

    def test_insert_get(self):
        tree = RBTree()
        assert tree.insert(5, "five")
        assert not tree.insert(5, "FIVE")   # update, not new
        assert tree.get(5) == "FIVE"
        assert tree.get(6, "default") == "default"
        assert len(tree) == 1

    def test_remove(self):
        tree = RBTree()
        tree.insert(1, "a")
        assert tree.remove(1)
        assert not tree.remove(1)
        assert len(tree) == 0

    def test_sorted_iteration(self):
        tree = RBTree()
        for key in [5, 3, 8, 1, 9, 7]:
            tree.insert(key, key * 10)
        assert list(tree.keys()) == [1, 3, 5, 7, 8, 9]
        assert list(tree.items())[0] == (1, 10)

    def test_min_max(self):
        tree = RBTree()
        for key in [5, 3, 8]:
            tree.insert(key)
        assert tree.min_key() == 3
        assert tree.max_key() == 8

    def test_pop_min_drains_in_order(self):
        tree = RBTree()
        for key in [4, 2, 6]:
            tree.insert(key, str(key))
        assert tree.pop_min() == (2, "2")
        assert tree.pop_min() == (4, "4")
        assert tree.pop_min() == (6, "6")

    def test_ceiling_floor(self):
        tree = RBTree()
        for key in [10, 20, 30]:
            tree.insert(key, key)
        assert tree.ceiling(15) == (20, 20)
        assert tree.ceiling(20) == (20, 20)
        assert tree.ceiling(31) is None
        assert tree.floor(25) == (20, 20)
        assert tree.floor(10) == (10, 10)
        assert tree.floor(9) is None


class TestInvariants:
    def test_invariants_random_workload(self):
        rng = random.Random(99)
        tree = RBTree()
        model = {}
        for _ in range(2000):
            key = rng.randrange(300)
            if rng.random() < 0.6:
                tree.insert(key, key)
                model[key] = key
            else:
                assert tree.remove(key) == (key in model)
                model.pop(key, None)
            if rng.random() < 0.02:
                tree.validate()
        tree.validate()
        assert sorted(model) == list(tree.keys())

    def test_ascending_insert_stays_balanced(self):
        """Sequential inserts (the rb-tree's classic worst case)."""
        tree = RBTree()
        for key in range(1000):
            tree.insert(key)
        tree.validate()
        assert list(tree.keys()) == list(range(1000))

    def test_descending_insert(self):
        tree = RBTree()
        for key in range(1000, 0, -1):
            tree.insert(key)
        tree.validate()


@settings(max_examples=200)
@given(st.lists(st.tuples(st.booleans(), st.integers(0, 100)), max_size=80))
def test_model_equivalence(operations):
    """The tree behaves exactly like a dict + sorted()."""
    tree = RBTree()
    model = {}
    for is_insert, key in operations:
        if is_insert:
            assert tree.insert(key, key) == (key not in model)
            model[key] = key
        else:
            assert tree.remove(key) == (key in model)
            model.pop(key, None)
    tree.validate()
    assert list(tree.keys()) == sorted(model)
    assert len(tree) == len(model)
    for key in model:
        assert tree.get(key) == model[key]


@settings(max_examples=100)
@given(st.sets(st.integers(0, 10_000), min_size=1, max_size=60),
       st.integers(0, 10_000))
def test_ceiling_floor_properties(keys, probe):
    tree = RBTree()
    for key in keys:
        tree.insert(key, key)
    ceiling = tree.ceiling(probe)
    floor = tree.floor(probe)
    above = sorted(k for k in keys if k >= probe)
    below = sorted(k for k in keys if k <= probe)
    assert (ceiling[0] if ceiling else None) == (above[0] if above else None)
    assert (floor[0] if floor else None) == (below[-1] if below else None)

"""VMX mode/ring cost model: traps, vmexits, vmcalls, syscalls.

This module is the heart of the paper's performance argument.  A Linux
application lives in (root) ring 3 and pays 1287 cycles to trap into the
kernel for every page fault.  An Aquila application lives in VMX non-root
ring 0, where a page-fault exception is delivered in 552 cycles without a
protection-domain switch (paper Section 6.4, Figure 8(a)).  The prices of
the four transition types are centralized here along with counters so
benchmarks can report how often each was taken.
"""

from __future__ import annotations

from enum import Enum

from repro.common import constants
from repro.obs import METRICS
from repro.sim.clock import CycleClock


class ExecutionDomain(Enum):
    """Where the application code runs."""

    ROOT_RING3 = "root-ring3"          # normal Linux process
    NONROOT_RING0 = "nonroot-ring0"    # Aquila / Dune guest


class VMXCostModel:
    """Charges protection-domain transition costs and counts them."""

    def __init__(self, domain: ExecutionDomain) -> None:
        self.domain = domain
        self.traps = 0
        self.syscalls = 0
        self.vmcalls = 0
        self.vmexits = 0
        METRICS.bind_object(
            f"vmx.{domain.value}",
            self,
            {
                "traps": "traps",
                "syscalls": "syscalls",
                "vmcalls": "vmcalls",
                "vmexits": "vmexits",
            },
        )

    def fault_entry(self, clock: CycleClock, category: str = "fault.trap") -> None:
        """Deliver a page-fault exception to the handler.

        Ring 3 pays the full kernel trap; non-root ring 0 pays only
        exception delivery on the alternate stack (Section 4.2).
        """
        self.traps += 1
        # No span here: this single charge runs on every fault and stays
        # visible as a charge category on the enclosing "fault" span.
        if self.domain is ExecutionDomain.ROOT_RING3:
            clock.charge(category, constants.TRAP_RING3_CYCLES)
        else:
            clock.charge(category, constants.TRAP_AQUILA_CYCLES)

    def syscall(self, clock: CycleClock, category: str = "syscall") -> None:
        """One system call to the kernel the application runs under.

        From non-root ring 0 a call that must reach the *host* OS is a
        vmcall (Section 4.4); intercepted calls never come through here —
        they are plain function calls inside Aquila.
        """
        self.syscalls += 1
        if self.domain is ExecutionDomain.ROOT_RING3:
            clock.charge(category, constants.SYSCALL_CYCLES)
        else:
            self.vmcalls += 1
            self.vmexits += 1
            clock.charge(category, constants.VMCALL_CYCLES)

    def vmexit(self, clock: CycleClock, category: str = "vmexit") -> None:
        """An explicit vmexit (only meaningful for non-root execution)."""
        self.vmexits += 1
        clock.charge(category, constants.VMEXIT_CYCLES)

    def trap_cost(self) -> int:
        """Cycles one fault-entry transition costs in this domain."""
        if self.domain is ExecutionDomain.ROOT_RING3:
            return constants.TRAP_RING3_CYCLES
        return constants.TRAP_AQUILA_CYCLES

"""I/O access paths: the different ways software reaches a device.

The same physical device can be reached through paths with very different
software cost (paper Figure 8(c)):

=================  =========================================================
Path               Cost structure
=================  =========================================================
kernel-fault       inside the kernel's own fault handler: device service
                   only (Linux mmio miss path)
host-syscall       read/write syscall (or vmcall from non-root ring 0) +
                   VFS/direct-I/O setup + device service (+ IRQ completion
                   for interrupt-driven devices)
spdk               user-space polled queue pair: doorbell + busy-poll until
                   completion, no kernel involvement
dax                load/store window: a memcpy with the caller's copy
                   strategy, no commands at all
=================  =========================================================

All paths move real data through the device's backing store.
"""

from __future__ import annotations

from typing import Optional

from repro.common import constants
from repro.devices.block import BlockDevice
from repro.devices.pmem import PmemDevice
from repro.fault.retry import RetryPolicy, with_retries
from repro.hw.fpu import FPUContext
from repro.hw.vmx import VMXCostModel
from repro.sim.clock import CycleClock


class IOPath:
    """Abstract device access path.

    All paths share the transient-fault policy of :mod:`repro.fault`:
    a command failing with a retryable error is reissued with backoff
    (cycles charged to the caller) before escalating — degraded runs
    stay cycle-accounted instead of dying on the first hiccup.
    """

    name = "abstract"

    #: Retry policy for transient device faults (None = stack default).
    retry_policy: Optional[RetryPolicy] = None

    def read(
        self, clock: CycleClock, offset: int, nbytes: int, category: str = "io"
    ) -> bytes:
        """Read ``nbytes`` at ``offset``; blocks the clock for the path cost."""
        raise NotImplementedError

    def write(
        self, clock: CycleClock, offset: int, data: bytes, category: str = "io"
    ) -> None:
        """Write ``data`` at ``offset``; blocks the clock for the path cost."""
        raise NotImplementedError


class KernelFaultIO(IOPath):
    """Device access from inside the kernel fault handler (no syscall).

    Interrupt-driven devices (NVMe) still pay the IRQ completion +
    block-and-wake overhead; pmem completes synchronously in the
    submitter's context for free.
    """

    name = "kernel-fault"

    def __init__(self, device: BlockDevice, interrupt_driven: Optional[bool] = None) -> None:
        self.device = device
        if interrupt_driven is None:
            interrupt_driven = not isinstance(device, PmemDevice)
        self.interrupt_driven = interrupt_driven

    def _completion_overhead(self, clock: CycleClock, category: str) -> None:
        if self.interrupt_driven:
            clock.charge(category + ".irq", constants.HOST_NVME_COMPLETION_CYCLES)

    def read(self, clock: CycleClock, offset: int, nbytes: int, category: str = "io") -> bytes:
        data = with_retries(
            clock,
            lambda: self.device.submit(
                clock, offset, nbytes, is_write=False,
                wait_category="idle." + category + ".device",
            ),
            category,
            self.retry_policy,
        )
        self._completion_overhead(clock, category)
        return data

    def write(self, clock: CycleClock, offset: int, data: bytes, category: str = "io") -> None:
        with_retries(
            clock,
            lambda: self.device.submit(
                clock,
                offset,
                len(data),
                is_write=True,
                data=data,
                wait_category="idle." + category + ".device",
            ),
            category,
            self.retry_policy,
        )
        self._completion_overhead(clock, category)


class HostSyscallIO(IOPath):
    """Explicit direct-I/O syscalls to the host OS.

    From ring 3 this is a plain syscall; from VMX non-root ring 0 the same
    request becomes a vmcall, which is why Aquila avoids this path in the
    common case (paper Sections 3.3 and 4.4).
    """

    name = "host-syscall"

    def __init__(self, device: BlockDevice, vmx: VMXCostModel, interrupt_driven: Optional[bool] = None) -> None:
        self.device = device
        self.vmx = vmx
        if interrupt_driven is None:
            # pmem completes synchronously in the submitter's context;
            # NVMe completions arrive by interrupt.
            interrupt_driven = not isinstance(device, PmemDevice)
        self.interrupt_driven = interrupt_driven

    def _syscall_overhead(self, clock: CycleClock, category: str) -> None:
        self.vmx.syscall(clock, category + ".syscall")
        clock.charge(category + ".vfs", constants.HOST_DIRECT_IO_SETUP_CYCLES)

    def _completion_overhead(self, clock: CycleClock, category: str) -> None:
        if self.interrupt_driven:
            clock.charge(category + ".irq", constants.HOST_NVME_COMPLETION_CYCLES)

    def read(self, clock: CycleClock, offset: int, nbytes: int, category: str = "io") -> bytes:
        self._syscall_overhead(clock, category)
        # Retries happen inside the kernel block layer: no extra syscall.
        data = with_retries(
            clock,
            lambda: self.device.submit(
                clock, offset, nbytes, is_write=False,
                wait_category="idle." + category + ".device",
            ),
            category,
            self.retry_policy,
        )
        self._completion_overhead(clock, category)
        return data

    def write(self, clock: CycleClock, offset: int, data: bytes, category: str = "io") -> None:
        self._syscall_overhead(clock, category)
        with_retries(
            clock,
            lambda: self.device.submit(
                clock,
                offset,
                len(data),
                is_write=True,
                data=data,
                wait_category="idle." + category + ".device",
            ),
            category,
            self.retry_policy,
        )
        self._completion_overhead(clock, category)


class SpdkIO(IOPath):
    """SPDK polled-mode access: no syscalls, busy-poll for completion.

    Polling burns CPU while waiting (charged as ``.poll`` rather than idle)
    — the known trade-off of kernel-bypass frameworks the paper discusses
    in Section 7.1.
    """

    name = "spdk"

    def __init__(self, device: BlockDevice) -> None:
        self.device = device

    def read(self, clock: CycleClock, offset: int, nbytes: int, category: str = "io") -> bytes:
        # A user-space resubmission pays the doorbell again, so the whole
        # submit/poll sequence sits inside the retry loop.
        def attempt() -> bytes:
            clock.charge(category + ".submit", constants.SPDK_SUBMIT_CYCLES)
            return self.device.submit(
                clock, offset, nbytes, is_write=False, wait_category=category + ".poll"
            )

        data = with_retries(clock, attempt, category, self.retry_policy)
        clock.charge(category + ".complete", constants.SPDK_COMPLETION_CYCLES)
        return data

    def write(self, clock: CycleClock, offset: int, data: bytes, category: str = "io") -> None:
        def attempt() -> None:
            clock.charge(category + ".submit", constants.SPDK_SUBMIT_CYCLES)
            self.device.submit(
                clock,
                offset,
                len(data),
                is_write=True,
                data=data,
                wait_category=category + ".poll",
            )

        with_retries(clock, attempt, category, self.retry_policy)
        clock.charge(category + ".complete", constants.SPDK_COMPLETION_CYCLES)


class DaxIO(IOPath):
    """DAX load/store access to a pmem device: just a memcpy.

    Aquila's optimized path: AVX2 streaming copy + FPU save/restore = 1200
    cycles per 4 KB page (paper Section 3.3).
    """

    name = "dax"

    def __init__(self, device: PmemDevice, use_simd: bool = True) -> None:
        if not isinstance(device, PmemDevice):
            raise TypeError("DAX requires a byte-addressable (pmem) device")
        self.device = device
        self.fpu = FPUContext(use_simd=use_simd)

    def read(self, clock: CycleClock, offset: int, nbytes: int, category: str = "io") -> bytes:
        return with_retries(
            clock,
            lambda: self.device.dax_read(clock, self.fpu, offset, nbytes, category + ".dax"),
            category,
            self.retry_policy,
        )

    def write(self, clock: CycleClock, offset: int, data: bytes, category: str = "io") -> None:
        with_retries(
            clock,
            lambda: self.device.dax_write(clock, self.fpu, offset, data, category + ".dax"),
            category,
            self.retry_policy,
        )

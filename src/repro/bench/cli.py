"""Command-line experiment runner: ``python -m repro.bench <experiment>``.

Regenerates any of the paper's figures without pytest, printing the same
tables the benchmark suite does.  ``list`` shows what is available.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List

from repro.bench.report import Table


def _run_fig5(args) -> None:
    from repro.bench.experiments.fig5 import run_fig5a, run_fig5b

    runner = run_fig5a if args.experiment == "fig5a" else run_fig5b
    results = runner(thread_counts=args.threads)
    table = Table(
        f"{args.experiment}: RocksDB YCSB-C throughput (ops/s)",
        ["device", "threads", "read/write", "mmap", "aquila"],
    )
    for device, rows in results.items():
        for row in rows:
            table.add_row(
                device,
                row["threads"],
                row["direct"]["throughput"],
                row["mmap"]["throughput"],
                row["aquila"]["throughput"],
            )
    table.show()


def _run_fig6(args) -> None:
    from repro.bench.experiments.fig6 import run_fig6a, run_fig6b

    runner = run_fig6a if args.experiment == "fig6a" else run_fig6b
    rows = runner(thread_counts=args.threads)
    table = Table(
        f"{args.experiment}: Ligra BFS execution time (ms)",
        ["threads", "mmap-pmem", "aquila-pmem", "dram", "speedup"],
    )
    for row in rows:
        table.add_row(
            row["threads"],
            row["linux-pmem"]["execution_seconds"] * 1000,
            row["aquila-pmem"]["execution_seconds"] * 1000,
            row["dram--"]["execution_seconds"] * 1000,
            row["speedup_pmem"],
        )
    table.show()


def _run_fig7(args) -> None:
    from repro.bench.experiments.fig7 import run_fig7

    results = run_fig7()
    table = Table(
        "fig7: RocksDB cycles per get",
        ["section", "explicit I/O", "aquila"],
    )
    for section in ("device_io", "cache_mgmt", "get", "total"):
        table.add_row(
            section,
            results["direct"]["sections"][section],
            results["aquila"]["sections"][section],
        )
    table.show()
    print(f"cache-mgmt ratio: {results['cache_mgmt_ratio']:.2f}x (paper 2.58x)")
    print(f"throughput gain:  {results['throughput_gain']:.2f}x (paper 1.40x)")


def _run_fig8(args) -> None:
    from repro.bench.experiments.fig8 import run_fig8a, run_fig8b, run_fig8c

    if args.experiment == "fig8c":
        results = run_fig8c()
        table = Table("fig8c: Aquila device-access paths", ["path", "cycles/fault"])
        for label in ("Cache-Hit", "DAX-pmem", "HOST-pmem", "SPDK-NVMe", "HOST-NVMe"):
            table.add_row(label, results[label])
        table.show()
        return
    runner = run_fig8a if args.experiment == "fig8a" else run_fig8b
    results = runner()
    key = "mean_access_cycles" if args.experiment == "fig8a" else "steady_mean_cycles"
    table = Table(
        f"{args.experiment}: mean fault cost (cycles)", ["engine", "cycles"]
    )
    table.add_row("linux-mmap", results["linux"][key])
    table.add_row("aquila", results["aquila"][key])
    table.show()


def _run_fig9(args) -> None:
    from repro.bench.experiments.fig9 import run_fig9

    rows = run_fig9(workloads=args.workloads)
    table = Table(
        "fig9: Kreon kmmap vs Aquila",
        ["device", "workload", "thr ratio", "avg-lat ratio", "p99.9 ratio"],
    )
    for row in rows:
        table.add_row(
            row["device"],
            row["workload"],
            row["throughput_ratio"],
            row["avg_latency_ratio"],
            row["p999_ratio"],
        )
    table.show()


def _run_fig10(args) -> None:
    from repro.bench.experiments.fig10 import run_fig10a, run_fig10b

    runner = run_fig10a if args.experiment == "fig10a" else run_fig10b
    results = runner(thread_counts=args.threads)
    for mode in ("shared", "private"):
        table = Table(
            f"{args.experiment} ({mode} file): throughput (ops/s)",
            ["threads", "linux", "aquila", "speedup"],
        )
        for row in results[mode]:
            table.add_row(
                row["threads"],
                row["linux"]["throughput"],
                row["aquila"]["throughput"],
                row["speedup"],
            )
        table.show()


def parse_fault_spec(spec: str):
    """Parse a ``--faults`` SPEC string into ``(seed, FaultSpec)``.

    Keys: ``seed`` (plan seed, default 42), ``error``/``latency``/``torn``
    (rates), ``spike`` (latency spike cycles), ``max`` (per-device cap).
    """
    from repro.fault.plan import DEFAULT_LATENCY_SPIKE_CYCLES, FaultSpec

    seed = 42
    kwargs = {
        "error_rate": 0.0,
        "latency_rate": 0.0,
        "torn_rate": 0.0,
        "latency_spike_cycles": DEFAULT_LATENCY_SPIKE_CYCLES,
        "max_faults_per_device": None,
    }
    for item in spec.split(","):
        item = item.strip()
        if not item:
            continue
        if "=" not in item:
            raise ValueError(f"--faults item {item!r} is not key=value")
        key, _, value = item.partition("=")
        key = key.strip()
        value = value.strip()
        if key == "seed":
            seed = int(value)
        elif key == "error":
            kwargs["error_rate"] = float(value)
        elif key == "latency":
            kwargs["latency_rate"] = float(value)
        elif key == "torn":
            kwargs["torn_rate"] = float(value)
        elif key == "spike":
            kwargs["latency_spike_cycles"] = float(value)
        elif key == "max":
            kwargs["max_faults_per_device"] = int(value)
        else:
            raise ValueError(f"unknown --faults key {key!r}")
    return seed, FaultSpec(**kwargs)


EXPERIMENTS: Dict[str, Callable] = {
    "fig5a": _run_fig5,
    "fig5b": _run_fig5,
    "fig6a": _run_fig6,
    "fig6b": _run_fig6,
    "fig7": _run_fig7,
    "fig8a": _run_fig8,
    "fig8b": _run_fig8,
    "fig8c": _run_fig8,
    "fig9": _run_fig9,
    "fig10a": _run_fig10,
    "fig10b": _run_fig10,
}


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate figures of 'Memory-Mapped I/O on Steroids'.",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["list"],
        help="which figure to regenerate (or 'list')",
    )
    parser.add_argument(
        "--threads",
        type=int,
        nargs="+",
        default=None,
        help="thread counts for sweep experiments",
    )
    parser.add_argument(
        "--workloads",
        type=str,
        nargs="+",
        default=None,
        help="YCSB workloads for fig9 (default: all of A-F)",
    )
    parser.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="record a cycle trace and write Chrome trace-event JSON to PATH",
    )
    parser.add_argument(
        "--faults",
        metavar="SPEC",
        default=None,
        help=(
            "inject deterministic device faults, e.g. "
            "'seed=42,error=0.01,latency=0.02,torn=0.005,spike=240000,max=100'"
        ),
    )
    parser.add_argument(
        "--metrics",
        action="store_true",
        help="collect counters/gauges/histograms and print a metrics table",
    )
    return parser


def main(argv: List[str] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.experiment == "list":
        print("available experiments:")
        for name in sorted(EXPERIMENTS):
            print(f"  {name}")
        return 0
    if args.trace or args.metrics:
        from repro import obs

        if args.trace:
            # Fail fast on an unwritable path instead of after the run.
            try:
                with open(args.trace, "a"):
                    pass
            except OSError as exc:
                print(f"error: cannot write trace to {args.trace}: {exc}", file=sys.stderr)
                return 2
            obs.enable_tracing()
        if args.metrics:
            # Must precede stack construction: components bind at __init__.
            obs.enable_metrics()
    fault_plan = None
    if args.faults:
        from repro.fault.plan import FaultPlan, install_plan

        try:
            seed, spec = parse_fault_spec(args.faults)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        # Must precede stack construction: devices attach injectors at
        # __init__ from the installed plan.
        fault_plan = FaultPlan(seed, spec)
        install_plan(fault_plan)
    try:
        EXPERIMENTS[args.experiment](args)
    finally:
        if fault_plan is not None:
            from repro.fault.plan import clear_plan

            clear_plan()
    if fault_plan is not None:
        print(f"faults: {fault_plan.total_faults()} injected (seed {fault_plan.seed})")
        for device, counts in sorted(fault_plan.summary().items()):
            print(
                f"  {device}: {counts['ops_seen']} ops seen, "
                f"{counts['errors']} errors, {counts['latency']} latency spikes, "
                f"{counts['torn']} torn writes"
            )
    if args.trace:
        from repro import obs

        events = obs.write_trace(args.trace)
        print(f"trace: wrote {events} events to {args.trace}")
        if obs.TRACER.dropped:
            print(f"trace: ring buffer dropped {obs.TRACER.dropped} oldest spans")
    if args.metrics:
        from repro import obs
        from repro.bench.report import metrics_table

        metrics_table(obs.METRICS.snapshot()).show()
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Figure 7: RocksDB read-path cycle breakdown (paper Section 6.3)."""

from repro.bench.experiments.fig7 import run_fig7
from repro.bench.report import Table, print_claims, ratio_line

PAPER = {
    "direct": {"device_io": 4800, "cache_mgmt": 45200, "get": 15300, "total": 65400},
    "aquila": {"device_io": 3900, "cache_mgmt": 17500, "get": 18500, "total": 39900},
}


def test_fig7_cycle_breakdown(once):
    """Aquila needs ~2.58x fewer cache-management cycles, ~40% more throughput."""
    results = once(run_fig7)

    table = Table(
        "Figure 7: RocksDB cycles per get (YCSB-C, dataset 4x cache, pmem)",
        ["section", "explicit I/O", "paper", "aquila", "paper "],
    )
    for section in ["device_io", "cache_mgmt", "get", "total"]:
        table.add_row(
            section,
            results["direct"]["sections"][section],
            PAPER["direct"][section],
            results["aquila"]["sections"][section],
            PAPER["aquila"][section],
        )
    table.show()

    print_claims(
        "Figure 7 paper-vs-measured",
        [
            ratio_line("cache-mgmt cycles direct/aquila", 2.58, results["cache_mgmt_ratio"]),
            ratio_line("throughput aquila/direct", 1.40, results["throughput_gain"]),
        ],
    )

    # The sections are folded from a real traced run (repro.obs spans);
    # the span-derived total must agree with the cycles the engines
    # actually charged on the runner's clock to within 1%.
    for mode in ("direct", "aquila"):
        traced = results[mode]["trace_total_cycles"]
        charged = results[mode]["charged_total_cycles"]
        assert charged > 0
        assert abs(traced - charged) / charged < 0.01, (mode, traced, charged)

    direct = results["direct"]["sections"]
    aquila = results["aquila"]["sections"]
    # Cache management dominates the explicit-I/O read path (~69% in paper).
    assert direct["cache_mgmt"] / direct["total"] > 0.5
    # Aquila cuts cache management by at least 2x (paper: 2.58x).
    assert results["cache_mgmt_ratio"] > 2.0
    # Aquila's get CPU is higher (TLB pressure) but its total is lower.
    assert aquila["get"] >= direct["get"]
    assert aquila["total"] < direct["total"]
    # End-to-end throughput improves by >=25% (paper: 40%).
    assert results["throughput_gain"] > 1.25
    # Aquila device I/O is cheaper thanks to the SIMD memcpy.
    assert aquila["device_io"] < direct["device_io"]

"""Shared benchmark configuration.

Every benchmark regenerates one table or figure of the paper and prints
the same rows/series the paper reports (run with ``-s`` to see them).
Shapes — who wins, by roughly what factor, where crossovers fall — are
asserted; absolute numbers are simulated cycles at 2.4 GHz.
"""

import pytest


@pytest.fixture
def once(benchmark):
    """Run the experiment exactly once under pytest-benchmark timing.

    The experiments are deterministic simulations; repeated rounds would
    only re-measure Python overhead.
    """

    def _run(func, *args, **kwargs):
        return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return _run

#!/usr/bin/env python3
"""Trace replay and batched MultiGet: the extension APIs.

Replays a recorded workload trace against RocksDB, then compares
point-lookup batching: one-at-a-time gets vs MultiGet over an
io_uring-backed environment (the paper's future-work async path).

Run:  python examples/trace_and_multiget.py
"""

from repro.bench.report import Table
from repro.common import units
from repro.devices.io_uring import IoUring
from repro.devices.pmem import PmemDevice
from repro.hw.machine import Machine
from repro.hw.vmx import ExecutionDomain, VMXCostModel
from repro.kv.env import DirectIOEnv
from repro.kv.rocksdb import RocksDB
from repro.mmio.explicit import ExplicitIOEngine
from repro.mmio.files import ExtentAllocator
from repro.sim.executor import SimThread
from repro.workloads.trace import TraceReplayer, parse_trace, synthesize_trace


def build_db(with_uring: bool):
    device = PmemDevice(capacity_bytes=512 * units.MIB)
    io = ExplicitIOEngine(Machine(), cache_pages=128)
    ring = (
        IoUring(device, VMXCostModel(ExecutionDomain.ROOT_RING3), queue_depth=64)
        if with_uring
        else None
    )
    env = DirectIOEnv(io, ExtentAllocator(device), io_uring=ring)
    return RocksDB(env, memtable_bytes=32 * units.KIB, sst_bytes=64 * units.KIB)


def trace_replay_demo() -> None:
    db = build_db(with_uring=False)
    thread = SimThread(core=0)
    # A hand-written trace plus a synthesized tail.
    ops = parse_trace(
        """
        # warm a few keys
        PUT user-alpha 256
        PUT user-beta 256
        GET user-alpha
        DELETE user-beta
        GET user-beta
        SCAN user- 10
        """
    )
    ops += synthesize_trace(500, keyspace=200, read_fraction=0.7, seed=9)
    stats = TraceReplayer(db, ops).replay(thread)
    print(
        f"trace replay: {stats.operations} ops "
        f"({stats.gets} gets, {stats.puts} puts, {stats.deletes} deletes, "
        f"{stats.scans} scans), {stats.not_found} not-found, "
        f"{units.cycles_to_seconds(thread.clock.now) * 1000:.2f} simulated ms"
    )


def multiget_demo() -> None:
    table = Table(
        "Point lookups: 200 cold keys, one-at-a-time vs MultiGet",
        ["method", "simulated ms", "batch syscalls"],
    )
    for label, with_uring, batched in (
        ("get() loop", False, False),
        ("multi_get()", True, True),
    ):
        db = build_db(with_uring)
        thread = SimThread(core=0)
        for i in range(2000):
            db.put(thread, b"key-%05d" % i, b"v" * 200)
        db.flush(thread)
        db.compact_all(thread)
        keys = [b"key-%05d" % i for i in range(0, 2000, 10)]
        start = thread.clock.now
        if batched:
            results = db.multi_get(thread, keys)
        else:
            results = [db.get(thread, key) for key in keys]
        assert all(value is not None for value in results)
        syscalls = db.env.io_uring.vmx.syscalls if db.env.io_uring else "n/a"
        table.add_row(
            label,
            units.cycles_to_seconds(thread.clock.now - start) * 1000,
            syscalls,
        )
    table.show()


if __name__ == "__main__":
    trace_replay_demo()
    multiget_demo()

"""File-resident B+tree index (Kreon's per-level index, paper Section 5).

Kreon "uses a log to store all keys and values and a B-Tree index per
level for indexing".  The index nodes live *inside the memory-mapped
volume*, so every node visited during a lookup is an mmio access — a
page-cache hit costs nothing, a miss costs a page fault.  That is exactly
the access pattern the paper exercises with kmmap/Aquila.

Trees are immutable once built (Kreon levels are written by spills), so
construction is a bottom-up bulk load of sorted (key, log-pointer) pairs.
Node layout (one 4 KiB page per node)::

    [u8 is_leaf][u16 count] then count * ([u16 klen][key][u64 pointer])

For leaves the pointer is a value-log offset; for internal nodes it is the
page number of the child.
"""

from __future__ import annotations

import struct
from bisect import bisect_left
from typing import Iterator, List, Optional, Tuple

from repro.common import units
from repro.mmio.engine import Mapping
from repro.sim.executor import SimThread

_HEADER = struct.Struct("<BH")
_ENTRY_FIXED = struct.Struct("<HQ")

NODE_SIZE = units.PAGE_SIZE


def _encode_node(is_leaf: bool, entries: List[Tuple[bytes, int]]) -> bytes:
    parts = [_HEADER.pack(1 if is_leaf else 0, len(entries))]
    for key, pointer in entries:
        parts.append(_ENTRY_FIXED.pack(len(key), pointer))
        parts.append(key)
    blob = b"".join(parts)
    if len(blob) > NODE_SIZE:
        raise ValueError("node overflow")
    return blob.ljust(NODE_SIZE, b"\x00")


def _decode_node(blob: bytes) -> Tuple[bool, List[Tuple[bytes, int]]]:
    is_leaf, count = _HEADER.unpack_from(blob, 0)
    pos = _HEADER.size
    entries = []
    for _ in range(count):
        klen, pointer = _ENTRY_FIXED.unpack_from(blob, pos)
        pos += _ENTRY_FIXED.size
        key = bytes(blob[pos : pos + klen])
        pos += klen
        entries.append((key, pointer))
    return bool(is_leaf), entries


def node_capacity(key_len: int) -> int:
    """How many entries of ``key_len``-byte keys fit in one node."""
    per_entry = _ENTRY_FIXED.size + key_len
    return (NODE_SIZE - _HEADER.size) // per_entry


class PageAllocator:
    """Allocates index pages from the top of the volume downward.

    Kreon manages its single file/device with a custom allocator
    (Section 5); the log grows from the bottom, index pages from the top.
    """

    def __init__(self, volume_pages: int) -> None:
        self._next = volume_pages - 1
        self.allocated: List[int] = []

    def allocate(self) -> int:
        """Next free index page (from the top)."""
        page = self._next
        self._next -= 1
        self.allocated.append(page)
        return page

    @property
    def low_water_page(self) -> int:
        """Lowest index page handed out (collision check vs the log)."""
        return self._next + 1


class FileBTree:
    """Immutable bulk-loaded B+tree stored in a mapping."""

    def __init__(self, mapping: Mapping, root_page: Optional[int], height: int,
                 first_key: Optional[bytes], last_key: Optional[bytes],
                 entry_count: int) -> None:
        self.mapping = mapping
        self.root_page = root_page
        self.height = height
        self.first_key = first_key
        self.last_key = last_key
        self.entry_count = entry_count
        self.node_reads = 0

    @classmethod
    def build(
        cls,
        thread: SimThread,
        mapping: Mapping,
        allocator: PageAllocator,
        sorted_entries: List[Tuple[bytes, int]],
        fanout: Optional[int] = None,
    ) -> "FileBTree":
        """Bulk-load ``sorted_entries`` (strictly increasing keys)."""
        if not sorted_entries:
            return cls(mapping, None, 0, None, None, 0)
        if fanout is None:
            max_key = max(len(key) for key, _ in sorted_entries)
            fanout = max(4, node_capacity(max_key))

        def write_level(entries: List[Tuple[bytes, int]], is_leaf: bool) -> List[Tuple[bytes, int]]:
            parents: List[Tuple[bytes, int]] = []
            for start in range(0, len(entries), fanout):
                chunk = entries[start : start + fanout]
                page = allocator.allocate()
                mapping.store(
                    thread, page * units.PAGE_SIZE, _encode_node(is_leaf, chunk)
                )
                parents.append((chunk[-1][0], page))
            return parents

        level = write_level(sorted_entries, is_leaf=True)
        height = 1
        while len(level) > 1:
            level = write_level(level, is_leaf=False)
            height += 1
        return cls(
            mapping,
            root_page=level[0][1],
            height=height,
            first_key=sorted_entries[0][0],
            last_key=sorted_entries[-1][0],
            entry_count=len(sorted_entries),
        )

    def _read_node(self, thread: SimThread, page: int) -> Tuple[bool, List[Tuple[bytes, int]]]:
        self.node_reads += 1
        blob = self.mapping.load(thread, page * units.PAGE_SIZE, NODE_SIZE)
        return _decode_node(blob)

    def lookup(self, thread: SimThread, key: bytes) -> Optional[int]:
        """Log-pointer for ``key`` or None (each node visit is mmio)."""
        if self.root_page is None:
            return None
        if self.first_key is not None and not self.first_key <= key <= self.last_key:
            return None
        page = self.root_page
        while True:
            is_leaf, entries = self._read_node(thread, page)
            keys = [k for k, _ in entries]
            if is_leaf:
                slot = bisect_left(keys, key)
                if slot < len(keys) and keys[slot] == key:
                    return entries[slot][1]
                return None
            # Internal keys are the last key of each child: descend into
            # the first child whose last key >= the search key.
            slot = bisect_left(keys, key)
            if slot >= len(entries):
                return None
            page = entries[slot][1]

    def _leaf_pages(self, thread: SimThread) -> Iterator[List[Tuple[bytes, int]]]:
        """All leaves left-to-right (spill input / scans)."""
        if self.root_page is None:
            return

        def walk(page: int) -> Iterator[List[Tuple[bytes, int]]]:
            is_leaf, entries = self._read_node(thread, page)
            if is_leaf:
                yield entries
            else:
                for _, child in entries:
                    yield from walk(child)

        yield from walk(self.root_page)

    def items(self, thread: SimThread) -> Iterator[Tuple[bytes, int]]:
        """All (key, pointer) pairs in key order."""
        for leaf in self._leaf_pages(thread):
            yield from leaf

    def scan_from(self, thread: SimThread, start: bytes, count: int) -> List[Tuple[bytes, int]]:
        """Up to ``count`` (key, pointer) pairs with key >= start."""
        out: List[Tuple[bytes, int]] = []
        for leaf in self._leaf_pages(thread):
            if leaf and leaf[-1][0] < start:
                continue
            for key, pointer in leaf:
                if key >= start:
                    out.append((key, pointer))
                    if len(out) >= count:
                        return out
        return out

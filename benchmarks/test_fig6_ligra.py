"""Figure 6: extending the application heap over fast storage (Ligra BFS)."""

import pytest

from repro.bench.experiments.fig6 import run_fig6a, run_fig6b, run_fig6c
from repro.bench.report import Table, print_claims, ratio_line

PAPER_SPEEDUPS_8GB = {1: 1.56, 8: 2.54, 16: 4.14}
THREADS = [1, 8, 16]
VERTICES = 25000


def _show(rows, title):
    table = Table(
        title,
        ["threads", "mmap-pmem ms", "aquila-pmem ms", "mmap-nvme ms",
         "aquila-nvme ms", "dram ms", "aq-speedup(pmem)"],
    )
    for row in rows:
        table.add_row(
            row["threads"],
            row["linux-pmem"]["execution_seconds"] * 1000,
            row["aquila-pmem"]["execution_seconds"] * 1000,
            row["linux-nvme"]["execution_seconds"] * 1000,
            row["aquila-nvme"]["execution_seconds"] * 1000,
            row["dram--"]["execution_seconds"] * 1000,
            row["speedup_pmem"],
        )
    table.show()


def test_fig6a_small_cache(once):
    """8 GB-equivalent cache: Aquila up to ~4.14x faster than mmap at 16t."""
    rows = once(run_fig6a, num_vertices=VERTICES, thread_counts=THREADS)
    _show(rows, "Figure 6(a): BFS execution time, small (8GB-equiv) DRAM cache")

    claims = []
    for row in rows:
        claims.append(
            ratio_line(
                f"aquila/mmap speedup @{row['threads']}t",
                PAPER_SPEEDUPS_8GB[row["threads"]],
                row["speedup_pmem"],
            )
        )
        claims.append(
            ratio_line(
                f"mmap slowdown vs DRAM @{row['threads']}t (paper up to 11.8x)",
                None,
                row["mmap_vs_dram"],
            )
        )
    print_claims("Figure 6(a) paper-vs-measured", claims)

    by_threads = {row["threads"]: row for row in rows}
    # Aquila beats mmap at every thread count.
    for row in rows:
        assert row["speedup_pmem"] > 1.1, f"@{row['threads']}t Aquila must win"
    # The gap grows with threads (scalability of the custom cache).
    assert by_threads[16]["speedup_pmem"] > by_threads[1]["speedup_pmem"]
    # mmap pays a large penalty vs DRAM-only; Aquila closes much of it.
    assert by_threads[16]["mmap_vs_dram"] > 2.0
    assert by_threads[16]["aquila_vs_dram"] < by_threads[16]["mmap_vs_dram"]
    # BFS results identical across configurations (functional correctness).
    visited = {row["threads"]: row["aquila-pmem"]["visited"] for row in rows}
    assert len(set(visited.values())) == 1
    for row in rows:
        assert row["aquila-pmem"]["visited"] == row["linux-pmem"]["visited"]
        assert row["aquila-pmem"]["visited"] == row["dram--"]["visited"]


def test_fig6b_larger_cache(once):
    """16 GB-equivalent cache: gap narrows but Aquila still wins (<=2.3x)."""
    rows = once(run_fig6b, num_vertices=VERTICES, thread_counts=[16])
    _show(rows, "Figure 6(b): BFS execution time, larger (16GB-equiv) DRAM cache")
    row = rows[0]
    print_claims(
        "Figure 6(b) paper-vs-measured",
        [ratio_line("aquila/mmap speedup @16t", 2.3, row["speedup_pmem"])],
    )
    assert 1.0 < row["speedup_pmem"] < 5.0


def test_fig6c_time_breakdown(once):
    """mmap burns its time in system+idle; Aquila shifts it to user work."""
    results = once(run_fig6c, num_vertices=VERTICES)
    table = Table(
        "Figure 6(c): execution-time breakdown, 16 threads, small cache (%)",
        ["engine", "user", "system", "idle"],
    )
    for name, cell in results.items():
        table.add_row(name, cell["user_pct"], cell["system_pct"], cell["idle_pct"])
    table.show()
    print_claims(
        "Figure 6(c) paper-vs-measured",
        [
            ratio_line(
                "mmap user share (paper 10.61%)", 10.61, results["linux"]["user_pct"], "%"
            ),
            ratio_line(
                "aquila user share (paper 55.92%)",
                55.92,
                results["aquila"]["user_pct"],
                "%",
            ),
        ],
    )
    # Aquila leaves more CPU time for useful (user) work than mmap.
    assert results["aquila"]["user_pct"] > results["linux"]["user_pct"]
    # Non-user overhead (system+idle) shrinks under Aquila.
    linux_overhead = results["linux"]["system_pct"] + results["linux"]["idle_pct"]
    aquila_overhead = results["aquila"]["system_pct"] + results["aquila"]["idle_pct"]
    assert aquila_overhead < linux_overhead

"""repro.cluster — a sharded simulation with a determinism contract.

One logical simulation sharded across N "machines", each a full
engine/cache/device stack (:class:`~repro.cluster.shard.ShardSim`),
exchanging cycle-stamped messages only at epoch boundaries through a
deterministic bus.  The pieces:

* :mod:`~repro.cluster.ring` — consistent-hash placement of keys over
  shard replicas; ``remove`` is the failover promotion rule.
* :mod:`~repro.cluster.bus` — the epoch-synchronized message bus;
  delivery order is fixed by ``(cycle, shard_id, seq)``.
* :mod:`~repro.cluster.shard` — one shard's stack and epoch loop,
  reusing the engine's batched/fast-forward paths unchanged.
* :mod:`~repro.cluster.coordinator` — the epoch loop, routing,
  failover, and the serial / per-shard-process execution backends.
* :mod:`~repro.cluster.serve` — multi-tenant serving placed across
  shards by the same ring.

The determinism contract is DESIGN.md §13: the merged full-state digest
of a cluster run is a pure function of its :class:`ClusterConfig` —
invariant across backends, executor modes (unbatched / batched /
fast-forward), and clean-vs-replayed failover runs.
"""

from __future__ import annotations

from repro.cluster.bus import EpochBus, ShardMessage, order_key
from repro.cluster.coordinator import (
    ClientPlan,
    ClusterConfig,
    ClusterResult,
    run_cluster,
)
from repro.cluster.ring import (
    DEFAULT_VNODES,
    HashRing,
    key_hash,
    promoted_owner_is_replica,
)
from repro.cluster.shard import ShardOps, ShardSim

__all__ = [
    "ClientPlan",
    "ClusterConfig",
    "ClusterResult",
    "DEFAULT_VNODES",
    "EpochBus",
    "HashRing",
    "ShardMessage",
    "ShardOps",
    "ShardSim",
    "key_hash",
    "order_key",
    "promoted_owner_is_replica",
    "run_cluster",
]

"""Deterministic random streams and YCSB distributions."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.rand import (
    LatestGenerator,
    ScrambledZipfGenerator,
    ZipfGenerator,
    counter_draws,
    derive_seed,
    exponential_interarrivals,
    fnv1a_64,
    stream,
)


class TestSeeding:
    def test_derive_seed_deterministic(self):
        assert derive_seed(42, "a") == derive_seed(42, "a")

    def test_derive_seed_stream_independent(self):
        assert derive_seed(42, "a") != derive_seed(42, "b")
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_stream_reproducible(self):
        a = [stream(7, "x").random() for _ in range(5)]
        b = [stream(7, "x").random() for _ in range(5)]
        assert a == b


class TestFNV:
    def test_known_distinct(self):
        values = {fnv1a_64(i) for i in range(1000)}
        assert len(values) == 1000

    @given(st.integers(min_value=0, max_value=1 << 64 - 1))
    def test_in_64bit_range(self, value):
        assert 0 <= fnv1a_64(value) < 1 << 64


class TestExponentialInterarrivals:
    """Closed-form moments and exact regeneration of the gap sampler.

    The serve layer's open-loop schedules are built on these gaps, so the
    properties here (with the 256-seed sweep in
    ``tests/serve/test_properties.py``) are what make arrival processes
    both statistically honest and bit-reproducible.
    """

    MEAN = 750.0

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 17, 40, 99, 123, 200])
    def test_mean_and_variance_vs_closed_form(self, seed):
        base = derive_seed(seed, "gaps")
        gaps = exponential_interarrivals(base, 5, 512, self.MEAN)
        mean = sum(gaps) / len(gaps)
        assert 0.75 * self.MEAN <= mean <= 1.25 * self.MEAN
        var = sum((g - mean) ** 2 for g in gaps) / len(gaps)
        # Exponential: variance == mean^2.
        assert 0.5 <= var / mean**2 <= 1.6

    def test_byte_identical_regeneration_from_seed_and_counter(self):
        base = derive_seed(9, "gaps")
        assert exponential_interarrivals(base, 2, 300, self.MEAN) == (
            exponential_interarrivals(base, 2, 300, self.MEAN)
        )
        # Prefix stability: counter-addressed draws never depend on count.
        long = exponential_interarrivals(base, 2, 300, self.MEAN)
        assert exponential_interarrivals(base, 2, 64, self.MEAN) == long[:64]

    def test_gaps_are_positive_integers(self):
        gaps = exponential_interarrivals(derive_seed(3, "gaps"), 1, 1000, 2.0)
        assert all(isinstance(g, int) and g >= 1 for g in gaps)

    def test_streams_are_tag_independent(self):
        base = derive_seed(21, "gaps")
        assert exponential_interarrivals(base, 1, 64, self.MEAN) != (
            exponential_interarrivals(base, 2, 64, self.MEAN)
        )

    def test_tracks_the_underlying_counter_stream(self):
        # The gap at index i is a pure function of draw i of the same
        # (base, tag) counter stream — resampling any prefix of the raw
        # stream reproduces the same transformed gaps.
        import math

        base = derive_seed(33, "gaps")
        draws = counter_draws(base, 4, 16)
        if not isinstance(draws, list):
            draws = draws.tolist()
        expected = [
            max(1, round(-self.MEAN * math.log((d + 0.5) / 2.0**64)))
            for d in draws
        ]
        assert exponential_interarrivals(base, 4, 16, self.MEAN) == expected

    def test_rejects_nonpositive_mean(self):
        with pytest.raises(ValueError):
            exponential_interarrivals(derive_seed(1, "gaps"), 1, 4, 0.0)


class TestZipf:
    def test_range(self):
        zipf = ZipfGenerator(100, rng=stream(1, "z"))
        for _ in range(2000):
            assert 0 <= zipf.next() < 100

    def test_skew(self):
        """Rank 0 must be drawn far more often than the median rank."""
        zipf = ZipfGenerator(1000, rng=stream(1, "skew"))
        counts = {}
        for _ in range(20000):
            v = zipf.next()
            counts[v] = counts.get(v, 0) + 1
        assert counts.get(0, 0) > 20 * counts.get(500, 1)

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            ZipfGenerator(0)
        with pytest.raises(ValueError):
            ZipfGenerator(10, theta=1.5)

    @settings(max_examples=20)
    @given(st.integers(min_value=1, max_value=100_000))
    def test_any_size_in_range(self, n):
        zipf = ZipfGenerator(n, rng=stream(3, "any"))
        for _ in range(20):
            assert 0 <= zipf.next() < n


class TestScrambledZipf:
    def test_range_and_spread(self):
        gen = ScrambledZipfGenerator(1000, rng=stream(2, "s"))
        draws = [gen.next() for _ in range(5000)]
        assert all(0 <= d < 1000 for d in draws)
        # Scrambling spreads the hot keys away from rank 0: the most
        # common value is usually not 0.
        most_common = max(set(draws), key=draws.count)
        hot_fraction = draws.count(most_common) / len(draws)
        assert hot_fraction > 0.02, "still skewed after scrambling"


class TestLatest:
    def test_favors_recent(self):
        gen = LatestGenerator(1000, rng=stream(4, "l"))
        draws = [gen.next() for _ in range(5000)]
        assert all(0 <= d < 1000 for d in draws)
        recent = sum(1 for d in draws if d >= 900)
        old = sum(1 for d in draws if d < 100)
        assert recent > 5 * max(old, 1)

    def test_grow_extends_range(self):
        gen = LatestGenerator(10, rng=stream(5, "g"))
        for _ in range(100):
            gen.grow()
        draws = [gen.next() for _ in range(500)]
        assert max(draws) > 10, "new keys must become drawable"
        assert all(0 <= d < 110 for d in draws)

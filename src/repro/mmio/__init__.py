"""Memory-mapped I/O engines and explicit-I/O baseline."""

from repro.mmio.aquila import AquilaEngine
from repro.mmio.buffered import BufferedIOEngine
from repro.mmio.engine import Mapping, MmioEngine
from repro.mmio.explicit import ExplicitIOEngine
from repro.mmio.files import BackingFile, BlobFile, ExtentAllocator, ExtentFile
from repro.mmio.kmmap import KmmapEngine
from repro.mmio.linux_mmap import LinuxMmapEngine
from repro.mmio.vma import (
    MADV_DONTNEED,
    MADV_NORMAL,
    MADV_RANDOM,
    MADV_SEQUENTIAL,
    MADV_WILLNEED,
    PROT_READ,
    PROT_WRITE,
    VMA,
    AquilaVMAStore,
    LinuxVMAStore,
    VMAStore,
)

__all__ = [
    "AquilaEngine",
    "BufferedIOEngine",
    "Mapping",
    "MmioEngine",
    "ExplicitIOEngine",
    "BackingFile",
    "BlobFile",
    "ExtentAllocator",
    "ExtentFile",
    "KmmapEngine",
    "LinuxMmapEngine",
    "MADV_DONTNEED",
    "MADV_NORMAL",
    "MADV_RANDOM",
    "MADV_SEQUENTIAL",
    "MADV_WILLNEED",
    "PROT_READ",
    "PROT_WRITE",
    "VMA",
    "AquilaVMAStore",
    "LinuxVMAStore",
    "VMAStore",
]

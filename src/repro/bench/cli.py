"""Command-line experiment runner: ``python -m repro.bench <command>``.

Regenerates any of the paper's figures without pytest, printing the same
tables the benchmark suite does.  ``list`` shows what is available.

Beyond the single-figure commands:

* ``sweep`` — run every figure cell through the multiprocess orchestrator
  (:mod:`repro.bench.sweep`) into a resumable run manifest;
* ``report`` — regenerate EXPERIMENTS.md from a sweep manifest, or with
  ``--check`` verify the committed doc matches the regeneration.

Exit codes: 0 success; 1 a sweep cell failed / a state digest mismatched
the manifest / ``report --check`` found drift; 2 bad arguments or
unreadable inputs.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List

from repro.bench.report import Table


def _run_fig5(args) -> None:
    from repro.bench.experiments.fig5 import run_fig5a, run_fig5b

    runner = run_fig5a if args.experiment == "fig5a" else run_fig5b
    results = runner(thread_counts=args.threads)
    table = Table(
        f"{args.experiment}: RocksDB YCSB-C throughput (ops/s)",
        ["device", "threads", "read/write", "mmap", "aquila"],
    )
    for device, rows in results.items():
        for row in rows:
            table.add_row(
                device,
                row["threads"],
                row["direct"]["throughput"],
                row["mmap"]["throughput"],
                row["aquila"]["throughput"],
            )
    table.show()


def _run_fig6(args) -> None:
    from repro.bench.experiments.fig6 import run_fig6a, run_fig6b

    runner = run_fig6a if args.experiment == "fig6a" else run_fig6b
    rows = runner(thread_counts=args.threads)
    table = Table(
        f"{args.experiment}: Ligra BFS execution time (ms)",
        ["threads", "mmap-pmem", "aquila-pmem", "dram", "speedup"],
    )
    for row in rows:
        table.add_row(
            row["threads"],
            row["linux-pmem"]["execution_seconds"] * 1000,
            row["aquila-pmem"]["execution_seconds"] * 1000,
            row["dram--"]["execution_seconds"] * 1000,
            row["speedup_pmem"],
        )
    table.show()


def _run_fig7(args) -> None:
    from repro.bench.experiments.fig7 import run_fig7

    results = run_fig7()
    table = Table(
        "fig7: RocksDB cycles per get",
        ["section", "explicit I/O", "aquila"],
    )
    for section in ("device_io", "cache_mgmt", "get", "total"):
        table.add_row(
            section,
            results["direct"]["sections"][section],
            results["aquila"]["sections"][section],
        )
    table.show()
    print(f"cache-mgmt ratio: {results['cache_mgmt_ratio']:.2f}x (paper 2.58x)")
    print(f"throughput gain:  {results['throughput_gain']:.2f}x (paper 1.40x)")


def _run_fig8(args) -> None:
    from repro.bench.experiments.fig8 import run_fig8a, run_fig8b, run_fig8c

    if args.experiment == "fig8c":
        results = run_fig8c()
        table = Table("fig8c: Aquila device-access paths", ["path", "cycles/fault"])
        for label in ("Cache-Hit", "DAX-pmem", "HOST-pmem", "SPDK-NVMe", "HOST-NVMe"):
            table.add_row(label, results[label])
        table.show()
        return
    runner = run_fig8a if args.experiment == "fig8a" else run_fig8b
    results = runner()
    key = "mean_access_cycles" if args.experiment == "fig8a" else "steady_mean_cycles"
    table = Table(
        f"{args.experiment}: mean fault cost (cycles)", ["engine", "cycles"]
    )
    table.add_row("linux-mmap", results["linux"][key])
    table.add_row("aquila", results["aquila"][key])
    table.show()


def _run_fig9(args) -> None:
    from repro.bench.experiments.fig9 import run_fig9

    rows = run_fig9(workloads=args.workloads)
    table = Table(
        "fig9: Kreon kmmap vs Aquila",
        ["device", "workload", "thr ratio", "avg-lat ratio", "p99.9 ratio"],
    )
    for row in rows:
        table.add_row(
            row["device"],
            row["workload"],
            row["throughput_ratio"],
            row["avg_latency_ratio"],
            row["p999_ratio"],
        )
    table.show()


def _run_fig10(args) -> None:
    from repro.bench.experiments.fig10 import run_fig10a, run_fig10b

    runner = run_fig10a if args.experiment == "fig10a" else run_fig10b
    results = runner(thread_counts=args.threads)
    for mode in ("shared", "private"):
        table = Table(
            f"{args.experiment} ({mode} file): throughput (ops/s)",
            ["threads", "linux", "aquila", "speedup"],
        )
        for row in results[mode]:
            table.add_row(
                row["threads"],
                row["linux"]["throughput"],
                row["aquila"]["throughput"],
                row["speedup"],
            )
        table.show()


def parse_fault_spec(spec: str):
    """Parse a ``--faults`` SPEC string into ``(seed, FaultSpec)``.

    Keys: ``seed`` (plan seed, default 42), ``error``/``latency``/``torn``
    (rates), ``spike`` (latency spike cycles), ``max`` (per-device cap).
    """
    from repro.fault.plan import DEFAULT_LATENCY_SPIKE_CYCLES, FaultSpec

    seed = 42
    kwargs = {
        "error_rate": 0.0,
        "latency_rate": 0.0,
        "torn_rate": 0.0,
        "latency_spike_cycles": DEFAULT_LATENCY_SPIKE_CYCLES,
        "max_faults_per_device": None,
    }
    for item in spec.split(","):
        item = item.strip()
        if not item:
            continue
        if "=" not in item:
            raise ValueError(f"--faults item {item!r} is not key=value")
        key, _, value = item.partition("=")
        key = key.strip()
        value = value.strip()
        if key == "seed":
            seed = int(value)
        elif key == "error":
            kwargs["error_rate"] = float(value)
        elif key == "latency":
            kwargs["latency_rate"] = float(value)
        elif key == "torn":
            kwargs["torn_rate"] = float(value)
        elif key == "spike":
            kwargs["latency_spike_cycles"] = float(value)
        elif key == "max":
            kwargs["max_faults_per_device"] = int(value)
        else:
            raise ValueError(f"unknown --faults key {key!r}")
    return seed, FaultSpec(**kwargs)


EXPERIMENTS: Dict[str, Callable] = {
    "fig5a": _run_fig5,
    "fig5b": _run_fig5,
    "fig6a": _run_fig6,
    "fig6b": _run_fig6,
    "fig7": _run_fig7,
    "fig8a": _run_fig8,
    "fig8b": _run_fig8,
    "fig8c": _run_fig8,
    "fig9": _run_fig9,
    "fig10a": _run_fig10,
    "fig10b": _run_fig10,
}


EPILOG = """\
examples:
  python -m repro.bench list
  python -m repro.bench fig8a --trace trace.json --metrics
  python -m repro.bench fig10b --threads 1 8 32
  python -m repro.bench fig8c --faults "seed=42,error=0.01,latency=0.02"
  python -m repro.bench sweep --workers 4 --resume
  python -m repro.bench sweep --figures fig10 --scale bench --manifest /tmp/m.jsonl
  python -m repro.bench sweep --dashboard               # live terminal dashboard
  python -m repro.bench sweep --dashboard=log --profile # CI: log lines + profiles
  python -m repro.bench sweep --openmetrics /tmp/om.txt # exposition-text dump
  python -m repro.bench report                  # regenerate EXPERIMENTS.md
  python -m repro.bench report --check          # fail (exit 1) on doc drift

observability and fault flags (added in PRs 1-2) apply to the figure
commands; --metrics also reports the sweep orchestrator's own counters.
--faults is rejected for sweep: a fault plan is process-global mutable
state, so injected runs are only deterministic per single-figure process.
"""


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (figures plus sweep/report commands)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate figures of 'Memory-Mapped I/O on Steroids'.",
        epilog=EPILOG,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["list", "sweep", "report"],
        help="figure to regenerate, 'list', 'sweep' (parallel paper sweep), "
        "or 'report' (EXPERIMENTS.md regeneration)",
    )
    figure = parser.add_argument_group("figure options")
    figure.add_argument(
        "--threads",
        type=int,
        nargs="+",
        default=None,
        help="thread counts for sweep experiments",
    )
    figure.add_argument(
        "--workloads",
        type=str,
        nargs="+",
        default=None,
        help="YCSB workloads for fig9 (default: all of A-F)",
    )
    obsgroup = parser.add_argument_group("observability and faults")
    obsgroup.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="record a cycle trace and write Chrome trace-event JSON to PATH "
        "(in sweep mode: orchestrator-level per-cell wall-time spans)",
    )
    obsgroup.add_argument(
        "--faults",
        metavar="SPEC",
        default=None,
        help=(
            "inject deterministic device faults, e.g. "
            "'seed=42,error=0.01,latency=0.02,torn=0.005,spike=240000,max=100' "
            "(figure commands only; rejected for sweep)"
        ),
    )
    obsgroup.add_argument(
        "--metrics",
        action="store_true",
        help="collect counters/gauges/histograms and print a metrics table",
    )
    sweep = parser.add_argument_group("sweep options")
    sweep.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for sweep (1 = serial in-process; default 1)",
    )
    sweep.add_argument(
        "--figures",
        nargs="+",
        metavar="FIG",
        default=None,
        help="restrict the sweep to figures matching these prefixes "
        "(e.g. 'fig10' or 'fig5b fig9')",
    )
    sweep.add_argument(
        "--cluster-shards",
        type=int,
        metavar="N",
        default=None,
        help="run only the cluster figure family, restricted to cells with "
        "this shard count (failover cells included when N matches)",
    )
    sweep.add_argument(
        "--scale",
        choices=["figure", "bench"],
        default="figure",
        help="cell sizing: 'figure' = paper grid (default), 'bench' = "
        "shrunk grid for tests/CI",
    )
    sweep.add_argument(
        "--resume",
        action="store_true",
        help="skip cells already complete in the manifest (same config digest)",
    )
    sweep.add_argument(
        "--verify",
        action="store_true",
        help="re-run manifest-complete cells and fail on state-digest mismatch",
    )
    sweep.add_argument(
        "--dashboard",
        nargs="?",
        const="live",
        choices=["live", "log"],
        default=None,
        help="render the sweep live: 'live' (default when flag is bare) is an "
        "ANSI in-place view, 'log' prints deterministic one-line events for CI",
    )
    sweep.add_argument(
        "--profile",
        action="store_true",
        help="wrap each cell in cProfile and write content-addressed "
        "pstats/hotspot artifacts under <manifest dir>/profiles",
    )
    sweep.add_argument(
        "--no-telemetry",
        action="store_true",
        help="skip per-cell telemetry snapshots in manifest records",
    )
    sweep.add_argument(
        "--openmetrics",
        metavar="PATH",
        default=None,
        help="after the sweep, dump the orchestrator metrics registry as "
        "OpenMetrics-style text to PATH (requires --metrics)",
    )
    sweep.add_argument(
        "--history",
        metavar="PATH",
        default=None,
        help="bench-trajectory JSONL to append the sweep record to "
        "(default: BENCH_history.jsonl next to the manifest)",
    )
    sweep.add_argument(
        "--no-history",
        action="store_true",
        help="do not append a record to the bench-trajectory history",
    )
    shared = parser.add_argument_group("sweep/report shared options")
    shared.add_argument(
        "--manifest",
        metavar="PATH",
        default=None,
        help="run-manifest path (default: benchmarks/MANIFEST_sweep.jsonl)",
    )
    report = parser.add_argument_group("report options")
    report.add_argument(
        "--output",
        metavar="PATH",
        default="EXPERIMENTS.md",
        help="document to write, or to diff against with --check "
        "(default: %(default)s)",
    )
    report.add_argument(
        "--check",
        action="store_true",
        help="regenerate from the manifest and exit 1 if the committed "
        "document differs (nothing is written)",
    )
    return parser


def _run_sweep_command(args) -> int:
    """The ``sweep`` command body; returns the process exit code."""
    import os

    from repro.bench.sweep import DEFAULT_MANIFEST, run_sweep
    from repro.obs.dashboard import make_dashboard

    if args.faults:
        print(
            "error: --faults is not supported by sweep (fault plans are "
            "process-global; use a single-figure command)",
            file=sys.stderr,
        )
        return 2
    manifest_path = args.manifest or DEFAULT_MANIFEST
    if args.no_history:
        history_path = None
    else:
        history_path = args.history or os.path.join(
            os.path.dirname(manifest_path) or ".", "BENCH_history.jsonl"
        )
    dashboard = make_dashboard(args.dashboard)
    # The live dashboard owns the terminal; progress lines would tear it.
    progress = print if args.dashboard != "live" else (lambda message: None)
    figures = args.figures
    cell_filter = None
    if args.cluster_shards is not None:
        if args.cluster_shards < 1:
            print("error: --cluster-shards must be >= 1", file=sys.stderr)
            return 2
        figures = ["cluster"]
        shards = args.cluster_shards
        cell_filter = lambda cell: cell["params"].get("num_shards") == shards
    try:
        result = run_sweep(
            figures=figures,
            scale=args.scale,
            workers=args.workers,
            manifest_path=manifest_path,
            resume=args.resume,
            verify=args.verify,
            progress=progress,
            telemetry=not args.no_telemetry,
            profile=args.profile,
            dashboard=dashboard,
            history_path=history_path,
            cell_filter=cell_filter,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if result.failed:
        print(
            f"error: {len(result.failed)} cell(s) failed: "
            + ", ".join(sorted(result.failed)),
            file=sys.stderr,
        )
    if result.mismatched:
        print(
            f"error: {len(result.mismatched)} cell(s) mismatched a prior "
            "manifest digest (determinism violation): "
            + ", ".join(sorted(result.mismatched)),
            file=sys.stderr,
        )
    return 0 if result.ok else 1


def _run_report_command(args) -> int:
    """The ``report`` command body; returns the process exit code."""
    from repro.bench.report import check_experiments_md, write_experiments_md
    from repro.bench.sweep import DEFAULT_MANIFEST

    manifest_path = args.manifest or DEFAULT_MANIFEST
    try:
        if args.check:
            problems = check_experiments_md(args.output, manifest_path)
            if problems:
                print(
                    f"error: {args.output} differs from the regeneration "
                    f"out of {manifest_path}:",
                    file=sys.stderr,
                )
                for line in problems[:60]:
                    print(f"  {line}", file=sys.stderr)
                if len(problems) > 60:
                    print(f"  ... {len(problems) - 60} more lines", file=sys.stderr)
                print(
                    "regenerate with: python -m repro.bench report", file=sys.stderr
                )
                return 1
            print(f"{args.output} matches the regeneration from {manifest_path}")
            return 0
        write_experiments_md(args.output, manifest_path)
        print(f"wrote {args.output} from {manifest_path}")
        return 0
    except (OSError, KeyError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


def main(argv: List[str] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.experiment == "list":
        print("available experiments:")
        for name in sorted(EXPERIMENTS):
            print(f"  {name}")
        print("orchestration: sweep, report (see --help)")
        return 0
    if args.experiment == "report":
        return _run_report_command(args)
    if args.experiment == "sweep":
        if args.openmetrics and not args.metrics:
            print(
                "error: --openmetrics needs --metrics (the orchestrator "
                "registry is otherwise disabled and empty)",
                file=sys.stderr,
            )
            return 2
        if args.trace or args.metrics:
            from repro import obs

            if args.trace:
                obs.enable_tracing()
            if args.metrics:
                obs.enable_metrics()
        code = _run_sweep_command(args)
        if args.trace:
            from repro import obs

            events = obs.write_trace(args.trace)
            print(f"trace: wrote {events} orchestrator events to {args.trace}")
        if args.metrics:
            from repro import obs
            from repro.bench.report import metrics_table

            metrics_table(obs.METRICS.snapshot()).show()
        if args.openmetrics:
            from repro import obs

            lines = obs.write_openmetrics(args.openmetrics)
            print(f"openmetrics: wrote {lines} lines to {args.openmetrics}")
        return code
    if args.trace or args.metrics:
        from repro import obs

        if args.trace:
            # Fail fast on an unwritable path instead of after the run.
            try:
                with open(args.trace, "a"):
                    pass
            except OSError as exc:
                print(f"error: cannot write trace to {args.trace}: {exc}", file=sys.stderr)
                return 2
            obs.enable_tracing()
        if args.metrics:
            # Must precede stack construction: components bind at __init__.
            obs.enable_metrics()
    fault_plan = None
    if args.faults:
        from repro.fault.plan import FaultPlan, install_plan

        try:
            seed, spec = parse_fault_spec(args.faults)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        # Must precede stack construction: devices attach injectors at
        # __init__ from the installed plan.
        fault_plan = FaultPlan(seed, spec)
        install_plan(fault_plan)
    try:
        EXPERIMENTS[args.experiment](args)
    finally:
        if fault_plan is not None:
            from repro.fault.plan import clear_plan

            clear_plan()
    if fault_plan is not None:
        print(f"faults: {fault_plan.total_faults()} injected (seed {fault_plan.seed})")
        for device, counts in sorted(fault_plan.summary().items()):
            print(
                f"  {device}: {counts['ops_seen']} ops seen, "
                f"{counts['errors']} errors, {counts['latency']} latency spikes, "
                f"{counts['torn']} torn writes"
            )
    if args.trace:
        from repro import obs

        events = obs.write_trace(args.trace)
        print(f"trace: wrote {events} events to {args.trace}")
        if obs.TRACER.dropped:
            print(f"trace: ring buffer dropped {obs.TRACER.dropped} oldest spans")
    if args.metrics:
        from repro import obs
        from repro.bench.report import metrics_table

        metrics_table(obs.METRICS.snapshot()).show()
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""The cluster coordinator: epoch loop, routing, failover, merged digest.

``run_cluster`` shards one logical simulation across N machines
(:class:`~repro.cluster.shard.ShardSim`), each its own engine/cache/
device stack, exchanging cycle-stamped messages only at epoch boundaries
through the deterministic :class:`~repro.cluster.bus.EpochBus`.  The
global client op stream is a seeded counter-stream plan
(:func:`repro.sim.rand.counter_draws`) over one logical dataset of
``dataset_pages`` pages; each op is routed by its home page through the
consistent hash ring, so the *same* dataset is served whatever the shard
count; writes replicate to the page's replica set; an optional
:class:`~repro.fault.shardkill.ShardKillSpec` kills a primary mid-epoch
and the ring promotes each of its keys' first replica.

Two execution backends share every line of shard and coordinator logic:

* ``backend="serial"`` — all shards as in-process objects, stepped in
  shard-id order each epoch.  This is the **single-process reference**.
* ``backend="processes"`` — one dedicated worker process per shard
  (from the same multiprocessing context the sweep pool uses), driven
  over pipes with one request/response round per epoch.

The determinism contract (DESIGN.md §13): the merged full-state digest
is a pure function of the :class:`ClusterConfig` — independent of the
backend, of worker scheduling, and of the executor mode (unbatched /
batched / analytic fast-forward).  ``tests/cluster`` and the CI cluster
job assert all three equalities, clean and with an injected failover.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.cluster.bus import EpochBus, ShardMessage
from repro.cluster.ring import DEFAULT_VNODES, HashRing
from repro.cluster.shard import ShardOps, ShardSim
from repro.common import units
from repro.fault.shardkill import ShardKillSpec
from repro.sim.conformance import hash_digest
from repro.sim.rand import counter_draws
from repro.sim.stats import throughput_ops_per_sec

#: Tags naming the cluster client plan's independent counter streams.
_TAG_KEY, _TAG_OFFSET, _TAG_WRITE = 41, 42, 43


@dataclass
class ClusterConfig:
    """Parameters of one cluster cell (a pure function of which the
    merged digest is — the §13 contract)."""

    num_shards: int = 4
    #: Copies of each key (primary + replicas); 1 disables replication.
    replication: int = 2
    engine_kind: str = "aquila"
    cache_pages: int = 512
    #: Pages in the *one logical dataset*, sharded by home page; each
    #: shard's file spans the whole dataset but only its owned (and
    #: replicated) pages are ever touched.
    dataset_pages: int = 256
    total_ops: int = 8192
    #: Client ops per epoch (the boundary cadence of the message bus).
    epoch_ops: int = 1024
    write_fraction: float = 0.25
    device_kind: str = "pmem"
    seed: int = 7
    batched: bool = True
    fastforward: bool = True
    vnodes: int = DEFAULT_VNODES
    #: Optional injected primary failure (see ``repro.fault.shardkill``).
    kill: Optional[ShardKillSpec] = None

    def shard_params(self) -> Dict:
        """The picklable per-shard build parameters."""
        return {
            "engine_kind": self.engine_kind,
            "cache_pages": self.cache_pages,
            "dataset_pages": self.dataset_pages,
            "device_kind": self.device_kind,
            "batched": self.batched,
            "fastforward": self.fastforward,
        }


@dataclass
class ClusterResult:
    """Everything one cluster run produced."""

    config: ClusterConfig
    shard_digests: Dict[int, Dict]
    shard_summaries: Dict[int, Dict]
    bus_digest: Dict
    router_digest: Dict
    epochs: int = 0
    rerouted_ops: int = 0
    backend: str = "serial"

    def merged_digest(self) -> Dict:
        """The merged full-state digest structure: every shard's digest
        plus the bus and router state.  Backend- and mode-invariant."""
        return {
            "shards": {sid: d for sid, d in sorted(self.shard_digests.items())},
            "bus": self.bus_digest,
            "router": self.router_digest,
            "epochs": self.epochs,
            "rerouted_ops": self.rerouted_ops,
        }

    def merged_hash(self) -> str:
        """The canonical sha256 of :meth:`merged_digest`."""
        return hash_digest(self.merged_digest())

    def makespan_cycles(self) -> float:
        """Slowest shard's final clock (cluster-wide elapsed time)."""
        return max(
            (s["clock_cycles"] for s in self.shard_summaries.values()), default=0.0
        )

    def total_client_ops(self) -> int:
        """Client ops served across all shards."""
        return sum(s["client_ops"] for s in self.shard_summaries.values())

    def throughput_ops_per_sec(self) -> float:
        """Aggregate cluster throughput over the makespan."""
        return throughput_ops_per_sec(self.total_client_ops(), self.makespan_cycles())

    def payload(self) -> Dict:
        """The sweep-cell payload row."""
        balance = sorted(
            s["client_ops"] for s in self.shard_summaries.values()
        )
        return {
            "engine": self.config.engine_kind,
            "shards": self.config.num_shards,
            "replication": self.config.replication,
            "backend": self.backend,
            "epochs": self.epochs,
            "client_ops": self.total_client_ops(),
            "rerouted_ops": self.rerouted_ops,
            "makespan_cycles": self.makespan_cycles(),
            "throughput": self.throughput_ops_per_sec(),
            "messages": self.bus_digest["messages_committed"],
            "deliveries": self.bus_digest["deliveries"],
            "min_shard_ops": balance[0] if balance else 0,
            "max_shard_ops": balance[-1] if balance else 0,
            "dead_shards": sorted(
                sid
                for sid, s in self.shard_summaries.items()
                if not s["alive"]
            ),
            "merged_digest": self.merged_hash(),
        }


class ClientPlan:
    """The global client op stream: seeded, route-independent.

    Keys, in-page offsets, and write flags come from dedicated counter
    streams over the cell seed, so the op sequence exists *before* any
    routing decision — the router partitions it, never perturbs it.  A
    key's home page is ``key % dataset_pages``: a *global* index into
    the one logical dataset.  Routing, serving, and replication all
    address that page, so a replicated store lands at the identical
    offset of every owner's dataset-sized file — and a run with more
    shards serves the same dataset, just spread thinner.
    """

    def __init__(self, config: ClusterConfig) -> None:
        total = config.total_ops
        key_draws = counter_draws(config.seed, _TAG_KEY, total)
        offset_draws = counter_draws(config.seed, _TAG_OFFSET, total)
        if not isinstance(key_draws, list):
            key_draws = key_draws.tolist()
            offset_draws = offset_draws.tolist()
        self.keys: List[int] = key_draws
        self.pages: List[int] = [k % config.dataset_pages for k in key_draws]
        self.offsets: List[int] = [d % (units.PAGE_SIZE - 8) for d in offset_draws]
        fraction = config.write_fraction
        if fraction <= 0.0:
            self.writes = [False] * total
        elif fraction >= 1.0:
            self.writes = [True] * total
        else:
            threshold = min(int(fraction * 2.0 ** 64), (1 << 64) - 1)
            write_draws = counter_draws(config.seed, _TAG_WRITE, total)
            if not isinstance(write_draws, list):
                write_draws = write_draws.tolist()
            self.writes = [d < threshold for d in write_draws]

    def epoch_window(self, epoch: int, epoch_ops: int) -> range:
        """Global op indices of epoch ``epoch``."""
        start = epoch * epoch_ops
        return range(start, min(start + epoch_ops, len(self.keys)))


def _route(
    ring: HashRing,
    replication: int,
    ops: List[Tuple[int, int, bool, int]],
    live: Dict[int, bool],
) -> Dict[int, ShardOps]:
    """Partition ``(page, key, write, offset)`` ops into per-shard slices.

    Routing is a pure function of the current ring, keyed by the op's
    *home page* (the unit of ownership — every key on a page lives with
    it): the primary serves the op, and a write's destination set is the
    page's replica list (dead shards excluded — a failed replica simply
    stops receiving).
    """
    assignments: Dict[int, ShardOps] = {}
    for page, key, write, offset in ops:
        owners = ring.owners(page, replication if write else 1)
        primary = owners[0]
        dest: Tuple[int, ...] = ()
        if write:
            dest = tuple(sid for sid in owners[1:] if live.get(sid, False))
        slot = assignments.get(primary)
        if slot is None:
            slot = assignments[primary] = ShardOps()
        slot.append(page, offset, write, key, dest)
    return assignments


# -- backends ------------------------------------------------------------------


class SerialBackend:
    """All shards in this process, stepped in shard-id order — the
    single-process reference every distributed run is verified against."""

    name = "serial"

    def __init__(self, config: ClusterConfig) -> None:
        self.shards = {
            sid: ShardSim(sid, config.shard_params())
            for sid in range(config.num_shards)
        }

    def run_epoch(
        self,
        assignments: Dict[int, ShardOps],
        inboxes: Dict[int, List[ShardMessage]],
        kill: Optional[Tuple[int, int]],
    ) -> Dict[int, List[ShardMessage]]:
        """One epoch on every live shard; returns per-shard outboxes."""
        outboxes: Dict[int, List[ShardMessage]] = {}
        for sid in sorted(self.shards):
            shard = self.shards[sid]
            if not shard.alive:
                continue
            kill_at = kill[1] if kill is not None and kill[0] == sid else None
            outboxes[sid] = shard.run_epoch(
                assignments.get(sid, ShardOps()), inboxes.get(sid, []), kill_at
            )
        return outboxes

    def digests(self) -> Dict[int, Dict]:
        """Every shard's full-state digest."""
        return {sid: shard.digest() for sid, shard in self.shards.items()}

    def summaries(self) -> Dict[int, Dict]:
        """Every shard's payload summary."""
        return {sid: shard.summary() for sid, shard in self.shards.items()}

    def close(self) -> None:
        """Nothing to tear down in-process."""


def _shard_worker(conn, shard_id: int, params: Dict) -> None:
    """Worker-process body: build one shard, serve epoch requests.

    Protocol (one request/response round per call):
    ``("epoch", ops, inbox, kill_at) -> outbox``;
    ``("digest",) -> (digest, summary)``; ``("stop",) -> exit``.
    Everything on the pipe is plain dataclasses/lists of primitives.
    """
    shard = ShardSim(shard_id, params)
    while True:
        request = conn.recv()
        if request[0] == "epoch":
            _, ops, inbox, kill_at = request
            conn.send(shard.run_epoch(ops, inbox, kill_at))
        elif request[0] == "digest":
            conn.send((shard.digest(), shard.summary()))
        elif request[0] == "stop":
            conn.close()
            return
        else:                      # pragma: no cover - protocol guard
            raise ValueError(f"unknown shard request {request[0]!r}")


class ProcessBackend:
    """One dedicated worker process per shard, driven over pipes.

    Uses the same multiprocessing context policy as the sweep pool
    (fork when available, spawn otherwise).  Requests fan out to every
    live shard before any response is awaited, so shards genuinely run
    their epochs concurrently; responses are collected in shard-id
    order, which — with the bus's ``(cycle, shard_id, seq)`` commit
    ordering — makes arrival timing unobservable.
    """

    name = "processes"

    def __init__(self, config: ClusterConfig) -> None:
        import multiprocessing as mp

        methods = mp.get_all_start_methods()
        ctx = mp.get_context("fork" if "fork" in methods else "spawn")
        self._conns = {}
        self._procs = {}
        for sid in range(config.num_shards):
            parent, child = ctx.Pipe()
            proc = ctx.Process(
                target=_shard_worker,
                args=(child, sid, config.shard_params()),
                daemon=True,
            )
            proc.start()
            child.close()
            self._conns[sid] = parent
            self._procs[sid] = proc
        self._dead: set = set()

    def run_epoch(
        self,
        assignments: Dict[int, ShardOps],
        inboxes: Dict[int, List[ShardMessage]],
        kill: Optional[Tuple[int, int]],
    ) -> Dict[int, List[ShardMessage]]:
        """Fan one epoch out to every live shard process; gather outboxes."""
        live = [sid for sid in sorted(self._conns) if sid not in self._dead]
        for sid in live:
            kill_at = kill[1] if kill is not None and kill[0] == sid else None
            self._conns[sid].send(
                ("epoch", assignments.get(sid, ShardOps()), inboxes.get(sid, []), kill_at)
            )
        outboxes = {sid: self._conns[sid].recv() for sid in live}
        if kill is not None:
            self._dead.add(kill[0])
        return outboxes

    def digests(self) -> Dict[int, Dict]:
        """Collect every shard's digest (dead shards answer too — their
        frozen state is part of the merged digest)."""
        return {sid: state[0] for sid, state in self._collect().items()}

    def summaries(self) -> Dict[int, Dict]:
        """Collect every shard's payload summary."""
        return {sid: state[1] for sid, state in self._collect().items()}

    def _collect(self) -> Dict[int, Tuple[Dict, Dict]]:
        if not hasattr(self, "_state"):
            for sid in sorted(self._conns):
                self._conns[sid].send(("digest",))
            self._state = {
                sid: self._conns[sid].recv() for sid in sorted(self._conns)
            }
        return self._state

    def close(self) -> None:
        """Stop and join every shard process."""
        for sid, conn in self._conns.items():
            try:
                conn.send(("stop",))
                conn.close()
            except (BrokenPipeError, OSError):  # pragma: no cover
                pass
        for proc in self._procs.values():
            proc.join(timeout=30)
            if proc.is_alive():               # pragma: no cover - hung worker
                proc.terminate()


_BACKENDS = {"serial": SerialBackend, "processes": ProcessBackend}


def run_cluster(config: ClusterConfig, backend: str = "serial") -> ClusterResult:
    """Run one sharded simulation to completion; returns its result.

    The epoch loop: route the epoch's client window (plus any ops
    re-routed from a killed primary) against the current ring, fan the
    slices to the shards together with the bus's boundary-delivered
    inboxes, commit the returned outboxes (sorted by the
    ``(cycle, shard_id, seq)`` ordering key), and apply any injected
    shard kill — ring removal promotes each key's first replica.  After
    the last client window, drain epochs run until no messages remain
    buffered, so replication always lands before digesting.
    """
    if backend not in _BACKENDS:
        raise ValueError(f"unknown cluster backend {backend!r}")
    if config.num_shards < 1:
        raise ValueError("a cluster needs at least one shard")
    if config.replication < 1 or config.replication > config.num_shards:
        raise ValueError("replication must be in [1, num_shards]")
    if config.kill is not None and config.kill.shard_id >= config.num_shards:
        raise ValueError("kill.shard_id is not a cluster shard")
    if config.kill is not None and config.num_shards == 1:
        raise ValueError("cannot fail over a one-shard cluster")

    plan = ClientPlan(config)
    ring = HashRing(range(config.num_shards), config.vnodes, config.seed)
    bus = EpochBus()
    engine = _BACKENDS[backend](config)
    live = {sid: True for sid in range(config.num_shards)}
    carried: List[Tuple[int, int, bool, int]] = []
    rerouted = 0
    epochs = 0
    num_windows = (config.total_ops + config.epoch_ops - 1) // config.epoch_ops

    try:
        epoch = 0
        while True:
            window = plan.epoch_window(epoch, config.epoch_ops)
            pending_msgs = bus.pending()
            if epoch >= num_windows and not carried and not pending_msgs:
                break
            ops = carried + [
                (plan.pages[i], plan.keys[i], plan.writes[i], plan.offsets[i])
                for i in window
            ]
            carried = []
            assignments = _route(ring, config.replication, ops, live)
            kill: Optional[Tuple[int, int]] = None
            if (
                config.kill is not None
                and config.kill.epoch == epoch
                and live.get(config.kill.shard_id, False)
            ):
                kill = (config.kill.shard_id, config.kill.op_index)
            inboxes = {sid: bus.take_inbox(sid) for sid in live if live[sid]}
            outboxes = engine.run_epoch(assignments, inboxes, kill)
            bus.commit([outboxes[sid] for sid in sorted(outboxes)])
            if kill is not None:
                dead_sid = kill[0]
                live[dead_sid] = False
                bus.drop_inbox(dead_sid)
                victim_ops = assignments.get(dead_sid)
                if victim_ops is not None:
                    tail = victim_ops.tail(min(kill[1], len(victim_ops)))
                    carried.extend(tail)
                    rerouted += len(tail)
                ring = ring.remove(dead_sid)
            epochs += 1
            epoch += 1

        return ClusterResult(
            config=config,
            shard_digests=engine.digests(),
            shard_summaries=engine.summaries(),
            bus_digest=bus.digest(),
            router_digest={
                "live_shards": tuple(sorted(sid for sid in live if live[sid])),
                "vnodes": config.vnodes,
                "replication": config.replication,
            },
            epochs=epochs,
            rerouted_ops=rerouted,
            backend=engine.name,
        )
    finally:
        engine.close()

"""I/O access paths: cost structure of each way to reach a device."""

import pytest

from repro.common import constants, units
from repro.devices.io_engines import DaxIO, HostSyscallIO, KernelFaultIO, SpdkIO
from repro.devices.nvme import NvmeDevice
from repro.devices.pmem import PmemDevice
from repro.hw.vmx import ExecutionDomain, VMXCostModel
from repro.sim.clock import CycleClock


def _pmem():
    return PmemDevice(capacity_bytes=64 * units.MIB)


def _nvme():
    return NvmeDevice(capacity_bytes=64 * units.MIB)


class TestKernelFaultIO:
    def test_pmem_no_irq(self):
        path = KernelFaultIO(_pmem())
        clock = CycleClock()
        path.read(clock, 0, 4096)
        assert clock.now == pytest.approx(2636, abs=5)

    def test_nvme_pays_irq(self):
        path = KernelFaultIO(_nvme())
        clock = CycleClock()
        path.read(clock, 0, 4096)
        assert clock.now == pytest.approx(
            units.us_to_cycles(10) + constants.HOST_NVME_COMPLETION_CYCLES, rel=0.01
        )

    def test_write_roundtrip(self):
        device = _pmem()
        path = KernelFaultIO(device)
        clock = CycleClock()
        path.write(clock, 0, b"kernel-path")
        assert path.read(clock, 0, 11) == b"kernel-path"


class TestHostSyscallIO:
    def test_pmem_from_guest_is_7_77x_dax(self):
        """Figure 8(c): HOST-pmem I/O = 7.77x the 1200-cycle DAX copy."""
        vmx = VMXCostModel(ExecutionDomain.NONROOT_RING0)
        path = HostSyscallIO(_pmem(), vmx)
        clock = CycleClock()
        path.read(clock, 0, 4096)
        assert clock.now / constants.MEMCPY_4K_AQUILA_DAX_CYCLES == pytest.approx(
            7.77, abs=0.05
        )

    def test_ring3_pays_syscall_not_vmcall(self):
        ring3 = VMXCostModel(ExecutionDomain.ROOT_RING3)
        guest = VMXCostModel(ExecutionDomain.NONROOT_RING0)
        c1, c2 = CycleClock(), CycleClock()
        HostSyscallIO(_pmem(), ring3).read(c1, 0, 4096)
        HostSyscallIO(_pmem(), guest).read(c2, 0, 4096)
        assert c2.now - c1.now == pytest.approx(
            constants.VMCALL_CYCLES - constants.SYSCALL_CYCLES
        )


class TestSpdkIO:
    def test_no_syscalls(self):
        device = _nvme()
        path = SpdkIO(device)
        clock = CycleClock()
        path.read(clock, 0, 4096)
        expected = (
            constants.SPDK_SUBMIT_CYCLES
            + units.us_to_cycles(10)
            + constants.SPDK_COMPLETION_CYCLES
        )
        assert clock.now == pytest.approx(expected, rel=0.01)

    def test_spdk_beats_host_on_nvme(self):
        """Figure 8(c): bypassing the host OS reduces overhead ~1.53x."""
        c_spdk, c_host = CycleClock(), CycleClock()
        SpdkIO(_nvme()).read(c_spdk, 0, 4096)
        HostSyscallIO(_nvme(), VMXCostModel(ExecutionDomain.NONROOT_RING0)).read(
            c_host, 0, 4096
        )
        assert c_host.now / c_spdk.now == pytest.approx(1.53, abs=0.05)

    def test_poll_time_is_cpu_not_idle(self):
        """SPDK burns CPU while polling (categorized .poll, not idle)."""
        path = SpdkIO(_nvme())
        clock = CycleClock()
        path.read(clock, 0, 4096, "io")
        assert clock.breakdown.prefix_total("io.poll") > 0


class TestDaxIO:
    def test_requires_pmem(self):
        with pytest.raises(TypeError):
            DaxIO(_nvme())

    def test_read_cost(self):
        path = DaxIO(_pmem(), use_simd=True)
        clock = CycleClock()
        path.read(clock, 0, 4096)
        assert clock.now == pytest.approx(constants.MEMCPY_4K_AQUILA_DAX_CYCLES)

    def test_write_roundtrip(self):
        path = DaxIO(_pmem())
        clock = CycleClock()
        path.write(clock, 64, b"dax-bytes")
        assert path.read(clock, 64, 9) == b"dax-bytes"


class TestPathOrdering:
    def test_figure8c_cost_ordering(self):
        """DAX < HOST-pmem and SPDK < HOST-NVMe (Figure 8(c))."""
        costs = {}
        clock = CycleClock()
        DaxIO(_pmem()).read(clock, 0, 4096)
        costs["dax"] = clock.now
        clock = CycleClock()
        HostSyscallIO(_pmem(), VMXCostModel(ExecutionDomain.NONROOT_RING0)).read(
            clock, 0, 4096
        )
        costs["host-pmem"] = clock.now
        clock = CycleClock()
        SpdkIO(_nvme()).read(clock, 0, 4096)
        costs["spdk"] = clock.now
        clock = CycleClock()
        HostSyscallIO(_nvme(), VMXCostModel(ExecutionDomain.NONROOT_RING0)).read(
            clock, 0, 4096
        )
        costs["host-nvme"] = clock.now
        assert costs["dax"] < costs["host-pmem"] < costs["spdk"] < costs["host-nvme"]

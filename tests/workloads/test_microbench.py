"""The paper's custom load/store microbenchmark."""

import pytest

from repro.bench.setups import make_aquila_stack
from repro.common import units
from repro.workloads.microbench import MicrobenchConfig, run_microbench


def _stack(cache=128):
    return make_aquila_stack("pmem", cache_pages=cache, capacity_bytes=256 * units.MIB)


class TestTouchOnce:
    def test_every_access_faults(self):
        """The paper's 'each load/store results in a page fault' property."""
        stack = _stack(cache=256)
        file = stack.allocator.create("d", 256 * units.PAGE_SIZE)
        config = MicrobenchConfig(num_threads=1, accesses_per_thread=200, touch_once=True)
        result = run_microbench(stack.engine, file, config)
        assert stack.engine.faults == result.total_ops == 200

    def test_partitioning_covers_disjoint_pages(self):
        stack = _stack(cache=512)
        file = stack.allocator.create("d", 512 * units.PAGE_SIZE)
        config = MicrobenchConfig(num_threads=4, accesses_per_thread=128, touch_once=True)
        result = run_microbench(stack.engine, file, config)
        # 4 x 128 distinct pages: every access was a distinct cold fault.
        assert stack.engine.faults == 512
        assert stack.engine.cache.resident_pages() == 512


class TestUniformRandom:
    def test_out_of_memory_regime_evicts(self):
        stack = _stack(cache=64)
        file = stack.allocator.create("d", 1024 * units.PAGE_SIZE)
        config = MicrobenchConfig(
            num_threads=2, accesses_per_thread=300, touch_once=False
        )
        run_microbench(stack.engine, file, config)
        assert stack.engine.eviction_batches > 0
        assert stack.engine.cache.resident_pages() <= 64

    def test_write_fraction(self):
        stack = _stack(cache=128)
        file = stack.allocator.create("d", 64 * units.PAGE_SIZE)
        config = MicrobenchConfig(
            num_threads=1, accesses_per_thread=200, touch_once=False, write_fraction=1.0
        )
        run_microbench(stack.engine, file, config)
        assert stack.engine.cache.dirty_count() > 0


class TestModes:
    def test_private_files_require_matching_count(self):
        stack = _stack()
        files = [stack.allocator.create(f"p{i}", 16 * units.PAGE_SIZE) for i in range(2)]
        config = MicrobenchConfig(num_threads=3, accesses_per_thread=10, shared_file=False)
        with pytest.raises(ValueError):
            run_microbench(stack.engine, files, config)

    def test_private_files_independent_mappings(self):
        stack = _stack()
        files = [stack.allocator.create(f"p{i}", 32 * units.PAGE_SIZE) for i in range(2)]
        config = MicrobenchConfig(
            num_threads=2, accesses_per_thread=16, touch_once=True, shared_file=False
        )
        result = run_microbench(stack.engine, files, config)
        assert result.total_ops == 32

    def test_deterministic(self):
        def run():
            stack = _stack()
            file = stack.allocator.create("d", 128 * units.PAGE_SIZE)
            config = MicrobenchConfig(num_threads=2, accesses_per_thread=50, seed=5)
            return run_microbench(stack.engine, file, config).makespan_cycles

        assert run() == run()

    def test_smt_penalty_applied_beyond_16_threads(self):
        stack = _stack(cache=2048)
        file = stack.allocator.create("d", 2048 * units.PAGE_SIZE)
        config = MicrobenchConfig(num_threads=32, accesses_per_thread=8)
        result = run_microbench(stack.engine, file, config)
        assert all(t.clock.cpi_factor > 1.0 for t in result.threads)

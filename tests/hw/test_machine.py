"""Machine aggregate: TLBs, interference delivery, SMT penalties."""

import pytest

from repro.common import constants
from repro.hw.fpu import FPUContext
from repro.hw.machine import Machine
from repro.sim.clock import CycleClock
from repro.sim.executor import SimThread


class TestMachine:
    def test_one_tlb_per_hw_thread(self):
        machine = Machine()
        assert len(machine.tlbs) == 32

    def test_tlb_of_thread(self):
        machine = Machine()
        thread = SimThread(core=5)
        assert machine.tlb_of(thread) is machine.tlbs[5]

    def test_absorb_interference(self):
        machine = Machine()
        thread = SimThread(core=3)
        machine.interference.post(3, 700)
        assert machine.absorb_interference(thread) == 700
        assert thread.clock.now == 700

    def test_numa_node_of(self):
        machine = Machine()
        assert machine.numa_node_of(SimThread(core=0)) == 0
        assert machine.numa_node_of(SimThread(core=8)) == 1


class TestSMTPenalty:
    def test_no_penalty_up_to_16_threads(self):
        machine = Machine()
        threads = [SimThread(core=i) for i in range(16)]
        assert machine.apply_smt_penalty(threads) == 0
        assert all(t.clock.cpi_factor == 1.0 for t in threads)

    def test_penalty_for_sibling_pairs(self):
        machine = Machine()
        threads = [SimThread(core=i) for i in range(32)]
        penalized = machine.apply_smt_penalty(threads, factor=1.4)
        assert penalized == 32
        assert all(t.clock.cpi_factor == pytest.approx(1.4) for t in threads)

    def test_partial_overlap(self):
        machine = Machine()
        threads = [SimThread(core=c) for c in (0, 16, 5)]   # 0 and 16 share core 0
        penalized = machine.apply_smt_penalty(threads)
        assert penalized == 2
        factors = {t.core: t.clock.cpi_factor for t in threads}
        assert factors[0] > 1.0 and factors[16] > 1.0
        assert factors[5] == 1.0


class TestFPUContext:
    def test_simd_copy_cost(self):
        fpu = FPUContext(use_simd=True)
        assert fpu.copy_cost_cycles(4096) == constants.MEMCPY_4K_AQUILA_DAX_CYCLES

    def test_nosimd_copy_cost(self):
        fpu = FPUContext(use_simd=False)
        assert fpu.copy_cost_cycles(4096) == constants.MEMCPY_4K_NOSIMD_CYCLES

    def test_simd_wins_at_page_size(self):
        assert FPUContext(True).copy_cost_cycles(4096) < FPUContext(False).copy_cost_cycles(4096)

    def test_fpu_save_amortizes_on_large_copies(self):
        """One state save per copy regardless of size."""
        fpu = FPUContext(True)
        two_pages = fpu.copy_cost_cycles(8192)
        one_page = fpu.copy_cost_cycles(4096)
        assert two_pages - one_page == constants.MEMCPY_4K_AVX2_CYCLES

    def test_charge_copy(self):
        fpu = FPUContext(True)
        clock = CycleClock()
        fpu.charge_copy(clock, 4096)
        assert clock.now == constants.MEMCPY_4K_AQUILA_DAX_CYCLES
        assert fpu.copies == 1
        assert fpu.state_saves == 1

"""Figure 5: RocksDB YCSB-C throughput — Aquila vs mmap vs read/write.

(a) dataset fits in the cache (8 GB / 8 GB): mmap beats read/write (as the
    RocksDB tuning guide suggests for in-memory, read-heavy databases),
    and Aquila is up to 1.15x faster than mmap;
(b) dataset 4x the cache (32 GB / 8 GB): Linux mmap collapses (128 KB
    readahead for 1 KB reads), Aquila beats direct I/O by 1.18-1.65x on
    pmem and ties on NVMe (device-bound).

Latency claims of Section 6.1 are reported alongside throughput.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.bench.setups import make_rocksdb
from repro.sim.executor import Executor, SimThread
from repro.sim.stats import throughput_ops_per_sec
from repro.workloads.ycsb import YCSBConfig, YCSBDriver

MODES = ["direct", "mmap", "aquila"]


def run_cell(
    mode: str,
    device_kind: str,
    record_count: int,
    cache_pages: int,
    num_threads: int,
    ops_per_thread: int,
    warmup_ops: Optional[int] = None,
) -> Dict:
    """One (mode, device, threads) cell: load, compact, warm, measure."""
    db, stack = make_rocksdb(
        mode,
        device_kind=device_kind,
        cache_pages=cache_pages,
        capacity_bytes=1 << 30,
    )
    loader = SimThread(core=0)
    config = YCSBConfig(
        workload="C",
        record_count=record_count,
        operation_count=ops_per_thread * num_threads,
        distribution="uniform",
        threads=num_threads,
    )
    driver = YCSBDriver(db, config)
    driver.load(loader)
    db.flush(loader)
    db.compact_all(loader)

    if warmup_ops is None:
        # Enough to reach cache steady state (2x the resident set).
        warmup_ops = 2 * min(record_count // 4, cache_pages)
    warm = SimThread(core=0)
    warm.clock.now = loader.clock.now
    for _ in driver.run_workload(warm, warmup_ops):
        pass
    loader = warm   # measured phase continues from the warm clock

    threads: List[SimThread] = []
    executor = Executor()
    for index in range(num_threads):
        thread = SimThread(core=index % stack.machine.topology.num_hw_threads)
        thread.clock.now = loader.clock.now
        threads.append(thread)
        executor.add(thread, driver.run_workload(thread, ops_per_thread))
    stack.machine.apply_smt_penalty(threads)
    phase_start = loader.clock.now
    result = executor.run()
    latencies = result.merged_latencies()
    return {
        "mode": mode,
        "device": device_kind,
        "threads": num_threads,
        "throughput": throughput_ops_per_sec(
            result.total_ops, result.makespan_cycles - phase_start
        ),
        "mean_latency_cycles": latencies.mean(),
        "p999_cycles": latencies.p999(),
        "not_found": driver.stats.not_found,
    }


def run_sweep(
    device_kind: str,
    record_count: int,
    cache_pages: int,
    thread_counts: List[int],
    ops_per_thread: int = 400,
    modes: Optional[List[str]] = None,
) -> List[Dict]:
    """All modes across thread counts for one device/dataset setting."""
    rows = []
    for num_threads in thread_counts:
        cells = {}
        for mode in modes if modes is not None else MODES:
            cells[mode] = run_cell(
                mode,
                device_kind,
                record_count,
                cache_pages,
                num_threads,
                ops_per_thread,
            )
        rows.append({"threads": num_threads, **cells})
    return rows


def run_fig5a(
    thread_counts: Optional[List[int]] = None,
    record_count: int = 4096,
    cache_pages: Optional[int] = None,
    ops_per_thread: int = 300,
) -> Dict[str, List[Dict]]:
    """Dataset fits in cache (paper: 8 GB records / 8 GB cache).

    The cache gets ~30% headroom over the raw record bytes to cover SST
    metadata (index/filter/footer blocks), the equivalent of the paper's
    dataset fitting its 8 GB cache after format overheads.
    """
    counts = thread_counts if thread_counts is not None else [1, 4, 16]
    if cache_pages is None:
        dataset_pages = record_count // 4   # 1 KB records, 4 per page
        cache_pages = int(dataset_pages * 1.3)
    return {
        "pmem": run_sweep("pmem", record_count, cache_pages, counts, ops_per_thread),
        "nvme": run_sweep("nvme", record_count, cache_pages, counts, ops_per_thread),
    }


def run_fig5b(
    thread_counts: Optional[List[int]] = None,
    record_count: int = 8192,
    cache_pages: int = 512,
    ops_per_thread: int = 300,
) -> Dict[str, List[Dict]]:
    """Dataset 4x the cache (paper: 32 GB records / 8 GB cache)."""
    counts = thread_counts if thread_counts is not None else [1, 4, 16]
    return {
        "pmem": run_sweep("pmem", record_count, cache_pages, counts, ops_per_thread),
        "nvme": run_sweep("nvme", record_count, cache_pages, counts, ops_per_thread),
    }


def enumerate_cells(scale: str = "figure") -> List[Dict]:
    """Every Figure 5 cell as an independent sweep work unit.

    Grid: variant (a: in-cache, b: 4x the cache) x device (pmem, nvme)
    x thread count x RocksDB mode (direct, mmap, aquila).  Params carry
    the fully resolved sizing (record count, cache pages, ops) so the
    config digest pins the exact run.
    """
    if scale == "figure":
        counts, ops = [1, 4, 16], 300
        records_a, records_b = 4096, 8192
    else:
        counts, ops = [1, 4], 150
        records_a, records_b = 1024, 2048
    cache_a = int((records_a // 4) * 1.3)   # fig5a: dataset + 30% headroom
    cache_b = 512 if scale == "figure" else 128
    cells = []
    for variant, records, cache_pages in (
        ("a", records_a, cache_a),
        ("b", records_b, cache_b),
    ):
        for device in ("pmem", "nvme"):
            for threads in counts:
                for mode in MODES:
                    cells.append(
                        {
                            "cell_id": f"fig5{variant}/{device}/t{threads}/{mode}",
                            "figure": f"fig5{variant}",
                            "params": {
                                "mode": mode,
                                "device_kind": device,
                                "record_count": records,
                                "cache_pages": cache_pages,
                                "num_threads": threads,
                                "ops_per_thread": ops,
                            },
                        }
                    )
    return cells


def run_sweep_cell(params: Dict) -> Dict:
    """Run one enumerated Figure 5 cell; the payload row is its state.

    RocksDB cells digest their measured payload (throughput, latency
    stats, op counts): the simulation is deterministic, so the payload is
    a faithful — if coarse — fingerprint of the run.
    """
    row = run_cell(
        params["mode"],
        params["device_kind"],
        params["record_count"],
        params["cache_pages"],
        params["num_threads"],
        params["ops_per_thread"],
    )
    return {"payload": row, "state": row}

"""Figure 9: Kreon over kmmap vs Kreon over Aquila (paper Section 6.4)."""

from repro.bench.experiments.fig9 import ALL_WORKLOADS, run_fig9
from repro.bench.report import Table, print_claims, ratio_line

PAPER = {
    "nvme": {"throughput": 1.02, "avg": 1.29, "p999": 3.78},
    "pmem": {"throughput": 1.22, "avg": 1.43, "p999": 13.72},
}


def test_fig9_all_workloads(once):
    """All six YCSB workloads, single thread, dataset 2x the cache."""
    rows = once(run_fig9)

    table = Table(
        "Figure 9: Kreon kmmap vs Aquila (YCSB A-F, 1 thread, 16GB data / 8GB cache)",
        ["device", "workload", "kmmap ops/s", "aquila ops/s", "thr ratio",
         "avg-lat ratio", "p99.9 ratio"],
    )
    for row in rows:
        table.add_row(
            row["device"],
            row["workload"],
            row["kmmap"]["throughput"],
            row["aquila"]["throughput"],
            row["throughput_ratio"],
            row["avg_latency_ratio"],
            row["p999_ratio"],
        )
    table.show()

    claims = []
    for device in ("nvme", "pmem"):
        device_rows = [r for r in rows if r["device"] == device]
        avg_thr = sum(r["throughput_ratio"] for r in device_rows) / len(device_rows)
        avg_lat = sum(r["avg_latency_ratio"] for r in device_rows) / len(device_rows)
        avg_tail = sum(r["p999_ratio"] for r in device_rows) / len(device_rows)
        claims.append(
            ratio_line(f"{device} mean throughput ratio", PAPER[device]["throughput"], avg_thr)
        )
        claims.append(
            ratio_line(f"{device} mean avg-latency ratio", PAPER[device]["avg"], avg_lat)
        )
        claims.append(
            ratio_line(f"{device} mean p99.9 ratio", PAPER[device]["p999"], avg_tail)
        )
    print_claims("Figure 9 paper-vs-measured", claims)

    assert {row["workload"] for row in rows} == set(ALL_WORKLOADS)
    for row in rows:
        # Aquila never loses on throughput and wins on average latency.
        assert row["throughput_ratio"] > 0.95, f"{row['device']}-{row['workload']}"
        assert row["avg_latency_ratio"] > 0.95
        # No lookups should fail (data integrity through both engines).
        assert row["kmmap"]["not_found"] == 0
        assert row["aquila"]["not_found"] == 0
    # Tail latency: Aquila clearly better (paper: 3.78x NVMe, 13.72x pmem).
    pmem_tails = [r["p999_ratio"] for r in rows if r["device"] == "pmem"]
    assert max(pmem_tails) > 1.3, "Aquila must cut Kreon's tail latency"

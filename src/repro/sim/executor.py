"""Operation-granularity discrete-event executor.

Simulated threads are Python iterators: each ``next()`` performs exactly one
application-level operation (a KV get, one BFS step, one microbenchmark
access), mutating shared simulation state and charging cycles to the
thread's clock.  The executor always steps the thread whose clock is
furthest behind, so shared structures (caches, freelists, lock timelines)
are touched in simulated-time order — the property that makes the lock and
device timeline models meaningful.

This gives deterministic, single-OS-thread simulation of up to the paper's
32 hardware threads (DESIGN.md Section 4, item 1).

Batched (epoch) mode
--------------------

``Executor(epoch_cycles=...)`` enables the high-throughput scheduler.  Two
mechanisms remove heap round-trips without changing any simulated outcome
(DESIGN.md "The batching invariant" has the full argument):

* **min-run continuation** — after stepping a thread, keep stepping it as
  long as it would be popped next anyway (its ``(clock, order)`` key is
  still <= the heap top).  This is the identical schedule by construction.
* **hit-run run-ahead** — before each step the executor publishes
  ``thread.run_horizon = heap_top_clock + quantum``; workloads may retire a
  *run* of consecutive pure cache-hit operations up to that horizon in one
  step (via ``MmioEngine.hit_run``), re-entering the heap only on a miss,
  a lock acquisition, a protection change, or the horizon (epoch) boundary.

Run-ahead is safe because hit operations only touch state that no other
thread can observe within the quantum: every cross-thread-visible mutation
(PTE downgrade, TLB shootdown, interference post, page-data read for
writeback) sits behind at least :data:`MIN_SYNC_PREAMBLE_CYCLES` of
charges from its operation's start, while a hit op finishes all its
interactions within :data:`HIT_INTERACTION_BOUND_CYCLES` of *its* start.
With ``SYNC_HORIZON_CYCLES + HIT_INTERACTION_BOUND_CYCLES <
MIN_SYNC_PREAMBLE_CYCLES``, no run-ahead hit can overlap a mutation that
unbatched execution would have ordered before it
(``tests/conformance/test_invariant.py`` checks the inequality, the
conformance suite checks the consequence bit-exactly).

A third mechanism lifts the horizon entirely when the workload can prove
quiescence: ``Executor(..., quiescent=cert)`` takes a certificate callable
(``MmioEngine.run_ahead_unbounded_ok``) that returns True only while *no*
operation any thread can take mutates cross-thread-visible state — every
mapped page has a guaranteed frame (no evictions, hence no shootdowns and
no interference posts), no range has ever been shrunk or downgraded, and
nothing has ever been dirtied (no writeback protection churn).  Under the
certificate, faults only *add* page-table entries; a run-ahead hit either
sees the added entry (identical outcome) or breaks to the heap and retries
in order, so an unbounded hit-run is still bit-exact.  This is what makes
read-dominated in-memory cells (Figure 10a) fast: each thread retires its
entire re-access tail in one executor step.
"""

from __future__ import annotations

import heapq
import itertools
import math
from typing import Callable, Iterable, Iterator, List, Optional, Sequence

from repro.common.errors import SimulationError
from repro.sim.clock import Breakdown, CycleClock
from repro.sim.stats import LatencyRecorder

#: Run-ahead quantum for batched mode: a hit-run may consume operations
#: starting up to this many cycles past the next-scheduled thread's clock.
SYNC_HORIZON_CYCLES = 120.0

#: Upper bound on how far past its start a pure-hit operation interacts
#: with shared state: SMT-scaled load/store (6) + TLB miss walk (100),
#: with a 1.5x CPI safety factor over the modeled 1.4 maximum.
HIT_INTERACTION_BOUND_CYCLES = 1.5 * (6 + 100)

#: Minimum charges any engine pays between an operation's start and its
#: first cross-thread-visible interaction (trap/syscall/msync preambles).
#: Each engine declares its own ``sync_preamble_cycles`` >= this.
MIN_SYNC_PREAMBLE_CYCLES = 300.0

assert SYNC_HORIZON_CYCLES + HIT_INTERACTION_BOUND_CYCLES < MIN_SYNC_PREAMBLE_CYCLES


class SimThread:
    """One simulated software thread pinned to a hardware thread.

    ``core`` is the hardware-thread index (0..31 on the paper's testbed);
    the topology module maps it to a physical core and NUMA node.
    """

    _ids = itertools.count()

    def __init__(self, core: int, name: str = "") -> None:
        self.tid = next(SimThread._ids)
        self.core = core
        self.name = name or f"thread-{self.tid}"
        self.clock = CycleClock()
        self.clock.owner_name = self.name
        self.latencies = LatencyRecorder()
        self.ops_completed = 0
        #: Batched-mode run-ahead limit published by the executor before
        #: each step: workloads may retire consecutive pure-hit operations
        #: whose start times do not exceed it (None = unbatched mode).
        self.run_horizon: Optional[float] = None

    @classmethod
    def reset_ids(cls) -> None:
        """Restart tid assignment (reproducible back-to-back runs only)."""
        cls._ids = itertools.count()

    def record_op(self, start_cycles: float) -> None:
        """Record completion of one operation started at ``start_cycles``."""
        self.latencies.record(self.clock.now - start_cycles)
        self.ops_completed += 1

    def __repr__(self) -> str:
        return f"SimThread({self.name}, core={self.core}, now={self.clock.now:.0f})"


class RunResult:
    """Outcome of one executor run."""

    def __init__(self, threads: Sequence[SimThread]) -> None:
        self.threads = list(threads)

    @property
    def makespan_cycles(self) -> float:
        """Finish time of the slowest thread (total elapsed simulated time)."""
        if not self.threads:
            return 0.0
        return max(t.clock.now for t in self.threads)

    @property
    def total_ops(self) -> int:
        """Operations completed across all threads."""
        return sum(t.ops_completed for t in self.threads)

    def throughput_ops_per_sec(self) -> float:
        """Aggregate throughput over the makespan."""
        from repro.sim.stats import throughput_ops_per_sec

        return throughput_ops_per_sec(self.total_ops, self.makespan_cycles)

    def merged_latencies(self) -> LatencyRecorder:
        """All threads' operation latencies in one recorder."""
        merged = LatencyRecorder()
        for t in self.threads:
            merged.merge(t.latencies)
        return merged

    def merged_breakdown(self) -> Breakdown:
        """All threads' cycle breakdowns merged."""
        merged = Breakdown()
        for t in self.threads:
            merged.merge(t.clock.breakdown)
        return merged


class Executor:
    """Runs a set of (thread, workload-iterator) pairs to completion.

    ``epoch_cycles`` enables batched mode: before each step the executor
    publishes a run-ahead horizon on the thread (``thread.run_horizon``),
    and keeps stepping a thread without heap round-trips while it remains
    the scheduling minimum.  The quantum is clamped to
    :data:`SYNC_HORIZON_CYCLES` — the bound under which batched execution
    is provably bit-identical to unbatched execution (module docstring).
    """

    def __init__(
        self,
        epoch_cycles: Optional[float] = None,
        quiescent: Optional[Callable[[], bool]] = None,
    ) -> None:
        self._entries: List[tuple] = []
        if epoch_cycles is not None and epoch_cycles < 0:
            raise ValueError("epoch_cycles must be non-negative")
        self.epoch_cycles = epoch_cycles
        #: Optional certificate callable (e.g.
        #: ``MmioEngine.run_ahead_unbounded_ok``): while it returns True,
        #: no operation any thread can take mutates cross-thread-visible
        #: state, so the published horizon is unbounded instead of
        #: ``top + quantum`` and a pure-hit thread retires its whole
        #: remaining run in one step.  Only consulted in batched mode
        #: when no two runnable threads share a hardware thread.
        self.quiescent = quiescent

    def add(self, thread: SimThread, workload: Iterable) -> None:
        """Register ``thread`` to execute operations from ``workload``.

        ``workload`` must be an iterable whose iterator performs one
        operation per ``next()`` call (yielded values are ignored).
        """
        self._entries.append((thread, iter(workload)))

    def run(self, max_ops: Optional[int] = None) -> RunResult:
        """Step threads in min-clock order until all workloads finish.

        ``max_ops`` bounds total executor steps as a runaway guard (in
        batched mode one step may retire a whole hit-run of operations).
        """
        if self.epoch_cycles is not None:
            return self._run_batched(max_ops)
        heap: List[tuple] = []
        for order, (thread, it) in enumerate(self._entries):
            thread.run_horizon = None
            heap.append((thread.clock.now, order, thread, it))
        heapq.heapify(heap)

        steps = 0
        while heap:
            _, order, thread, it = heapq.heappop(heap)
            try:
                before = thread.clock.now
                next(it)
                if thread.clock.now < before:
                    raise SimulationError(
                        f"{thread.name} moved backwards in time "
                        f"({before:.0f} -> {thread.clock.now:.0f})"
                    )
            except StopIteration:
                continue
            steps += 1
            if max_ops is not None and steps > max_ops:
                raise SimulationError(f"executor exceeded max_ops={max_ops}")
            heapq.heappush(heap, (thread.clock.now, order, thread, it))

        return RunResult([t for t, _ in self._entries])

    def _run_batched(self, max_ops: Optional[int]) -> RunResult:
        """Epoch-batched scheduling: min-run continuation + hit run-ahead.

        Threads sharing a hardware thread would expose each other's TLB
        state inside a run-ahead window, so run-ahead degrades to zero
        quantum when any two runnable threads share a core.
        """
        quantum = min(self.epoch_cycles, SYNC_HORIZON_CYCLES)
        cores = [thread.core for thread, _ in self._entries]
        if len(set(cores)) != len(cores):
            quantum = 0.0
        quiescent = self.quiescent if quantum > 0.0 else None

        heap: List[tuple] = []
        for order, (thread, it) in enumerate(self._entries):
            heap.append((thread.clock.now, order, thread, it))
        heapq.heapify(heap)

        steps = 0
        try:
            while heap:
                _, order, thread, it = heapq.heappop(heap)
                top = heap[0] if heap else None
                while True:
                    if top is None or (quiescent is not None and quiescent()):
                        thread.run_horizon = math.inf
                    else:
                        thread.run_horizon = top[0] + quantum
                    before = thread.clock.now
                    try:
                        next(it)
                    except StopIteration:
                        break
                    if thread.clock.now < before:
                        raise SimulationError(
                            f"{thread.name} moved backwards in time "
                            f"({before:.0f} -> {thread.clock.now:.0f})"
                        )
                    steps += 1
                    if max_ops is not None and steps > max_ops:
                        raise SimulationError(
                            f"executor exceeded max_ops={max_ops}"
                        )
                    if top is not None and (thread.clock.now, order) > top[:2]:
                        heapq.heappush(heap, (thread.clock.now, order, thread, it))
                        break
                    # Still the scheduling minimum: continue without a
                    # heap round-trip (identical schedule by construction).
        finally:
            for thread, _ in self._entries:
                thread.run_horizon = None

        return RunResult([t for t, _ in self._entries])


def make_epoch_executor(
    batched: bool, quiescent: Optional[Callable[[], bool]] = None
) -> Executor:
    """The standard batched/unbatched executor wiring, in one place.

    Every workload driver (microbenchmark, serving layer, cluster shard
    epochs) builds its executor the same way: batched mode runs with the
    proven :data:`SYNC_HORIZON_CYCLES` quantum and the engine's
    quiescence certificate; unbatched mode is the pristine per-op
    reference with neither.  Cluster shards call this once per epoch —
    the epoch barrier is a fresh executor over the shard's persistent
    threads, so no run-ahead state (horizons, certificates) can survive
    an epoch boundary and message delivery always happens between
    executor runs (DESIGN.md §13).
    """
    return Executor(
        epoch_cycles=SYNC_HORIZON_CYCLES if batched else None,
        quiescent=quiescent if batched else None,
    )


def run_threads(
    make_workload: Callable[[SimThread], Iterator],
    num_threads: int,
    cores: Optional[Sequence[int]] = None,
    start_offset_cycles: float = 0.0,
) -> RunResult:
    """Convenience: build ``num_threads`` threads and run their workloads.

    ``make_workload`` receives each :class:`SimThread` and returns its
    operation iterator.  ``cores`` optionally pins threads to hardware
    threads (defaults to identity).  ``start_offset_cycles`` staggers thread
    start times to avoid artificial lockstep convoys.
    """
    executor = Executor()
    threads = []
    for i in range(num_threads):
        core = cores[i] if cores is not None else i
        thread = SimThread(core=core)
        thread.clock.now = i * start_offset_cycles
        threads.append(thread)
        executor.add(thread, make_workload(thread))
    return executor.run()

"""pmem device model: a DRAM-backed byte-addressable NVM block device.

The paper uses a ``pmem`` block device (DRAM-backed, [54]) "in experiments
where we want to stress the software path of the Linux kernel"
(Section 5).  Its media is as fast as DRAM, so all observable cost is the
software that touches it:

* accessed as a **block device** in the kernel fault path, a 4 KB read
  costs the kernel's non-SIMD copy (2400 cycles) plus bio bookkeeping —
  together the "49% device I/O" share of the 5380-cycle Linux fault in
  Figure 8(a);
* accessed through **DAX** from Aquila, a 4 KB read is an AVX2 streaming
  copy plus FPU save/restore = 1200 cycles (Section 3.3).

The DAX window exposes the same backing store byte-addressably.
"""

from __future__ import annotations

from repro.common import constants, units
from repro.devices.block import BlockDevice
from repro.fault.plan import FAULT_NONE
from repro.hw.fpu import FPUContext
from repro.sim.clock import CycleClock

#: bio/submission bookkeeping so that kernel-path 4 KB reads cost 2636
#: cycles: 49% of the 5380-cycle Linux fault of Figure 8(a).
PMEM_BIO_OVERHEAD_CYCLES = 236

PMEM_CYCLES_PER_BYTE = constants.MEMCPY_4K_NOSIMD_CYCLES / units.PAGE_SIZE

#: Aggregate DRAM-media bandwidth shared by all threads touching the
#: device (a dual-socket DDR4-2400 machine sustains ~40 GB/s of random
#: copy traffic); this is what bounds Aquila's scaling once locks are gone.
PMEM_MEDIA_BANDWIDTH = 40 * units.GIB


class PmemDevice(BlockDevice):
    """DRAM-backed pmem block device with a DAX access window."""

    #: A pmem "spike" is a row-buffer/refresh-class stall, orders of
    #: magnitude shorter than an SSD internal-GC pause.
    fault_latency_scale = 0.01

    def __init__(self, capacity_bytes: int = 128 * units.GIB, name: str = "pmem0") -> None:
        super().__init__(
            name=name,
            capacity_bytes=capacity_bytes,
            read_latency_cycles=PMEM_BIO_OVERHEAD_CYCLES,
            write_latency_cycles=PMEM_BIO_OVERHEAD_CYCLES,
            read_cycles_per_byte=PMEM_CYCLES_PER_BYTE,
            write_cycles_per_byte=PMEM_CYCLES_PER_BYTE,
            read_iops_cap=None,   # media is DRAM: no command-rate limit
            write_iops_cap=None,
            media_bandwidth_bytes_per_sec=PMEM_MEDIA_BANDWIDTH,
        )

    # -- DAX path ---------------------------------------------------------

    def dax_read(
        self,
        clock: CycleClock,
        fpu: FPUContext,
        offset: int,
        nbytes: int,
        category: str = "io.dax",
    ) -> bytes:
        """Copy ``nbytes`` out of the DAX window into DRAM.

        No syscall, no bio: just the memcpy cost of the caller's copy
        strategy (SIMD for Aquila, Section 3.3).
        """
        media_done = (
            self.media.admit(clock.now, nbytes) if self.media is not None else 0.0
        )
        self._dax_fault(clock, offset, nbytes, is_write=False, data=None)
        fpu.charge_copy(clock, nbytes, category)
        clock.wait_until(media_done, "idle.membw")
        self.reads += 1
        self.bytes_read += nbytes
        return self.store.read(offset, nbytes)

    def dax_write(
        self,
        clock: CycleClock,
        fpu: FPUContext,
        offset: int,
        data: bytes,
        category: str = "io.dax",
    ) -> None:
        """Copy ``data`` from DRAM into the DAX window."""
        media_done = (
            self.media.admit(clock.now, len(data)) if self.media is not None else 0.0
        )
        self._dax_fault(clock, offset, len(data), is_write=True, data=data)
        fpu.charge_copy(clock, len(data), category)
        clock.wait_until(media_done, "idle.membw")
        self.writes += 1
        self.bytes_written += len(data)
        self.store.write(offset, data)

    def _dax_fault(
        self, clock: CycleClock, offset: int, nbytes: int, is_write: bool, data
    ) -> None:
        """Consult the fault plan on the DAX path (poison/ECC stalls).

        Latency spikes block the copy (charged as a fault-latency wait);
        errors model a poisoned line raising a machine-check the DAX
        layer reports as a transient failure; torn writes land a prefix
        (cacheline-granular persistence without a fence).
        """
        if self.faults is None:
            return
        decision = self.faults.decide(clock.now, is_write, nbytes)
        if decision.kind == FAULT_NONE:
            return
        extra = self._apply_fault(decision, offset, nbytes, is_write, data)
        clock.wait_until(clock.now + extra, "idle.fault.latency")

"""CycleClock and Breakdown accounting."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim.clock import Breakdown, CycleClock


class TestCycleClock:
    def test_charge_advances(self):
        clock = CycleClock()
        clock.charge("a", 100)
        clock.charge("b", 50)
        assert clock.now == 150
        assert clock.breakdown.get("a") == 100
        assert clock.breakdown.get("b") == 50

    def test_negative_charge_rejected(self):
        clock = CycleClock()
        with pytest.raises(ValueError):
            clock.charge("x", -1)

    def test_wait_until_future(self):
        clock = CycleClock()
        clock.charge("work", 100)
        waited = clock.wait_until(500, "idle.io")
        assert waited == 400
        assert clock.now == 500
        assert clock.breakdown.get("idle.io") == 400

    def test_wait_until_past_is_noop(self):
        clock = CycleClock()
        clock.charge("work", 100)
        assert clock.wait_until(50, "idle") == 0
        assert clock.now == 100

    def test_smt_cpi_factor_scales_work_not_waits(self):
        clock = CycleClock()
        clock.cpi_factor = 1.4
        clock.charge("work", 100)
        assert clock.now == pytest.approx(140)
        clock.wait_until(200, "idle")
        assert clock.now == 200   # waits are wall-clock, not CPI-scaled

    def test_seconds_property(self):
        clock = CycleClock()
        clock.charge("x", 2_400_000_000)
        assert clock.seconds == pytest.approx(1.0)

    @given(st.lists(st.floats(min_value=0, max_value=1e6, allow_nan=False), max_size=50))
    def test_now_equals_total_charged(self, charges):
        clock = CycleClock()
        for i, cycles in enumerate(charges):
            clock.charge(f"cat{i % 3}", cycles)
        assert clock.now == pytest.approx(sum(charges))
        assert clock.breakdown.total() == pytest.approx(sum(charges))


class TestBreakdown:
    def test_prefix_total(self):
        breakdown = Breakdown()
        breakdown.add("fault.trap", 100)
        breakdown.add("fault.io.device", 200)
        breakdown.add("faulty", 999)   # not a dotted child of "fault"
        assert breakdown.prefix_total("fault") == 300
        assert breakdown.prefix_total("fault.io") == 200
        assert breakdown.prefix_total("faulty") == 999

    def test_merge(self):
        a, b = Breakdown(), Breakdown()
        a.add("x", 1)
        b.add("x", 2)
        b.add("y", 3)
        a.merge(b)
        assert a.get("x") == 3
        assert a.get("y") == 3

    def test_scaled(self):
        breakdown = Breakdown()
        breakdown.add("x", 10)
        half = breakdown.scaled(0.5)
        assert half.get("x") == 5
        assert breakdown.get("x") == 10   # original untouched

    def test_zero_add_ignored(self):
        breakdown = Breakdown()
        breakdown.add("x", 0)
        assert breakdown.as_dict() == {}

    def test_items_sorted(self):
        breakdown = Breakdown()
        breakdown.add("b", 1)
        breakdown.add("a", 2)
        assert [k for k, _ in breakdown.items()] == ["a", "b"]

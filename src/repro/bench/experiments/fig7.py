"""Figure 7: RocksDB read-path cycle breakdown (paper Section 6.3).

YCSB-C random reads with the dataset 4x the cache, comparing RocksDB over
explicit I/O (user-space cache + direct pread) against RocksDB over
Aquila.  The paper's numbers (cycles per get):

===========  =========  ==============  ========  =======
Mode         device IO  cache mgmt      get       total
===========  =========  ==============  ========  =======
explicit     4.8 K      45.2 K          15.3 K    65.4 K
Aquila       3.9 K      17.5 K          18.5 K    ~40 K
===========  =========  ==============  ========  =======

Headline: Aquila needs 2.58x fewer cycles for cache management and
delivers ~40% higher throughput.

The per-stage sections are derived from a traced run: every operation of
the measured phase runs under ``repro.obs`` spans, and the exclusive
(self) cycles of the span tree are folded into the figure's three
sections.  The span-derived total is checked against the clock's own
charged total by the benchmark suite (they must agree within 1%).
"""

from __future__ import annotations

from typing import Dict

from repro.bench.setups import make_rocksdb
from repro.obs import TRACER, CycleAttribution
from repro.sim.executor import Executor, SimThread
from repro.workloads.ycsb import YCSBConfig, YCSBDriver


def _sections_from_trace(att: CycleAttribution, gets: int) -> Dict[str, float]:
    """Fold span self-cycles into the Figure 7 sections (cycles per get).

    * **device_io** — exclusive cycles of the spans that talk to the
      device: fault reads, explicit-I/O device commands, writeback.
    * **get** — the KV store's own lookup work, which the store charges
      as ``app.get*`` directly on the operation span.
    * **cache_mgmt** — everything else the traced ops spent: cache
      lookups/inserts, eviction/reclaim, syscalls, TLB and lock work.

    ``app.access`` (the raw load/store hit cost) is excluded from every
    section, as in the paper's figure.
    """
    device = (
        att.self_prefix_total("fault.io")
        + att.self_prefix_total("io.device")
        + att.self_prefix_total("writeback")
    )
    op_charges = att.charges_of_prefix("op")
    get = sum(
        cycles
        for category, cycles in op_charges.items()
        if category == "app.get" or category.startswith("app.get.")
    )
    excluded = op_charges.get("app.access", 0.0)
    cache = att.total_cycles() - device - get - excluded
    return {
        "device_io": device / gets,
        "cache_mgmt": cache / gets,
        "get": get / gets,
        "total": (device + cache + get) / gets,
    }


def run_mode(
    mode: str,
    record_count: int = 16384,
    operations: int = 2000,
    cache_pages: int = 1024,
    device_kind: str = "pmem",
) -> Dict:
    """Load, compact, then measure a YCSB-C read phase for one mode."""
    db, stack = make_rocksdb(
        mode,
        device_kind=device_kind,
        cache_pages=cache_pages,
        capacity_bytes=1 << 30,
    )
    loader = SimThread(core=0)
    config = YCSBConfig(
        workload="C",
        record_count=record_count,
        operation_count=operations,
        distribution="uniform",
    )
    driver = YCSBDriver(db, config)
    driver.load(loader)
    db.flush(loader)
    db.compact_all(loader)

    runner = SimThread(core=0)
    # Continue simulated time from the load phase: lock and device
    # timelines are already at the loader's clock.
    runner.clock.now = loader.clock.now
    executor = Executor()
    executor.add(runner, driver.run_workload(runner, operations))

    # Trace the measured phase.  If a caller (e.g. the CLI's --trace)
    # already enabled tracing, keep its settings and window on a mark;
    # otherwise trace just this phase.
    was_enabled = TRACER.enabled
    if not was_enabled:
        TRACER.enable()
    mark = TRACER.mark()
    phase_start = runner.clock.now
    result = executor.run()
    elapsed = result.makespan_cycles - phase_start
    att = CycleAttribution.from_tracer(TRACER, since=mark)
    if not was_enabled:
        TRACER.disable()

    sections = _sections_from_trace(att, operations)
    latencies = result.merged_latencies()
    from repro.sim.stats import throughput_ops_per_sec

    return {
        "mode": mode,
        "sections": sections,
        "trace_total_cycles": att.total_cycles(),
        "charged_total_cycles": runner.clock.breakdown.total(),
        "throughput": throughput_ops_per_sec(result.total_ops, elapsed),
        "mean_latency_cycles": latencies.mean(),
        "p999_cycles": latencies.p999(),
        "not_found": driver.stats.not_found,
        "db_stats": db.stats(),
    }


def run_fig7(
    record_count: int = 16384,
    operations: int = 2000,
    cache_pages: int = 1024,
) -> Dict[str, Dict]:
    """Both modes of Figure 7."""
    direct = run_mode("direct", record_count, operations, cache_pages)
    aquila = run_mode("aquila", record_count, operations, cache_pages)
    return {
        "direct": direct,
        "aquila": aquila,
        "cache_mgmt_ratio": direct["sections"]["cache_mgmt"]
        / max(1.0, aquila["sections"]["cache_mgmt"]),
        "throughput_gain": aquila["throughput"] / max(1.0, direct["throughput"]),
    }


def enumerate_cells(scale: str = "figure") -> List[Dict]:
    """Figure 7's two bars (explicit I/O, Aquila) as sweep work units.

    The cache-management ratio and throughput gain are computed by the
    report from the two cells jointly, so each mode stays an independent,
    restartable unit.
    """
    if scale == "figure":
        records, operations, cache_pages = 16384, 2000, 1024
    else:
        records, operations, cache_pages = 4096, 500, 256
    return [
        {
            "cell_id": f"fig7/{mode}",
            "figure": "fig7",
            "params": {
                "mode": mode,
                "record_count": records,
                "operations": operations,
                "cache_pages": cache_pages,
            },
        }
        for mode in ("direct", "aquila")
    ]


def run_sweep_cell(params: Dict) -> Dict:
    """Run one enumerated Figure 7 mode; the payload (sans raw db stats
    object) is its state.  Sections are trace-derived cycles per get."""
    row = run_mode(
        params["mode"],
        params["record_count"],
        params["operations"],
        params["cache_pages"],
    )
    return {"payload": row, "state": row}

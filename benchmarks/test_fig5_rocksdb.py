"""Figure 5: RocksDB YCSB-C throughput across the three I/O modes."""

from repro.bench.experiments.fig5 import run_fig5a, run_fig5b
from repro.bench.report import Table, print_claims, ratio_line

THREADS = [1, 4, 8]


def _show(results, title):
    table = Table(
        title,
        ["device", "threads", "read/write", "mmap", "aquila", "aq/mmap", "aq/direct"],
    )
    for device, rows in results.items():
        for row in rows:
            direct = row["direct"]["throughput"]
            mmap = row["mmap"]["throughput"]
            aquila = row["aquila"]["throughput"]
            table.add_row(
                device,
                row["threads"],
                direct,
                mmap,
                aquila,
                aquila / mmap,
                aquila / direct,
            )
    table.show()


def test_fig5a_dataset_fits_in_memory(once):
    """Fig 5(a): mmap > read/write in memory; Aquila up to ~1.15x over mmap."""
    results = once(run_fig5a, thread_counts=THREADS)
    _show(results, "Figure 5(a): YCSB-C throughput (ops/s), dataset fits the cache")

    claims = []
    for device, rows in results.items():
        for row in rows:
            claims.append(
                ratio_line(
                    f"{device} @{row['threads']}t aquila/mmap (paper <=1.15)",
                    1.15,
                    row["aquila"]["throughput"] / row["mmap"]["throughput"],
                )
            )
    print_claims("Figure 5(a) paper-vs-measured", claims)

    for device, rows in results.items():
        for row in rows:
            # "mmap is faster than read/write calls" for in-memory datasets.
            assert (
                row["mmap"]["throughput"] > 0.95 * row["direct"]["throughput"]
            ), f"{device}@{row['threads']}t: mmap should not lose to read/write in memory"
            # Aquila is at least as fast as mmap.
            assert row["aquila"]["throughput"] > row["mmap"]["throughput"]


def test_fig5b_dataset_exceeds_memory(once):
    """Fig 5(b): mmap collapses (readahead); Aquila beats direct I/O on pmem."""
    results = once(run_fig5b, thread_counts=THREADS)
    _show(results, "Figure 5(b): YCSB-C throughput (ops/s), dataset 4x the cache")

    claims = []
    for device, rows in results.items():
        for row in rows:
            claims.append(
                ratio_line(
                    f"{device} @{row['threads']}t aquila/direct "
                    f"(paper pmem 1.18-1.65, nvme ~1 at saturation)",
                    None,
                    row["aquila"]["throughput"] / row["direct"]["throughput"],
                )
            )
    print_claims("Figure 5(b) paper-vs-measured", claims)

    for device, rows in results.items():
        for row in rows:
            # "Linux mmap performs poorly compared to read/write I/O" —
            # the 128 KB readahead amplifies reads 32x.
            assert (
                row["mmap"]["throughput"] < row["direct"]["throughput"]
            ), f"{device}@{row['threads']}t: mmap must collapse out of memory"
            # Aquila improves on explicit I/O.
            assert row["aquila"]["throughput"] > row["direct"]["throughput"]
    # The pmem advantage exceeds the NVMe advantage (device-bound there).
    pmem_gain = results["pmem"][-1]["aquila"]["throughput"] / results["pmem"][-1][
        "direct"
    ]["throughput"]
    nvme_gain = results["nvme"][-1]["aquila"]["throughput"] / results["nvme"][-1][
        "direct"
    ]["throughput"]
    assert pmem_gain > nvme_gain, "faster devices show Aquila's benefit more"


def test_fig5_latency_claims(once):
    """Section 6.1: Aquila achieves lower average and tail latency."""
    results = once(run_fig5b, thread_counts=[4])
    claims = []
    for device, rows in results.items():
        row = rows[0]
        avg_ratio = row["direct"]["mean_latency_cycles"] / row["aquila"][
            "mean_latency_cycles"
        ]
        tail_ratio = row["direct"]["p999_cycles"] / max(1.0, row["aquila"]["p999_cycles"])
        claims.append(
            ratio_line(f"{device} avg latency direct/aquila", 1.26, avg_ratio)
        )
        claims.append(
            ratio_line(f"{device} p99.9 direct/aquila (paper 1.26x o-o-m)", 1.26, tail_ratio)
        )
        assert avg_ratio > 1.0, f"{device}: Aquila average latency must be lower"
    print_claims("Figure 5 latency paper-vs-measured", claims)

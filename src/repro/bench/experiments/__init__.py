"""Per-figure experiment runners (paper Section 6).

Each module reproduces one figure and exposes two sweep entry points on
top of its inline runners:

* ``enumerate_cells(scale)`` — every figure cell as an independent,
  param-complete work unit (``scale="figure"`` for the paper grid,
  ``"bench"`` for the shrunk CI grid);
* ``run_sweep_cell(params)`` — run one enumerated cell, returning its
  JSON-able payload row and the state that :mod:`repro.bench.sweep`
  digests for cross-worker conformance.
"""

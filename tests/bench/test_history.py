"""Bench-trajectory tracker: history records, stage shares, regression attribution."""

import json

import pytest

from repro.obs import METRICS, TRACER


@pytest.fixture(autouse=True)
def _globals_off():
    yield
    TRACER.disable()
    TRACER.reset()
    METRICS.disable()
    METRICS.reset()


class TestSweepHistory:
    def test_sweep_appends_kind_sweep_record(self, tmp_path):
        from repro.bench.sweep import run_sweep

        history = tmp_path / "BENCH_history.jsonl"
        result = run_sweep(
            figures=["fig8c"],
            scale="bench",
            workers=1,
            manifest_path=str(tmp_path / "m.jsonl"),
            history_path=str(history),
        )
        assert result.ok
        records = [json.loads(line) for line in history.read_text().splitlines()]
        assert len(records) == 1
        record = records[0]
        assert record["kind"] == "sweep"
        assert record["sweep_digest"] == result.sweep_digest
        assert record["cells_ran"] == len(result.entries)
        assert record["cells_failed"] == []
        assert sum(record["stage_cycles"].values()) > 0
        assert record["stage_shares"]["fault_path"] > 0

    def test_history_stage_cycles_deterministic_across_runs(self, tmp_path):
        from repro.bench.sweep import run_sweep

        def run(name):
            directory = tmp_path / name
            directory.mkdir()
            history = directory / "h.jsonl"
            run_sweep(
                figures=["fig8c"],
                scale="bench",
                workers=1,
                manifest_path=str(directory / "m.jsonl"),
                history_path=str(history),
            )
            (record,) = [
                json.loads(line) for line in history.read_text().splitlines()
            ]
            return record

        first, second = run("a"), run("b")
        assert first["stage_cycles"] == second["stage_cycles"]
        assert first["stage_shares"] == second["stage_shares"]
        assert first["sweep_digest"] == second["sweep_digest"]

    def test_no_history_path_appends_nothing(self, tmp_path):
        from repro.bench.sweep import run_sweep

        run_sweep(
            figures=["fig8c"],
            scale="bench",
            workers=1,
            manifest_path=str(tmp_path / "m.jsonl"),
        )
        assert list(tmp_path.iterdir()) == [tmp_path / "m.jsonl"]


class TestKernelHistory:
    def _report(self, shares):
        return {
            "headline": {"cell": "c", "speedup_batched_over_unbatched": 7.5},
            "cells": {
                "c": {
                    "batched": {"sim_ops_per_sec": 1000.0, "wall_seconds": 1.0},
                    "speedup_batched_over_unbatched": 7.5,
                }
            },
            "stage_shares": shares,
        }

    def test_append_records_and_attributes_shift(self, tmp_path):
        from repro.bench.kernelbench import append_history

        history = str(tmp_path / "h.jsonl")
        first = append_history(history, self._report({"app": 0.6, "tlb": 0.4}))
        assert first["kind"] == "kernel"
        assert "share_shift" not in first   # nothing to diff against
        second = append_history(history, self._report({"app": 0.4, "tlb": 0.6}))
        assert second["share_shift"] == {"stage": "tlb", "delta": 0.2}
        records = [
            json.loads(line)
            for line in open(history).read().splitlines()
        ]
        assert [r["kind"] for r in records] == ["kernel", "kernel"]
        assert records[0]["config_digest"] == records[1]["config_digest"]

    def test_attribute_regression_names_suspect_stage(self, tmp_path):
        from repro.bench.kernelbench import append_history, attribute_regression

        history = str(tmp_path / "h.jsonl")
        append_history(history, self._report({"app": 0.7, "device_io": 0.3}))
        current = self._report({"app": 0.5, "device_io": 0.5})
        append_history(history, current)
        line = attribute_regression(current, history)
        assert "device_io" in line
        assert "+20.0%" in line

    def test_attribute_regression_flags_kernel_side_when_shares_static(
        self, tmp_path
    ):
        from repro.bench.kernelbench import append_history, attribute_regression

        history = str(tmp_path / "h.jsonl")
        shares = {"app": 0.5, "device_io": 0.5}
        append_history(history, self._report(shares))
        current = self._report(dict(shares))
        append_history(history, current)
        line = attribute_regression(current, history)
        assert "kernel-side" in line

    def test_attribute_regression_without_history(self, tmp_path):
        from repro.bench.kernelbench import attribute_regression

        assert (
            attribute_regression(
                self._report({"app": 1.0}), str(tmp_path / "missing.jsonl")
            )
            is None
        )

    def test_measured_stage_shares_are_deterministic(self):
        from repro.bench.kernelbench import measure_stage_shares

        first = measure_stage_shares(total_accesses=4096)
        second = measure_stage_shares(total_accesses=4096)
        assert first == second
        assert sum(first.values()) == pytest.approx(1.0, abs=1e-3)
        assert first["fault_path"] > 0

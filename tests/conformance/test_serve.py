"""Serve conformance tier: serving layer == across modes and workers.

Every serve cell must produce bit-identical full-state digests across the
three executor modes (unbatched min-heap, epoch-batched, batched +
analytic fast-forward) — including the serve-layer extension of the
digest: admission counters and the exact sojourn stream of every tenant.
That is the DESIGN.md §12 determinism argument made executable: arrival
waits are pure clock advances, admission decisions see identical
completion prefixes in every mode, and completion cycles flow through
one shared arithmetic chain.

The matrix covers all three mmio engines, QoS partitioning policies,
antagonist contention, writes, and the fast-forward engagement mix; a
separate test runs the serve figure family through the sweep
orchestrator at 1/2/4 workers and requires identical per-cell digests.
"""

import pytest

from repro.serve.core import (
    ServeConfig,
    engagement_tenants,
    run_conformance_cell,
    run_serve,
)
from repro.sim.conformance import (
    MODE_COUNTERS,
    assert_fastforward_agrees,
    hash_digest,
)

#: The serve conformance matrix: kwargs for ``run_conformance_cell``.
SERVE_CELLS = {
    "aquila-baseline": dict(engine_kind="aquila"),
    "kmmap-baseline": dict(engine_kind="kmmap"),
    "linux-baseline": dict(engine_kind="linux"),
    "aquila-antagonist": dict(engine_kind="aquila", antagonist_intensity=6),
    "aquila-static": dict(
        engine_kind="aquila", policy="static", antagonist_intensity=6
    ),
    "aquila-proportional": dict(
        engine_kind="aquila", policy="proportional", antagonist_intensity=6
    ),
    "kmmap-static": dict(
        engine_kind="kmmap", policy="static", antagonist_intensity=6
    ),
    "linux-static": dict(
        engine_kind="linux", policy="static", antagonist_intensity=6
    ),
    "aquila-writes": dict(
        engine_kind="aquila", antagonist_intensity=6, write_fraction=0.2
    ),
    "engagement-mix": dict(mix="engagement"),
}


class TestServeConformance:
    """Unbatched == batched == fast-forward, serving layer included."""

    @pytest.mark.parametrize("cell", sorted(SERVE_CELLS), ids=sorted(SERVE_CELLS))
    def test_modes_agree(self, cell):
        digest = assert_fastforward_agrees(
            run_conformance_cell, **SERVE_CELLS[cell]
        )
        # Non-vacuity: the serving layer did complete work in every tenant.
        for name, tenant in digest["serve"].items():
            assert tenant["completed"] > 0, f"tenant {name} served nothing"

    def test_digest_has_serve_section(self):
        digest = run_conformance_cell(batched=True, fastforward=True)
        assert set(digest["serve"]) == {"alpha", "beta"}
        for tenant in digest["serve"].values():
            assert tenant["offered"] == tenant["admitted"] + tenant["shed"]
            assert len(tenant["sojourns"]) == tenant["completed"]

    def test_mode_counters_stay_out_of_the_digest(self):
        digest = run_conformance_cell(batched=True, fastforward=True)
        for counter in MODE_COUNTERS:
            assert counter not in digest["engine"]

    def test_antagonist_perturbs_the_digest(self):
        # The antagonist must actually couple into the victims' state —
        # otherwise the contended cells silently degenerate to baselines.
        baseline = run_conformance_cell(batched=True, fastforward=True)
        contended = run_conformance_cell(
            batched=True, fastforward=True, antagonist_intensity=6
        )
        assert (
            baseline["serve"]["alpha"]["sojourns"]
            != contended["serve"]["alpha"]["sojourns"]
        )


class TestServeFastforwardEngages:
    """Non-vacuity: serve cells must actually reach the analytic path."""

    def test_analytic_windows_fire(self):
        from repro.mmio.files import BackingFile
        from repro.sim.executor import SimThread

        SimThread.reset_ids()
        BackingFile.reset_ids()
        outcome = run_serve(
            ServeConfig(
                tenants=engagement_tenants(),
                engine_kind="aquila",
                cache_pages=256,
                batched=True,
                fastforward=True,
            )
        )
        engine = outcome.stack.engine
        assert engine.ff_runs > 0, "no analytic window retired"
        assert engine.ff_hits >= 64, "analytic windows below MIN_ANALYTIC_RUN"
        assert engine.ff_faults > 0, "fused fault replay never engaged"


class TestServeSweepWorkers:
    """Serve cells are worker-count independent through the orchestrator."""

    @pytest.fixture(scope="class")
    def serial(self, tmp_path_factory):
        from repro.bench.sweep import run_sweep

        manifest = tmp_path_factory.mktemp("serve-serial") / "manifest.jsonl"
        return run_sweep(
            figures=["serve"], scale="bench", workers=1,
            manifest_path=str(manifest),
        )

    @pytest.mark.parametrize("workers", [2, 4])
    def test_sharded_matches_serial(self, serial, workers, tmp_path):
        from repro.bench.sweep import enumerate_cells, run_sweep

        sharded = run_sweep(
            figures=["serve"],
            scale="bench",
            workers=workers,
            manifest_path=str(tmp_path / "manifest.jsonl"),
        )
        assert sharded.ok and serial.ok
        assert sharded.digests() == serial.digests()
        assert sharded.sweep_digest == serial.sweep_digest
        assert len(sharded.digests()) == len(enumerate_cells(["serve"], "bench"))

    def test_repeat_run_is_bit_identical(self, serial, tmp_path):
        from repro.bench.sweep import run_sweep

        again = run_sweep(
            figures=["serve"], scale="bench", workers=1,
            manifest_path=str(tmp_path / "again.jsonl"),
        )
        assert hash_digest(again.digests()) == hash_digest(serial.digests())

"""Crash matrix: kill the stack at every writeback/msync/eviction
boundary and verify the recovery invariants.

For each engine, a deterministic workload of full-page writes and syncs
first runs in count mode to enumerate the crash points, then re-runs
once per point with the controller armed.  At the simulated crash the
durable device state is snapshotted; the matrix asserts, per point:

* **no torn page** — every recovered page equals *some* complete version
  the workload wrote (pages get unique payloads, so versions are
  unambiguous);
* **no acknowledged-durable data lost** — every page is at least as new
  as the version acknowledged by the last completed sync.

The kv-level matrices additionally restart Kreon / RocksDB from the
snapshot and assert every acknowledged put survives recovery.
"""

import pytest

from repro.common import units
from repro.common.errors import SimulatedCrash
from repro.fault.crash import CRASH, restore_devices
from repro.fault.differential import _make_stack
from repro.kv.env import MmioEnv
from repro.kv.rocksdb import RocksDB
from repro.sim import rand
from repro.sim.executor import SimThread

PAGE = units.PAGE_SIZE
FILE_PAGES = 16
#: Smaller than the file so the workload also crosses eviction boundaries.
CACHE_PAGES = 8
ENGINES = ("aquila", "linux", "kmmap", "explicit")


@pytest.fixture(autouse=True)
def _crash_off():
    CRASH.reset()
    yield
    CRASH.reset()


def _page_payload(version: int, page: int) -> bytes:
    """A unique, recognizable full-page payload."""
    rng = rand.stream(version, f"crash.page.{page}")
    return bytes(rng.randbytes(PAGE))


def _workload(seed: int):
    """(op, page, version) tuples: full-page writes with periodic syncs."""
    rng = rand.stream(seed, "crash.workload")
    ops = []
    version = 1
    for index in range(24):
        page = rng.randrange(FILE_PAGES)
        ops.append(("write", page, version))
        version += 1
        if index % 6 == 5:
            ops.append(("sync", 0, 0))
    ops.append(("sync", 0, 0))
    return ops


def _run(kind: str, ops, arm_point=None):
    """Run the workload; returns (stack, file, versions, acked) histories.

    ``versions[page]`` lists every complete payload the page ever held
    (index 0 = initial zeros); ``acked[page]`` is the version index the
    last *completed* sync acknowledged as durable.  With ``arm_point``
    the controller is armed on the fresh stack's device and the
    resulting :class:`SimulatedCrash` is swallowed here.
    """
    stack = _make_stack(kind, cache_pages=CACHE_PAGES, capacity_bytes=4 * units.MIB)
    file = stack.allocator.create("crash-matrix", FILE_PAGES * PAGE)
    if arm_point is not None:
        CRASH.arm(arm_point, [stack.device])
    thread = SimThread(core=0)
    versions = {page: [bytes(PAGE)] for page in range(FILE_PAGES)}
    current = {page: 0 for page in range(FILE_PAGES)}
    acked = {page: 0 for page in range(FILE_PAGES)}

    mapping = None
    if kind != "explicit":
        mapping = stack.engine.mmap(thread, file)

    try:
        for op, page, version in ops:
            if op == "write":
                payload = _page_payload(version, page)
                versions[page].append(payload)
                current[page] = len(versions[page]) - 1
                if kind == "explicit":
                    stack.engine.pwrite(thread, file, page * PAGE, payload)
                else:
                    mapping.store(thread, page * PAGE, payload)
            else:
                if kind == "explicit":
                    stack.engine.fsync(thread, file)
                else:
                    mapping.msync(thread)
                acked = dict(current)
    except SimulatedCrash:
        pass
    return stack, file, versions, acked


def _check_invariants(kind, point, file, snapshot, versions, acked):
    device_pages = snapshot[file.device.name]
    for page in range(FILE_PAGES):
        offset = file.device_offset(page)
        recovered = device_pages.get(offset // PAGE, bytes(PAGE))
        assert recovered in versions[page], (
            f"{kind} point #{point}: page {page} is torn "
            f"(matches no complete written version)"
        )
        index = versions[page].index(recovered)
        assert index >= acked[page], (
            f"{kind} point #{point}: page {page} regressed to version "
            f"{index} < acked {acked[page]} — acknowledged data lost"
        )


@pytest.mark.parametrize("kind", ENGINES)
class TestEngineCrashMatrix:
    def test_every_boundary_recovers(self, kind):
        ops = _workload(31)
        CRASH.count_mode()
        _run(kind, ops)
        total_points = CRASH.points_seen
        labels = list(CRASH.labels)
        assert total_points > 0, f"{kind}: workload hit no crash points"
        CRASH.reset()

        for point in range(1, total_points + 1):
            _stack, file, versions, acked = _run(kind, ops, arm_point=point)
            assert CRASH.snapshot is not None, (
                f"{kind} point #{point} ({labels[point - 1]}) never fired"
            )
            _check_invariants(kind, point, file, CRASH.snapshot, versions, acked)
            CRASH.reset()


class TestCrashDeterminism:
    def test_point_enumeration_is_reproducible(self):
        ops = _workload(31)
        labels = []
        for _ in range(2):
            CRASH.count_mode()
            _run("aquila", ops)
            labels.append(list(CRASH.labels))
            CRASH.reset()
        assert labels[0] == labels[1]
        assert any(label.startswith("aquila.") for label in labels[0])

    def test_labels_cover_writeback_and_msync(self):
        ops = _workload(31)
        CRASH.count_mode()
        _run("linux", ops)
        labels = list(CRASH.labels)
        CRASH.reset()
        assert any(label.endswith(".msync") for label in labels)
        assert any("writeback" in label for label in labels)


class TestKreonCrashRecovery:
    """Kreon restarts from the snapshot and recovers the value log."""

    def _build(self):
        from repro.bench import setups

        return setups.make_kreon(
            "aquila", device_kind="pmem", cache_pages=512,
            volume_bytes=8 * units.MIB, capacity_bytes=32 * units.MIB,
            l0_max_entries=1 << 20,   # no spills: pure log + L0 workload
        )

    def _fill(self, store, thread, n, sync_every):
        """Puts with periodic msync; returns the acked kv state."""
        acked = {}
        live = {}
        for index in range(n):
            key = f"key-{index:04d}".encode()
            value = f"value-{index:04d}-{index * 7:06d}".encode()
            store.put(thread, key, value)
            live[key] = value
            if index % sync_every == sync_every - 1:
                store.msync(thread)
                acked = dict(live)
        return acked

    def test_recovery_after_crash_at_every_msync(self):
        # Enumerate kreon.msync boundaries.
        store, stack, thread = self._build()
        CRASH.count_mode()
        self._fill(store, thread, 40, sync_every=8)
        msync_points = [
            index + 1
            for index, label in enumerate(CRASH.labels)
            if label == "kreon.msync"
        ]
        CRASH.reset()
        assert msync_points

        from repro.bench import setups
        from repro.kv.kreon import Kreon

        for point in msync_points:
            store, stack, thread = self._build()
            CRASH.arm(point, [stack.device])
            try:
                self._fill(store, thread, 40, sync_every=8)
            except SimulatedCrash:
                pass
            assert CRASH.snapshot is not None
            # The crash interrupted _fill, so recompute the acknowledged
            # state from the boundary log: every put before the last
            # *completed* kreon.msync is acknowledged durable.  (The
            # fired point itself counts — Kreon places it after
            # mapping.msync returns, so that msync's data is on device.)
            completed_syncs = sum(
                1 for label in CRASH.labels if label == "kreon.msync"
            )
            acked = {}
            live = {}
            for index in range(40):
                key = f"key-{index:04d}".encode()
                value = f"value-{index:04d}-{index * 7:06d}".encode()
                live[key] = value
                if index % 8 == 7:
                    if completed_syncs <= 0:
                        break
                    completed_syncs -= 1
                    acked = dict(live)
            assert acked

            # "Reboot": fresh machine/engine over a device restored from
            # the durable snapshot; volume metadata (the superblock)
            # survives as the same extent layout.
            reborn = setups.make_aquila_stack(
                "pmem", cache_pages=512, capacity_bytes=32 * units.MIB
            )
            restore_devices([reborn.device], CRASH.snapshot)
            volume = reborn.allocator.create("kreon-volume", 8 * units.MIB)
            thread2 = SimThread(core=0)
            recovered = Kreon(
                reborn.engine, volume, thread2, l0_max_entries=1 << 20
            )
            count = recovered.recover(thread2)
            assert count >= len(acked)
            for key, value in acked.items():
                assert recovered.get(thread2, key) == value, (
                    f"point #{point}: acked key {key!r} lost after recovery"
                )
            CRASH.reset()


class TestRocksDBCrashRecovery:
    """RocksDB replays its WAL from the snapshot after a crash."""

    PUTS = 200

    def _build(self):
        from repro.bench import setups

        stack = setups.make_aquila_stack(
            "pmem", cache_pages=512, capacity_bytes=32 * units.MIB
        )
        env = MmioEnv(stack.engine, stack.allocator)
        db = RocksDB(env, memtable_bytes=units.KIB, wal_bytes=32 * units.KIB)
        return db, stack, SimThread(core=0)

    @staticmethod
    def _kv(index):
        key = f"rk-{index:04d}".encode()
        value = f"rv-{index:04d}-{index * 13:06d}".encode()
        return key, value

    def test_recovery_at_every_flush_boundary(self):
        db, stack, thread = self._build()
        CRASH.count_mode()
        for index in range(self.PUTS):
            key, value = self._kv(index)
            db.put(thread, key, value)
        flush_points = [
            index + 1
            for index, label in enumerate(CRASH.labels)
            if label == "rocksdb.flush"
        ]
        CRASH.reset()
        assert flush_points
        # Single WAL segment: the reboot below recreates the manifest by
        # re-allocating it as the allocator's first (hence identical)
        # extent — true only while no rotation happened.
        assert len(db.wal_files) == 1

        from repro.bench import setups

        for point in flush_points[:4]:
            db, stack, thread = self._build()
            CRASH.arm(point, [stack.device])
            acked = 0
            try:
                for index in range(self.PUTS):
                    key, value = self._kv(index)
                    db.put(thread, key, value)
                    acked = index + 1
            except SimulatedCrash:
                pass
            assert CRASH.snapshot is not None
            # Every completed put's WAL append hit the device before the
            # put returned (direct bulk writes): all of them are acked.
            reborn = setups.make_aquila_stack(
                "pmem", cache_pages=512, capacity_bytes=32 * units.MIB
            )
            restore_devices([reborn.device], CRASH.snapshot)
            env2 = MmioEnv(reborn.engine, reborn.allocator)
            db2 = RocksDB(env2, memtable_bytes=units.KIB, wal_bytes=32 * units.KIB)
            thread2 = SimThread(core=0)
            for index, old_file in enumerate(db.wal_files):
                db2.wal_files.append(
                    reborn.allocator.create(f"wal/{index:06d}.log", old_file.size_bytes)
                )
            replayed = db2.replay_wal(thread2)
            assert replayed >= acked
            for index in range(acked):
                key, value = self._kv(index)
                assert db2.get(thread2, key) == value, (
                    f"point #{point}: acked put {key!r} lost after recovery"
                )
            CRASH.reset()

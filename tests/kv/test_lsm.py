"""Leveled LSM tree: merging, compaction, invariants."""

import pytest

from repro.common import units
from repro.hw.machine import Machine
from repro.kv.env import DirectIOEnv
from repro.kv.lsm import LSMTree, merge_sorted_unique
from repro.kv.memtable import TOMBSTONE
from repro.mmio.explicit import ExplicitIOEngine
from repro.mmio.files import ExtentAllocator
from repro.devices.pmem import PmemDevice
from repro.sim.executor import SimThread


def _lsm(sst_bytes=16 * units.KIB):
    device = PmemDevice(capacity_bytes=256 * units.MIB)
    io = ExplicitIOEngine(Machine(), cache_pages=512)
    env = DirectIOEnv(io, ExtentAllocator(device))
    return LSMTree(env, sst_target_bytes=sst_bytes), SimThread(core=0)


def _batch(start, count, tag=b"v"):
    return [(b"key-%06d" % i, tag + b"-%d" % i) for i in range(start, start + count)]


class TestMergeSortedUnique:
    def test_dedup_newest_wins(self):
        newest = iter([(b"a", b"new"), (b"c", b"c1")])
        oldest = iter([(b"a", b"old"), (b"b", b"b1")])
        merged = list(merge_sorted_unique([newest, oldest]))
        assert merged == [(b"a", b"new"), (b"b", b"b1"), (b"c", b"c1")]

    def test_empty_streams(self):
        assert list(merge_sorted_unique([iter([]), iter([])])) == []

    def test_many_streams_sorted(self):
        streams = [iter([(b"%d" % i, b"x")]) for i in range(9, -1, -1)]
        merged = list(merge_sorted_unique(streams))
        assert [k for k, _ in merged] == sorted(b"%d" % i for i in range(10))


class TestL0:
    def test_add_and_get(self):
        lsm, thread = _lsm()
        lsm.add_l0(thread, iter(_batch(0, 50)))
        assert lsm.get(thread, b"key-000010") == b"v-10"
        assert lsm.get(thread, b"key-999999") is None

    def test_newest_l0_wins(self):
        lsm, thread = _lsm()
        lsm.add_l0(thread, iter(_batch(0, 10, b"old")))
        lsm.add_l0(thread, iter(_batch(0, 10, b"new")))
        assert lsm.get(thread, b"key-000005") == b"new-5"

    def test_tombstone_hides_older_value(self):
        lsm, thread = _lsm()
        lsm.add_l0(thread, iter(_batch(0, 10)))
        lsm.add_l0(thread, iter([(b"key-000003", TOMBSTONE)]))
        assert lsm.get(thread, b"key-000003") is None
        assert lsm.get(thread, b"key-000004") == b"v-4"


class TestCompaction:
    def test_l0_trigger(self):
        lsm, thread = _lsm()
        for i in range(4):
            lsm.add_l0(thread, iter(_batch(i * 50, 50)))
        assert lsm.needs_compaction() == 0
        lsm.compact_all(thread)
        assert len(lsm.levels[0]) == 0
        assert lsm.total_files() > 0

    def test_data_survives_compaction(self):
        lsm, thread = _lsm()
        for i in range(6):
            lsm.add_l0(thread, iter(_batch(i * 100, 100)))
        lsm.compact_all(thread)
        for i in range(600):
            assert lsm.get(thread, b"key-%06d" % i) == b"v-%d" % i

    def test_compaction_dedupes(self):
        lsm, thread = _lsm()
        for _ in range(4):
            lsm.add_l0(thread, iter(_batch(0, 100, b"old")))
        lsm.add_l0(thread, iter(_batch(0, 100, b"new")))
        lsm.compact_all(thread)
        assert lsm.get(thread, b"key-000000") == b"new-0"

    def test_sorted_level_invariant(self):
        """L1+ files are sorted and non-overlapping after compaction."""
        lsm, thread = _lsm(sst_bytes=8 * units.KIB)
        for i in range(8):
            lsm.add_l0(thread, iter(_batch(i * 64, 64)))
            lsm.compact_all(thread)
        for level in lsm.levels[1:]:
            for earlier, later in zip(level, level[1:]):
                assert earlier.last_key < later.first_key

    def test_tombstones_dropped_at_bottom(self):
        lsm, thread = _lsm()
        lsm.add_l0(thread, iter(_batch(0, 50)))
        lsm.add_l0(thread, iter([(b"key-%06d" % i, TOMBSTONE) for i in range(25)]))
        lsm.add_l0(thread, iter(_batch(100, 10)))
        lsm.add_l0(thread, iter(_batch(200, 10)))
        lsm.compact_all(thread)
        for i in range(25):
            assert lsm.get(thread, b"key-%06d" % i) is None
        for i in range(25, 50):
            assert lsm.get(thread, b"key-%06d" % i) == b"v-%d" % i

    def test_old_files_deleted(self):
        lsm, thread = _lsm()
        for i in range(4):
            lsm.add_l0(thread, iter(_batch(0, 200)))
        files_before = lsm.total_files()
        lsm.compact_all(thread)
        # Deduped output shrinks the file count vs 4 overlapping inputs.
        assert lsm.total_files() < files_before


class TestScan:
    def test_merged_scan(self):
        lsm, thread = _lsm()
        lsm.add_l0(thread, iter(_batch(0, 50, b"old")))
        lsm.compact_all(thread)
        lsm.add_l0(thread, iter(_batch(25, 10, b"new")))
        result = lsm.scan(thread, b"key-000020", 10)
        assert len(result) == 10
        keys = [k for k, _ in result]
        assert keys == sorted(keys)
        by_key = dict(result)
        assert by_key[b"key-000025"] == b"new-25"   # newest wins
        assert by_key[b"key-000020"] == b"old-20"

    def test_scan_excludes_tombstones(self):
        lsm, thread = _lsm()
        lsm.add_l0(thread, iter(_batch(0, 10)))
        lsm.add_l0(thread, iter([(b"key-000002", TOMBSTONE)]))
        result = lsm.scan(thread, b"key-000000", 5)
        assert b"key-000002" not in [k for k, _ in result]

"""The discrete-event executor: ordering, completion, accounting."""

import pytest

from repro.common.errors import SimulationError
from repro.sim.executor import Executor, SimThread, run_threads


def _workload(thread, costs):
    for cost in costs:
        start = thread.clock.now
        thread.clock.charge("work", cost)
        thread.record_op(start)
        yield


class TestExecutor:
    def test_runs_all_ops(self):
        executor = Executor()
        t1, t2 = SimThread(core=0), SimThread(core=1)
        executor.add(t1, _workload(t1, [10] * 5))
        executor.add(t2, _workload(t2, [10] * 3))
        result = executor.run()
        assert result.total_ops == 8
        assert t1.ops_completed == 5
        assert t2.ops_completed == 3

    def test_min_clock_ordering(self):
        """The slower thread never races ahead of the faster by more than an op."""
        order = []

        def tracked(thread, cost, count):
            for _ in range(count):
                order.append((thread.name, thread.clock.now))
                thread.clock.charge("work", cost)
                yield

        executor = Executor()
        fast = SimThread(core=0, name="fast")
        slow = SimThread(core=1, name="slow")
        executor.add(fast, tracked(fast, 10, 10))
        executor.add(slow, tracked(slow, 100, 10))
        executor.run()
        # Every step executes the thread with the minimum clock.
        times = [t for _, t in order]
        assert times == sorted(times)

    def test_makespan(self):
        executor = Executor()
        t1, t2 = SimThread(core=0), SimThread(core=1)
        executor.add(t1, _workload(t1, [100]))
        executor.add(t2, _workload(t2, [250]))
        result = executor.run()
        assert result.makespan_cycles == 250

    def test_backwards_time_detected(self):
        def evil(thread):
            thread.clock.now -= 10
            yield

        executor = Executor()
        thread = SimThread(core=0)
        thread.clock.now = 100
        executor.add(thread, evil(thread))
        with pytest.raises(SimulationError):
            executor.run()

    def test_max_ops_guard(self):
        def forever(thread):
            while True:
                thread.clock.charge("spin", 1)
                yield

        executor = Executor()
        thread = SimThread(core=0)
        executor.add(thread, forever(thread))
        with pytest.raises(SimulationError):
            executor.run(max_ops=100)

    def test_latencies_recorded(self):
        executor = Executor()
        thread = SimThread(core=0)
        executor.add(thread, _workload(thread, [5, 15, 25]))
        result = executor.run()
        merged = result.merged_latencies()
        assert merged.count == 3
        assert merged.max() == 25

    def test_merged_breakdown(self):
        executor = Executor()
        t1, t2 = SimThread(core=0), SimThread(core=1)
        executor.add(t1, _workload(t1, [10]))
        executor.add(t2, _workload(t2, [20]))
        result = executor.run()
        assert result.merged_breakdown().get("work") == 30

    def test_throughput(self):
        executor = Executor()
        thread = SimThread(core=0)
        executor.add(thread, _workload(thread, [2_400_000_000]))
        result = executor.run()
        assert result.throughput_ops_per_sec() == pytest.approx(1.0)


class TestRunThreads:
    def test_convenience_runner(self):
        result = run_threads(lambda t: _workload(t, [10] * 4), num_threads=3)
        assert result.total_ops == 12
        assert len(result.threads) == 3

    def test_start_offsets(self):
        result = run_threads(
            lambda t: _workload(t, [10]), num_threads=2, start_offset_cycles=1000
        )
        assert result.makespan_cycles == 1010

    def test_core_pinning(self):
        result = run_threads(
            lambda t: _workload(t, [1]), num_threads=2, cores=[5, 9]
        )
        assert [t.core for t in result.threads] == [5, 9]

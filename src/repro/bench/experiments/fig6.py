"""Figure 6: extending the application heap with Aquila (paper Section 6.2).

Ligra-style BFS over an R-MAT graph whose heap lives on an mmap-backed
file, with DRAM limited well below the working set:

* (a) cache = heap/8 (the paper's 8 GB for a ~64 GB footprint):
  Aquila 1.56x/2.54x/4.14x faster than mmap at 1/8/16 threads on pmem;
* (b) cache = heap/4 (16 GB): Aquila up to 2.3x over mmap;
* (c) execution-time breakdown (user/system/idle) at 16 threads:
  mmap 61.79% system + 10.61% user vs Aquila 43.82% system + 55.92% user.

DRAM-only (malloc) runs are the reference point.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.bench.setups import make_aquila_stack, make_linux_stack
from repro.common import units
from repro.graph.ligra import ParallelBFS
from repro.graph.mmap_heap import DramHeap, MmapHeap
from repro.graph.rmat import make_rmat_csr
from repro.mmio.vma import MADV_RANDOM
from repro.sim.executor import SimThread

#: Footprint of a graph's heap in pages (offsets + targets + parents).
def heap_pages_for(num_vertices: int, edge_factor: int) -> int:
    """Pages needed for the CSR graph plus the BFS parent array.

    8 bytes per offset/edge/parent entry, rounded up to whole pages with
    a small slack for allocator headers.
    """
    nbytes = 8 * (num_vertices + 1 + num_vertices * edge_factor + num_vertices)
    return units.pages(nbytes) + 8


def run_bfs_config(
    engine_kind: str,
    device_kind: str,
    num_vertices: int,
    num_threads: int,
    cache_fraction: float,
    edge_factor: int = 10,
    seed: int = 42,
) -> Dict:
    """One Figure 6 bar: BFS time + breakdown for one configuration."""
    graph = make_rmat_csr(num_vertices, edge_factor, seed)
    root = graph.largest_out_degree_vertex()
    heap_pages = heap_pages_for(num_vertices, edge_factor)

    setup = SimThread(core=0)
    if engine_kind == "dram":
        heap = DramHeap(capacity_bytes=(heap_pages + 16) * units.PAGE_SIZE)
        stack = None
    else:
        cache_pages = max(32, int(heap_pages * cache_fraction))
        maker = make_linux_stack if engine_kind == "linux" else make_aquila_stack
        stack = maker(device_kind, cache_pages, capacity_bytes=512 * units.MIB)
        file = stack.allocator.create("ligra-heap", (heap_pages + 16) * units.PAGE_SIZE)
        mapping = stack.engine.mmap(setup, file)
        # Graph traversal is random access: Ligra's conversion maps the
        # heap with MADV_RANDOM (no readahead pollution).
        mapping.madvise(setup, MADV_RANDOM)
        heap = MmapHeap(mapping)

    threads = [SimThread(core=i) for i in range(num_threads)]
    if stack is not None:
        stack.machine.apply_smt_penalty(threads)
    bfs = ParallelBFS(heap, graph, threads, setup_thread=setup)
    result = bfs.run(root)

    breakdown = result.run.merged_breakdown()
    user = breakdown.prefix_total("app")
    idle = breakdown.prefix_total("idle")
    total = breakdown.total()
    system = total - user - idle
    return {
        "engine": engine_kind,
        "device": device_kind,
        "threads": num_threads,
        "execution_cycles": result.makespan_cycles,
        "execution_seconds": units.cycles_to_seconds(result.makespan_cycles),
        "rounds": result.rounds,
        "visited": result.visited,
        "user_pct": 100.0 * user / total if total else 0.0,
        "system_pct": 100.0 * system / total if total else 0.0,
        "idle_pct": 100.0 * idle / total if total else 0.0,
        "faults": stack.engine.faults if stack is not None else 0,
    }


def run_fig6(
    cache_fraction: float,
    num_vertices: int = 25000,
    thread_counts: Optional[List[int]] = None,
    engines: Optional[List[tuple]] = None,
) -> List[Dict]:
    """A Figure 6(a) or 6(b) sweep (fraction 1/8 or 1/4 of the heap)."""
    counts = thread_counts if thread_counts is not None else [1, 8, 16]
    configs = engines if engines is not None else [
        ("linux", "pmem"),
        ("aquila", "pmem"),
        ("linux", "nvme"),
        ("aquila", "nvme"),
        ("dram", "-"),
    ]
    rows = []
    for num_threads in counts:
        cells = {}
        reference = {}
        for engine_kind, device_kind in configs:
            cell = run_bfs_config(
                engine_kind, device_kind, num_vertices, num_threads, cache_fraction
            )
            cells[f"{engine_kind}-{device_kind}"] = cell
            reference[(engine_kind, device_kind)] = cell
        row = {"threads": num_threads, **cells}
        if ("linux", "pmem") in reference and ("aquila", "pmem") in reference:
            row["speedup_pmem"] = (
                reference[("linux", "pmem")]["execution_cycles"]
                / reference[("aquila", "pmem")]["execution_cycles"]
            )
        if ("dram", "-") in reference and ("aquila", "pmem") in reference:
            row["aquila_vs_dram"] = (
                reference[("aquila", "pmem")]["execution_cycles"]
                / reference[("dram", "-")]["execution_cycles"]
            )
            row["mmap_vs_dram"] = (
                reference[("linux", "pmem")]["execution_cycles"]
                / reference[("dram", "-")]["execution_cycles"]
            )
        rows.append(row)
    return rows


#: The paper's DRAM limits relative to the graph: Ligra's 64 GB footprint
#: is mostly allocation slack; the BFS working set is the 18 GB graph, so
#: 8 GB of DRAM holds ~44% of it and 16 GB ~89%.
CACHE_FRACTION_8GB = 8.0 / 18.0
CACHE_FRACTION_16GB = 16.0 / 18.0


def run_fig6a(num_vertices: int = 25000, thread_counts: Optional[List[int]] = None):
    """8 GB DRAM case: cache holds ~44% of the graph."""
    return run_fig6(CACHE_FRACTION_8GB, num_vertices, thread_counts)


def run_fig6b(num_vertices: int = 25000, thread_counts: Optional[List[int]] = None):
    """16 GB DRAM case: cache holds ~89% of the graph."""
    return run_fig6(CACHE_FRACTION_16GB, num_vertices, thread_counts)


def run_fig6c(num_vertices: int = 25000, num_threads: int = 16) -> Dict[str, Dict]:
    """Breakdown at 16 threads with the small cache (paper Figure 6(c))."""
    linux = run_bfs_config("linux", "pmem", num_vertices, num_threads, CACHE_FRACTION_8GB)
    aquila = run_bfs_config("aquila", "pmem", num_vertices, num_threads, CACHE_FRACTION_8GB)
    return {"linux": linux, "aquila": aquila}


#: Engine/device bars of Figures 6(a)/(b), in display order.
FIG6_CONFIGS = [
    ("linux", "pmem"),
    ("aquila", "pmem"),
    ("linux", "nvme"),
    ("aquila", "nvme"),
    ("dram", "-"),
]


def enumerate_cells(scale: str = "figure") -> List[Dict]:
    """Every Figure 6 bar as an independent sweep work unit.

    Grid: variant (a: cache ~44% of graph, b: ~89%) x engine/device
    combination x thread count.  Figure 6(c)'s breakdown is derived from
    the 16-thread variant-(a) cells, not enumerated separately.
    """
    if scale == "figure":
        counts, vertices = [1, 8, 16], 25000
    else:
        counts, vertices = [1, 8], 4000
    cells = []
    for variant, fraction in (
        ("a", CACHE_FRACTION_8GB),
        ("b", CACHE_FRACTION_16GB),
    ):
        for engine_kind, device_kind in FIG6_CONFIGS:
            label = engine_kind if engine_kind == "dram" else f"{engine_kind}-{device_kind}"
            for threads in counts:
                cells.append(
                    {
                        "cell_id": f"fig6{variant}/{label}/t{threads}",
                        "figure": f"fig6{variant}",
                        "params": {
                            "engine_kind": engine_kind,
                            "device_kind": device_kind,
                            "num_vertices": vertices,
                            "num_threads": threads,
                            "cache_fraction": fraction,
                        },
                    }
                )
    return cells


def run_sweep_cell(params: Dict) -> Dict:
    """Run one enumerated Figure 6 bar; the payload row is its state.

    The payload carries execution cycles, the user/system/idle split
    (Figure 6(c)'s input) and the fault count for the configuration.
    """
    row = run_bfs_config(
        params["engine_kind"],
        params["device_kind"],
        params["num_vertices"],
        params["num_threads"],
        params["cache_fraction"],
    )
    return {"payload": row, "state": row}

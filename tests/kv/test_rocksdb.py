"""RocksDB facade: end-to-end store semantics in all three modes."""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.bench.setups import make_rocksdb
from repro.common import units
from repro.sim.executor import SimThread

MODES = ["direct", "mmap", "aquila"]


@pytest.fixture(params=MODES)
def db(request):
    store, _ = make_rocksdb(
        request.param,
        cache_pages=256,
        capacity_bytes=512 * units.MIB,
        memtable_bytes=8 * units.KIB,
        sst_bytes=16 * units.KIB,
    )
    return store


class TestBasics:
    def test_put_get(self, db):
        thread = SimThread(core=0)
        db.put(thread, b"k", b"v")
        assert db.get(thread, b"k") == b"v"
        assert db.get(thread, b"missing") is None

    def test_overwrite(self, db):
        thread = SimThread(core=0)
        db.put(thread, b"k", b"v1")
        db.put(thread, b"k", b"v2")
        assert db.get(thread, b"k") == b"v2"

    def test_delete(self, db):
        thread = SimThread(core=0)
        db.put(thread, b"k", b"v")
        db.delete(thread, b"k")
        assert db.get(thread, b"k") is None

    def test_get_spans_memtable_and_ssts(self, db):
        thread = SimThread(core=0)
        for i in range(200):   # 200 * ~72B > the 8 KiB memtable
            db.put(thread, b"key-%04d" % i, b"val-%04d" % i + b"x" * 64)
        assert db.stats()["flushes"] > 0
        for i in range(200):
            assert db.get(thread, b"key-%04d" % i) == b"val-%04d" % i + b"x" * 64

    def test_delete_survives_flush_and_compaction(self, db):
        thread = SimThread(core=0)
        for i in range(100):
            db.put(thread, b"key-%04d" % i, b"v")
        db.delete(thread, b"key-0050")
        db.flush(thread)
        db.compact_all(thread)
        assert db.get(thread, b"key-0050") is None
        assert db.get(thread, b"key-0051") == b"v"


class TestScan:
    def test_scan_sorted(self, db):
        thread = SimThread(core=0)
        for i in range(100):
            db.put(thread, b"key-%04d" % i, b"v-%d" % i)
        db.flush(thread)
        result = db.scan(thread, b"key-0020", 10)
        assert [k for k, _ in result] == [b"key-%04d" % i for i in range(20, 30)]

    def test_scan_merges_memtable_over_sst(self, db):
        thread = SimThread(core=0)
        for i in range(50):
            db.put(thread, b"key-%04d" % i, b"old")
        db.flush(thread)
        db.put(thread, b"key-0025", b"NEW")
        result = dict(db.scan(thread, b"key-0024", 3))
        assert result[b"key-0025"] == b"NEW"

    def test_scan_skips_deleted(self, db):
        thread = SimThread(core=0)
        for i in range(10):
            db.put(thread, b"key-%04d" % i, b"v")
        db.delete(thread, b"key-0003")
        result = db.scan(thread, b"key-0000", 10)
        assert b"key-0003" not in dict(result)


class TestDurability:
    def test_wal_written(self, db):
        thread = SimThread(core=0)
        writes_before = None
        db.put(thread, b"k", b"v")
        # Every put appends to the WAL on the device.
        assert db.env.__class__.__name__ in ("DirectIOEnv", "MmioEnv")
        assert db.puts == 1


@pytest.mark.parametrize("mode", MODES)
@settings(max_examples=6, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_model_equivalence_random_workload(mode, seed):
    """RocksDB behaves exactly like a dict under random put/get/delete."""
    db, _ = make_rocksdb(
        mode,
        cache_pages=256,
        capacity_bytes=512 * units.MIB,
        memtable_bytes=8 * units.KIB,
        sst_bytes=16 * units.KIB,
    )
    thread = SimThread(core=0)
    rng = random.Random(seed)
    model = {}
    keyspace = [b"key-%03d" % i for i in range(60)]
    for _ in range(250):
        key = rng.choice(keyspace)
        op = rng.random()
        if op < 0.5:
            value = b"v-%d" % rng.randrange(10_000)
            db.put(thread, key, value)
            model[key] = value
        elif op < 0.8:
            assert db.get(thread, key) == model.get(key)
        elif op < 0.9:
            db.delete(thread, key)
            model.pop(key, None)
        else:
            db.flush(thread)
            db.compact_all(thread)
    for key in keyspace:
        assert db.get(thread, key) == model.get(key), key

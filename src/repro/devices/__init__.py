"""Device models: backing stores, NVMe, pmem/DAX, SPDK blobstore, I/O paths."""

from repro.devices.blobstore import CLUSTER_SIZE, Blob, Blobstore, FileBlobNamespace
from repro.devices.block import BackingStore, BlockDevice, DeviceTimeline
from repro.devices.io_engines import (
    DaxIO,
    HostSyscallIO,
    IOPath,
    KernelFaultIO,
    SpdkIO,
)
from repro.devices.nvme import NvmeDevice
from repro.devices.pmem import PmemDevice

__all__ = [
    "CLUSTER_SIZE",
    "Blob",
    "Blobstore",
    "FileBlobNamespace",
    "BackingStore",
    "BlockDevice",
    "DeviceTimeline",
    "DaxIO",
    "HostSyscallIO",
    "IOPath",
    "KernelFaultIO",
    "SpdkIO",
    "NvmeDevice",
    "PmemDevice",
]

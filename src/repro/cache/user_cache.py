"""Sharded user-space block cache (RocksDB's recommended configuration).

"The recommended mode of operation is to use explicit read/write calls, in
direct I/O mode, combined with a user-space cache" (paper Section 5).  The
paper's Figure 7 measures this path's CPU price for RocksDB random reads:

* ~9 K cycles of lookup work per get (hash, shard lock, LRU touch, pin),
* ~13 K cycles of system-call overhead per miss (direct-I/O pread,
  excluding device time),
* ~23 K cycles of eviction + insert work per miss.

The cache stores real block bytes keyed by (file, block).  Shard locks are
modeled with spinlock timelines: LRU-cache sharding keeps contention mild,
so — unlike the kernel tree lock — this structure's problem is *cycles per
operation*, not serialization, exactly the paper's framing.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Optional, Tuple

from repro.common import constants
from repro.obs import METRICS
from repro.sim.clock import CycleClock
from repro.sim.locks import SpinlockTimeline


class UserSpaceCache:
    """LRU block cache with N shards and per-shard locks."""

    def __init__(self, capacity_blocks: int, num_shards: int = 64) -> None:
        if capacity_blocks <= 0:
            raise ValueError("capacity must be positive")
        if num_shards <= 0:
            raise ValueError("num_shards must be positive")
        self.capacity_blocks = capacity_blocks
        self.num_shards = num_shards
        self._shards: Dict[int, "OrderedDict[Tuple[int, int], bytes]"] = {
            i: OrderedDict() for i in range(num_shards)
        }
        self._locks = [SpinlockTimeline(f"ucache.shard{i}") for i in range(num_shards)]
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.inserts = 0
        METRICS.bind_object(
            "cache.user",
            self,
            {
                "hits": "hits",
                "misses": "misses",
                "evictions": "evictions",
                "inserts": "inserts",
            },
        )

    def _shard_of(self, key: Tuple[int, int]) -> int:
        return hash(key) % self.num_shards

    def _shard_capacity(self) -> int:
        return max(1, self.capacity_blocks // self.num_shards)

    def resident_blocks(self) -> int:
        """Blocks currently cached."""
        return sum(len(shard) for shard in self._shards.values())

    def get(
        self, clock: CycleClock, thread_id: int, file_id: int, block: int
    ) -> Optional[bytes]:
        """Look up a block, paying the user-space cache-management price."""
        key = (file_id, block)
        shard_id = self._shard_of(key)
        lock = self._locks[shard_id]
        lock.acquire(clock, thread_id, "idle.lock.ucache")
        clock.charge("ucache.lookup", constants.USERCACHE_LOOKUP_CYCLES)
        shard = self._shards[shard_id]
        data = shard.get(key)
        if data is not None:
            shard.move_to_end(key)
            self.hits += 1
        else:
            self.misses += 1
        lock.release(clock, thread_id)
        return data

    def get_run(
        self, clock: CycleClock, thread_id: int, file_id: int, blocks, index: int
    ) -> int:
        """Retire consecutive cached-block lookups, charging in bulk.

        Probes ``blocks[index:]`` for a run of consecutive hits, charges
        ``n x USERCACHE_LOOKUP_CYCLES`` in one call, then replays the LRU
        touches and per-shard lock acquire/release pairs.  Only valid for
        a solo-threaded batched run (``ExplicitIOEngine.read_run``): with
        one thread the locks are free, so acquisitions charge nothing and
        the bulk charge is cycle-identical to per-block charging (all
        per-block costs are integers and the solo CPI factor is 1.0).
        Block data is not materialized — batched callers discard it.

        Returns the number of hits consumed (0 if the first block misses).
        """
        total = len(blocks)
        end = index
        while end < total:
            key = (file_id, blocks[end])
            if self._shards[self._shard_of(key)].get(key) is None:
                break
            end += 1
        consumed = end - index
        if not consumed:
            return 0
        clock.charge("ucache.lookup", consumed * constants.USERCACHE_LOOKUP_CYCLES)
        for i in range(index, end):
            key = (file_id, blocks[i])
            shard_id = self._shard_of(key)
            lock = self._locks[shard_id]
            lock.acquire(clock, thread_id, "idle.lock.ucache")
            self._shards[shard_id].move_to_end(key)
            self.hits += 1
            lock.release(clock, thread_id)
        return consumed

    def get_run_fast(
        self, clock: CycleClock, file_id: int, blocks, index: int
    ) -> int:
        """Fast-forward variant of :meth:`get_run`: no per-hit lock replay.

        Valid under the same solo-threaded contract as ``get_run`` plus
        the fast-forward gates the engine checks (CPI 1.0, no open
        observation span).  A solo thread's clock is monotone, so the
        skipped acquire/release pairs could never have waited or charged
        — the lock timelines they would have touched carry no digested
        or behavior-visible state for a single thread.  Every digested
        effect (bulk lookup charge, LRU touch order, hit count) is
        replayed identically.

        Returns the number of hits consumed (0 if the first block misses).
        """
        shards = self._shards
        shard_of = self._shard_of
        total = len(blocks)
        end = index
        while end < total:
            key = (file_id, blocks[end])
            if shards[shard_of(key)].get(key) is None:
                break
            end += 1
        consumed = end - index
        if not consumed:
            return 0
        clock.charge(
            "ucache.lookup", consumed * constants.USERCACHE_LOOKUP_CYCLES
        )
        for i in range(index, end):
            key = (file_id, blocks[i])
            shards[shard_of(key)].move_to_end(key)
        self.hits += consumed
        return consumed

    def insert(
        self, clock: CycleClock, thread_id: int, file_id: int, block: int, data: bytes
    ) -> None:
        """Insert a block read from the device, evicting LRU if needed."""
        key = (file_id, block)
        shard_id = self._shard_of(key)
        lock = self._locks[shard_id]
        lock.acquire(clock, thread_id, "idle.lock.ucache")
        clock.charge("ucache.insert", constants.USERCACHE_INSERT_CYCLES)
        shard = self._shards[shard_id]
        if key not in shard and len(shard) >= self._shard_capacity():
            shard.popitem(last=False)
            self.evictions += 1
            clock.charge("ucache.evict", constants.USERCACHE_EVICT_CYCLES)
        shard[key] = bytes(data)
        shard.move_to_end(key)
        self.inserts += 1
        lock.release(clock, thread_id)

    def invalidate_range(self, file_id: int, first_block: int, last_block: int) -> int:
        """Drop cached blocks of ``file_id`` in [first, last]; returns count."""
        dropped = 0
        for block in range(first_block, last_block + 1):
            key = (file_id, block)
            shard = self._shards[self._shard_of(key)]
            if key in shard:
                del shard[key]
                dropped += 1
        return dropped

    def invalidate(self, file_id: int) -> int:
        """Drop every cached block of ``file_id`` (file deletion); returns count."""
        dropped = 0
        for shard in self._shards.values():
            stale = [key for key in shard if key[0] == file_id]
            for key in stale:
                del shard[key]
                dropped += 1
        return dropped

    @property
    def hit_ratio(self) -> float:
        """Fraction of gets served from cache."""
        total = self.hits + self.misses
        if total == 0:
            return 0.0
        return self.hits / total

"""Latency and throughput statistics for experiment reporting.

The paper reports average latency, p99 and p99.9 tail latency, and
throughput (ops/sec) for most experiments.  :class:`LatencyRecorder` stores
raw per-operation latencies (cycle counts) and computes those summaries.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence

from repro.common import units


class LatencyRecorder:
    """Accumulates per-operation latencies in cycles."""

    def __init__(self) -> None:
        self._samples: List[float] = []
        self._sorted = True

    def record(self, cycles: float) -> None:
        """Record one operation latency."""
        self._samples.append(cycles)
        self._sorted = False

    def extend(self, cycles_list: Sequence[float]) -> None:
        """Record many operation latencies."""
        self._samples.extend(cycles_list)
        self._sorted = False

    def merge(self, other: "LatencyRecorder") -> None:
        """Fold another recorder's samples into this one."""
        self._samples.extend(other._samples)
        self._sorted = False

    def _ensure_sorted(self) -> None:
        if not self._sorted:
            self._samples.sort()
            self._sorted = True

    @property
    def count(self) -> int:
        """Number of recorded operations."""
        return len(self._samples)

    @property
    def total_cycles(self) -> float:
        """Sum of all recorded latencies."""
        return sum(self._samples)

    def mean(self) -> float:
        """Average latency in cycles (0 when empty)."""
        if not self._samples:
            return 0.0
        return self.total_cycles / len(self._samples)

    def tail_mean(self, fraction: float = 0.5) -> float:
        """Mean of the last ``fraction`` of samples *in recording order*.

        Used to skip warmup (cache-fill) samples.  Only meaningful before
        any percentile call (percentiles sort the sample buffer).
        """
        if not 0.0 < fraction <= 1.0:
            raise ValueError("fraction must be in (0, 1]")
        if self._sorted and len(self._samples) > 1:
            raise ValueError("samples already sorted; recording order lost")
        if not self._samples:
            return 0.0
        start = int(len(self._samples) * (1.0 - fraction))
        tail = self._samples[start:]
        return sum(tail) / len(tail)

    def percentile(self, pct: float) -> float:
        """Latency at percentile ``pct`` (0 < pct <= 100), nearest-rank."""
        if not self._samples:
            return 0.0
        if not 0.0 < pct <= 100.0:
            raise ValueError(f"percentile out of range: {pct}")
        self._ensure_sorted()
        rank = max(1, math.ceil(pct / 100.0 * len(self._samples)))
        return self._samples[rank - 1]

    def p50(self) -> float:
        """Median latency in cycles."""
        return self.percentile(50.0)

    def p99(self) -> float:
        """99th-percentile latency in cycles."""
        return self.percentile(99.0)

    def p999(self) -> float:
        """99.9th-percentile latency in cycles."""
        return self.percentile(99.9)

    def max(self) -> float:
        """Maximum recorded latency in cycles."""
        if not self._samples:
            return 0.0
        self._ensure_sorted()
        return self._samples[-1]

    def mean_us(self) -> float:
        """Average latency in microseconds."""
        return units.cycles_to_us(self.mean())

    def summary(self) -> Dict[str, float]:
        """Dict with count/mean/p50/p99/p999/max in cycles."""
        return {
            "count": float(self.count),
            "mean": self.mean(),
            "p50": self.p50(),
            "p99": self.p99(),
            "p999": self.p999(),
            "max": self.max(),
        }


def throughput_ops_per_sec(ops: int, elapsed_cycles: float) -> float:
    """Operations per second over an elapsed simulated interval."""
    if elapsed_cycles <= 0:
        return 0.0
    return ops / units.cycles_to_seconds(elapsed_cycles)


def speedup(baseline: float, improved: float) -> float:
    """How many times larger ``baseline`` is than ``improved``.

    Used for the paper's "N.NNx lower/higher" phrasing; returns ``inf``
    when ``improved`` is zero.
    """
    if improved == 0:
        return math.inf
    return baseline / improved

"""Lock-contention timeline models."""

import pytest

from repro.common.errors import SimulationError
from repro.sim.clock import CycleClock
from repro.sim.locks import (
    CacheLineTimeline,
    RWLockTimeline,
    SpinlockTimeline,
    StripedAtomicTimeline,
)


class TestSpinlockTimeline:
    def test_uncontended_is_free(self):
        lock = SpinlockTimeline()
        clock = CycleClock()
        lock.acquire(clock, 1)
        clock.charge("work", 100)
        lock.release(clock, 1)
        assert clock.now == 100
        assert lock.contended_acquisitions == 0

    def test_contended_waits_for_holder(self):
        lock = SpinlockTimeline()
        a, b = CycleClock(), CycleClock()
        lock.acquire(a, 1)
        a.charge("hold", 500)
        lock.release(a, 1)
        b.charge("arrive", 100)   # b requests at t=100, lock free at t=500
        lock.acquire(b, 2)
        assert b.now >= 500
        assert lock.contended_acquisitions == 1
        assert lock.total_wait_cycles == 400
        lock.release(b, 2)

    def test_reacquire_same_holder_rejected(self):
        lock = SpinlockTimeline()
        clock = CycleClock()
        lock.acquire(clock, 7)
        with pytest.raises(SimulationError):
            lock.acquire(clock, 7)

    def test_wrong_holder_release_rejected(self):
        lock = SpinlockTimeline()
        clock = CycleClock()
        lock.acquire(clock, 1)
        with pytest.raises(SimulationError):
            lock.release(clock, 2)

    def test_try_acquire(self):
        lock = SpinlockTimeline()
        a, b = CycleClock(), CycleClock()
        lock.acquire(a, 1)
        a.charge("hold", 1000)
        # b arrives while the hold is pending -> busy.
        b.charge("arrive", 10)
        assert not lock.try_acquire(b, 2)
        lock.release(a, 1)
        # after release time, trylock succeeds.
        b.wait_until(2000, "idle")
        assert lock.try_acquire(b, 2)
        lock.release(b, 2)

    def test_serialization_bounds_throughput(self):
        """N lockstep clients of one lock serialize to ~hold each."""
        lock = SpinlockTimeline()
        clocks = [CycleClock() for _ in range(8)]
        for _ in range(10):   # 10 rounds of lock/hold(100)/release each
            for i, clock in enumerate(sorted(clocks, key=lambda c: c.now)):
                lock.acquire(clock, id(clock))
                clock.charge("hold", 100)
                lock.release(clock, id(clock))
        finish = max(c.now for c in clocks)
        assert finish >= 8 * 10 * 100, "80 serialized holds of 100 cycles"

    def test_contention_ratio(self):
        lock = SpinlockTimeline()
        clock = CycleClock()
        lock.acquire(clock, 1)
        lock.release(clock, 1)
        assert lock.contention_ratio() == 0.0


class TestRWLockTimeline:
    def test_readers_share(self):
        lock = RWLockTimeline()
        a, b = CycleClock(), CycleClock()
        lock.acquire_read(a)
        lock.acquire_read(b)   # no exclusion between readers
        a_now, b_now = a.now, b.now
        lock.release_read(a)
        lock.release_read(b)
        # Readers only pay the word RMW, never a full exclusion wait.
        assert a_now < 1000 and b_now < 1000

    def test_writer_waits_for_readers(self):
        lock = RWLockTimeline()
        reader, writer = CycleClock(), CycleClock()
        lock.acquire_read(reader)
        reader.charge("read.work", 1000)
        lock.release_read(reader)
        lock.acquire_write(writer)
        assert writer.now >= 1000
        lock.release_write(writer)

    def test_reader_waits_for_writer(self):
        lock = RWLockTimeline()
        writer, reader = CycleClock(), CycleClock()
        lock.acquire_write(writer)
        writer.charge("write.work", 2000)
        lock.release_write(writer)
        lock.acquire_read(reader)
        assert reader.now >= 2000
        lock.release_read(reader)


class TestCacheLineTimeline:
    def test_single_op_cost(self):
        line = CacheLineTimeline()
        clock = CycleClock()
        line.atomic_op(clock, cost=100)
        assert clock.now == 100

    def test_serialization_under_hammering(self):
        line = CacheLineTimeline()
        clocks = [CycleClock() for _ in range(4)]
        for clock in clocks:
            line.atomic_op(clock, cost=100)
        # The 4th op starts no earlier than 3 reservations in.
        assert max(c.now for c in clocks) >= 400

    def test_wait_is_bounded(self):
        """Op-granularity reordering cannot fabricate unbounded stalls."""
        line = CacheLineTimeline()
        late = CycleClock()
        late.charge("x", 10_000_000)
        line.atomic_op(late, cost=100)
        early = CycleClock()
        line.atomic_op(early, cost=100)
        # early waits at most MAX_QUEUE reservations, not 10M cycles.
        assert early.now <= 100 * (CacheLineTimeline.MAX_QUEUE + 1)

    def test_reserve_shorter_than_cost(self):
        line = CacheLineTimeline()
        a, b = CycleClock(), CycleClock()
        line.atomic_op(a, cost=100, reserve=10)
        line.atomic_op(b, cost=100, reserve=10)
        # b waited for at most the 10-cycle reservation.
        assert b.now <= 100 + 10


class TestStripedAtomicTimeline:
    def test_different_stripes_independent(self):
        striped = StripedAtomicTimeline(stripes=1024)
        a, b = CycleClock(), CycleClock()
        striped.atomic_op(a, key="alpha")
        striped.atomic_op(b, key="beta")
        # Unless the hash collides, neither waited on the other.
        assert a.now <= 100 and b.now <= 100

    def test_rejects_zero_stripes(self):
        with pytest.raises(ValueError):
            StripedAtomicTimeline(stripes=0)

    def test_total_wait_aggregates(self):
        striped = StripedAtomicTimeline(stripes=1)
        clocks = [CycleClock() for _ in range(3)]
        for clock in clocks:
            striped.atomic_op(clock, key=0)
        assert striped.total_wait_cycles() > 0

"""The paper's custom multithreaded microbenchmark (Section 5).

"It uses a configurable number of threads that issue load/store
instructions at randomly generated offsets within the memory mapped
region.  We ensure that each load/store results in a page fault."

Two access regimes cover the paper's two dataset cases:

* **touch-once** (dataset fits in memory, Figures 8(a), 10(a)): each
  thread touches a random permutation of its share of the pages, so every
  access is a compulsory (cold) fault and nothing is ever evicted;
* **uniform random** (dataset larger than memory, Figures 8(b), 10(b)):
  accesses are uniform over a region much larger than the cache, so
  nearly every access misses and evictions run in the common path.

Mappings use ``MADV_RANDOM``, matching the guaranteed-fault setup (no
readahead pollution in either engine).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, List, Optional

from repro.common import units
from repro.mmio.engine import Mapping
from repro.mmio.vma import MADV_RANDOM
from repro.obs import TRACER
from repro.sim.executor import Executor, RunResult, SimThread
from repro.sim.rand import derive_seed


@dataclass
class MicrobenchConfig:
    """Parameters of one microbenchmark run."""

    num_threads: int = 1
    accesses_per_thread: int = 1000
    write_fraction: float = 0.0
    touch_once: bool = True
    shared_file: bool = True
    seed: int = 7


def access_workload(
    thread: SimThread,
    mapping: Mapping,
    accesses: int,
    write_fraction: float,
    touch_once: bool,
    seed: int,
    partition_index: int = 0,
    partition_count: int = 1,
) -> Iterator[None]:
    """One thread's access stream over ``mapping``."""
    rng = random.Random(derive_seed(seed, f"mb-{thread.tid}"))
    total_pages = mapping.size_bytes >> units.PAGE_SHIFT
    if touch_once:
        # Each thread owns an interleaved share of the pages, permuted.
        pages = list(range(partition_index, total_pages, partition_count))
        rng.shuffle(pages)
        pages = pages[:accesses]
        sequence: List[int] = pages
    else:
        sequence = [rng.randrange(total_pages) for _ in range(accesses)]

    for page in sequence:
        start = thread.clock.now
        offset = page * units.PAGE_SIZE + rng.randrange(units.PAGE_SIZE - 8)
        with TRACER.span("op.access", thread.clock):
            if rng.random() < write_fraction:
                mapping.store(thread, offset, b"\xA5" * 8)
            else:
                mapping.load(thread, offset, 8)
        thread.record_op(start)
        yield


def run_microbench(
    engine,
    files,
    config: MicrobenchConfig,
) -> RunResult:
    """Run the microbenchmark over an engine.

    ``files`` is either one backing file (shared) or a list with one file
    per thread (private).  Returns the executor result; per-op latencies
    land in each thread's recorder.
    """
    if config.shared_file:
        file_list = [files if not isinstance(files, list) else files[0]] * config.num_threads
    else:
        file_list = list(files)
        if len(file_list) != config.num_threads:
            raise ValueError("need one file per thread for the private-file mode")

    executor = Executor()
    threads = []
    shared_mapping: Optional[Mapping] = None
    for index in range(config.num_threads):
        thread = SimThread(core=index % engine.machine.topology.num_hw_threads)
        threads.append(thread)
        if config.shared_file:
            if shared_mapping is None:
                shared_mapping = engine.mmap(thread, file_list[0])
                shared_mapping.madvise(thread, MADV_RANDOM)
            mapping = shared_mapping
            part_index, part_count = index, config.num_threads
        else:
            mapping = engine.mmap(thread, file_list[index])
            mapping.madvise(thread, MADV_RANDOM)
            part_index, part_count = 0, 1
        executor.add(
            thread,
            access_workload(
                thread,
                mapping,
                config.accesses_per_thread,
                config.write_fraction,
                config.touch_once,
                config.seed,
                partition_index=part_index,
                partition_count=part_count,
            ),
        )
    engine.machine.apply_smt_penalty(threads)
    return executor.run()

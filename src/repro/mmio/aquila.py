"""The Aquila mmio engine (paper Sections 3-4): the primary contribution.

Everything on the common path happens in VMX non-root ring 0, collocated
with the application:

* page faults are delivered as 552-cycle exceptions, not 1287-cycle traps;
* the faulting address is validated in a RadixVM-style radix tree with
  per-entry locks (no ``mmap_sem``);
* cached pages live in a lock-free hash table (no tree lock);
* frames come from the two-level (core/NUMA) batched freelist;
* when the freelist runs dry, the faulting thread synchronously evicts a
  *batch* of cold pages, writes dirty victims in device-offset order
  (merged into large I/Os from the per-core red-black trees) and performs
  a *single batched TLB shootdown* for the whole batch;
* device access never leaves non-root ring 0: DAX memcpy for pmem, SPDK
  for NVMe (host-syscall I/O is available for comparison — Figure 8(c)).

Interaction with the hypervisor happens only for mmap-class range updates
and dynamic cache resizing (EPT granules) — the uncommon path.
"""

from __future__ import annotations

from typing import List, Optional

from repro.common import constants, units
from repro.common.errors import OutOfMemoryError, SegmentationFault, TransientDeviceError
from repro.cache.aquila_cache import AquilaCache
from repro.cache.base import CachePage
from repro.devices.io_engines import DaxIO, IOPath
from repro.fault.crash import CRASH
from repro.hw.ept import EPT
from repro.hw.machine import Machine
from repro.hw.vmx import ExecutionDomain, VMXCostModel
from repro.mmio.engine import Mapping, MmioEngine
from repro.mmio.files import BackingFile
from repro.mmio.vma import MADV_SEQUENTIAL, VMA, AquilaVMAStore
from repro.obs import TRACER
from repro.sim.executor import SimThread


class AquilaEngine(MmioEngine):
    """Customizable mmio in non-root ring 0."""

    name = "aquila"

    #: Batching-invariant audit (see ``repro.sim.executor``): the earliest
    #: cross-thread-visible interaction on any Aquila operation is behind
    #: the 552-cycle fault entry, the mmap-class vmcall, or the msync
    #: entry + dirty-tree scan (100 + 220) — whichever is smallest.
    sync_preamble_cycles = 100 + constants.AQUILA_MSYNC_SCAN_CYCLES

    def __init__(
        self,
        machine: Machine,
        cache_pages: int,
        io_path: IOPath,
        eviction_batch: int = constants.EVICTION_BATCH_PAGES,
        shootdown_batch: int = constants.TLB_SHOOTDOWN_BATCH,
        freelist_move_batch: int = constants.FREELIST_MOVE_BATCH_PAGES,
        freelist_core_threshold: int = constants.FREELIST_CORE_THRESHOLD_PAGES,
        readahead_pages: int = 0,
        ept: Optional[EPT] = None,
    ) -> None:
        super().__init__(
            machine,
            AquilaVMAStore(),
            VMXCostModel(ExecutionDomain.NONROOT_RING0),
        )
        topology = machine.topology
        self.cache = AquilaCache(
            cache_pages,
            num_cores=topology.num_hw_threads,
            core_of_numa_node=topology.numa_node_of,
            eviction_batch=eviction_batch,
            freelist_move_batch=freelist_move_batch,
            freelist_core_threshold=freelist_core_threshold,
        )
        self.io_path = io_path
        self.shootdown_batch = shootdown_batch
        self.readahead_pages = readahead_pages
        self._shootdowns = machine.make_shootdown_controller("aquila")
        self.ept = ept
        if self.ept is not None:
            self.ept.grant(0, cache_pages * units.PAGE_SIZE)
        self.eviction_batches = 0
        self.readahead_aborted = 0

    # -- engine plumbing ------------------------------------------------------

    def _pool(self):
        return self.cache.pool

    def _cached_page(self, file: BackingFile, file_page: int) -> Optional[CachePage]:
        return self.cache.get_nocost(file, file_page)

    def _shootdown(self, thread: SimThread, vpns: List[int]) -> None:
        # Batched: one shootdown call per batch of pages (Section 4.1).
        for start in range(0, len(vpns), self.shootdown_batch):
            self._shootdowns.shootdown(
                thread.clock, thread.core, vpns[start : start + self.shootdown_batch]
            )

    def _charge_range_update(self, thread: SimThread) -> None:
        # mmap-class operations interact with the hypervisor (Section 3.4
        # and Figure 3): one vmcall, off the common path.
        self.vmx.syscall(thread.clock, "vmcall.mmap")

    def _pages_of_file(self, file_id: int):
        return self.cache.pages_of_file(file_id)

    def _drop_page(self, thread: SimThread, page: CachePage) -> None:
        if page.dirty:
            self.cache.clear_dirty(thread.clock, page)
        self.cache.remove(thread.clock, thread.core, page)

    def _advise_cost(self) -> float:
        # madvise is intercepted in non-root ring 0 (Section 4.4): a plain
        # function call, no domain switch.
        return 50

    # -- fault handling ---------------------------------------------------------

    def _fault(self, thread: SimThread, vma: VMA, vpn: int, is_write: bool) -> int:
        clock = thread.clock
        self.vmx.fault_entry(clock)   # 552-cycle non-root ring 0 exception
        # No sub-spans around the vma/cache lookups: they are cheap, run on
        # every fault, and their cycles stay visible as charge categories
        # on the enclosing "fault" span.
        checked = self.vmas.lookup(clock, vpn)   # radix validity + entry lock
        if checked is None or checked.vma_id != vma.vma_id:
            raise SegmentationFault(vpn << units.PAGE_SHIFT)
        file = vma.file
        file_page = vma.file_page_of(vpn)

        page = self.cache.lookup(clock, file, file_page)
        if page is None:
            self.major_faults += 1
            page = self._read_in(thread, vma, file, file_page)
        else:
            self.minor_faults += 1

        writable = is_write
        pte = self.page_table.install(vpn, page.frame, writable=writable)
        page.mapped_vpns.add(vpn)
        clock.charge("fault.pte_install", constants.AQUILA_PTE_INSTALL_CYCLES)
        clock.charge("fault.misc", constants.AQUILA_FAULT_MISC_CYCLES)
        self.machine.tlb_of(thread)._insert(vpn)

        if is_write:
            # Write fault: mark dirty during the initial fault (Section 3.2).
            pte.dirty = True
            self.cache.mark_dirty(clock, thread.core, page)
        return page.frame

    def _write_protect_fault(self, thread: SimThread, vma: VMA, vpn: int, pte) -> int:
        """Read-only page written: just mark dirty (Section 3.2)."""
        clock = thread.clock
        self.vmx.fault_entry(clock)
        self.vmas.lookup(clock, vpn)
        file_page = vma.file_page_of(vpn)
        page = self.cache.get_nocost(vma.file, file_page)
        if page is None:
            raise SegmentationFault(vpn << units.PAGE_SHIFT, "dirty fault on evicted page")
        self.cache.mark_dirty(clock, thread.core, page)
        pte.writable = True
        pte.dirty = True
        clock.charge("fault.pte_install", constants.AQUILA_PTE_INSTALL_CYCLES // 2)
        return page.frame

    # -- miss path -------------------------------------------------------------

    def _read_in(
        self, thread: SimThread, vma: VMA, file: BackingFile, file_page: int
    ) -> CachePage:
        clock = thread.clock
        with TRACER.span("fault.alloc", clock):
            frame = self._allocate_with_eviction(thread)
        if self.ept is not None:
            # First touch of a fresh cache granule faults in EPT (1 GB
            # granules make this essentially free; Section 3.5).
            self.ept.translate(frame * units.PAGE_SIZE, clock)
        with TRACER.span("fault.io", clock):
            data = self.io_path.read(
                clock, file.device_offset(file_page), units.PAGE_SIZE, "fault.io"
            )
            self.cache.pool.write(frame, data)
        page = self.cache.insert(clock, file, file_page, frame)
        if page.frame != frame:
            # Lost the install race; recycle the speculative frame.
            self.cache.freelist.free(clock, thread.core, frame)
        if vma.advice == MADV_SEQUENTIAL and self.readahead_pages:
            with TRACER.span("fault.readahead", clock):
                self._readahead(thread, vma, file, file_page)
        return page

    def _readahead(
        self, thread: SimThread, vma: VMA, file: BackingFile, file_page: int
    ) -> None:
        """madvise-driven sequential prefetch (Section 3.2)."""
        clock = thread.clock
        last = min(file.size_pages, file_page + 1 + self.readahead_pages)
        for page_index in range(file_page + 1, last):
            if self.cache.get_nocost(file, page_index) is not None:
                continue
            frame = self._allocate_with_eviction(thread)
            offset = file.device_offset(page_index)
            try:
                file.device.submit_async(clock, offset, units.PAGE_SIZE, is_write=False)
            except TransientDeviceError:
                # Readahead is speculative: degrade by abandoning the
                # window rather than retrying — the demand fault that
                # actually needs the page will retry through its io_path.
                self.cache.freelist.free(clock, thread.core, frame)
                self.readahead_aborted += 1
                break
            self.cache.pool.write(frame, file.device.store.read(offset, units.PAGE_SIZE))
            self.cache.insert(clock, file, page_index, frame)

    # -- eviction ---------------------------------------------------------------

    def _allocate_with_eviction(self, thread: SimThread) -> int:
        frame = self.cache.allocate_frame(thread.clock, thread.core)
        if frame is not None:
            return frame
        self._evict_batch(thread)
        frame = self.cache.allocate_frame(thread.clock, thread.core)
        if frame is None:
            raise OutOfMemoryError("eviction freed no frames")
        return frame

    def _evict_batch(self, thread: SimThread) -> None:
        """Synchronously evict a batch of cold pages (Section 3.2)."""
        clock = thread.clock
        self.eviction_batches += 1
        with TRACER.span("evict", clock):
            victims = self.cache.pick_victims(clock, self.cache.eviction_batch)
            if not victims:
                raise OutOfMemoryError("cache empty but freelist dry")

            dirty = sorted(
                (v for v in victims if v.dirty), key=lambda page: page.device_offset
            )
            if dirty:
                self._write_back_dirty(thread, dirty, sync=True)
            CRASH.point(f"{self.name}.evict")

            vpns: List[int] = []
            for page in victims:
                for vpn in page.mapped_vpns:
                    self.page_table.remove(vpn)
                    vpns.append(vpn)
                page.mapped_vpns.clear()
            self._shootdown(thread, vpns)
            for page in victims:
                self.cache.remove(clock, thread.core, page)

    def _write_back_dirty(
        self, thread: SimThread, pages: List[CachePage], sync: bool
    ) -> int:
        """Write dirty pages via this engine's I/O path, merging runs."""
        if isinstance(self.io_path, DaxIO):
            # DAX writeback is a memcpy per run; merging still helps the
            # per-copy FPU save amortization.
            written = 0
            with TRACER.span("writeback.io", thread.clock):
                for run in self._merge_runs(pages):
                    data = b"".join(self.cache.pool.read(page.frame) for page in run)
                    CRASH.point(f"{self.name}.writeback.run")
                    self.io_path.write(
                        thread.clock, run[0].device_offset, data, "writeback.io"
                    )
                    written += len(run)
        else:
            written = self._write_back_pages(thread, pages, sync=sync)
        for page in pages:
            self.cache.clear_dirty(thread.clock, page)
        return written

    # -- msync -------------------------------------------------------------------

    def msync(self, thread: SimThread, mapping: Mapping) -> int:
        """Flush the mapping's dirty pages, sorted by device offset.

        Intercepted in ring 0: no vmcall, a plain function call
        (Section 4.4).
        """
        with TRACER.span("msync", thread.clock):
            thread.clock.charge("msync.entry", 100)
            # Merging the per-core dirty trees to build the flush set costs
            # tree-walk cycles; charging it before the PTE downgrades also
            # keeps every mutation behind ``sync_preamble_cycles``.
            thread.clock.charge("msync.scan", constants.AQUILA_MSYNC_SCAN_CYCLES)
            file = mapping.vma.file
            first = mapping.vma.file_start_page
            last = first + mapping.vma.num_pages
            dirty = [
                page
                for page in self.cache.all_dirty_pages_sorted()
                if page.file.file_id == file.file_id and first <= page.file_page < last
            ]
            if not dirty:
                self._drain_inflight(thread, file)
                return 0
            # Downgrade PTEs to read-only so future writes re-mark dirty.
            vpns: List[int] = []
            for page in dirty:
                for vpn in page.mapped_vpns:
                    pte = self.page_table.lookup(vpn)
                    if pte is not None and pte.writable:
                        pte.writable = False
                        pte.dirty = False
                        vpns.append(vpn)
            self._shootdown(thread, vpns)
            written = self._write_back_dirty(thread, dirty, sync=True)
            # msync must not return before every queued write of this file
            # (including earlier async writeback) has completed.
            self._drain_inflight(thread, file)
            CRASH.point(f"{self.name}.msync")
            return written

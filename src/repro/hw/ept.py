"""Extended Page Table: GPA -> HPA translation under hypervisor control.

Aquila's DRAM cache lives in guest-physical address ranges; the hypervisor
backs them with host memory on demand through EPT faults (paper
Section 3.5).  An EPT fault costs a vmexit plus hypervisor handling, so
Aquila minimizes their number by using 1 GB (or 2 MB) EPT granules:
"Aquila reduces the number of EPT faults with huge pages only for GPA to
HPA translations ... in our evaluation we only use 1GB pages for cache
resizing purposes."

One EPT per process, shared by all threads (Section 3.5 modifies Dune's
per-thread EPT to per-process).
"""

from __future__ import annotations

from typing import Dict

from repro.common import constants, units
from repro.common.errors import SegmentationFault
from repro.sim.clock import CycleClock


class EPT:
    """GPA -> HPA mapping with configurable granule size."""

    GRANULES = {
        "4K": units.PAGE_SIZE,
        "2M": units.HUGE_2M,
        "1G": units.HUGE_1G,
    }

    def __init__(self, granule: str = "1G") -> None:
        if granule not in self.GRANULES:
            raise ValueError(f"granule must be one of {sorted(self.GRANULES)}")
        self.granule_name = granule
        self.granule_bytes = self.GRANULES[granule]
        self._mappings: Dict[int, int] = {}   # granule index -> host base
        self._valid: Dict[int, bool] = {}     # granules the guest may touch
        self.faults = 0
        self._next_host_base = 0

    def _granule_index(self, gpa: int) -> int:
        return gpa // self.granule_bytes

    def grant(self, gpa_start: int, nbytes: int) -> None:
        """Hypervisor marks a GPA range as valid for the guest.

        Backing host memory is still installed lazily via EPT faults, the
        way Dune populates EPT entries on first touch.
        """
        first = self._granule_index(gpa_start)
        last = self._granule_index(gpa_start + max(nbytes, 1) - 1)
        for index in range(first, last + 1):
            self._valid[index] = True

    def revoke(self, gpa_start: int, nbytes: int) -> int:
        """Hypervisor reclaims a GPA range; returns granules removed."""
        first = self._granule_index(gpa_start)
        last = self._granule_index(gpa_start + max(nbytes, 1) - 1)
        removed = 0
        for index in range(first, last + 1):
            self._valid.pop(index, None)
            if self._mappings.pop(index, None) is not None:
                removed += 1
        return removed

    def translate(self, gpa: int, clock: CycleClock) -> int:
        """Translate ``gpa`` to an HPA, taking an EPT fault on first touch.

        The fault path charges a vmexit plus hypervisor fault handling
        (paper Section 3.5: "similar to common page faults but has higher
        cost due to the required vmexit").
        """
        index = self._granule_index(gpa)
        host_base = self._mappings.get(index)
        if host_base is None:
            if not self._valid.get(index, False):
                raise SegmentationFault(
                    gpa, f"EPT violation: GPA 0x{gpa:x} not granted to guest"
                )
            self.faults += 1
            clock.charge("ept.fault", constants.EPT_FAULT_CYCLES)
            host_base = self._next_host_base
            self._next_host_base += self.granule_bytes
            self._mappings[index] = host_base
        return host_base + (gpa % self.granule_bytes)

    def is_backed(self, gpa: int) -> bool:
        """Whether ``gpa`` already has a host backing granule."""
        return self._granule_index(gpa) in self._mappings

    def granted_bytes(self) -> int:
        """Total bytes of GPA space currently granted."""
        return len(self._valid) * self.granule_bytes

    def backed_bytes(self) -> int:
        """Total bytes of GPA space with installed host backing."""
        return len(self._mappings) * self.granule_bytes

    def expected_faults_for(self, nbytes: int) -> int:
        """EPT faults needed to touch ``nbytes`` of fresh GPA space."""
        return max(1, units.pages(nbytes) * units.PAGE_SIZE // self.granule_bytes)

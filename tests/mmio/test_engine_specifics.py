"""Engine-specific behaviours: what distinguishes the three mmio paths."""

import pytest

from repro.bench.setups import make_aquila_stack, make_kmmap_stack, make_linux_stack
from repro.common import constants, units
from repro.mmio.vma import MADV_NORMAL, MADV_RANDOM, MADV_SEQUENTIAL
from repro.sim.executor import SimThread


def _map(stack, pages=128, advice=None):
    file = stack.allocator.create("data", pages * units.PAGE_SIZE)
    thread = SimThread(core=0)
    mapping = stack.engine.mmap(thread, file)
    if advice is not None:
        mapping.madvise(thread, advice)
    return file, thread, mapping


class TestLinuxReadahead:
    def test_default_advice_prefetches(self):
        """A single 1-byte read pulls the 128 KB window (Section 6.1)."""
        stack = make_linux_stack("pmem", cache_pages=256)
        _, thread, mapping = _map(stack, advice=MADV_NORMAL)
        mapping.load(thread, 64 * units.PAGE_SIZE, 1)
        assert stack.engine.cache.resident_pages() >= 16

    def test_madv_random_disables_readahead(self):
        stack = make_linux_stack("pmem", cache_pages=256)
        _, thread, mapping = _map(stack, advice=MADV_RANDOM)
        mapping.load(thread, 64 * units.PAGE_SIZE, 1)
        assert stack.engine.cache.resident_pages() == 1

    def test_readahead_amplifies_device_reads(self):
        """The Figure 5(b) pathology: 32x read amplification."""
        random_stack = make_linux_stack("pmem", cache_pages=512)
        normal_stack = make_linux_stack("pmem", cache_pages=512)
        _, t1, m1 = _map(random_stack, advice=MADV_RANDOM)
        _, t2, m2 = _map(normal_stack, advice=MADV_NORMAL)
        for page in range(0, 128, 37):
            m1.load(t1, page * units.PAGE_SIZE, 1)
            m2.load(t2, page * units.PAGE_SIZE, 1)
        assert normal_stack.device.bytes_read > 8 * random_stack.device.bytes_read

    def test_readahead_clamped_by_cache(self):
        """Readahead never overruns a tiny cache (PG_locked safety)."""
        stack = make_linux_stack("pmem", cache_pages=8)
        _, thread, mapping = _map(stack, pages=64, advice=MADV_NORMAL)
        for page in range(64):
            mapping.load(thread, page * units.PAGE_SIZE, 1)
        assert stack.engine.cache.resident_pages() <= 8

    def test_trap_cost_in_breakdown(self):
        stack = make_linux_stack("pmem", cache_pages=64)
        _, thread, mapping = _map(stack, advice=MADV_RANDOM)
        mapping.load(thread, 0, 1)
        assert thread.clock.breakdown.get("fault.trap") == constants.TRAP_RING3_CYCLES


class TestAquilaSpecifics:
    def test_exception_not_trap(self):
        stack = make_aquila_stack("pmem", cache_pages=64)
        _, thread, mapping = _map(stack)
        mapping.load(thread, 0, 1)
        assert thread.clock.breakdown.get("fault.trap") == constants.TRAP_AQUILA_CYCLES

    def test_no_readahead_by_default(self):
        stack = make_aquila_stack("pmem", cache_pages=256)
        _, thread, mapping = _map(stack)
        mapping.load(thread, 0, 1)
        assert stack.engine.cache.resident_pages() == 1

    def test_madv_sequential_readahead(self):
        stack = make_aquila_stack("pmem", cache_pages=256)
        stack.engine.readahead_pages = 8
        _, thread, mapping = _map(stack, advice=MADV_SEQUENTIAL)
        mapping.load(thread, 0, 1)
        assert stack.engine.cache.resident_pages() == 9

    def test_batched_eviction(self):
        stack = make_aquila_stack("pmem", cache_pages=64)
        _, thread, mapping = _map(stack, pages=256)
        for page in range(256):
            mapping.load(thread, page * units.PAGE_SIZE, 1)
        assert stack.engine.eviction_batches > 0
        # Evictions happen eviction_batch pages at a time.
        assert (
            stack.engine.cache.evictions
            >= stack.engine.eviction_batches * stack.engine.cache.eviction_batch
        )

    def test_mmap_is_vmcall_not_syscall(self):
        """Range updates interact with the hypervisor (Section 3.4)."""
        stack = make_aquila_stack("pmem", cache_pages=64)
        file = stack.allocator.create("f", units.PAGE_SIZE)
        thread = SimThread(core=0)
        stack.engine.mmap(thread, file)
        assert stack.engine.vmx.vmcalls >= 1

    def test_madvise_is_function_call(self):
        """Intercepted syscalls cost ~a function call (Section 4.4)."""
        stack = make_aquila_stack("pmem", cache_pages=64)
        _, thread, mapping = _map(stack)
        before = thread.clock.now
        mapping.madvise(thread, MADV_RANDOM)
        assert thread.clock.now - before < constants.SYSCALL_CYCLES

    def test_ept_faults_with_1g_granule_negligible(self):
        from repro.core import Aquila, AquilaConfig
        from repro.devices.pmem import PmemDevice
        from repro.hw.machine import Machine

        aquila = Aquila(
            Machine(),
            PmemDevice(capacity_bytes=64 * units.MIB),
            AquilaConfig(cache_pages=256, io_path="dax", ept_granule="1G"),
        )
        thread = SimThread(core=0)
        aquila.enter(thread)
        file = aquila.open(thread, "/f", size_bytes=units.MIB)
        mapping = aquila.mmap(thread, file)
        for page in range(256):
            mapping.load(thread, page * units.PAGE_SIZE, 1)
        assert aquila.engine.ept.faults == 1


class TestKmmapSpecifics:
    def test_kernel_trap_cost(self):
        stack = make_kmmap_stack("pmem", cache_pages=64)
        _, thread, mapping = _map(stack)
        mapping.load(thread, 0, 1)
        assert thread.clock.breakdown.get("fault.trap") == constants.TRAP_RING3_CYCLES

    def test_kernel_device_path(self):
        """kmmap reads pmem through the kernel: non-SIMD copy cost."""
        stack = make_kmmap_stack("pmem", cache_pages=64)
        _, thread, mapping = _map(stack)
        mapping.load(thread, 0, 1)
        device_cycles = thread.clock.breakdown.prefix_total(
            "idle.fault.io"
        ) + thread.clock.breakdown.prefix_total("fault.io")
        assert device_cycles >= constants.MEMCPY_4K_NOSIMD_CYCLES

    def test_coarser_eviction_batches_than_aquila(self):
        kmmap = make_kmmap_stack("pmem", cache_pages=512)
        aquila = make_aquila_stack("pmem", cache_pages=512)
        assert kmmap.engine.cache.eviction_batch > aquila.engine.cache.eviction_batch

    def test_scalable_cache_structures_shared_with_aquila(self):
        from repro.cache.aquila_cache import AquilaCache

        stack = make_kmmap_stack("pmem", cache_pages=64)
        assert isinstance(stack.engine.cache, AquilaCache)


class TestCostOrdering:
    def test_fault_cost_ordering(self):
        """Aquila is cheapest; the two kernel paths are comparable.

        kmmap's wins over mmap come from writeback policy and cache
        scalability, not the single-thread cold-fault path — per fault it
        pays the same trap and kernel device I/O as mmap.
        """
        costs = {}
        for name, maker in (
            ("linux", make_linux_stack),
            ("aquila", make_aquila_stack),
            ("kmmap", make_kmmap_stack),
        ):
            stack = maker("pmem", cache_pages=256)
            _, thread, mapping = _map(stack, advice=MADV_RANDOM)
            start = thread.clock.now
            for page in range(100):
                mapping.load(thread, page * units.PAGE_SIZE, 1)
            costs[name] = thread.clock.now - start
        assert costs["aquila"] < costs["kmmap"]
        assert costs["aquila"] < costs["linux"]
        assert costs["kmmap"] < 1.2 * costs["linux"]

"""Epoch-synchronized, deterministically ordered cross-shard messages.

Shards never communicate mid-epoch.  During epoch *e* each shard
accumulates an **outbox** of cycle-stamped messages; at the epoch
boundary the coordinator commits every outbox to the bus, which merges
them into one totally ordered stream — sorted by the ordering key
``(cycle, shard_id, seq)`` — and fans the stream out into per-recipient
**inboxes** delivered at the start of epoch *e + 1*.

The ordering key is a total order: ``seq`` increments per message within
one sender's epoch (so two messages from the same shard never tie), and
cross-shard cycle ties break on ``shard_id``.  Because delivery happens
only between epochs — before any shard's executor (and therefore any
hit-run or analytic fast-forward window) starts — no in-flight message
is ever observable mid-run, which is the buffering half of the cluster
determinism argument (DESIGN.md §13).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple


@dataclass(frozen=True)
class ShardMessage:
    """One cross-shard message (a replicated write, in this PR).

    ``cycle`` is the sender-local completion cycle of the op that
    produced the message, ``shard_id`` the sender, and ``seq`` the
    message's ordinal within the sender's epoch outbox — together the
    delivery ordering key.  ``dest`` lists recipient shard ids; ``key``,
    ``page`` and ``offset`` locate the replicated store on each
    recipient (``page`` is the key's home page — a global index into the
    one logical dataset, addressing the identical offset of every
    owner's dataset-spanning file).
    """

    cycle: float
    shard_id: int
    seq: int
    kind: str
    dest: Tuple[int, ...]
    key: int
    page: int
    offset: int


def order_key(message: ShardMessage) -> Tuple[float, int, int]:
    """The total delivery order: ``(cycle, shard_id, seq)``."""
    return (message.cycle, message.shard_id, message.seq)


class EpochBus:
    """Buffers outboxes across one epoch boundary and orders delivery."""

    def __init__(self) -> None:
        #: Per-recipient inboxes awaiting the next epoch, already in
        #: delivery order.
        self._inboxes: Dict[int, List[ShardMessage]] = {}
        self.epochs_committed = 0
        self.messages_committed = 0
        self.deliveries = 0

    def commit(self, outboxes: Sequence[Sequence[ShardMessage]]) -> int:
        """Commit one epoch's outboxes; returns the messages enqueued.

        All outboxes are merged and sorted by :func:`order_key`, then
        appended to each destination's inbox in that global order.  A
        message naming several destinations is delivered to each; a
        message with no live destination is simply dropped (counted in
        ``messages_committed`` all the same).
        """
        merged: List[ShardMessage] = []
        for outbox in outboxes:
            merged.extend(outbox)
        merged.sort(key=order_key)
        for message in merged:
            for dest in message.dest:
                self._inboxes.setdefault(dest, []).append(message)
                self.deliveries += 1
        self.epochs_committed += 1
        self.messages_committed += len(merged)
        return len(merged)

    def take_inbox(self, shard_id: int) -> List[ShardMessage]:
        """Drain and return ``shard_id``'s pending inbox (delivery order)."""
        return self._inboxes.pop(shard_id, [])

    def drop_inbox(self, shard_id: int) -> int:
        """Discard a dead shard's pending inbox; returns messages dropped."""
        return len(self._inboxes.pop(shard_id, []))

    def pending(self) -> int:
        """Messages currently buffered toward the next epoch."""
        return sum(len(inbox) for inbox in self._inboxes.values())

    def digest(self) -> Dict:
        """The bus's contribution to the merged cluster digest."""
        return {
            "epochs_committed": self.epochs_committed,
            "messages_committed": self.messages_committed,
            "deliveries": self.deliveries,
            "pending": self.pending(),
        }

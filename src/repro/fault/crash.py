"""Deterministic crash points and durable-state snapshots.

Every writeback / msync / eviction / WAL boundary in the stack calls
``CRASH.point(label)``.  Disarmed (the default), that is a single branch.
Armed, the controller counts boundaries and — at the chosen ordinal —
snapshots the durable state of the registered devices and raises
:class:`~repro.common.errors.SimulatedCrash`.  A test then rebuilds the
stack on devices restored from the snapshot and checks the recovery
invariants:

* **no acknowledged-durable data lost** — anything a completed
  msync/fsync/WAL-append acknowledged is readable after recovery;
* **no torn page observed** — every recovered page equals some complete
  version the application wrote, never an interleaving.

Determinism: boundaries are counted in simulated execution order, which
the single-OS-thread executor makes reproducible, so "crash at point #7"
names the same instant on every run with the same seed.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.common.errors import SimulatedCrash

#: A durable snapshot: device name -> {page_index: bytes}.
DeviceSnapshot = Dict[str, Dict[int, bytes]]


class CrashController:
    """Counts crash-point boundaries; crashes at an armed ordinal."""

    MODE_OFF = "off"
    MODE_COUNT = "count"
    MODE_CRASH = "crash"

    def __init__(self) -> None:
        self._mode = self.MODE_OFF
        self._devices: Sequence = ()
        self.target_index = 0
        self.points_seen = 0
        self.labels: List[str] = []
        self.snapshot: Optional[DeviceSnapshot] = None
        self.fired_label: Optional[str] = None

    # -- arming -----------------------------------------------------------------

    def reset(self) -> None:
        """Disarm and forget all state (the default, zero-cost mode)."""
        self._mode = self.MODE_OFF
        self._devices = ()
        self.target_index = 0
        self.points_seen = 0
        self.labels = []
        self.snapshot = None
        self.fired_label = None

    def count_mode(self) -> None:
        """Enumerate boundaries without crashing (dry run for a matrix)."""
        self.reset()
        self._mode = self.MODE_COUNT

    def arm(self, target_index: int, devices: Sequence) -> None:
        """Crash at boundary ``target_index`` (1-based), snapshotting
        the durable stores of ``devices`` at that instant."""
        if target_index < 1:
            raise ValueError("crash point indices are 1-based")
        self.reset()
        self._mode = self.MODE_CRASH
        self.target_index = target_index
        self._devices = tuple(devices)

    @property
    def active(self) -> bool:
        """Whether points are currently being counted or crashed on."""
        return self._mode != self.MODE_OFF

    # -- the boundary hook --------------------------------------------------------

    def point(self, label: str) -> None:
        """One crash-point boundary.  A single branch while disarmed."""
        if self._mode == self.MODE_OFF:
            return
        self.points_seen += 1
        self.labels.append(label)
        if self._mode == self.MODE_CRASH and self.points_seen == self.target_index:
            self.snapshot = snapshot_devices(self._devices)
            self.fired_label = label
            self._mode = self.MODE_OFF   # one shot; unwind must not re-fire
            raise SimulatedCrash(label, self.points_seen)


def snapshot_devices(devices: Sequence) -> DeviceSnapshot:
    """Copy the durable page contents of each device's backing store."""
    return {device.name: dict(device.store._pages) for device in devices}


def restore_devices(devices: Sequence, snapshot: DeviceSnapshot) -> None:
    """Overwrite each device's backing store with a snapshot's pages.

    The devices are typically *fresh* instances (post-crash reboot):
    contents are restored, timing/queue state starts cold — exactly what
    a power cycle does.
    """
    for device in devices:
        pages = snapshot.get(device.name)
        if pages is None:
            raise KeyError(f"snapshot has no state for device {device.name!r}")
        device.store._pages = dict(pages)


#: The process-wide controller every boundary hook reports to.
CRASH = CrashController()

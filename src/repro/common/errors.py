"""Exception hierarchy for the Aquila reproduction."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigError(ReproError):
    """An invalid configuration value was supplied."""


class SegmentationFault(ReproError):
    """An access hit a virtual address with no valid mapping (SIGSEGV)."""

    def __init__(self, address: int, message: str = "") -> None:
        detail = message or f"invalid access to 0x{address:x}"
        super().__init__(detail)
        self.address = address


class ProtectionFault(ReproError):
    """An access violated the protection flags of a valid mapping."""

    def __init__(self, address: int, message: str = "") -> None:
        detail = message or f"protection violation at 0x{address:x}"
        super().__init__(detail)
        self.address = address


class DeviceError(ReproError):
    """A storage device rejected or failed an I/O request."""


class TransientDeviceError(DeviceError):
    """An injected, retryable device failure (media hiccup, aborted command).

    Raised by the fault-injection layer (:mod:`repro.fault`); the I/O
    paths retry these with backoff before escalating to a permanent
    :class:`DeviceError`.
    """


class TornWriteError(TransientDeviceError):
    """A write command failed after only a prefix of its payload landed.

    Models a power cut or aborted DMA mid-transfer: ``written_bytes`` of
    the payload are durable on the media, the rest never arrived.
    """

    def __init__(self, message: str = "", written_bytes: int = 0) -> None:
        super().__init__(message or f"torn write: only {written_bytes} bytes landed")
        self.written_bytes = written_bytes


class OutOfSpaceError(DeviceError):
    """A write extended past the device or blob capacity."""


class OutOfMemoryError(ReproError):
    """The simulated machine ran out of physical frames."""


class BlobNotFoundError(ReproError):
    """A blobstore lookup referenced a missing blob id or name."""


class KeyNotFoundError(ReproError):
    """A key-value store lookup did not find the key."""


class SimulationError(ReproError):
    """Internal inconsistency detected by the discrete-event executor."""


class SimulatedCrash(ReproError):
    """A deterministic crash fired at an armed :class:`repro.fault` point.

    Carries the label and ordinal of the boundary that crashed; durable
    device state at the instant of the crash is held by the controller
    that raised it.
    """

    def __init__(self, label: str, point_index: int) -> None:
        super().__init__(f"simulated crash at point #{point_index} ({label})")
        self.label = label
        self.point_index = point_index

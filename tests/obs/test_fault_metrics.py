"""Fault observability: counters, spans and attribution reconcile.

A degraded run must stay fully accounted: every retry the policy takes
shows up once in the ``fault.retries`` counter AND once as a
``fault.retry`` span whose charges equal the backoff cycles on the
clock; injected-fault counts surface identically through the plan
summary and the bound metrics probes; and cycle attribution over the
trace still explains the clock's total within 1%.
"""

import pytest

from repro.bench import setups
from repro.common import units
from repro.common.errors import DeviceError
from repro.fault.plan import FaultPlan, FaultSpec, clear_plan, plan_installed
from repro.obs import (
    METRICS,
    TRACER,
    CycleAttribution,
    disable_tracing,
    enable_tracing,
)
from repro.sim import rand
from repro.sim.executor import SimThread

PAGE = units.PAGE_SIZE

#: Rates high enough that a 300-op run deterministically retries.
SPEC = FaultSpec(error_rate=0.10, latency_rate=0.05)
SEED = 7


@pytest.fixture(autouse=True)
def _clean_obs():
    METRICS.enable()
    METRICS.reset()
    enable_tracing()
    yield
    clear_plan()
    disable_tracing()
    METRICS.disable()
    METRICS.reset()


def _faulty_run(seed=SEED):
    """A write-heavy mmap workload over NVMe under an injected plan."""
    plan = FaultPlan(seed, SPEC)
    with plan_installed(plan):
        stack = setups.make_linux_stack(
            "nvme", cache_pages=32, capacity_bytes=16 * units.MIB
        )
        file = stack.allocator.create("workload", 64 * PAGE)
        thread = SimThread(core=0)
        mapping = stack.engine.mmap(thread, file)
        rng = rand.stream(seed, "fault-metrics.workload")
        for index in range(300):
            page = rng.randrange(64)
            try:
                if rng.random() < 0.6:
                    mapping.store(thread, page * PAGE, bytes([index % 250 + 1]) * PAGE)
                else:
                    mapping.load(thread, page * PAGE, PAGE)
                if index % 40 == 39:
                    mapping.msync(thread)
            except DeviceError:
                pass   # a give-up degrades the run; accounting must still balance
    return plan, stack, thread


class TestRetryAccounting:
    def test_counter_matches_span_count(self):
        _faulty_run()
        retry_spans = [s for s in TRACER.finished_spans() if s.name == "fault.retry"]
        assert retry_spans, "workload injected no retries — rates too low"
        assert METRICS.counter("fault.retries").value == len(retry_spans)

    def test_backoff_charges_equal_span_cycles(self):
        _, _, thread = _faulty_run()
        att = CycleAttribution.from_tracer(TRACER)
        breakdown_backoff = sum(
            cycles
            for category, cycles in thread.clock.breakdown.items()
            if category.endswith(".retry_backoff")
        )
        assert breakdown_backoff > 0
        assert att.self_cycles("fault.retry") == pytest.approx(breakdown_backoff)

    def test_injector_counters_reconcile_with_metrics_probes(self):
        plan, _, _ = _faulty_run()
        summary = plan.summary()["nvme0"]
        snapshot = METRICS.snapshot()
        assert snapshot["device.nvme0.faults.errors"] == summary["errors"]
        assert snapshot["device.nvme0.faults.latency"] == summary["latency"]
        assert snapshot["device.nvme0.faults.torn"] == summary["torn"]
        assert summary["errors"] > 0


class TestAttributionReconciles:
    def test_trace_explains_total_within_one_percent(self):
        """Even degraded, the trace accounts for the whole clock."""
        _, _, thread = _faulty_run()
        att = CycleAttribution.from_tracer(TRACER)
        assert att.total_cycles() == pytest.approx(
            thread.clock.breakdown.total(), rel=0.01
        )

    def test_fault_spans_present_in_degraded_run(self):
        _faulty_run()
        att = CycleAttribution.from_tracer(TRACER)
        names = att.span_names()
        assert "fault.retry" in names
        assert "fault" in names         # the fault path itself stays traced
        assert "writeback.bg" in names  # degradation rides the normal paths


class TestDeterministicAccounting:
    def test_same_seed_identical_counters_and_cycles(self):
        results = []
        for _ in range(2):
            METRICS.reset()
            enable_tracing()   # resets the trace buffer
            plan, _, thread = _faulty_run()
            retry_spans = [
                s for s in TRACER.finished_spans() if s.name == "fault.retry"
            ]
            results.append(
                (
                    METRICS.counter("fault.retries").value,
                    len(retry_spans),
                    plan.summary(),
                    thread.clock.now,
                    thread.clock.breakdown.total(),
                )
            )
        assert results[0] == results[1]

"""Physical frame pool: the DRAM that backs I/O caches.

Frames are 4 KiB and carry **real contents** so that the whole stack moves
actual bytes (DESIGN.md Section 4, item 2).  Each frame belongs to a NUMA
node; Aquila's two-level freelist cares about that locality.
"""

from __future__ import annotations

from typing import Dict, List

from repro.common import units
from repro.common.errors import OutOfMemoryError

ZERO_PAGE = bytes(units.PAGE_SIZE)


class FramePool:
    """A fixed pool of physical 4 KiB frames striped across NUMA nodes."""

    def __init__(self, total_frames: int, numa_nodes: int = 2) -> None:
        if total_frames <= 0:
            raise ValueError("total_frames must be positive")
        if numa_nodes <= 0:
            raise ValueError("numa_nodes must be positive")
        self.total_frames = total_frames
        self.numa_nodes = numa_nodes
        self._data: Dict[int, bytes] = {}
        self._allocated: List[bool] = [False] * total_frames

    def grow(self, additional_frames: int) -> List[int]:
        """Extend the pool (dynamic cache resize); returns the new frame ids.

        New frames stripe onto nodes the same way (``node_of`` is computed
        from the *current* size, so existing assignments stay stable only
        within a node-striping epoch; the freelist re-derives node
        membership at insertion time).
        """
        if additional_frames <= 0:
            raise ValueError("additional_frames must be positive")
        first = self.total_frames
        self.total_frames += additional_frames
        self._allocated.extend([False] * additional_frames)
        return list(range(first, self.total_frames))

    def shrink_frames(self, frames: List[int]) -> None:
        """Retire specific (free) frames from the pool.

        Frames must be unallocated.  Retired ids are left as permanent
        holes (marked allocated so nothing hands them out again).
        """
        for frame in frames:
            self._check(frame)
            if self._allocated[frame]:
                raise OutOfMemoryError(f"cannot retire allocated frame {frame}")
            self._allocated[frame] = True
            self._data.pop(frame, None)

    def node_of(self, frame: int) -> int:
        """NUMA node owning ``frame`` (frames striped in contiguous halves)."""
        self._check(frame)
        per_node = (self.total_frames + self.numa_nodes - 1) // self.numa_nodes
        return min(frame // per_node, self.numa_nodes - 1)

    def frames_of_node(self, node: int) -> List[int]:
        """All frame ids on ``node``."""
        return [f for f in range(self.total_frames) if self.node_of(f) == node]

    def _check(self, frame: int) -> None:
        if not 0 <= frame < self.total_frames:
            raise OutOfMemoryError(f"frame {frame} out of range")

    def mark_allocated(self, frame: int) -> None:
        """Record that ``frame`` is in use (freelist bookkeeping)."""
        self._check(frame)
        self._allocated[frame] = True

    def mark_free(self, frame: int) -> None:
        """Record that ``frame`` is free and scrub its contents."""
        self._check(frame)
        self._allocated[frame] = False
        self._data.pop(frame, None)

    def is_allocated(self, frame: int) -> bool:
        """Whether ``frame`` is currently in use."""
        self._check(frame)
        return self._allocated[frame]

    def allocated_count(self) -> int:
        """Number of frames currently in use."""
        return sum(1 for used in self._allocated if used)

    # -- frame contents ------------------------------------------------------

    def read(self, frame: int) -> bytes:
        """The 4 KiB contents of ``frame`` (zeros if never written)."""
        self._check(frame)
        return self._data.get(frame, ZERO_PAGE)

    def write(self, frame: int, data: bytes) -> None:
        """Replace the contents of ``frame``."""
        self._check(frame)
        if len(data) != units.PAGE_SIZE:
            raise ValueError(f"frame write must be {units.PAGE_SIZE} bytes")
        self._data[frame] = bytes(data)

    def write_partial(self, frame: int, offset: int, data: bytes) -> None:
        """Overwrite ``data`` at byte ``offset`` within ``frame``."""
        self._check(frame)
        if offset < 0 or offset + len(data) > units.PAGE_SIZE:
            raise ValueError("partial write out of page bounds")
        page = bytearray(self.read(frame))
        page[offset : offset + len(data)] = data
        self._data[frame] = bytes(page)

    def read_partial(self, frame: int, offset: int, nbytes: int) -> bytes:
        """Read ``nbytes`` at byte ``offset`` within ``frame``."""
        self._check(frame)
        if offset < 0 or offset + nbytes > units.PAGE_SIZE:
            raise ValueError("partial read out of page bounds")
        return self.read(frame)[offset : offset + nbytes]

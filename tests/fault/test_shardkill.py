"""Seeded shard-kill derivation: deterministic, in-range, validated."""

import pytest

from repro.fault import ShardKillSpec, derive_shard_kill


class TestDerivation:
    def test_pure_function_of_seed_and_grid(self):
        assert derive_shard_kill(3, 4, 4, 256) == derive_shard_kill(3, 4, 4, 256)

    def test_seeds_spread_over_the_grid(self):
        specs = {derive_shard_kill(seed, 4, 4, 256) for seed in range(32)}
        assert len(specs) > 16
        assert {s.shard_id for s in specs} == {0, 1, 2, 3}

    def test_values_in_range(self):
        for seed in range(64):
            spec = derive_shard_kill(seed, 4, 5, 256)
            assert 0 <= spec.shard_id < 4
            # Epoch 0 is avoided when there is a later epoch to pick.
            assert 1 <= spec.epoch < 5
            # The ordinal is drawn from the expected per-shard slice.
            assert 0 <= spec.op_index < 256 // 4

    def test_single_epoch_grid_allows_epoch_zero(self):
        spec = derive_shard_kill(1, 2, 1, 64)
        assert spec.epoch == 0

    def test_rejects_empty_grid(self):
        with pytest.raises(ValueError):
            derive_shard_kill(0, 0, 4, 256)
        with pytest.raises(ValueError):
            derive_shard_kill(0, 4, 0, 256)
        with pytest.raises(ValueError):
            derive_shard_kill(0, 4, 4, 0)


class TestSpecValidation:
    def test_negative_fields_rejected(self):
        with pytest.raises(ValueError):
            ShardKillSpec(shard_id=-1, epoch=0, op_index=0)
        with pytest.raises(ValueError):
            ShardKillSpec(shard_id=0, epoch=-1, op_index=0)
        with pytest.raises(ValueError):
            ShardKillSpec(shard_id=0, epoch=0, op_index=-1)

    def test_frozen(self):
        spec = ShardKillSpec(shard_id=0, epoch=1, op_index=2)
        with pytest.raises(Exception):
            spec.shard_id = 3

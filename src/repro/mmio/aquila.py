"""The Aquila mmio engine (paper Sections 3-4): the primary contribution.

Everything on the common path happens in VMX non-root ring 0, collocated
with the application:

* page faults are delivered as 552-cycle exceptions, not 1287-cycle traps;
* the faulting address is validated in a RadixVM-style radix tree with
  per-entry locks (no ``mmap_sem``);
* cached pages live in a lock-free hash table (no tree lock);
* frames come from the two-level (core/NUMA) batched freelist;
* when the freelist runs dry, the faulting thread synchronously evicts a
  *batch* of cold pages, writes dirty victims in device-offset order
  (merged into large I/Os from the per-core red-black trees) and performs
  a *single batched TLB shootdown* for the whole batch;
* device access never leaves non-root ring 0: DAX memcpy for pmem, SPDK
  for NVMe (host-syscall I/O is available for comparison — Figure 8(c)).

Interaction with the hypervisor happens only for mmap-class range updates
and dynamic cache resizing (EPT granules) — the uncommon path.
"""

from __future__ import annotations

from typing import List, Optional

from repro.common import constants, units
from repro.common.errors import OutOfMemoryError, SegmentationFault, TransientDeviceError
from repro.cache.aquila_cache import AquilaCache
from repro.cache.base import CachePage
from repro.devices.block import ZERO_PAGE
from repro.devices.io_engines import DaxIO, IOPath
from repro.hw.page_table import PTE
from repro.fault.crash import CRASH
from repro.hw.ept import EPT
from repro.hw.machine import Machine
from repro.hw.vmx import ExecutionDomain, VMXCostModel
from repro.mmio.engine import Mapping, MmioEngine
from repro.mmio.files import BackingFile
from repro.mmio.vma import MADV_SEQUENTIAL, VMA, AquilaVMAStore
from repro.obs import TRACER
from repro.sim.executor import SimThread
from repro.sim.locks import CacheLineTimeline

#: Charge constants pre-coerced to float once: the fused replay adds them
#: to breakdown buckets tens of thousands of times per run, and a float()
#: per add is pure interpreter overhead (the values are identical).
_F_TRAP = float(constants.TRAP_AQUILA_CYCLES)
_F_VMA_LOOKUP = float(constants.AQUILA_VMA_LOOKUP_CYCLES)
_F_CACHE_LOOKUP = float(constants.AQUILA_CACHE_LOOKUP_CYCLES)
_F_LRU_UPDATE = float(constants.AQUILA_LRU_UPDATE_CYCLES)
_F_FREELIST_OP = float(constants.FREELIST_OP_CYCLES)
_F_HASH_INSERT = float(constants.HASHTABLE_INSERT_CYCLES)
_F_ATOMIC = float(constants.LOCK_TRANSFER_CYCLES)
_F_PTE_INSTALL = float(constants.AQUILA_PTE_INSTALL_CYCLES)
_F_FAULT_MISC = float(constants.AQUILA_FAULT_MISC_CYCLES)

_PAGE_MASK = units.PAGE_SIZE - 1


class AquilaEngine(MmioEngine):
    """Customizable mmio in non-root ring 0."""

    name = "aquila"

    #: Batching-invariant audit (see ``repro.sim.executor``): the earliest
    #: cross-thread-visible interaction on any Aquila operation is behind
    #: the 552-cycle fault entry, the mmap-class vmcall, or the msync
    #: entry + dirty-tree scan (100 + 220) — whichever is smallest.
    sync_preamble_cycles = 100 + constants.AQUILA_MSYNC_SCAN_CYCLES

    def __init__(
        self,
        machine: Machine,
        cache_pages: int,
        io_path: IOPath,
        eviction_batch: int = constants.EVICTION_BATCH_PAGES,
        shootdown_batch: int = constants.TLB_SHOOTDOWN_BATCH,
        freelist_move_batch: int = constants.FREELIST_MOVE_BATCH_PAGES,
        freelist_core_threshold: int = constants.FREELIST_CORE_THRESHOLD_PAGES,
        readahead_pages: int = 0,
        ept: Optional[EPT] = None,
    ) -> None:
        super().__init__(
            machine,
            AquilaVMAStore(),
            VMXCostModel(ExecutionDomain.NONROOT_RING0),
        )
        topology = machine.topology
        self.cache = AquilaCache(
            cache_pages,
            num_cores=topology.num_hw_threads,
            core_of_numa_node=topology.numa_node_of,
            eviction_batch=eviction_batch,
            freelist_move_batch=freelist_move_batch,
            freelist_core_threshold=freelist_core_threshold,
        )
        self.io_path = io_path
        # One 4 KiB DAX copy costs the same every time (pure function of
        # the copy strategy); precompute it for the fused fault replay.
        self._ff_copy_cost = (
            io_path.fpu.copy_cost_cycles(units.PAGE_SIZE)
            if isinstance(io_path, DaxIO)
            else 0.0
        )
        self.shootdown_batch = shootdown_batch
        self.readahead_pages = readahead_pages
        self._shootdowns = machine.make_shootdown_controller("aquila")
        self.ept = ept
        if self.ept is not None:
            self.ept.grant(0, cache_pages * units.PAGE_SIZE)
        self.eviction_batches = 0
        self.readahead_aborted = 0
        self.ff_faults = 0      # faults replayed by the fused fast path
        self.ff_evictions = 0   # eviction batches replayed by the fused path

    # -- engine plumbing ------------------------------------------------------

    def _pool(self):
        return self.cache.pool

    def _cached_page(self, file: BackingFile, file_page: int) -> Optional[CachePage]:
        return self.cache.get_nocost(file, file_page)

    def _shootdown(self, thread: SimThread, vpns: List[int]) -> None:
        # Batched: one shootdown call per batch of pages (Section 4.1).
        for start in range(0, len(vpns), self.shootdown_batch):
            self._shootdowns.shootdown(
                thread.clock, thread.core, vpns[start : start + self.shootdown_batch]
            )

    def _charge_range_update(self, thread: SimThread) -> None:
        # mmap-class operations interact with the hypervisor (Section 3.4
        # and Figure 3): one vmcall, off the common path.
        self.vmx.syscall(thread.clock, "vmcall.mmap")

    def _pages_of_file(self, file_id: int):
        return self.cache.pages_of_file(file_id)

    def _drop_page(self, thread: SimThread, page: CachePage) -> None:
        if page.dirty:
            self.cache.clear_dirty(thread.clock, page)
        self.cache.remove(thread.clock, thread.core, page)

    def _advise_cost(self) -> float:
        # madvise is intercepted in non-root ring 0 (Section 4.4): a plain
        # function call, no domain switch.
        return 50

    # -- fault handling ---------------------------------------------------------

    def _fault(self, thread: SimThread, vma: VMA, vpn: int, is_write: bool) -> int:
        clock = thread.clock
        self.vmx.fault_entry(clock)   # 552-cycle non-root ring 0 exception
        # No sub-spans around the vma/cache lookups: they are cheap, run on
        # every fault, and their cycles stay visible as charge categories
        # on the enclosing "fault" span.
        checked = self.vmas.lookup(clock, vpn)   # radix validity + entry lock
        if checked is None or checked.vma_id != vma.vma_id:
            raise SegmentationFault(vpn << units.PAGE_SHIFT)
        file = vma.file
        file_page = vma.file_page_of(vpn)

        page = self.cache.lookup(clock, file, file_page)
        if page is None:
            self.major_faults += 1
            page = self._read_in(thread, vma, file, file_page)
        else:
            self.minor_faults += 1

        writable = is_write
        pte = self.page_table.install(vpn, page.frame, writable=writable)
        page.mapped_vpns.add(vpn)
        clock.charge("fault.pte_install", constants.AQUILA_PTE_INSTALL_CYCLES)
        clock.charge("fault.misc", constants.AQUILA_FAULT_MISC_CYCLES)
        self.machine.tlb_of(thread)._insert(vpn)

        if is_write:
            # Write fault: mark dirty during the initial fault (Section 3.2).
            pte.dirty = True
            self.cache.mark_dirty(clock, thread.core, page)
        return page.frame

    def _write_protect_fault(self, thread: SimThread, vma: VMA, vpn: int, pte) -> int:
        """Read-only page written: just mark dirty (Section 3.2)."""
        clock = thread.clock
        self.vmx.fault_entry(clock)
        self.vmas.lookup(clock, vpn)
        file_page = vma.file_page_of(vpn)
        page = self.cache.get_nocost(vma.file, file_page)
        if page is None:
            raise SegmentationFault(vpn << units.PAGE_SHIFT, "dirty fault on evicted page")
        self.cache.mark_dirty(clock, thread.core, page)
        pte.writable = True
        pte.dirty = True
        clock.charge("fault.pte_install", constants.AQUILA_PTE_INSTALL_CYCLES // 2)
        return page.frame

    # -- fused fast-forward fault replay ---------------------------------------

    def _fault_fast(self, thread: SimThread, vma: VMA, vpn: int) -> Optional[int]:
        """Fused replay of the clean read-fault protocol (fast-forward).

        Performs exactly the state transitions and cycle charges of
        ``_fault(is_write=False)`` — trap entry, VMA radix check with its
        entry-line bookkeeping, hash lookup, miss read-in, PTE install,
        TLB insert — but as straight-line code, skipping the per-charge
        call machinery.  Anything with nontrivial timing semantics stays a
        real call with the clock synced: freelist allocation, the DAX media
        read (token-bucket admission, fractional waits), hash-table insert
        (striped atomic timeline), and TLB shootdowns inside eviction.

        Returns None — take the unfused path — whenever any modeled
        behavior could differ: scaled CPI (SMT), an open observation span,
        active tracing, EPT translation, a non-DAX I/O path, an armed
        device fault plan, or sequential readahead.  The conformance tier
        proves the replay bit-exact against both reference schedulers.
        """
        clock = thread.clock
        io_path = self.io_path
        if (
            clock.cpi_factor != 1.0
            or clock._obs_span is not None
            or TRACER.enabled
            or self.ept is not None
            or self.vmx.domain is not ExecutionDomain.NONROOT_RING0
            or not isinstance(io_path, DaxIO)
            or io_path.device.faults is not None
            or (vma.advice == MADV_SEQUENTIAL and self.readahead_pages)
        ):
            return None
        now = clock.now
        cycles = clock.breakdown._cycles
        # vmx.fault_entry: 552-cycle non-root ring 0 exception delivery.
        self.vmx.traps += 1
        now += constants.TRAP_AQUILA_CYCLES
        cycles["fault.trap"] += _F_TRAP
        # vmas.lookup: radix validity check behind the per-entry lock line
        # (zero-cost atomic: the line advances but never waits or charges).
        # The flat mirror resolves the same entry the radix walk would.
        vmas = self.vmas
        vmas.lookups += 1
        now += constants.AQUILA_VMA_LOOKUP_CYCLES
        cycles["fault.vma_lookup"] += _F_VMA_LOOKUP
        lines = vmas._entry_locks._lines
        line = lines[hash(vpn) % len(lines)]
        line.operations += 1
        line._free_at = now
        checked = vmas._flat.get(vpn)
        if checked is None or checked.vma_id != vma.vma_id:
            clock.now = now
            raise SegmentationFault(vpn << units.PAGE_SHIFT)
        file = vma.file
        # file_page_of, minus the containment recheck the radix entry
        # just proved.
        file_page = vma.file_start_page + (vpn - vma.start_vpn)
        # cache.lookup: wait-free hash probe.
        cache = self.cache
        cache.table.lookups += 1
        now += constants.AQUILA_CACHE_LOOKUP_CYCLES
        cycles["cache.hash.lookup"] += _F_CACHE_LOOKUP
        page = cache.table._map.get((file.file_id, file_page))
        if page is not None:
            cache.hits += 1
            cache.lru.touch(page.key)
            now += constants.AQUILA_LRU_UPDATE_CYCLES
            cycles["fault.lru"] += _F_LRU_UPDATE
            self.minor_faults += 1
        else:
            cache.misses += 1
            self.major_faults += 1
            # _read_in, fused.  freelist.allocate: one lock-free op charge
            # per attempt; the batched node refill (rare) runs for real.
            freelist = cache.freelist
            core = thread.core
            core_queue = freelist._core_queues[core]
            frame = None
            for attempt in (0, 1):
                now += constants.FREELIST_OP_CYCLES
                cycles["cache.freelist"] += _F_FREELIST_OP
                if not core_queue:
                    clock.now = now
                    freelist._refill_from_nodes(clock, core)
                    now = clock.now
                if core_queue:
                    frame = core_queue.popleft()
                    freelist.pool.mark_allocated(frame)
                    freelist.allocations += 1
                    break
                if attempt:
                    raise OutOfMemoryError("eviction freed no frames")
                clock.now = now
                if not self._evict_batch_ff(thread):
                    self._evict_batch(thread)
                now = clock.now
            # DaxIO.read minus the retry wrapper (a first attempt is free
            # and, with no fault plan armed, always succeeds): media
            # admission runs for real, the copy and membw wait are fused.
            device = io_path.device
            offset = file.device_offset(file_page)
            media = device.media
            media_done = (
                media.admit(now, units.PAGE_SIZE) if media is not None else 0.0
            )
            fpu = io_path.fpu
            fpu.copies += 1
            if fpu.use_simd:
                fpu.state_saves += 1
            copy_cost = self._ff_copy_cost
            now += copy_cost
            cycles["fault.io.dax"] += copy_cost
            if media_done > now:
                cycles["idle.membw"] += media_done - now
                now = media_done
            device.reads += 1
            device.bytes_read += units.PAGE_SIZE
            # store.read + pool.write for one aligned page, minus the
            # chunk loop, join, and recopy (bytes are immutable, so
            # storing the device's page object is the same bytes the
            # copying path would store).
            store = device.store
            if offset & _PAGE_MASK:
                data = store.read(offset, units.PAGE_SIZE)
            else:
                data = store._pages.get(offset >> units.PAGE_SHIFT, ZERO_PAGE)
            cache.pool._data[frame] = data
            # cache.insert, fused: hash CAS install + LRU touch.
            page = CachePage(file, file_page, frame)
            key = page.key
            table = cache.table
            now += constants.HASHTABLE_INSERT_CYCLES
            cycles["cache.hash.insert"] += float(constants.HASHTABLE_INSERT_CYCLES)
            stripes = table._stripes._lines
            line = stripes[hash(key) % len(stripes)]
            line.operations += 1
            free_at = line._free_at
            atomic_cost = constants.LOCK_TRANSFER_CYCLES
            if free_at > now:
                bound = now + atomic_cost * CacheLineTimeline.MAX_QUEUE
                target = free_at if free_at < bound else bound
                waited = target - now
                cycles["idle.atomic"] += waited
                line.total_wait_cycles += waited
                now = target
            line._free_at = now + atomic_cost
            now += atomic_cost
            cycles["atomic.op"] += float(atomic_cost)
            existing = table._map.get(key)
            if existing is not None:
                # Lost the install race (unreachable in a sequential
                # replay, kept for fidelity): use the winner's page and
                # recycle the speculative frame.
                page = existing
            else:
                table._map[key] = page
                table.inserts += 1
                cache._pages[key] = page
                cache.lru.touch(key)
                now += constants.AQUILA_LRU_UPDATE_CYCLES
                cycles["fault.lru"] += float(constants.AQUILA_LRU_UPDATE_CYCLES)
            if page.frame != frame:
                clock.now = now
                freelist.free(clock, core, frame)
                now = clock.now
        # page_table.install + tlb._insert, fused (same objects, same
        # counters, same LRU motion).
        page_table = self.page_table
        page_table._entries[vpn] = PTE(frame=page.frame, accessed=True)
        page_table.installs += 1
        page.mapped_vpns.add(vpn)
        now += constants.AQUILA_PTE_INSTALL_CYCLES
        cycles["fault.pte_install"] += _F_PTE_INSTALL
        now += constants.AQUILA_FAULT_MISC_CYCLES
        cycles["fault.misc"] += _F_FAULT_MISC
        clock.now = now
        tlb = self.machine.tlbs[thread.core]
        entries = tlb._entries
        entries[vpn] = None
        entries.move_to_end(vpn)
        if len(entries) > tlb.capacity:
            entries.popitem(last=False)
        self.ff_faults += 1
        return page.frame

    def _evict_batch_ff(self, thread: SimThread) -> bool:
        """Fused clean-eviction batch: fast-forward's steady-state path.

        Replays ``_evict_batch`` charge-for-charge for the common
        out-of-memory regime — a full batch of *clean* victims — fusing
        the per-victim select / hash-remove / freelist bookkeeping into
        local arithmetic.  The clock still steps through every charge in
        the real order (bulk float adds are only used for breakdown
        buckets that provably hold integer sums), stripe-line waits are
        replayed individually (they can be fractional), and the TLB
        shootdown runs for real.

        Returns False — caller must run the real ``_evict_batch`` — when
        any victim is dirty (writeback has real I/O semantics) or a crash
        point is armed.  The pre-scan is cost- and mutation-free, so
        falling back is always safe.
        """
        cache = self.cache
        if cache.partition is not None:
            # A QoS partition reorders victim selection away from the
            # plain LRU walk this fused batch inlines; take the real
            # ``_evict_batch`` -> ``pick_victims`` path instead.
            return False
        pages = cache._pages
        count = cache.eviction_batch
        victims = []
        for key in cache.lru._order:
            page = pages.get(key)
            if page is not None:
                if page.dirty:
                    return False
                victims.append(page)
                if len(victims) >= count:
                    break
        if not victims or CRASH.active:
            return False

        clock = thread.clock
        self.eviction_batches += 1
        now = clock.now
        cycles = clock.breakdown._cycles
        n = len(victims)
        # pick_victims: one LRU-select charge per victim.  The clock is
        # stepped per charge (bit-exact against fractional bases); the
        # bucket takes one bulk add (integer-valued sum, exact).
        select = constants.LRU_VICTIM_SELECT_CYCLES
        for _ in range(n):
            now += select
        cycles["evict.select"] += float(select * n)
        # PTE teardown for every mapping of every victim (cost-free in the
        # model) and the vpn list for the batched shootdown.
        entries = self.page_table._entries
        removals = 0
        vpns: List[int] = []
        for page in victims:
            for vpn in page.mapped_vpns:
                if entries.pop(vpn, None) is not None:
                    removals += 1
                vpns.append(vpn)
            page.mapped_vpns.clear()
        self.page_table.removals += removals
        clock.now = now
        self._shootdown(thread, vpns)
        now = clock.now
        # cache.remove per victim: hash remove (charge + striped atomic),
        # page-map/LRU drop, freelist free with batched spill.
        table = cache.table
        tmap = table._map
        stripes = table._stripes._lines
        nstripes = len(stripes)
        freelist = cache.freelist
        pool = freelist.pool
        core = thread.core
        core_queue = freelist._core_queues[core]
        threshold = freelist.core_threshold
        hash_remove = constants.HASHTABLE_REMOVE_CYCLES
        atomic_cost = constants.LOCK_TRANSFER_CYCLES
        free_cost = constants.FREELIST_OP_CYCLES
        queue_bound = atomic_cost * CacheLineTimeline.MAX_QUEUE
        removed = 0
        for page in victims:
            key = page.key
            now += hash_remove
            line = stripes[hash(key) % nstripes]
            line.operations += 1
            free_at = line._free_at
            if free_at > now:
                bound = now + queue_bound
                target = free_at if free_at < bound else bound
                waited = target - now
                cycles["idle.atomic"] += waited
                line.total_wait_cycles += waited
                now = target
            line._free_at = now + atomic_cost
            now += atomic_cost
            if tmap.pop(key, None) is not None:
                removed += 1
            pages.pop(key, None)
            pool.mark_free(page.frame)
            now += free_cost
            core_queue.append(page.frame)
            if len(core_queue) > threshold:
                clock.now = now
                freelist._spill_to_node(clock, core)
                now = clock.now
        table.removes += removed
        freelist.frees += n
        cache.evictions += n
        cycles["cache.hash.remove"] += float(hash_remove * n)
        cycles["atomic.op"] += float(atomic_cost * n)
        cycles["cache.freelist"] += float(free_cost * n)
        cache.lru.remove_batch([page.key for page in victims])
        clock.now = now
        self.ff_evictions += 1
        return True

    # -- miss path -------------------------------------------------------------

    def _read_in(
        self, thread: SimThread, vma: VMA, file: BackingFile, file_page: int
    ) -> CachePage:
        clock = thread.clock
        with TRACER.span("fault.alloc", clock):
            frame = self._allocate_with_eviction(thread)
        if self.ept is not None:
            # First touch of a fresh cache granule faults in EPT (1 GB
            # granules make this essentially free; Section 3.5).
            self.ept.translate(frame * units.PAGE_SIZE, clock)
        with TRACER.span("fault.io", clock):
            data = self.io_path.read(
                clock, file.device_offset(file_page), units.PAGE_SIZE, "fault.io"
            )
            self.cache.pool.write(frame, data)
        page = self.cache.insert(clock, file, file_page, frame)
        if page.frame != frame:
            # Lost the install race; recycle the speculative frame.
            self.cache.freelist.free(clock, thread.core, frame)
        if vma.advice == MADV_SEQUENTIAL and self.readahead_pages:
            with TRACER.span("fault.readahead", clock):
                self._readahead(thread, vma, file, file_page)
        return page

    def _readahead(
        self, thread: SimThread, vma: VMA, file: BackingFile, file_page: int
    ) -> None:
        """madvise-driven sequential prefetch (Section 3.2)."""
        clock = thread.clock
        last = min(file.size_pages, file_page + 1 + self.readahead_pages)
        for page_index in range(file_page + 1, last):
            if self.cache.get_nocost(file, page_index) is not None:
                continue
            frame = self._allocate_with_eviction(thread)
            offset = file.device_offset(page_index)
            try:
                file.device.submit_async(clock, offset, units.PAGE_SIZE, is_write=False)
            except TransientDeviceError:
                # Readahead is speculative: degrade by abandoning the
                # window rather than retrying — the demand fault that
                # actually needs the page will retry through its io_path.
                self.cache.freelist.free(clock, thread.core, frame)
                self.readahead_aborted += 1
                break
            self.cache.pool.write(frame, file.device.store.read(offset, units.PAGE_SIZE))
            self.cache.insert(clock, file, page_index, frame)

    # -- eviction ---------------------------------------------------------------

    def _allocate_with_eviction(self, thread: SimThread) -> int:
        frame = self.cache.allocate_frame(thread.clock, thread.core)
        if frame is not None:
            return frame
        self._evict_batch(thread)
        frame = self.cache.allocate_frame(thread.clock, thread.core)
        if frame is None:
            raise OutOfMemoryError("eviction freed no frames")
        return frame

    def _evict_batch(self, thread: SimThread) -> None:
        """Synchronously evict a batch of cold pages (Section 3.2)."""
        clock = thread.clock
        self.eviction_batches += 1
        with TRACER.span("evict", clock):
            victims = self.cache.pick_victims(clock, self.cache.eviction_batch)
            if not victims:
                raise OutOfMemoryError("cache empty but freelist dry")

            dirty = sorted(
                (v for v in victims if v.dirty), key=lambda page: page.device_offset
            )
            if dirty:
                self._write_back_dirty(thread, dirty, sync=True)
            CRASH.point(f"{self.name}.evict")

            vpns: List[int] = []
            for page in victims:
                for vpn in page.mapped_vpns:
                    self.page_table.remove(vpn)
                    vpns.append(vpn)
                page.mapped_vpns.clear()
            self._shootdown(thread, vpns)
            for page in victims:
                self.cache.remove(clock, thread.core, page)

    def _write_back_dirty(
        self, thread: SimThread, pages: List[CachePage], sync: bool
    ) -> int:
        """Write dirty pages via this engine's I/O path, merging runs."""
        if isinstance(self.io_path, DaxIO):
            # DAX writeback is a memcpy per run; merging still helps the
            # per-copy FPU save amortization.
            written = 0
            with TRACER.span("writeback.io", thread.clock):
                for run in self._merge_runs(pages):
                    data = b"".join(self.cache.pool.read(page.frame) for page in run)
                    CRASH.point(f"{self.name}.writeback.run")
                    self.io_path.write(
                        thread.clock, run[0].device_offset, data, "writeback.io"
                    )
                    written += len(run)
        else:
            written = self._write_back_pages(thread, pages, sync=sync)
        for page in pages:
            self.cache.clear_dirty(thread.clock, page)
        return written

    # -- msync -------------------------------------------------------------------

    def msync(self, thread: SimThread, mapping: Mapping) -> int:
        """Flush the mapping's dirty pages, sorted by device offset.

        Intercepted in ring 0: no vmcall, a plain function call
        (Section 4.4).
        """
        with TRACER.span("msync", thread.clock):
            thread.clock.charge("msync.entry", 100)
            # Merging the per-core dirty trees to build the flush set costs
            # tree-walk cycles; charging it before the PTE downgrades also
            # keeps every mutation behind ``sync_preamble_cycles``.
            thread.clock.charge("msync.scan", constants.AQUILA_MSYNC_SCAN_CYCLES)
            file = mapping.vma.file
            first = mapping.vma.file_start_page
            last = first + mapping.vma.num_pages
            dirty = [
                page
                for page in self.cache.all_dirty_pages_sorted()
                if page.file.file_id == file.file_id and first <= page.file_page < last
            ]
            if not dirty:
                self._drain_inflight(thread, file)
                return 0
            # Downgrade PTEs to read-only so future writes re-mark dirty.
            vpns: List[int] = []
            for page in dirty:
                for vpn in page.mapped_vpns:
                    pte = self.page_table.lookup(vpn)
                    if pte is not None and pte.writable:
                        pte.writable = False
                        pte.dirty = False
                        vpns.append(vpn)
            self._shootdown(thread, vpns)
            written = self._write_back_dirty(thread, dirty, sync=True)
            # msync must not return before every queued write of this file
            # (including earlier async writeback) has completed.
            self._drain_inflight(thread, file)
            CRASH.point(f"{self.name}.msync")
            return written

"""Seed-deterministic shard-kill triggers for cluster failover runs.

The cluster coordinator (:mod:`repro.cluster.coordinator`) injects
primary failures the same way the device layer injects faults: from a
spec that is a pure function of a seed, never from wall-clock time or
scheduling accidents.  A :class:`ShardKillSpec` names the victim shard,
the epoch in which it dies, and the op ordinal *within* that epoch after
which it stops serving — the same op-indexed trigger idiom as
:class:`~repro.fault.plan.FaultSpec` triggers and the CRASH controller's
boundary ordinals (DESIGN.md §7): "kill shard 2 at epoch 3, op 17"
names the same instant on every replay, in every backend, in every
executor mode.

Kill semantics (the part that keeps failover deterministic, §13):

* the victim serves its epoch's client ops up to ``op_index``, then
  halts with its engine state frozen exactly there;
* its **uncommitted outbox is discarded** — epoch-boundary commit is the
  replication durability point, so the partial epoch is the (bounded,
  deterministic) data-loss window;
* the coordinator removes the shard from the ring, which by the
  consistent-hash successor rule promotes each key's first replica, and
  re-routes the victim's unserved ops to the promoted owners at the next
  epoch.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim import rand


@dataclass(frozen=True)
class ShardKillSpec:
    """One injected primary failure: kill ``shard_id`` during ``epoch``
    after it has served ``op_index`` of that epoch's client ops."""

    shard_id: int
    epoch: int
    op_index: int

    def __post_init__(self) -> None:
        if self.shard_id < 0:
            raise ValueError("shard_id must be non-negative")
        if self.epoch < 0:
            raise ValueError("epoch must be non-negative")
        if self.op_index < 0:
            raise ValueError("op_index must be non-negative")


def derive_shard_kill(
    seed: int, num_shards: int, num_epochs: int, epoch_ops: int
) -> ShardKillSpec:
    """A seeded kill spec: pure function of ``(seed, grid sizes)``.

    The victim, epoch, and intra-epoch op ordinal are drawn from the
    dedicated ``cluster-shard-kill`` stream (the
    :func:`repro.sim.rand.stream` idiom), so a failover property test can
    sweep seeds and replay any failure bit-identically.  The kill epoch
    avoids epoch 0 when possible so at least one full replication round
    precedes the failure — the regime where promotion must recover
    committed writes from the replica.  The op ordinal is drawn from the
    victim's *expected slice* of the epoch (``epoch_ops / num_shards``),
    so the kill usually lands mid-slice and leaves an unserved tail for
    the coordinator to re-route — a boundary kill (ordinal past the
    slice) is legal but exercises less of the failover path.
    """
    if num_shards < 1 or num_epochs < 1 or epoch_ops < 1:
        raise ValueError("kill derivation needs a non-empty cluster grid")
    rng = rand.stream(seed, "cluster-shard-kill")
    epoch_floor = 1 if num_epochs > 1 else 0
    return ShardKillSpec(
        shard_id=rng.randrange(num_shards),
        epoch=rng.randrange(epoch_floor, num_epochs),
        op_index=rng.randrange(max(1, epoch_ops // num_shards)),
    )

"""The experiment CLI."""

import pytest

from repro.bench.cli import EXPERIMENTS, build_parser, main


class TestParser:
    def test_all_experiments_listed(self):
        parser = build_parser()
        for name in EXPERIMENTS:
            args = parser.parse_args([name])
            assert args.experiment == name

    def test_threads_option(self):
        args = build_parser().parse_args(["fig10a", "--threads", "1", "4"])
        assert args.threads == [1, 4]

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])


class TestExecution:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    def test_fig8a_runs(self, capsys):
        assert main(["fig8a"]) == 0
        out = capsys.readouterr().out
        assert "linux-mmap" in out and "aquila" in out

    def test_fig10_with_small_sweep(self, capsys):
        assert main(["fig10a", "--threads", "1", "2"]) == 0
        out = capsys.readouterr().out
        assert "shared" in out and "private" in out

    def test_fig9_single_workload(self, capsys):
        assert main(["fig9", "--workloads", "C"]) == 0
        out = capsys.readouterr().out
        assert "kmmap" in out.lower() or "thr ratio" in out

"""Heap allocators over mappings and DRAM."""

import pytest

from repro.bench.setups import make_aquila_stack
from repro.common import units
from repro.common.errors import OutOfMemoryError
from repro.graph.mmap_heap import DramHeap, MmapHeap
from repro.sim.executor import SimThread


def _mmap_heap(pages=64, cache=128):
    stack = make_aquila_stack("pmem", cache_pages=cache, capacity_bytes=64 * units.MIB)
    file = stack.allocator.create("heap", pages * units.PAGE_SIZE)
    thread = SimThread(core=0)
    mapping = stack.engine.mmap(thread, file)
    return MmapHeap(mapping), thread, stack


@pytest.fixture(params=["mmap", "dram"])
def heap_and_thread(request):
    if request.param == "mmap":
        heap, thread, _ = _mmap_heap()
        return heap, thread
    return DramHeap(64 * units.PAGE_SIZE), SimThread(core=0)


class TestAllocator:
    def test_bump_allocation(self, heap_and_thread):
        heap, _ = heap_and_thread
        a = heap.alloc(100)
        b = heap.alloc(100)
        assert b >= a + 100

    def test_alignment(self, heap_and_thread):
        heap, _ = heap_and_thread
        heap.alloc(3)
        b = heap.alloc(8, align=8)
        assert b % 8 == 0

    def test_exhaustion(self, heap_and_thread):
        heap, _ = heap_and_thread
        with pytest.raises(OutOfMemoryError):
            heap.alloc(1 << 40)

    def test_allocated_bytes(self, heap_and_thread):
        heap, _ = heap_and_thread
        heap.alloc(64)
        assert heap.allocated_bytes >= 64


class TestHeapArray:
    def test_read_write(self, heap_and_thread):
        heap, thread = heap_and_thread
        array = heap.alloc_array(100)
        array.write(thread, 5, 0xDEADBEEF)
        assert array.read(thread, 5) == 0xDEADBEEF
        assert array.read(thread, 6) == 0

    def test_bounds(self, heap_and_thread):
        heap, thread = heap_and_thread
        array = heap.alloc_array(10)
        with pytest.raises(IndexError):
            array.read(thread, 10)
        with pytest.raises(IndexError):
            array.write(thread, -1, 0)
        with pytest.raises(IndexError):
            array.read_range(thread, 8, 5)

    def test_read_range(self, heap_and_thread):
        heap, thread = heap_and_thread
        array = heap.alloc_array(20)
        for i in range(20):
            array.write(thread, i, i * 11)
        assert array.read_range(thread, 5, 4) == [55, 66, 77, 88]
        assert array.read_range(thread, 0, 0) == []

    def test_fill(self, heap_and_thread):
        heap, thread = heap_and_thread
        array = heap.alloc_array(1000)
        array.fill(thread, 7)
        assert array.read(thread, 0) == 7
        assert array.read(thread, 999) == 7

    def test_max_u64(self, heap_and_thread):
        heap, thread = heap_and_thread
        array = heap.alloc_array(2)
        array.write(thread, 0, (1 << 64) - 1)
        assert array.read(thread, 0) == (1 << 64) - 1

    def test_arrays_do_not_alias(self, heap_and_thread):
        heap, thread = heap_and_thread
        a = heap.alloc_array(16)
        b = heap.alloc_array(16)
        a.fill(thread, 1)
        b.fill(thread, 2)
        assert a.read(thread, 15) == 1
        assert b.read(thread, 0) == 2


class TestMmapHeapCosts:
    def test_accesses_fault_and_charge(self):
        heap, thread, stack = _mmap_heap(pages=64, cache=16)
        array = heap.alloc_array(64 * 512 - 16)
        before = stack.engine.faults
        array.write(thread, 0, 1)
        array.write(thread, 40_000 % array.length, 2)
        assert stack.engine.faults > before

    def test_eviction_preserves_data(self):
        heap, thread, stack = _mmap_heap(pages=64, cache=8)
        array = heap.alloc_array(64 * 512 - 16)
        stride = 512   # one element per page
        for i in range(0, array.length, stride):
            array.write(thread, i, i)
        for i in range(0, array.length, stride):
            assert array.read(thread, i) == i

"""SPDK Blobstore model: a flat namespace of resizable blobs.

Aquila gives applications a file abstraction over SPDK by translating
files to *blobs* — "a flat namespace of blobs, where each blob, identified
by a unique number, can be created/resized/deleted at runtime, and also
supports extended attributes" (paper Section 3.3).  Aquila uses the direct
(unbuffered) Blobstore I/O path, not BlobFS's cached one.

Blobs allocate device space in clusters; the cluster map provides the
blob-offset -> device-offset translation that the Aquila engine performs
on every miss.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.common import units
from repro.common.errors import BlobNotFoundError, OutOfSpaceError, TransientDeviceError
from repro.devices.block import BlockDevice
from repro.devices.io_engines import IOPath, SpdkIO
from repro.fault.plan import FAULT_LATENCY, FAULT_NONE, active_plan
from repro.fault.retry import RetryPolicy, with_retries
from repro.sim.clock import CycleClock

#: SPDK's default cluster size.
CLUSTER_SIZE = 1 * units.MIB


class Blob:
    """One blob: an ordered list of device clusters plus xattrs."""

    def __init__(self, blob_id: int) -> None:
        self.blob_id = blob_id
        self.clusters: List[int] = []   # device cluster indices, in order
        self.xattrs: Dict[str, bytes] = {}

    @property
    def size_bytes(self) -> int:
        """Current blob capacity."""
        return len(self.clusters) * CLUSTER_SIZE


class Blobstore:
    """Cluster-granularity blob allocator over one block device."""

    def __init__(
        self,
        device: BlockDevice,
        io_path: Optional[IOPath] = None,
        retry_policy: Optional[RetryPolicy] = None,
    ) -> None:
        self.device = device
        self.io_path = io_path if io_path is not None else SpdkIO(device)
        self._blobs: Dict[int, Blob] = {}
        self._next_id = 1
        total_clusters = device.store.capacity_bytes // CLUSTER_SIZE
        self._free_clusters: List[int] = list(range(total_clusters - 1, -1, -1))
        # Blobstore metadata (cluster maps, md pages) has its own fault
        # stream, separate from the data-path faults of the device below.
        plan = active_plan()
        self.faults = (
            plan.injector_for(f"blobstore.{device.name}") if plan is not None else None
        )
        self.retry_policy = retry_policy

    def _metadata_fault(self, clock: CycleClock, is_write: bool, nbytes: int) -> None:
        """Consult the fault plan for the translation/metadata step."""
        if self.faults is None:
            return
        decision = self.faults.decide(clock.now, is_write, nbytes)
        if decision.kind == FAULT_NONE:
            return
        if decision.kind == FAULT_LATENCY:
            clock.wait_until(
                clock.now + decision.extra_latency_cycles, "idle.fault.latency"
            )
            return
        verb = "write" if is_write else "read"
        raise TransientDeviceError(
            f"blobstore.{self.device.name}: transient metadata failure on {verb}"
        )

    # -- namespace management ---------------------------------------------

    def create(self, size_bytes: int = 0) -> int:
        """Create a blob of at least ``size_bytes``; returns its id."""
        blob = Blob(self._next_id)
        self._next_id += 1
        self._blobs[blob.blob_id] = blob
        if size_bytes:
            self.resize(blob.blob_id, size_bytes)
        return blob.blob_id

    def get(self, blob_id: int) -> Blob:
        """The blob with ``blob_id`` (raises if missing)."""
        blob = self._blobs.get(blob_id)
        if blob is None:
            raise BlobNotFoundError(f"blob {blob_id} does not exist")
        return blob

    def resize(self, blob_id: int, new_size_bytes: int) -> None:
        """Grow or shrink a blob to hold ``new_size_bytes``."""
        blob = self.get(blob_id)
        needed = (new_size_bytes + CLUSTER_SIZE - 1) // CLUSTER_SIZE
        while len(blob.clusters) < needed:
            if not self._free_clusters:
                raise OutOfSpaceError("blobstore out of clusters")
            blob.clusters.append(self._free_clusters.pop())
        while len(blob.clusters) > needed:
            self._free_clusters.append(blob.clusters.pop())

    def delete(self, blob_id: int) -> None:
        """Delete a blob, returning its clusters to the free pool."""
        blob = self.get(blob_id)
        self._free_clusters.extend(blob.clusters)
        del self._blobs[blob_id]

    def set_xattr(self, blob_id: int, name: str, value: bytes) -> None:
        """Attach an extended attribute to a blob."""
        self.get(blob_id).xattrs[name] = bytes(value)

    def get_xattr(self, blob_id: int, name: str) -> bytes:
        """Read an extended attribute (raises KeyError if absent)."""
        return self.get(blob_id).xattrs[name]

    def blob_ids(self) -> List[int]:
        """All live blob ids, sorted."""
        return sorted(self._blobs)

    @property
    def free_bytes(self) -> int:
        """Unallocated device space."""
        return len(self._free_clusters) * CLUSTER_SIZE

    # -- address translation and I/O --------------------------------------

    def device_offset(self, blob_id: int, offset: int) -> int:
        """Translate a blob-relative offset to a device byte offset."""
        blob = self.get(blob_id)
        cluster_index = offset // CLUSTER_SIZE
        if cluster_index >= len(blob.clusters):
            raise OutOfSpaceError(
                f"offset {offset} beyond blob {blob_id} size {blob.size_bytes}"
            )
        return blob.clusters[cluster_index] * CLUSTER_SIZE + offset % CLUSTER_SIZE

    def read(self, clock: CycleClock, blob_id: int, offset: int, nbytes: int,
             category: str = "io.blob") -> bytes:
        """Read a range of a blob (may span clusters)."""
        chunks = []
        pos = offset
        remaining = nbytes
        while remaining > 0:
            in_cluster = pos % CLUSTER_SIZE
            take = min(remaining, CLUSTER_SIZE - in_cluster)
            dev_offset = self.device_offset(blob_id, pos)

            def attempt(dev_offset=dev_offset, take=take):
                self._metadata_fault(clock, False, take)
                return self.io_path.read(clock, dev_offset, take, category)

            chunks.append(with_retries(clock, attempt, category, self.retry_policy))
            pos += take
            remaining -= take
        return b"".join(chunks)

    def write(self, clock: CycleClock, blob_id: int, offset: int, data: bytes,
              category: str = "io.blob") -> None:
        """Write a range of a blob, growing it if needed."""
        end = offset + len(data)
        if end > self.get(blob_id).size_bytes:
            self.resize(blob_id, end)
        pos = offset
        written = 0
        while written < len(data):
            in_cluster = pos % CLUSTER_SIZE
            take = min(len(data) - written, CLUSTER_SIZE - in_cluster)
            dev_offset = self.device_offset(blob_id, pos)
            chunk = data[written : written + take]

            def attempt(dev_offset=dev_offset, chunk=chunk):
                self._metadata_fault(clock, True, len(chunk))
                self.io_path.write(clock, dev_offset, chunk, category)

            with_retries(clock, attempt, category, self.retry_policy)
            pos += take
            written += take


class FileBlobNamespace:
    """File-name -> blob translation (Aquila's open/mmap interception).

    "Aquila supports the translation from files to blobs transparently.
    For this purpose, we intercept open and mmap calls in non-root ring 0"
    (paper Section 3.3).
    """

    def __init__(self, blobstore: Blobstore) -> None:
        self.blobstore = blobstore
        self._by_name: Dict[str, int] = {}

    def open(self, path: str, create: bool = True, size_bytes: int = 0) -> int:
        """Resolve ``path`` to a blob id, creating the blob if allowed."""
        blob_id = self._by_name.get(path)
        if blob_id is None:
            if not create:
                raise BlobNotFoundError(f"no blob for file {path!r}")
            blob_id = self.blobstore.create(size_bytes)
            self.blobstore.set_xattr(blob_id, "name", path.encode())
            self._by_name[path] = blob_id
        return blob_id

    def unlink(self, path: str) -> None:
        """Remove the file name and delete its blob."""
        blob_id = self._by_name.pop(path, None)
        if blob_id is None:
            raise BlobNotFoundError(f"no blob for file {path!r}")
        self.blobstore.delete(blob_id)

    def paths(self) -> List[str]:
        """All known file names, sorted."""
        return sorted(self._by_name)

"""Structured, seed-stable telemetry snapshots for cross-process export.

A **cell telemetry snapshot** is the serializable summary a sweep worker
ships back through the manifest channel after executing one figure cell:
every metric the cell's registry collected (counters, gauges, pull
probes, histogram bucket dumps plus quantile summaries), the per-stage
:class:`~repro.obs.attribution.CycleAttribution` of its span stream, the
span/drop counts, fault-retry totals, lock contention, and the cell's
wall time.

The determinism contract mirrors the sweep's state-digest contract
(DESIGN.md §10): everything in the snapshot except the explicitly
nondeterministic keys (:data:`NONDETERMINISTIC_KEYS` — wall time and
environment facts) is a pure function of the cell's params, so two runs
of the same cell — in any process, at any worker count — produce
byte-identical :func:`telemetry_bytes` and equal
:func:`telemetry_digest` values.  Telemetry is *observational*: nothing
here feeds back into simulation state, so collecting it changes no
state digest.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.obs.attribution import CycleAttribution
from repro.obs.metrics import METRICS, MetricsRegistry
from repro.obs.trace import TRACER, Tracer

#: Telemetry schema version (bump on incompatible snapshot changes).
TELEMETRY_SCHEMA = 1

#: Top-level snapshot keys excluded from the deterministic view: wall
#: time is honest but machine-dependent, and ``env`` is reserved for
#: environment facts (hostnames, pids) a caller may attach.
NONDETERMINISTIC_KEYS = ("wall_seconds", "env")

#: Ordered (span prefix -> stage) folding rules covering every span the
#: stack emits; the first match wins, unmatched spans land in "other".
#: These are the stages the bench-trajectory tracker diffs when a kernel
#: speedup regresses (the stage whose cycle share moved is the suspect).
DEFAULT_STAGE_RULES: Tuple[Tuple[str, str], ...] = (
    ("op", "app"),
    ("fault.io", "device_io"),
    ("io.device", "device_io"),
    ("fault.readahead", "device_io"),
    ("io.syscall", "syscall"),
    ("msync", "msync"),
    ("writeback", "writeback"),
    ("reclaim", "cache_mgmt"),
    ("evict", "cache_mgmt"),
    ("ucache", "cache_mgmt"),
    ("fault.retry", "retry"),
    ("fault", "fault_path"),
    ("tlb.shootdown", "tlb"),
    ("sweep.cell", "orchestrator"),
)

#: How many top spans (by exclusive cycles) a snapshot retains.
TOP_SPAN_LIMIT = 12


def _as_number(value: Any) -> float:
    return float(value) if isinstance(value, (int, float)) else 0.0


def collect_cell_telemetry(
    tracer: Optional[Tracer] = None,
    registry: Optional[MetricsRegistry] = None,
    stage_rules: Sequence[Tuple[str, str]] = DEFAULT_STAGE_RULES,
    wall_seconds: Optional[float] = None,
) -> Dict[str, Any]:
    """One cell's telemetry snapshot from its tracer + registry state.

    Call at the end of a cell, inside the same
    :meth:`~repro.obs.trace.Tracer.isolated` /
    :meth:`~repro.obs.metrics.MetricsRegistry.isolated` scope the cell
    ran in, so the snapshot sees exactly the cell's own spans and
    metrics.  Every field except ``wall_seconds`` is deterministic given
    the cell's params.
    """
    tracer = tracer if tracer is not None else TRACER
    registry = registry if registry is not None else METRICS
    attribution = CycleAttribution.from_tracer(tracer)
    stages = attribution.per_stage(list(stage_rules))
    snapshot = registry.snapshot()
    top_spans = [
        {"name": name, "self_cycles": round(cycles, 2), "count": count}
        for name, cycles, count in sorted(
            attribution.items(), key=lambda row: (-row[1], row[0])
        )[:TOP_SPAN_LIMIT]
    ]
    telemetry: Dict[str, Any] = {
        "schema": TELEMETRY_SCHEMA,
        "metrics": snapshot,
        "histogram_summaries": {
            name: histogram.summary()
            for name, histogram in sorted(registry.histograms().items())
        },
        "attribution": {
            "stages": {stage: round(cycles, 2) for stage, cycles in stages.items()},
            "total_cycles": round(attribution.total_cycles(), 2),
            "top_spans": top_spans,
        },
        "spans": {
            "finished": tracer.total_finished,
            "dropped": tracer.dropped,
        },
        "faults": {
            "retries": _as_number(snapshot.get("fault.retries", 0)),
            "giveups": _as_number(snapshot.get("fault.giveups", 0)),
        },
        "locks": {
            "acquisitions": _as_number(snapshot.get("locks.acquisitions", 0)),
            "contended": _as_number(snapshot.get("locks.contended", 0)),
            "wait_cycles": _as_number(snapshot.get("locks.wait_cycles", 0)),
        },
    }
    if wall_seconds is not None:
        telemetry["wall_seconds"] = round(wall_seconds, 6)
    return telemetry


def deterministic_view(telemetry: Dict[str, Any]) -> Dict[str, Any]:
    """The snapshot minus its nondeterministic top-level keys."""
    return {
        key: value
        for key, value in telemetry.items()
        if key not in NONDETERMINISTIC_KEYS
    }


def telemetry_bytes(telemetry: Dict[str, Any]) -> bytes:
    """Canonical bytes of the deterministic view (byte-identical per cell).

    Uses the same canonical serialization as the sweep's state digests
    (:func:`repro.sim.conformance.canonical_bytes`), so tuple/list and
    key-order differences cannot fake a telemetry change.
    """
    from repro.sim.conformance import canonical_bytes

    return canonical_bytes(deterministic_view(telemetry))


def telemetry_digest(telemetry: Dict[str, Any]) -> str:
    """Canonical hash of the deterministic view of a snapshot."""
    from repro.sim.conformance import hash_digest

    return hash_digest(deterministic_view(telemetry))


def stage_shares(telemetry: Dict[str, Any]) -> Dict[str, float]:
    """Per-stage cycle shares (0..1, summing to ~1) of one snapshot."""
    stages = telemetry.get("attribution", {}).get("stages", {})
    total = sum(stages.values())
    if total <= 0:
        return {stage: 0.0 for stage in stages}
    return {stage: round(cycles / total, 6) for stage, cycles in stages.items()}


def merge_stage_cycles(snapshots: Iterable[Dict[str, Any]]) -> Dict[str, float]:
    """Sum per-stage cycles across many snapshots (sweep-level rollup)."""
    merged: Dict[str, float] = {}
    for telemetry in snapshots:
        for stage, cycles in telemetry.get("attribution", {}).get("stages", {}).items():
            merged[stage] = merged.get(stage, 0.0) + cycles
    return {stage: round(cycles, 2) for stage, cycles in sorted(merged.items())}


def attribute_shift(
    previous_shares: Dict[str, float], current_shares: Dict[str, float]
) -> Tuple[str, float]:
    """The stage whose cycle share moved the most between two snapshots.

    Returns ``(stage, delta)`` with ``delta = current - previous`` in
    share points; the bench-trajectory tracker pins a speedup regression
    on this stage.  Ties break by stage name so the answer is stable.
    """
    stages = sorted(set(previous_shares) | set(current_shares))
    if not stages:
        return ("other", 0.0)
    deltas: List[Tuple[str, float]] = [
        (stage, current_shares.get(stage, 0.0) - previous_shares.get(stage, 0.0))
        for stage in stages
    ]
    stage, delta = max(deltas, key=lambda item: (abs(item[1]), item[0]))
    return (stage, round(delta, 6))

"""Benchmark harness: experiment stacks, per-figure runners, reporting,
and the sweep orchestrator.

Entry points:

* ``python -m repro.bench <figure>`` — run one figure's cells inline;
* ``python -m repro.bench sweep`` — run every figure cell through the
  multiprocess, resumable orchestrator (:mod:`repro.bench.sweep`);
* ``python -m repro.bench report`` — regenerate EXPERIMENTS.md from a
  sweep manifest (:mod:`repro.bench.report`,
  :mod:`repro.bench.paper_claims`).
"""

from repro.bench.report import (
    Table,
    check_experiments_md,
    generate_experiments_md,
    print_claims,
    ratio_line,
    write_experiments_md,
)
from repro.bench.sweep import (
    DEFAULT_MANIFEST,
    SweepResult,
    enumerate_cells,
    index_manifest,
    load_manifest,
    run_sweep,
    sweep_digest,
)
from repro.bench.setups import (
    make_aquila_stack,
    make_device,
    make_kmmap_stack,
    make_kreon,
    make_linux_stack,
    make_rocksdb,
    scaled_pages,
)

__all__ = [
    "Table",
    "print_claims",
    "ratio_line",
    "check_experiments_md",
    "generate_experiments_md",
    "write_experiments_md",
    "DEFAULT_MANIFEST",
    "SweepResult",
    "enumerate_cells",
    "index_manifest",
    "load_manifest",
    "run_sweep",
    "sweep_digest",
    "make_aquila_stack",
    "make_device",
    "make_kmmap_stack",
    "make_kreon",
    "make_linux_stack",
    "make_rocksdb",
    "scaled_pages",
]

"""Trace format parsing and replay."""

import pytest

from repro.bench.setups import make_rocksdb
from repro.sim.executor import SimThread
from repro.workloads.trace import (
    TraceOp,
    TraceReplayer,
    dump_trace,
    parse_trace,
    synthesize_trace,
)


class TestParsing:
    def test_all_ops(self):
        ops = parse_trace(
            """
            # a comment
            PUT user1 128
            GET user1
            SCAN user0 10
            DELETE user1
            """
        )
        assert [op.op for op in ops] == ["PUT", "GET", "SCAN", "DELETE"]
        assert ops[0].value_bytes == 128
        assert ops[2].scan_count == 10

    def test_case_insensitive_op(self):
        assert parse_trace("get k\n")[0].op == "GET"

    def test_roundtrip(self):
        ops = parse_trace("PUT a 10\nGET a\nSCAN a 5\nDELETE a\n")
        assert parse_trace(dump_trace(ops)) == ops

    def test_errors_carry_line_numbers(self):
        with pytest.raises(ValueError, match="line 2"):
            parse_trace("GET ok\nFROB key\n")
        with pytest.raises(ValueError):
            parse_trace("GET a b\n")
        with pytest.raises(ValueError):
            parse_trace("PUT a\n")
        with pytest.raises(ValueError):
            parse_trace("SCAN a\n")


class TestReplay:
    def _db(self):
        db, _ = make_rocksdb("direct", cache_pages=128)
        return db, SimThread(core=0)

    def test_replay_puts_then_gets(self):
        db, thread = self._db()
        ops = parse_trace("PUT k1 32\nPUT k2 32\nGET k1\nGET k3\nDELETE k1\nGET k1\n")
        stats = TraceReplayer(db, ops).replay(thread)
        assert stats.puts == 2
        assert stats.gets == 3
        assert stats.deletes == 1
        assert stats.not_found == 2   # k3 never existed; k1 deleted

    def test_replayed_values_deterministic(self):
        db, thread = self._db()
        TraceReplayer(db, parse_trace("PUT key 64\n")).replay(thread)
        first = db.get(thread, b"key")
        db2, thread2 = self._db()
        TraceReplayer(db2, parse_trace("PUT key 64\n")).replay(thread2)
        assert db2.get(thread2, b"key") == first
        assert len(first) == 64

    def test_scan_replay(self):
        db, thread = self._db()
        trace = "\n".join(f"PUT k{i:02d} 16" for i in range(10)) + "\nSCAN k03 4\n"
        stats = TraceReplayer(db, parse_trace(trace)).replay(thread)
        assert stats.scans == 1

    def test_iter_replay_with_executor(self):
        from repro.sim.executor import Executor

        db, thread = self._db()
        ops = synthesize_trace(100, keyspace=20, seed=3)
        replayer = TraceReplayer(db, ops)
        executor = Executor()
        executor.add(thread, replayer.iter_replay(thread))
        result = executor.run()
        assert result.total_ops == 100
        assert replayer.stats.operations == 100


class TestSynthesize:
    def test_mix(self):
        ops = synthesize_trace(1000, keyspace=100, read_fraction=0.8, seed=1)
        reads = sum(1 for op in ops if op.op == "GET")
        assert 700 < reads < 900

    def test_deterministic(self):
        assert synthesize_trace(50, 10, seed=2) == synthesize_trace(50, 10, seed=2)

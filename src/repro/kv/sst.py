"""Static Sorted Tables: RocksDB's on-disk file format (paper Section 5).

"[RocksDB] is based on LSM-trees, with each level organized in fixed-size
files (64MB by default), named Static-Sorted-Tables (SSTs)."

Layout (simplified BlockBasedTable)::

    [data block 0][data block 1]...[filter block][index block][footer]

* data blocks: ~4 KiB of length-prefixed sorted entries;
* filter block: a serialized bloom filter over all keys;
* index block: (last_key, offset, length) per data block;
* footer: offsets/lengths of the filter and index blocks.

The *read path* charges real I/O only for the data block: index and
filter blocks are pinned in memory at table-open time (RocksDB's
``cache_index_and_filter_blocks=false`` default), which is also what the
paper's cycle breakdown assumes — per-get I/O is a single 4 KB block read.
"""

from __future__ import annotations

import struct
from bisect import bisect_left
from typing import Iterator, List, Optional, Tuple

from repro.common import units
from repro.kv.bloom import BloomFilter
from repro.kv.env import StorageEnv
from repro.kv.memtable import TOMBSTONE
from repro.mmio.files import BackingFile
from repro.sim.executor import SimThread

DATA_BLOCK_SIZE = units.PAGE_SIZE
_FOOTER = struct.Struct("<QQQQ")   # filter_off, filter_len, index_off, index_len
_ENTRY = struct.Struct("<HI")      # klen, vlen


def _encode_entry(key: bytes, value: bytes) -> bytes:
    return _ENTRY.pack(len(key), len(value)) + key + value


def _decode_entries(block: bytes) -> Iterator[Tuple[bytes, bytes]]:
    pos = 0
    while pos + _ENTRY.size <= len(block):
        klen, vlen = _ENTRY.unpack_from(block, pos)
        if klen == 0 and vlen == 0:
            return
        pos += _ENTRY.size
        key = block[pos : pos + klen]
        pos += klen
        value = block[pos : pos + vlen]
        pos += vlen
        yield (key, value)


class SSTBuilder:
    """Serializes sorted entries into SST bytes."""

    def __init__(self, block_size: int = DATA_BLOCK_SIZE) -> None:
        self.block_size = block_size
        self._blocks: List[bytes] = []
        self._current = bytearray()
        self._index: List[Tuple[bytes, int, int]] = []   # (last_key, off, len)
        self._keys: List[bytes] = []
        self._last_key: Optional[bytes] = None
        self._first_key: Optional[bytes] = None
        self.entries = 0

    def add(self, key: bytes, value: bytes) -> None:
        """Append one entry; keys must arrive in strictly increasing order."""
        if self._last_key is not None and key <= self._last_key:
            raise ValueError("SST keys must be strictly increasing")
        if self._first_key is None:
            self._first_key = key
        encoded = _encode_entry(key, value)
        if len(self._current) + len(encoded) > self.block_size and self._current:
            self._finish_block()
        self._current.extend(encoded)
        self._last_key = key
        self._keys.append(key)
        self.entries += 1

    def _finish_block(self) -> None:
        # Pad each data block to the block size so blocks are page-aligned
        # on the device (direct I/O requirement).
        block = bytes(self._current).ljust(self.block_size, b"\x00")
        offset = len(self._blocks) * self.block_size
        self._blocks.append(block)
        self._index.append((self._last_key, offset, self.block_size))
        self._current = bytearray()

    def finish(self) -> bytes:
        """Produce the complete SST file image."""
        if self._current:
            self._finish_block()
        data = b"".join(self._blocks)
        bloom = BloomFilter(max(1, len(self._keys)))
        bloom.add_all(self._keys)
        filter_block = bloom.to_bytes()
        index_block = self._encode_index()
        footer = _FOOTER.pack(
            len(data), len(filter_block), len(data) + len(filter_block), len(index_block)
        )
        return data + filter_block + index_block + footer

    def _encode_index(self) -> bytes:
        parts = [struct.pack("<I", len(self._index))]
        for last_key, offset, length in self._index:
            parts.append(struct.pack("<HQI", len(last_key), offset, length))
            parts.append(last_key)
        return b"".join(parts)

    @property
    def first_key(self) -> Optional[bytes]:
        """Smallest key added so far."""
        return self._first_key

    @property
    def last_key(self) -> Optional[bytes]:
        """Largest key added so far."""
        return self._last_key

    @property
    def size_bytes(self) -> int:
        """Approximate current file size (flush-rotation trigger)."""
        return (len(self._blocks) + 1) * self.block_size


def _decode_index(block: bytes) -> List[Tuple[bytes, int, int]]:
    (count,) = struct.unpack_from("<I", block, 0)
    pos = 4
    index = []
    for _ in range(count):
        klen, offset, length = struct.unpack_from("<HQI", block, pos)
        pos += struct.calcsize("<HQI")
        key = block[pos : pos + klen]
        pos += klen
        index.append((key, offset, length))
    return index


class SSTable:
    """An opened SST: pinned index + filter, on-demand data blocks."""

    def __init__(
        self,
        env: StorageEnv,
        file: BackingFile,
        thread: SimThread,
        first_key: bytes,
        last_key: bytes,
    ) -> None:
        self.env = env
        self.file = file
        self.first_key = first_key
        self.last_key = last_key
        footer_off = file.size_bytes - _FOOTER.size
        footer = env.read(thread, file, footer_off, _FOOTER.size)
        filter_off, filter_len, index_off, index_len = _FOOTER.unpack(footer)
        self._bloom = BloomFilter.from_bytes(
            env.read(thread, file, filter_off, filter_len)
        )
        self._index = _decode_index(env.read(thread, file, index_off, index_len))
        self._index_keys = [entry[0] for entry in self._index]
        self.block_reads = 0
        self.bloom_negatives = 0

    @property
    def entries_overlap(self) -> Tuple[bytes, bytes]:
        """Key range [first, last] this table covers."""
        return (self.first_key, self.last_key)

    def overlaps(self, first: bytes, last: bytes) -> bool:
        """Whether this table's range intersects [first, last]."""
        return not (self.last_key < first or last < self.first_key)

    def locate(self, key: bytes) -> Optional[Tuple[int, int]]:
        """CPU-only lookup step: bloom + index search, no I/O.

        Returns the (offset, length) of the data block that may hold
        ``key``, or None when the bloom filter or index rules it out.
        Lets MultiGet batch the block reads of many keys (RocksDB's
        ``MultiGet`` optimization).
        """
        if not self._bloom.may_contain(key):
            self.bloom_negatives += 1
            return None
        slot = bisect_left(self._index_keys, key)
        if slot >= len(self._index):
            return None
        _, offset, length = self._index[slot]
        return (offset, length)

    @staticmethod
    def find_in_block(block: bytes, key: bytes) -> Optional[bytes]:
        """Search one decoded data block for ``key``."""
        for entry_key, value in _decode_entries(block):
            if entry_key == key:
                return value
            if entry_key > key:
                return None
        return None

    def get(self, thread: SimThread, key: bytes) -> Optional[bytes]:
        """Point lookup: bloom check, index search, one block read."""
        located = self.locate(key)
        if located is None:
            return None
        offset, length = located
        block = self.env.read(thread, self.file, offset, length)
        self.block_reads += 1
        return self.find_in_block(block, key)

    def scan_from(self, thread: SimThread, start: bytes, count: int) -> List[Tuple[bytes, bytes]]:
        """Up to ``count`` entries with key >= ``start``, in order."""
        slot = bisect_left(self._index_keys, start)
        out: List[Tuple[bytes, bytes]] = []
        while slot < len(self._index) and len(out) < count:
            _, offset, length = self._index[slot]
            block = self.env.read(thread, self.file, offset, length)
            self.block_reads += 1
            for entry_key, value in _decode_entries(block):
                if entry_key >= start and len(out) < count:
                    out.append((entry_key, value))
            slot += 1
        return out

    def iterate_all(self, thread: SimThread) -> Iterator[Tuple[bytes, bytes]]:
        """Full sequential scan (compaction input)."""
        for _, offset, length in self._index:
            block = self.env.read(thread, self.file, offset, length)
            self.block_reads += 1
            yield from _decode_entries(block)


def build_sst(
    env: StorageEnv,
    thread: SimThread,
    name: str,
    entries: Iterator[Tuple[bytes, bytes]],
    drop_tombstones: bool = False,
) -> Optional[SSTable]:
    """Write sorted ``entries`` into a new SST; None when nothing to write."""
    builder = SSTBuilder()
    for key, value in entries:
        if drop_tombstones and value == TOMBSTONE:
            continue
        builder.add(key, value)
    if builder.entries == 0:
        return None
    data = builder.finish()
    file = env.write_file(thread, name, data)
    return SSTable(env, file, thread, builder.first_key, builder.last_key)

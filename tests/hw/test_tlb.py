"""Per-core TLB behaviour."""

import pytest

from repro.common import constants
from repro.hw.tlb import TLB
from repro.sim.clock import CycleClock


class TestTLB:
    def test_miss_then_hit(self):
        tlb = TLB(capacity=4)
        clock = CycleClock()
        assert not tlb.access(100, clock)
        assert tlb.access(100, clock)
        assert tlb.hits == 1 and tlb.misses == 1

    def test_miss_charges_walk(self):
        tlb = TLB()
        clock = CycleClock()
        tlb.access(1, clock)
        assert clock.now == constants.TLB_MISS_WALK_CYCLES
        tlb.access(1, clock)
        assert clock.now == constants.TLB_MISS_WALK_CYCLES   # hit is free

    def test_lru_eviction(self):
        tlb = TLB(capacity=2)
        clock = CycleClock()
        tlb.access(1, clock)
        tlb.access(2, clock)
        tlb.access(1, clock)          # refresh 1 -> 2 is now LRU
        tlb.access(3, clock)          # evicts 2
        assert tlb.contains(1)
        assert not tlb.contains(2)
        assert tlb.contains(3)

    def test_invalidate(self):
        tlb = TLB()
        clock = CycleClock()
        tlb.access(5, clock)
        tlb.invalidate(5)
        assert not tlb.contains(5)
        assert tlb.invalidations == 1
        tlb.invalidate(5)   # absent: no count
        assert tlb.invalidations == 1

    def test_invalidate_many(self):
        tlb = TLB()
        clock = CycleClock()
        for vpn in range(10):
            tlb.access(vpn, clock)
        tlb.invalidate_many(range(0, 10, 2))
        assert tlb.resident_vpns() == {1, 3, 5, 7, 9}

    def test_flush(self):
        tlb = TLB()
        clock = CycleClock()
        tlb.access(1, clock)
        tlb.flush()
        assert not tlb.contains(1)
        assert tlb.flushes == 1

    def test_miss_ratio(self):
        tlb = TLB()
        clock = CycleClock()
        assert tlb.miss_ratio == 0.0
        tlb.access(1, clock)
        tlb.access(1, clock)
        assert tlb.miss_ratio == pytest.approx(0.5)

    def test_capacity_positive(self):
        with pytest.raises(ValueError):
            TLB(capacity=0)

    def test_never_exceeds_capacity(self):
        tlb = TLB(capacity=8)
        clock = CycleClock()
        for vpn in range(100):
            tlb.access(vpn, clock)
        assert len(tlb.resident_vpns()) == 8

"""Bloom filter: no false negatives, bounded false positives."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kv.bloom import BloomFilter


class TestBloom:
    def test_no_false_negatives(self):
        bloom = BloomFilter(1000)
        keys = [f"key-{i}".encode() for i in range(1000)]
        bloom.add_all(keys)
        assert all(bloom.may_contain(k) for k in keys)

    def test_false_positive_rate(self):
        """10 bits/key, 7 probes: ~1% false positives (RocksDB default)."""
        bloom = BloomFilter(2000, bits_per_key=10)
        bloom.add_all(f"present-{i}".encode() for i in range(2000))
        false_positives = sum(
            1 for i in range(10_000) if bloom.may_contain(f"absent-{i}".encode())
        )
        assert false_positives / 10_000 < 0.03

    def test_empty_filter_rejects(self):
        bloom = BloomFilter(100)
        assert not bloom.may_contain(b"anything")

    def test_serialization_roundtrip(self):
        bloom = BloomFilter(64)
        keys = [f"k{i}".encode() for i in range(64)]
        bloom.add_all(keys)
        restored = BloomFilter.from_bytes(bloom.to_bytes())
        assert restored.num_bits == bloom.num_bits
        assert restored.num_probes == bloom.num_probes
        assert all(restored.may_contain(k) for k in keys)

    def test_minimum_size(self):
        bloom = BloomFilter(0)
        assert bloom.num_bits >= 64
        bloom.add(b"x")
        assert bloom.may_contain(b"x")

    @settings(max_examples=50)
    @given(st.sets(st.binary(min_size=1, max_size=16), min_size=1, max_size=50))
    def test_membership_property(self, keys):
        bloom = BloomFilter(len(keys))
        bloom.add_all(keys)
        # Never a false negative, under any key set.
        assert all(bloom.may_contain(k) for k in keys)

    @settings(max_examples=30)
    @given(st.sets(st.binary(min_size=1, max_size=16), min_size=1, max_size=30))
    def test_serialized_equals_original(self, keys):
        bloom = BloomFilter(len(keys))
        bloom.add_all(keys)
        restored = BloomFilter.from_bytes(bloom.to_bytes())
        probes = [b"probe-%d" % i for i in range(50)]
        for probe in probes:
            assert bloom.may_contain(probe) == restored.may_contain(probe)

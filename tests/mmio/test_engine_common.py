"""Behaviour every mmio engine must share: the mmap-compatible contract.

Running the same assertions over Linux mmap, Aquila, and kmmap is the
executable form of the paper's compatibility claim — applications cannot
tell the engines apart except by performance.
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.common import units
from repro.common.errors import ProtectionFault, SegmentationFault
from repro.mmio.vma import MADV_RANDOM, PROT_READ
from repro.sim.executor import SimThread


def _setup(make_stack, file_pages=128, cache_pages=64):
    stack = make_stack(cache_pages=cache_pages)
    file = stack.allocator.create("data", file_pages * units.PAGE_SIZE)
    thread = SimThread(core=0)
    mapping = stack.engine.mmap(thread, file)
    mapping.madvise(thread, MADV_RANDOM)
    return stack, file, thread, mapping


class TestBasicIO:
    def test_zero_fill_initial(self, make_stack):
        _, _, thread, mapping = _setup(make_stack)
        assert mapping.load(thread, 0, 16) == bytes(16)

    def test_store_load_roundtrip(self, make_stack):
        _, _, thread, mapping = _setup(make_stack)
        mapping.store(thread, 100, b"hello, engine")
        assert mapping.load(thread, 100, 13) == b"hello, engine"

    def test_page_spanning_access(self, make_stack):
        _, _, thread, mapping = _setup(make_stack)
        data = bytes(range(256)) * 40   # 10240 bytes, 3 pages
        mapping.store(thread, 4090, data)
        assert mapping.load(thread, 4090, len(data)) == data

    def test_out_of_bounds_rejected(self, make_stack):
        _, _, thread, mapping = _setup(make_stack, file_pages=4)
        with pytest.raises(SegmentationFault):
            mapping.load(thread, 4 * units.PAGE_SIZE, 1)
        with pytest.raises(SegmentationFault):
            mapping.store(thread, 4 * units.PAGE_SIZE - 1, b"ab")

    def test_read_only_mapping_rejects_writes(self, make_stack):
        stack = make_stack()
        file = stack.allocator.create("ro", 4 * units.PAGE_SIZE)
        thread = SimThread(core=0)
        mapping = stack.engine.mmap(thread, file, prot=PROT_READ)
        mapping.load(thread, 0, 8)
        with pytest.raises(ProtectionFault):
            mapping.store(thread, 0, b"nope")


class TestFaultAccounting:
    def test_first_access_faults_second_hits(self, make_stack):
        stack, _, thread, mapping = _setup(make_stack)
        mapping.load(thread, 0, 8)
        faults = stack.engine.faults
        mapping.load(thread, 8, 8)   # same page: hardware hit
        assert stack.engine.faults == faults

    def test_write_after_read_takes_protection_fault(self, make_stack):
        """The dirty-tracking protocol of Section 3.2."""
        stack, _, thread, mapping = _setup(make_stack)
        mapping.load(thread, 0, 8)
        wp_before = stack.engine.wp_faults
        mapping.store(thread, 0, b"x")
        assert stack.engine.wp_faults == wp_before + 1
        # Second write: no further fault.
        mapping.store(thread, 1, b"y")
        assert stack.engine.wp_faults == wp_before + 1

    def test_write_fault_marks_dirty_immediately(self, make_stack):
        """A write fault marks dirty during the initial fault."""
        stack, _, thread, mapping = _setup(make_stack)
        wp_before = stack.engine.wp_faults
        mapping.store(thread, 0, b"direct write")
        assert stack.engine.wp_faults == wp_before
        mapping.store(thread, 4, b"again")   # still no wp fault
        assert stack.engine.wp_faults == wp_before


class TestMsync:
    def test_msync_persists_to_device(self, make_stack):
        stack, file, thread, mapping = _setup(make_stack)
        mapping.store(thread, 5000, b"durable")
        written = mapping.msync(thread)
        assert written >= 1
        device_data = stack.device.store.read(file.device_offset(1) + 5000 % 4096, 7)
        assert device_data == b"durable"

    def test_msync_idempotent(self, make_stack):
        _, _, thread, mapping = _setup(make_stack)
        mapping.store(thread, 0, b"x")
        assert mapping.msync(thread) >= 1
        assert mapping.msync(thread) == 0   # nothing dirty anymore

    def test_write_after_msync_tracked_again(self, make_stack):
        stack, file, thread, mapping = _setup(make_stack)
        mapping.store(thread, 0, b"first")
        mapping.msync(thread)
        mapping.store(thread, 0, b"SECOND")
        mapping.msync(thread)
        assert stack.device.store.read(file.device_offset(0), 6) == b"SECOND"


class TestMunmap:
    def test_munmap_flushes_and_invalidates(self, make_stack):
        stack, file, thread, mapping = _setup(make_stack)
        mapping.store(thread, 0, b"bye")
        mapping.munmap(thread)
        assert not mapping.active
        assert stack.device.store.read(file.device_offset(0), 3) == b"bye"
        with pytest.raises(SegmentationFault):
            mapping.load(thread, 0, 1)

    def test_munmap_twice_is_noop(self, make_stack):
        _, _, thread, mapping = _setup(make_stack)
        mapping.munmap(thread)
        mapping.munmap(thread)

    def test_remap_sees_persisted_data(self, make_stack):
        stack, file, thread, mapping = _setup(make_stack)
        mapping.store(thread, 123, b"persist across maps")
        mapping.munmap(thread)
        mapping2 = stack.engine.mmap(thread, file)
        assert mapping2.load(thread, 123, 19) == b"persist across maps"


class TestEviction:
    def test_capacity_never_exceeded(self, make_stack):
        stack, _, thread, mapping = _setup(make_stack, file_pages=256, cache_pages=32)
        for page in range(256):
            mapping.load(thread, page * units.PAGE_SIZE, 8)
        assert stack.engine.cache.resident_pages() <= 32

    def test_dirty_data_survives_eviction(self, make_stack):
        stack, _, thread, mapping = _setup(make_stack, file_pages=256, cache_pages=32)
        mapping.store(thread, 0, b"must survive")
        # Thrash the cache to force page 0 out.
        for page in range(1, 256):
            mapping.load(thread, page * units.PAGE_SIZE, 8)
        assert mapping.load(thread, 0, 12) == b"must survive"

    def test_invalidate_file_drops_cached_pages(self, make_stack):
        stack, file, thread, mapping = _setup(make_stack)
        mapping.load(thread, 0, 8)
        mapping.load(thread, units.PAGE_SIZE, 8)
        dropped = stack.engine.invalidate_file(thread, file)
        assert dropped >= 2
        assert stack.engine.cache.resident_pages() == 0


class TestRandomizedIntegrity:
    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(seed=st.integers(0, 2 ** 16))
    def test_mixed_workload_matches_model(self, make_stack, seed):
        """Random 8-byte-aligned stores/loads behave like a plain dict."""
        stack, file, thread, mapping = _setup(
            make_stack, file_pages=64, cache_pages=16
        )
        rng = random.Random(seed)
        model = {}
        for i in range(300):
            offset = rng.randrange(64 * units.PAGE_SIZE // 8) * 8
            if rng.random() < 0.5:
                value = rng.getrandbits(64).to_bytes(8, "little")
                mapping.store(thread, offset, value)
                model[offset] = value
            else:
                expected = model.get(offset, bytes(8))
                assert mapping.load(thread, offset, 8) == expected
        # Final full validation through a fresh mapping after msync.
        mapping.msync(thread)
        mapping.munmap(thread)
        mapping2 = stack.engine.mmap(thread, file)
        for offset, value in model.items():
            assert mapping2.load(thread, offset, 8) == value

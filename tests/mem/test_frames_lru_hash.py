"""Frame pool, approximate LRU, and the lock-free hash table model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common import units
from repro.common.errors import OutOfMemoryError
from repro.mem.frames import FramePool
from repro.mem.hashtable import LockFreeHashTable
from repro.mem.lru import ApproxLRU
from repro.sim.clock import CycleClock


class TestFramePool:
    def test_numa_striping(self):
        pool = FramePool(100, numa_nodes=2)
        assert pool.node_of(0) == 0
        assert pool.node_of(99) == 1
        nodes = [pool.node_of(f) for f in range(100)]
        assert nodes.count(0) == nodes.count(1) == 50

    def test_data_roundtrip(self):
        pool = FramePool(10)
        data = bytes(range(256)) * 16
        pool.write(3, data)
        assert pool.read(3) == data
        assert pool.read(4) == bytes(4096)

    def test_partial_io(self):
        pool = FramePool(10)
        pool.write_partial(0, 100, b"abc")
        assert pool.read_partial(0, 100, 3) == b"abc"
        assert pool.read_partial(0, 99, 1) == b"\x00"
        with pytest.raises(ValueError):
            pool.write_partial(0, 4095, b"toolong")

    def test_free_scrubs(self):
        pool = FramePool(10)
        pool.mark_allocated(0)
        pool.write(0, b"\xFF" * 4096)
        pool.mark_free(0)
        assert pool.read(0) == bytes(4096)

    def test_allocated_accounting(self):
        pool = FramePool(10)
        pool.mark_allocated(1)
        pool.mark_allocated(2)
        assert pool.allocated_count() == 2
        pool.mark_free(1)
        assert pool.allocated_count() == 1

    def test_grow(self):
        pool = FramePool(10)
        new = pool.grow(5)
        assert new == [10, 11, 12, 13, 14]
        assert pool.total_frames == 15
        pool.write(14, bytes(4096))

    def test_shrink_requires_free(self):
        pool = FramePool(10)
        pool.mark_allocated(3)
        with pytest.raises(OutOfMemoryError):
            pool.shrink_frames([3])
        pool.shrink_frames([4])
        assert pool.is_allocated(4)   # retired = permanently unavailable

    def test_out_of_range(self):
        pool = FramePool(10)
        with pytest.raises(OutOfMemoryError):
            pool.read(10)


class TestApproxLRU:
    def test_touch_orders(self):
        lru = ApproxLRU()
        for key in "abc":
            lru.touch(key)
        lru.touch("a")   # refresh
        assert lru.evict_batch(2) == ["b", "c"]
        assert lru.coldest() == "a"

    def test_evict_batch_bounded(self):
        lru = ApproxLRU()
        lru.touch(1)
        assert lru.evict_batch(10) == [1]
        assert lru.evict_batch(10) == []

    def test_remove(self):
        lru = ApproxLRU()
        lru.touch("x")
        assert lru.remove("x")
        assert not lru.remove("x")
        assert len(lru) == 0

    def test_contains(self):
        lru = ApproxLRU()
        lru.touch(5)
        assert 5 in lru
        assert 6 not in lru

    @settings(max_examples=50)
    @given(st.lists(st.integers(0, 20), min_size=1, max_size=60))
    def test_eviction_order_is_staleness_order(self, touches):
        lru = ApproxLRU()
        last_touch = {}
        for i, key in enumerate(touches):
            lru.touch(key)
            last_touch[key] = i
        order = lru.keys_cold_to_hot()
        staleness = [last_touch[k] for k in order]
        assert staleness == sorted(staleness)


class TestLockFreeHashTable:
    def test_insert_lookup_remove(self):
        table = LockFreeHashTable()
        clock = CycleClock()
        assert table.insert(clock, "k", "v")
        assert table.lookup(clock, "k") == "v"
        assert table.remove(clock, "k") == "v"
        assert table.lookup(clock, "k") is None

    def test_insert_race_semantics(self):
        """Second insert of the same key fails (CAS loses)."""
        table = LockFreeHashTable()
        clock = CycleClock()
        assert table.insert(clock, "k", "first")
        assert not table.insert(clock, "k", "second")
        assert table.lookup(clock, "k") == "first"

    def test_costs_charged(self):
        table = LockFreeHashTable()
        clock = CycleClock()
        table.lookup(clock, "missing")
        assert clock.now > 0

    def test_counters(self):
        table = LockFreeHashTable()
        clock = CycleClock()
        table.insert(clock, 1, "a")
        table.lookup(clock, 1)
        table.remove(clock, 1)
        assert table.inserts == 1
        assert table.lookups == 1
        assert table.removes == 1
        assert len(table) == 0

    def test_get_nocost_free(self):
        table = LockFreeHashTable()
        clock = CycleClock()
        table.insert(clock, 1, "a")
        before = clock.now
        assert table.get_nocost(1) == "a"
        assert clock.now == before

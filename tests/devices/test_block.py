"""Backing store, token-bucket timelines, and the generic block device."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common import units
from repro.common.errors import OutOfSpaceError
from repro.devices.block import (
    BackingStore,
    BandwidthTimeline,
    BlockDevice,
    DeviceTimeline,
)
from repro.sim.clock import CycleClock


class TestBackingStore:
    def test_zero_fill_default(self):
        store = BackingStore(units.MIB)
        assert store.read_page(0) == bytes(4096)

    def test_page_roundtrip(self):
        store = BackingStore(units.MIB)
        data = bytes(range(256)) * 16
        store.write_page(3, data)
        assert store.read_page(3) == data

    def test_wrong_size_page_write(self):
        store = BackingStore(units.MIB)
        with pytest.raises(ValueError):
            store.write_page(0, b"short")

    def test_capacity_enforced(self):
        store = BackingStore(units.MIB)
        with pytest.raises(OutOfSpaceError):
            store.read_page(256)
        with pytest.raises(OutOfSpaceError):
            store.write(units.MIB - 1, b"ab")

    def test_spanning_write_read(self):
        store = BackingStore(units.MIB)
        data = b"X" * 10000   # spans 3 pages
        store.write(1000, data)
        assert store.read(1000, 10000) == data
        # Neighbouring bytes untouched.
        assert store.read(999, 1) == b"\x00"

    @settings(max_examples=25)
    @given(
        st.integers(min_value=0, max_value=units.MIB - 512),
        st.binary(min_size=1, max_size=512),
    )
    def test_write_read_roundtrip(self, offset, data):
        store = BackingStore(units.MIB)
        store.write(offset, data)
        assert store.read(offset, len(data)) == data

    def test_used_pages(self):
        store = BackingStore(units.MIB)
        assert store.used_pages() == 0
        store.write(0, b"a")
        store.write(units.PAGE_SIZE * 5, b"b")
        assert store.used_pages() == 2


class TestDeviceTimeline:
    def test_unlimited_never_queues(self):
        timeline = DeviceTimeline(0.0)
        assert timeline.admit(100.0) == 100.0
        assert timeline.admit(50.0) == 50.0   # out-of-order OK

    def test_burst_then_throttle(self):
        timeline = DeviceTimeline(100.0)   # one command per 100 cycles
        # Burst capacity admits QUEUE_DEPTH commands instantly.
        for _ in range(int(DeviceTimeline.QUEUE_DEPTH)):
            assert timeline.admit(0.0) == 0.0
        # The next command must queue.
        assert timeline.admit(0.0) > 0.0

    def test_refill_over_time(self):
        timeline = DeviceTimeline(100.0)
        for _ in range(int(DeviceTimeline.QUEUE_DEPTH)):
            timeline.admit(0.0)
        # After a long gap, credit has refilled: no queueing.
        assert timeline.admit(1_000_000.0) == 1_000_000.0

    def test_sustained_rate_enforced(self):
        timeline = DeviceTimeline(100.0)
        last = 0.0
        for i in range(500):
            last = timeline.admit(0.0)
        # 500 commands at 1/100cycles: completion ~ (500-depth)*100.
        assert last >= (500 - DeviceTimeline.QUEUE_DEPTH - 1) * 100


class TestBandwidthTimeline:
    def test_below_rate_no_delay(self):
        bw = BandwidthTimeline(2.4e9)   # 1 byte/cycle
        # 1000 bytes at t=1e6: well within burst.
        assert bw.admit(1e6, 1000) == 1e6

    def test_saturation_delays(self):
        bw = BandwidthTimeline(2.4e9)   # 1 byte/cycle
        total = 0
        t = 0.0
        # Pump 10 MB instantly: far beyond the 1 MB burst.
        end = bw.admit(0.0, 10 * units.MIB)
        assert end > 0.0
        assert end >= (10 * units.MIB - BandwidthTimeline.BURST_BYTES) * (2.4e9 / 2.4e9) / 2.4e9 * 2.4e9 - 1

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            BandwidthTimeline(0)


class TestBlockDevice:
    def _device(self, **kwargs):
        return BlockDevice(
            name="test",
            capacity_bytes=units.MIB,
            read_latency_cycles=1000,
            write_latency_cycles=2000,
            read_cycles_per_byte=0.5,
            write_cycles_per_byte=1.0,
            **kwargs,
        )

    def test_read_write_roundtrip(self):
        device = self._device()
        clock = CycleClock()
        payload = bytes(range(100))
        device.submit(clock, 500, 100, is_write=True, data=payload)
        assert device.submit(clock, 500, 100, is_write=False) == payload

    def test_service_time_model(self):
        device = self._device()
        assert device.service_cycles(4096, is_write=False) == 1000 + 2048
        assert device.service_cycles(4096, is_write=True) == 2000 + 4096

    def test_blocking_submit_waits(self):
        device = self._device()
        clock = CycleClock()
        device.submit(clock, 0, 4096, is_write=False)
        assert clock.now == pytest.approx(1000 + 2048)

    def test_async_submit_does_not_block(self):
        device = self._device()
        clock = CycleClock()
        completion = device.submit_async(clock, 0, 4096, is_write=False)
        assert clock.now == 0
        assert completion == pytest.approx(1000 + 2048)

    def test_write_requires_data(self):
        device = self._device()
        with pytest.raises(ValueError):
            device.submit(CycleClock(), 0, 10, is_write=True, data=None)
        with pytest.raises(ValueError):
            device.submit(CycleClock(), 0, 10, is_write=True, data=b"wrong-size!")

    def test_stats(self):
        device = self._device()
        clock = CycleClock()
        device.submit(clock, 0, 4096, is_write=False)
        device.submit(clock, 0, 100, is_write=True, data=bytes(100))
        assert device.reads == 1 and device.writes == 1
        assert device.bytes_read == 4096 and device.bytes_written == 100

    def test_iops_cap_queues(self):
        device = self._device(read_iops_cap=1000.0)   # 2.4M cycles/op
        clock = CycleClock()
        for _ in range(int(DeviceTimeline.QUEUE_DEPTH) + 10):
            device.submit_async(clock, 0, 4096, is_write=False)
        last = device.submit_async(clock, 0, 4096, is_write=False)
        assert last > 1000 + 2048, "saturated device must queue"

"""Aquila's hierarchical two-level freelist (paper Section 3.2).

"The first level consists of a queue per NUMA node, while the second level
of a queue per core.  When a page is required, the core checks, in order,
its local (core) queue, the local NUMA node queue, and the remote NUMA
node queues. ... When a page is evicted from the cache, it is placed in
the local core queue.  If the number of pages in the local core queue
exceeds a threshold, they are moved to the appropriate NUMA queue.  All
page movement between first and second level queues is performed in
batches (4096 pages in our evaluation).  By implementing lock-free
freelist queues and using batching in our two-level allocator, we do not
observe high contention."

Cost model: core-queue operations are uncontended lock-free ops; NUMA-queue
operations go through a striped atomic timeline; batch moves amortize a
small per-page cost.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional

from repro.common import constants
from repro.mem.frames import FramePool
from repro.sim.clock import CycleClock


class TwoLevelFreelist:
    """Per-core + per-NUMA free-frame queues with batched movement."""

    def __init__(
        self,
        pool: FramePool,
        num_cores: int,
        core_of_numa_node,
        move_batch: int = constants.FREELIST_MOVE_BATCH_PAGES,
        core_threshold: int = constants.FREELIST_CORE_THRESHOLD_PAGES,
    ) -> None:
        """``core_of_numa_node`` maps a core index to its NUMA node."""
        self.pool = pool
        self.num_cores = num_cores
        self._node_of_core = core_of_numa_node
        self.move_batch = move_batch
        self.core_threshold = core_threshold
        self._core_queues: List[Deque[int]] = [deque() for _ in range(num_cores)]
        self._node_queues: List[Deque[int]] = [deque() for _ in range(pool.numa_nodes)]
        self._node_ops = [0] * pool.numa_nodes
        self.allocations = 0
        self.frees = 0
        self.batch_moves = 0
        # Initially all frames live in their NUMA node's queue.
        for frame in range(pool.total_frames):
            self._node_queues[pool.node_of(frame)].append(frame)

    def add_frames(self, frames: List[int]) -> None:
        """Seed newly granted frames (dynamic cache grow) into NUMA queues."""
        for frame in frames:
            self._node_queues[self.pool.node_of(frame)].append(frame)

    def take_free_frames(self, count: int) -> List[int]:
        """Pull up to ``count`` free frames out of the queues (cache shrink)."""
        taken: List[int] = []
        sources = self._node_queues + self._core_queues
        for queue in sources:
            while queue and len(taken) < count:
                taken.append(queue.popleft())
            if len(taken) >= count:
                break
        return taken

    def free_count(self) -> int:
        """Total free frames across all queues."""
        return sum(len(q) for q in self._core_queues) + sum(
            len(q) for q in self._node_queues
        )

    def core_queue_len(self, core: int) -> int:
        """Free frames parked on ``core``'s queue."""
        return len(self._core_queues[core])

    def node_queue_len(self, node: int) -> int:
        """Free frames parked on NUMA ``node``'s queue."""
        return len(self._node_queues[node])

    def allocate(self, clock: CycleClock, core: int) -> Optional[int]:
        """Pop one free frame for ``core``; None when everything is empty.

        Search order per the paper: local core queue, local NUMA queue,
        remote NUMA queues.  Refills from a NUMA queue pull a whole batch
        into the core queue.
        """
        core_queue = self._core_queues[core]
        clock.charge("cache.freelist", constants.FREELIST_OP_CYCLES)
        if not core_queue:
            self._refill_from_nodes(clock, core)
        if not core_queue:
            return None
        frame = core_queue.popleft()
        self.pool.mark_allocated(frame)
        self.allocations += 1
        return frame

    def _refill_from_nodes(self, clock: CycleClock, core: int) -> None:
        local_node = self._node_of_core(core)
        order = [local_node] + [
            n for n in range(self.pool.numa_nodes) if n != local_node
        ]
        core_queue = self._core_queues[core]
        for node in order:
            node_queue = self._node_queues[node]
            if not node_queue:
                continue
            take = min(self.move_batch, len(node_queue))
            # Lock-free queue splice: "By implementing lock-free freelist
            # queues and using batching ... we do not observe high
            # contention" (paper Section 3.2) — a fixed CAS cost, no
            # serialization point.
            clock.charge("cache.freelist.cas", constants.LOCK_TRANSFER_CYCLES)
            self._node_ops[node] += 1
            clock.charge(
                "cache.freelist.batch_move",
                constants.FREELIST_BATCH_MOVE_PER_PAGE_CYCLES * take,
            )
            for _ in range(take):
                core_queue.append(node_queue.popleft())
            self.batch_moves += 1
            return

    def free(self, clock: CycleClock, core: int, frame: int) -> None:
        """Return ``frame`` to ``core``'s queue, spilling in batches."""
        self.pool.mark_free(frame)
        self.frees += 1
        clock.charge("cache.freelist", constants.FREELIST_OP_CYCLES)
        core_queue = self._core_queues[core]
        core_queue.append(frame)
        if len(core_queue) > self.core_threshold:
            self._spill_to_node(clock, core)

    def _spill_to_node(self, clock: CycleClock, core: int) -> None:
        node = self._node_of_core(core)
        core_queue = self._core_queues[core]
        take = min(self.move_batch, len(core_queue))
        clock.charge("cache.freelist.cas", constants.LOCK_TRANSFER_CYCLES)
        self._node_ops[node] += 1
        clock.charge(
            "cache.freelist.batch_move",
            constants.FREELIST_BATCH_MOVE_PER_PAGE_CYCLES * take,
        )
        node_queue = self._node_queues[node]
        for _ in range(take):
            node_queue.append(core_queue.popleft())
        self.batch_moves += 1

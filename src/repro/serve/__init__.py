"""Open-loop multi-tenant serving layer (beyond-paper extension).

``repro.serve`` drives N tenants — each with its own seed-deterministic
open-loop arrival process, bounded admission queue, and SLO accounting —
against one shared mmio stack (Aquila / kmmap / Linux mmap DRAM cache +
device).  The design argument for why open-loop arrivals and admission
control preserve the executor's conformance-digest invariant lives in
DESIGN.md Section 12; the serve test tier
(``tests/conformance/test_serve.py``, ``tests/serve``) enforces it.
"""

from repro.serve.admission import AdmissionQueue
from repro.serve.arrivals import BurstPhase, burst_schedule, poisson_schedule
from repro.serve.core import (
    ServeConfig,
    ServeOutcome,
    TenantSpec,
    run_conformance_cell,
    run_serve,
    serve_state_digest,
    standard_tenants,
)
from repro.serve.qos import build_partition

__all__ = [
    "AdmissionQueue",
    "BurstPhase",
    "ServeConfig",
    "ServeOutcome",
    "TenantSpec",
    "build_partition",
    "burst_schedule",
    "poisson_schedule",
    "run_conformance_cell",
    "run_serve",
    "serve_state_digest",
    "standard_tenants",
]

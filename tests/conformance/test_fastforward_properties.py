"""Property-based tests for the analytic fast-forward closed forms.

Two layers, mirroring the fault differential suite's seeded-random
style (200+ generated cases, deterministic by seed):

* **Unit properties** — the vectorized closed forms in
  ``repro.sim.fastforward`` (:func:`window_profile`, :func:`write_cut`,
  :func:`expected_hit_run_length`) are re-derived with naive Python
  loops over random windows and must agree exactly, duplicates and
  degenerate shapes included.

* **Whole-kernel properties** — seed-generated random cell configs run
  batched with and without fast-forward; the full-state digests (cycle
  totals, per-stage attribution, latency streams, TLB and LRU recency
  order, cache byte checksums) must be equal.  The config generator
  deliberately wanders across the certificate's terrain: in-memory and
  out-of-memory datasets, write mixes, touch-once vs re-access, solo
  threads, SMT oversubscription, and interleaved-thread schedules.
"""

import math
import random

import pytest

from repro.sim.conformance import MMIO_ENGINE_KINDS, run_cell
from repro.sim.fastforward import (
    expected_hit_run_length,
    numpy_available,
    window_profile,
    write_cut,
)

np = pytest.importorskip("numpy") if numpy_available() else None
if np is None:  # pragma: no cover - numpy ships with the toolchain
    pytest.skip("closed forms require numpy", allow_module_level=True)

#: Unit-property volume: seeded random windows per closed form.
PROFILE_CASES = 200
WRITE_CUT_CASES = 100

#: Whole-kernel volume: seeded random cell configs, in batches to keep
#: pytest output readable (like the differential suite).
CELL_BATCHES = 6
CELLS_PER_BATCH = 20


def _random_window(rng, max_pages=64, max_len=400):
    """A random page-index window with a bias toward heavy duplication."""
    num_pages = rng.randint(1, max_pages)
    n = rng.randint(0, max_len)
    hot = rng.randint(1, num_pages)  # small hot sets → many duplicates
    window = [rng.randrange(hot) for _ in range(n)]
    return np.asarray(window, dtype=np.int64), num_pages


class TestWindowProfileProperty:
    """window_profile == a naive first/last occurrence scan."""

    def test_matches_naive_scan(self):
        rng = random.Random(0xF0F0)
        for case in range(PROFILE_CASES):
            window, num_pages = _random_window(rng)
            touched, first, last = window_profile(window, num_pages)
            naive_first, naive_last = {}, {}
            for pos, page in enumerate(window.tolist()):
                naive_first.setdefault(page, pos)
                naive_last[page] = pos
            assert touched.tolist() == sorted(naive_first), f"case {case}"
            n = int(window.shape[0])
            for page in range(num_pages):
                assert first[page] == naive_first.get(page, n), f"case {case}"
                assert last[page] == naive_last.get(page, -1), f"case {case}"

    def test_untouched_pages_are_sentinels(self):
        window = np.asarray([2, 2, 5], dtype=np.int64)
        touched, first, last = window_profile(window, 8)
        assert touched.tolist() == [2, 5]
        assert first[0] == 3 and last[0] == -1
        assert first[2] == 0 and last[2] == 1
        assert first[5] == 2 and last[5] == 2


class TestWriteCutProperty:
    """write_cut == index of the first True in [index, limit)."""

    def test_matches_naive_scan(self):
        rng = random.Random(0xBEEF)
        for case in range(WRITE_CUT_CASES):
            n = rng.randint(1, 300)
            flags = [rng.random() < rng.choice((0.0, 0.02, 0.5)) for _ in range(n)]
            arr = np.asarray(flags, dtype=bool)
            index = rng.randint(0, n - 1)
            limit = rng.randint(index, n)
            expected = limit
            for pos in range(index, limit):
                if flags[pos]:
                    expected = pos
                    break
            assert write_cut(arr, index, limit) == expected, f"case {case}"

    def test_none_means_all_reads(self):
        assert write_cut(None, 3, 17) == 17


class TestMissRateModel:
    """expected_hit_run_length: the certificate's eviction-regime model."""

    def test_in_memory_is_unbounded(self):
        assert expected_hit_run_length(128, 128) == math.inf
        assert expected_hit_run_length(1, 4096) == math.inf

    def test_no_cache_is_zero(self):
        assert expected_hit_run_length(128, 0) == 0.0

    def test_geometric_formula(self):
        # 256 pages in 192 frames: miss rate 1/4, expected run 4.
        assert expected_hit_run_length(256, 192) == pytest.approx(4.0)

    def test_monotone_in_capacity(self):
        runs = [expected_hit_run_length(1024, c) for c in range(1, 1024, 7)]
        assert all(a <= b for a, b in zip(runs, runs[1:]))


def _random_cell_config(rng):
    """One seed-generated kernel cell wandering the certificate terrain."""
    num_threads = rng.choice([1, 1, 2, 4, 4, 8, 16, 33, 36])
    dataset_pages = rng.choice([24, 64, 160, 192, 256, 384])
    cache_pages = rng.choice(
        [dataset_pages // 2, dataset_pages - 1, dataset_pages,
         dataset_pages + 1, 2 * dataset_pages, 256]
    )
    return dict(
        engine_kind=rng.choice(MMIO_ENGINE_KINDS),
        num_threads=num_threads,
        accesses_per_thread=rng.choice([70, 150, 300, 500]),
        dataset_pages=dataset_pages,
        cache_pages=max(1, cache_pages),
        write_fraction=rng.choice([0.0, 0.0, 0.0, 0.1, 0.25, 0.5]),
        touch_once=rng.random() < 0.5,
        shared_file=rng.random() < 0.7,
        seed=rng.randrange(1 << 30),
    )


def _assert_digests_equal(cfg, with_ff, without_ff):
    assert with_ff == without_ff, (
        f"fast-forward digest diverged for config {cfg}: differing keys "
        f"{[k for k in with_ff if with_ff[k] != without_ff.get(k)]}"
    )


class TestRandomCellsAgree:
    """Seeded random cells: analytic replay == slim loop, bit for bit."""

    @pytest.mark.parametrize("batch", range(CELL_BATCHES))
    def test_fastforward_matches_loop(self, batch):
        rng = random.Random(0xACE0 + batch)
        for case in range(CELLS_PER_BATCH):
            cfg = _random_cell_config(rng)
            loop = run_cell(batched=True, fastforward=False, **cfg)
            ff = run_cell(batched=True, fastforward=True, **cfg)
            _assert_digests_equal(cfg, ff, loop)


class TestThreadScheduleEdges:
    """SMT and interleaved-thread edge cases called out by the issue."""

    def test_smt_oversubscribed_reaccess(self):
        # More threads than hardware threads: core sharing forces the
        # zero-quantum scheduler; the analytic window must both engage
        # (long solo tails as threads drain) and stand aside (shared
        # cores are never certificate-covered) at the right moments.
        for seed in (3, 11, 59):
            cfg = dict(
                engine_kind="aquila", num_threads=36, accesses_per_thread=120,
                dataset_pages=96, write_fraction=0.0, touch_once=False,
                seed=seed,
            )
            loop = run_cell(batched=True, fastforward=False, **cfg)
            ff = run_cell(batched=True, fastforward=True, **cfg)
            _assert_digests_equal(cfg, ff, loop)

    def test_interleaved_threads_with_writes(self):
        # Two threads ping-ponging between runnable and quiescent, with
        # writes revoking the certificate mid-run: the analytic path
        # must only ever fire inside genuinely-unbounded horizons.
        for seed in (5, 21, 77):
            cfg = dict(
                engine_kind="aquila", num_threads=2, accesses_per_thread=600,
                dataset_pages=128, write_fraction=0.15, touch_once=False,
                seed=seed,
            )
            loop = run_cell(batched=True, fastforward=False, **cfg)
            ff = run_cell(batched=True, fastforward=True, **cfg)
            _assert_digests_equal(cfg, ff, loop)

    def test_solo_thread_long_tail(self):
        # The purest analytic regime: one thread, all reads, everything
        # resident — the whole tail should retire in closed form.
        cfg = dict(
            engine_kind="aquila", num_threads=1, accesses_per_thread=3000,
            dataset_pages=64, write_fraction=0.0, touch_once=False, seed=13,
        )
        loop = run_cell(batched=True, fastforward=False, **cfg)
        ff = run_cell(batched=True, fastforward=True, **cfg)
        _assert_digests_equal(cfg, ff, loop)

"""Radix tree: structure, pruning, and model-based properties."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mem.radix import RADIX_FANOUT, RadixTree


class TestBasics:
    def test_empty(self):
        tree = RadixTree()
        assert len(tree) == 0
        assert tree.get(0) is None
        assert 5 not in tree

    def test_insert_get(self):
        tree = RadixTree()
        assert tree.insert(42, "answer")
        assert not tree.insert(42, "ANSWER")   # replace
        assert tree.get(42) == "ANSWER"
        assert 42 in tree

    def test_none_rejected(self):
        tree = RadixTree()
        with pytest.raises(ValueError):
            tree.insert(1, None)
        with pytest.raises(ValueError):
            tree.insert(-1, "x")

    def test_remove(self):
        tree = RadixTree()
        tree.insert(7, "x")
        assert tree.remove(7) == "x"
        assert tree.remove(7) is None
        assert len(tree) == 0

    def test_tree_grows_for_large_keys(self):
        tree = RadixTree()
        big = RADIX_FANOUT ** 4 + 17
        tree.insert(big, "far")
        tree.insert(0, "near")
        assert tree.get(big) == "far"
        assert tree.get(0) == "near"

    def test_items_sorted(self):
        tree = RadixTree()
        for key in [100, 5, 70000, 3]:
            tree.insert(key, key)
        assert [k for k, _ in tree.items()] == [3, 5, 100, 70000]

    def test_next_key(self):
        tree = RadixTree()
        for key in [10, 20, 30]:
            tree.insert(key, key)
        assert tree.next_key(10) == 20
        assert tree.next_key(25) == 30
        assert tree.next_key(30) is None

    def test_get_out_of_range(self):
        tree = RadixTree()
        tree.insert(5, "x")
        assert tree.get(10 ** 12) is None
        assert tree.get(-3) is None


class TestPruning:
    def test_empty_nodes_pruned(self):
        """Internal nodes vanish when their last child is removed."""
        tree = RadixTree()
        big = RADIX_FANOUT ** 3
        tree.insert(big, "x")
        tree.remove(big)
        # The root subtree for that prefix should be gone: inserting a
        # small key and iterating must not traverse stale nodes.
        tree.insert(1, "y")
        assert list(tree.items()) == [(1, "y")]


@settings(max_examples=150)
@given(st.lists(st.tuples(st.booleans(), st.integers(0, 1 << 20)), max_size=80))
def test_model_equivalence(operations):
    tree = RadixTree()
    model = {}
    for is_insert, key in operations:
        if is_insert:
            assert tree.insert(key, key) == (key not in model)
            model[key] = key
        else:
            expected = model.pop(key, None)
            assert tree.remove(key) == expected
    assert len(tree) == len(model)
    assert [k for k, _ in tree.items()] == sorted(model)
    for key, value in model.items():
        assert tree.get(key) == value

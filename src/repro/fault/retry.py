"""Retry-with-backoff over transient device faults.

The policy every I/O path shares: a command that fails with a
:class:`~repro.common.errors.TransientDeviceError` is retried after an
exponentially growing backoff (charged to the caller's clock, so degraded
runs stay cycle-accounted), up to a bounded number of attempts.  A command
still failing after the last attempt escalates to a permanent
:class:`~repro.common.errors.DeviceError` — graceful degradation, not
silent loss: latency rises, counters tick, but no acknowledged data is
dropped and no failure is hidden.

Backoff is deterministic (no jitter): determinism of the whole fault
schedule is the point of :mod:`repro.fault`.
"""

from __future__ import annotations

from typing import Callable, Optional, TypeVar

from repro.common.errors import DeviceError, TransientDeviceError
from repro.obs import METRICS, TRACER

T = TypeVar("T")


class RetryPolicy:
    """How many times to retry a transient fault, and at what cost."""

    def __init__(
        self,
        max_attempts: int = 4,
        base_backoff_cycles: float = 2_000.0,
        multiplier: float = 4.0,
    ) -> None:
        if max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if base_backoff_cycles < 0 or multiplier < 1.0:
            raise ValueError("backoff must be non-negative and non-shrinking")
        self.max_attempts = max_attempts
        self.base_backoff_cycles = base_backoff_cycles
        self.multiplier = multiplier

    def backoff_cycles(self, retry_index: int) -> float:
        """Backoff before retry number ``retry_index`` (0-based)."""
        return self.base_backoff_cycles * (self.multiplier ** retry_index)


#: The stack-wide default: 1 initial attempt + 3 retries, 2K/8K/32K-cycle
#: backoffs (a few microseconds — the scale of an NVMe abort/requeue).
DEFAULT_RETRY_POLICY = RetryPolicy()

def with_retries(
    clock,
    attempt: Callable[[], T],
    category: str = "io",
    policy: Optional[RetryPolicy] = None,
) -> T:
    """Run ``attempt`` (one device command), retrying transient faults.

    Each retry opens a ``fault.retry`` span and charges
    ``<category>.retry_backoff`` cycles to ``clock`` before re-issuing.
    Raises :class:`DeviceError` once the policy is exhausted.
    """
    policy = policy if policy is not None else DEFAULT_RETRY_POLICY
    last_error: Optional[TransientDeviceError] = None
    for attempt_index in range(policy.max_attempts):
        if attempt_index:
            # Looked up per retry (not cached at import) so the counters
            # survive METRICS.reset(); retries are rare, the cost is noise.
            METRICS.counter(
                "fault.retries", help="I/O commands retried after a transient fault"
            ).inc()
            with TRACER.span("fault.retry", clock):
                clock.charge(
                    category + ".retry_backoff",
                    policy.backoff_cycles(attempt_index - 1),
                )
        try:
            return attempt()
        except TransientDeviceError as exc:
            last_error = exc
    METRICS.counter(
        "fault.giveups", help="I/O commands failed after exhausting retries"
    ).inc()
    raise DeviceError(
        f"command failed after {policy.max_attempts} attempts: {last_error}"
    ) from last_error

"""Seed-deterministic fault plans for devices.

A :class:`FaultPlan` describes *when* and *how* the simulated devices
misbehave.  Every device derives its own named random stream from the
plan's master seed (via :func:`repro.sim.rand.stream`), so the fault
schedule is a pure function of ``(seed, spec)`` — independent of thread
interleaving, of how much randomness other components consume, and of
wall-clock time.  Two runs with the same seed and spec produce
byte-identical schedules (see :meth:`FaultPlan.schedule`).

Three fault kinds are modeled, matching what a DRAM-cache-over-storage
stack must survive:

* ``error``   — a transient command failure (``TransientDeviceError``);
  the I/O paths retry these with backoff (:mod:`repro.fault.retry`);
* ``latency`` — a transient service-time spike (device-internal GC,
  thermal throttling); the command succeeds but completes late;
* ``torn``    — a write fails after only a prefix of the payload landed
  (power cut / aborted DMA; ``TornWriteError``).

Triggers are **op-indexed** (the Nth command on a device) by default;
rate-based decisions draw a fixed number of randoms per op so the stream
stays aligned whatever the outcome.  A cycle window (``after_cycle`` /
``until_cycle``) gates injection to a region of simulated time, and
explicit per-op triggers pin a fault kind to an exact command ordinal.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.sim import rand

FAULT_NONE = "none"
FAULT_ERROR = "error"
FAULT_LATENCY = "latency"
FAULT_TORN = "torn"

#: Default transient latency spike, in cycles (~100 us at 2.4 GHz —
#: a realistic SSD internal-GC stall).
DEFAULT_LATENCY_SPIKE_CYCLES = 240_000.0


@dataclass
class FaultSpec:
    """Static description of a fault mix (rates are per device command)."""

    error_rate: float = 0.0
    latency_rate: float = 0.0
    torn_rate: float = 0.0
    #: Mean magnitude of a latency spike; the drawn spike is uniform in
    #: [0.5x, 1.5x] of this, then scaled by the device's
    #: ``fault_latency_scale``.
    latency_spike_cycles: float = DEFAULT_LATENCY_SPIKE_CYCLES
    #: Cap on total injected faults per device (None = unlimited).
    max_faults_per_device: Optional[int] = None
    #: Simulated-cycle window outside which nothing is injected.
    after_cycle: float = 0.0
    until_cycle: Optional[float] = None
    #: Explicit op-indexed triggers: ``{device_name: {op_index: kind}}``.
    #: Triggers fire regardless of rates (but respect the cycle window
    #: and the per-device cap) and keep the random stream aligned.
    triggers: Dict[str, Dict[int, str]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for name, value in (
            ("error_rate", self.error_rate),
            ("latency_rate", self.latency_rate),
            ("torn_rate", self.torn_rate),
        ):
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if self.error_rate + self.latency_rate + self.torn_rate > 1.0:
            raise ValueError("fault rates must sum to at most 1")
        if self.latency_spike_cycles < 0:
            raise ValueError("latency_spike_cycles must be non-negative")


class FaultDecision:
    """The injector's verdict for one device command."""

    __slots__ = ("kind", "extra_latency_cycles", "torn_fraction")

    def __init__(
        self,
        kind: str = FAULT_NONE,
        extra_latency_cycles: float = 0.0,
        torn_fraction: float = 0.0,
    ) -> None:
        self.kind = kind
        self.extra_latency_cycles = extra_latency_cycles
        self.torn_fraction = torn_fraction

    def __repr__(self) -> str:
        return (
            f"FaultDecision({self.kind}, +{self.extra_latency_cycles:.0f}cy, "
            f"torn={self.torn_fraction:.2f})"
        )


_NO_FAULT = FaultDecision()


class DeviceFaultInjector:
    """Per-device fault stream: one :meth:`decide` call per command.

    Each decision draws exactly two uniforms from the device's derived
    stream (one to pick the kind, one for the magnitude), so the schedule
    for command *N* never depends on what earlier commands did with their
    draws.
    """

    def __init__(self, plan: "FaultPlan", device_name: str) -> None:
        self.plan = plan
        self.device_name = device_name
        self._rng = rand.stream(plan.seed, f"fault.{device_name}")
        self._triggers = plan.spec.triggers.get(device_name, {})
        self.op_index = 0
        self.ops_seen = 0
        self.errors_injected = 0
        self.latency_injected = 0
        self.torn_injected = 0

    @property
    def faults_injected(self) -> int:
        """Total faults of any kind injected on this device."""
        return self.errors_injected + self.latency_injected + self.torn_injected

    def _capped(self) -> bool:
        cap = self.plan.spec.max_faults_per_device
        return cap is not None and self.faults_injected >= cap

    def decide(self, now: float, is_write: bool, nbytes: int) -> FaultDecision:
        """The fault verdict for the next command on this device."""
        spec = self.plan.spec
        index = self.op_index
        self.op_index += 1
        self.ops_seen += 1
        # Fixed draws per op keep the stream aligned across outcomes.
        u_kind = self._rng.random()
        u_mag = self._rng.random()

        if now < spec.after_cycle:
            return _NO_FAULT
        if spec.until_cycle is not None and now >= spec.until_cycle:
            return _NO_FAULT
        if self._capped():
            return _NO_FAULT

        kind = self._triggers.get(index)
        if kind is None:
            if u_kind < spec.error_rate:
                kind = FAULT_ERROR
            elif u_kind < spec.error_rate + spec.latency_rate:
                kind = FAULT_LATENCY
            elif u_kind < spec.error_rate + spec.latency_rate + spec.torn_rate:
                kind = FAULT_TORN
            else:
                return _NO_FAULT
        if kind == FAULT_TORN and not is_write:
            # Reads cannot tear; the equivalent failure is a plain error.
            kind = FAULT_ERROR

        decision = FaultDecision(kind)
        if kind == FAULT_ERROR:
            self.errors_injected += 1
        elif kind == FAULT_LATENCY:
            self.latency_injected += 1
            decision.extra_latency_cycles = spec.latency_spike_cycles * (0.5 + u_mag)
        elif kind == FAULT_TORN:
            self.torn_injected += 1
            decision.torn_fraction = u_mag
        else:
            raise ValueError(f"unknown fault kind {kind!r}")
        self.plan._record(self.device_name, index, kind, u_mag)
        return decision

    def counters(self) -> Dict[str, int]:
        """Injection counters, for metrics binding and reports."""
        return {
            "ops_seen": self.ops_seen,
            "errors": self.errors_injected,
            "latency": self.latency_injected,
            "torn": self.torn_injected,
        }


class FaultPlan:
    """A master seed plus a :class:`FaultSpec`, shared by all devices.

    Devices obtain their injector through :meth:`injector_for`; the plan
    accumulates every injected fault into :meth:`schedule`, which two
    runs with the same seed and spec reproduce byte-for-byte.
    """

    def __init__(self, seed: int, spec: Optional[FaultSpec] = None) -> None:
        self.seed = seed
        self.spec = spec if spec is not None else FaultSpec()
        self._injectors: Dict[str, DeviceFaultInjector] = {}
        self._schedule: List[Tuple[str, int, str, float]] = []

    def injector_for(self, device_name: str) -> DeviceFaultInjector:
        """The (cached) injector for ``device_name``."""
        injector = self._injectors.get(device_name)
        if injector is None:
            injector = DeviceFaultInjector(self, device_name)
            self._injectors[device_name] = injector
        return injector

    def _record(self, device: str, op_index: int, kind: str, magnitude: float) -> None:
        self._schedule.append((device, op_index, kind, magnitude))

    def schedule(self) -> List[Tuple[str, int, str, float]]:
        """Every injected fault as ``(device, op_index, kind, magnitude)``,
        sorted by device then op index (a canonical, comparable form)."""
        return sorted(self._schedule)

    def total_faults(self) -> int:
        """Faults injected across all devices so far."""
        return len(self._schedule)

    def summary(self) -> Dict[str, Dict[str, int]]:
        """Per-device injection counters."""
        return {
            name: injector.counters()
            for name, injector in sorted(self._injectors.items())
        }


# -- process-wide default plan -------------------------------------------------
#
# Devices consult the active plan at construction (so experiment factories
# need no plumbing changes): install a plan, build the stack, run, clear.

_ACTIVE_PLAN: Optional[FaultPlan] = None


def install_plan(plan: Optional[FaultPlan]) -> None:
    """Set (or clear, with ``None``) the process-wide fault plan.

    Only devices constructed *while a plan is installed* inject faults.
    """
    global _ACTIVE_PLAN
    _ACTIVE_PLAN = plan


def active_plan() -> Optional[FaultPlan]:
    """The currently installed plan, if any."""
    return _ACTIVE_PLAN


def clear_plan() -> None:
    """Remove the installed plan (new devices run fault-free)."""
    install_plan(None)


class plan_installed:
    """Context manager installing ``plan`` for the duration of a block."""

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._previous: Optional[FaultPlan] = None

    def __enter__(self) -> FaultPlan:
        self._previous = active_plan()
        install_plan(self.plan)
        return self.plan

    def __exit__(self, exc_type, exc, tb) -> bool:
        install_plan(self._previous)
        return False

"""SST format: building, reading, scanning, iteration."""

import pytest

from repro.bench.setups import make_aquila_stack
from repro.common import units
from repro.hw.machine import Machine
from repro.kv.env import DirectIOEnv, MmioEnv
from repro.kv.sst import SSTBuilder, SSTable, build_sst
from repro.mmio.explicit import ExplicitIOEngine
from repro.mmio.files import ExtentAllocator
from repro.devices.pmem import PmemDevice
from repro.sim.executor import SimThread


@pytest.fixture(params=["direct", "aquila"])
def env(request):
    if request.param == "direct":
        device = PmemDevice(capacity_bytes=128 * units.MIB)
        io = ExplicitIOEngine(Machine(), cache_pages=256)
        return DirectIOEnv(io, ExtentAllocator(device))
    stack = make_aquila_stack("pmem", cache_pages=256, capacity_bytes=128 * units.MIB)
    return MmioEnv(stack.engine, stack.allocator)


def _entries(n, prefix=b"key"):
    return [(b"%s-%06d" % (prefix, i), b"value-%d" % i) for i in range(n)]


class TestBuilder:
    def test_rejects_unsorted(self):
        builder = SSTBuilder()
        builder.add(b"b", b"1")
        with pytest.raises(ValueError):
            builder.add(b"a", b"2")
        with pytest.raises(ValueError):
            builder.add(b"b", b"dup")

    def test_tracks_key_range(self):
        builder = SSTBuilder()
        for key, value in _entries(10):
            builder.add(key, value)
        assert builder.first_key == b"key-000000"
        assert builder.last_key == b"key-000009"

    def test_blocks_page_aligned(self):
        builder = SSTBuilder()
        for key, value in _entries(500):
            builder.add(key, value)
        data = builder.finish()
        # Data region is whole blocks.
        assert builder.size_bytes % units.PAGE_SIZE == 0


class TestSSTable:
    def test_get_every_key(self, env):
        thread = SimThread(core=0)
        table = build_sst(env, thread, "t.sst", iter(_entries(300)))
        for key, value in _entries(300):
            assert table.get(thread, key) == value

    def test_get_missing(self, env):
        thread = SimThread(core=0)
        table = build_sst(env, thread, "t.sst", iter(_entries(50)))
        assert table.get(thread, b"key-999999") is None
        assert table.get(thread, b"aaa") is None

    def test_bloom_short_circuits(self, env):
        thread = SimThread(core=0)
        table = build_sst(env, thread, "t.sst", iter(_entries(100)))
        reads_before = table.block_reads
        for i in range(50):
            table.get(thread, b"nonexistent-%d" % i)
        # Nearly all misses are rejected by the bloom filter without I/O.
        assert table.block_reads - reads_before <= 3
        assert table.bloom_negatives >= 47

    def test_scan_from(self, env):
        thread = SimThread(core=0)
        table = build_sst(env, thread, "t.sst", iter(_entries(100)))
        result = table.scan_from(thread, b"key-000050", 10)
        assert [k for k, _ in result] == [b"key-%06d" % i for i in range(50, 60)]

    def test_iterate_all_in_order(self, env):
        thread = SimThread(core=0)
        entries = _entries(200)
        table = build_sst(env, thread, "t.sst", iter(entries))
        assert list(table.iterate_all(thread)) == entries

    def test_overlaps(self, env):
        thread = SimThread(core=0)
        table = build_sst(env, thread, "t.sst", iter(_entries(10)))
        assert table.overlaps(b"key-000005", b"key-000099")
        assert table.overlaps(b"a", b"z")
        assert not table.overlaps(b"z", b"zz")
        assert not table.overlaps(b"a", b"b")

    def test_empty_build_returns_none(self, env):
        thread = SimThread(core=0)
        assert build_sst(env, thread, "e.sst", iter([])) is None

    def test_large_values_span_blocks(self, env):
        thread = SimThread(core=0)
        entries = [(b"k%02d" % i, bytes([i]) * 1500) for i in range(20)]
        table = build_sst(env, thread, "big.sst", iter(entries))
        for key, value in entries:
            assert table.get(thread, key) == value

    def test_reopen_from_same_file(self, env):
        """Index/filter are rebuilt from on-device bytes."""
        thread = SimThread(core=0)
        entries = _entries(100)
        table = build_sst(env, thread, "t.sst", iter(entries))
        reopened = SSTable(env, table.file, thread, table.first_key, table.last_key)
        assert reopened.get(thread, b"key-000042") == b"value-42"
